//! A drop-in subset of the Criterion benchmarking API.
//!
//! The workspace builds hermetically (no crates.io), so the `benches/`
//! targets run on this shim instead of the real `criterion` crate. It
//! keeps the same surface — [`Criterion`], [`BenchmarkId`], benchmark
//! groups, `criterion_group!`/`criterion_main!` — with a plain
//! wall-clock measurement loop: calibrate a batch size, take
//! `sample_size` timed samples, report min/median/mean per iteration.
//!
//! Set `OPM_BENCH_JSON=<path>` to additionally append one JSON record
//! per benchmark (used to produce `BENCH_baseline.json`).

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Target wall-clock duration of one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);
/// Cap on total calibration + measurement time per benchmark.
const BENCH_BUDGET: Duration = Duration::from_secs(3);

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a standalone (group-less) benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

/// A named parameterized benchmark id, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as Criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Benchmarks `f(b, input)` under `<group>/<id.name>/<id.param>`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Per-benchmark measurement handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `f`.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

fn run_once(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let budget_start = Instant::now();
    // Calibrate: grow the batch until one sample takes SAMPLE_TARGET.
    let mut iters = 1u64;
    loop {
        let t = run_once(&mut f, iters);
        if t >= SAMPLE_TARGET || budget_start.elapsed() > BENCH_BUDGET / 4 {
            break;
        }
        let grow = if t.is_zero() {
            16
        } else {
            (SAMPLE_TARGET.as_secs_f64() / t.as_secs_f64())
                .ceil()
                .min(16.0) as u64
        };
        iters = iters.saturating_mul(grow.max(2)).min(1 << 30);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let t = run_once(&mut f, iters);
        per_iter.push(t.as_secs_f64() / iters as f64);
        if budget_start.elapsed() > BENCH_BUDGET {
            break;
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    println!(
        "{label:<48} time: [{} {} {}]  ({} samples × {iters} iters)",
        fmt(min),
        fmt(median),
        fmt(mean),
        per_iter.len(),
    );

    if let Ok(path) = std::env::var("OPM_BENCH_JSON") {
        let record = format!(
            "{{\"id\":\"{label}\",\"min_s\":{min:e},\"median_s\":{median:e},\"mean_s\":{mean:e},\"samples\":{},\"iters\":{iters}}}",
            per_iter.len()
        );
        if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
            let _ = writeln!(file, "{record}");
        }
    }
}

fn fmt(sec: f64) -> String {
    if sec < 1e-6 {
        format!("{:.3} ns", sec * 1e9)
    } else if sec < 1e-3 {
        format!("{:.3} µs", sec * 1e6)
    } else if sec < 1.0 {
        format!("{:.3} ms", sec * 1e3)
    } else {
        format!("{sec:.3} s")
    }
}

pub use crate::{criterion_group, criterion_main};

/// Mirrors `criterion::criterion_group!` (both the simple and the
/// `name/config/targets` forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::criterion::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim");
        let mut hits = 0u64;
        g.bench_function("noop", |b| b.iter(|| hits += 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        g.finish();
        assert!(hits > 0);
    }
}
