//! **Serve-load benchmark** — the daemon's plan-cache economy under
//! sustained traffic.
//!
//! Boots an in-process `opm-serve` daemon, then drives it over real
//! sockets from concurrent client threads (`opm-par` fan-out):
//!
//! - **cold phase** — every request carries a structurally *distinct*
//!   RC-mesh netlist (one segment resistance perturbed per variant), so
//!   each is a cache miss paying netlist assembly + symbolic + numeric
//!   factorization + solve.
//! - **warm phase** — every request repeats one pinned netlist, so each
//!   is a cache hit: assembly + pure solve against the interned
//!   `Arc<SimPlan>`, shared concurrently across client threads.
//!
//! Hard gates at generation time:
//!
//! - warm-vs-cold results bit-identical (`max_abs_delta == 0` — a hit
//!   reuses the *same* factorization);
//! - the pinned plan's profile reads exactly 1 symbolic + 1 numeric
//!   factorization after all N warm requests (windowed solves);
//! - warm throughput ≥ `OPM_SERVE_MIN_SPEEDUP`× cold (default 2.0);
//! - `/metrics` hit rate ≥ `OPM_SERVE_MIN_HIT_RATE` (default 0.75).
//!
//! Emits `BENCH_serve.json` (path override: `OPM_SERVE_JSON`) through
//! the shared `opm_core::json` serializer, gated in CI by
//! `ci/compare_bench.py` exactly like the sweep.
//!
//! `cargo run --release -p opm-bench --bin serve_bench`

use std::fmt::Write as _;
use std::time::Instant;

use opm_core::json::Json;
use opm_serve::{client, spawn, ServerConfig};

const COLD_REQUESTS: usize = 6;
const WARM_REQUESTS: usize = 42;
const MESH: usize = 48; // MESH×MESH RC mesh → fill-heavy 2D factorization
const RESOLUTION: usize = 8;
const WINDOWS: usize = 4;

fn floor_env(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default)
}

/// An `MESH×MESH` resistor mesh with a capacitor at every node — 2D
/// sparsity, so the LU pays real fill and a cache hit skips real work.
/// `variant` perturbs one segment resistance: same pattern, different
/// values → a different structural key by construction.
fn mesh_netlist(variant: usize) -> String {
    let mut s = String::from("* RC mesh\nV1 n1_1 0 DC 1\n");
    let mut r = 0usize;
    for i in 1..=MESH {
        for j in 1..=MESH {
            if j < MESH {
                r += 1;
                // The first segment carries the variant: value-only
                // perturbation, identical sparsity pattern (variant 0
                // *is* the pinned netlist).
                let ohms = if r == 1 {
                    100.0 + 0.5 * variant as f64
                } else {
                    100.0
                };
                let _ = writeln!(s, "R{r} n{i}_{j} n{i}_{} {ohms}", j + 1);
            }
            if i < MESH {
                r += 1;
                let _ = writeln!(s, "R{r} n{i}_{j} n{}_{j} 100", i + 1);
            }
            let _ = writeln!(s, "C{i}_{j} n{i}_{j} 0 1n");
        }
    }
    s.push_str(".end\n");
    s
}

fn body(variant: usize) -> String {
    let corner = format!("n{MESH}_{MESH}");
    format!(
        r#"{{"netlist": {netlist:?}, "probes": [{corner:?}], "horizon": 2e-6,
            "options": {{"resolution": {RESOLUTION}}}, "windows": {WINDOWS},
            "scenarios": [[{{"kind": "pulse", "v1": 0.0, "v2": 1.0, "delay": 1e-8,
                             "rise": 1e-8, "width": 5e-7, "fall": 1e-8, "period": 0.0}}]]}}"#,
        netlist = mesh_netlist(variant),
    )
}

fn outputs_of(body: &str) -> Vec<f64> {
    let doc = Json::parse(body).expect("response must be JSON");
    doc.get("results")
        .expect("results")
        .as_array()
        .expect("results array")[0]
        .get("outputs")
        .expect("outputs")
        .as_array()
        .expect("outputs array")[0]
        .as_array()
        .expect("output row")
        .iter()
        .map(|v| v.as_f64().expect("numeric sample"))
        .collect()
}

fn main() {
    let server = spawn(ServerConfig::default()).expect("bind daemon");
    let addr = server.addr();
    let threads = opm_par::default_threads().min(4);
    println!(
        "serve bench — {MESH}×{MESH} RC mesh, m = {RESOLUTION}, {WINDOWS} windows, \
         {threads} client thread(s) against {addr}"
    );

    // Reference response for the pinned request (variant 0) — this also
    // seeds the cache entry the warm phase hits, and *is* the cold-path
    // sample for the bit-identity gate.
    let pinned = body(0);
    let cold_reference = client::post(addr, "/solve", &pinned).expect("pinned request");
    assert_eq!(cold_reference.status, 200, "{}", cold_reference.body);
    let cold_outputs = outputs_of(&cold_reference.body);

    // -- cold phase: distinct variants, every request a miss ---------------
    let cold_bodies: Vec<String> = (1..=COLD_REQUESTS).map(body).collect();
    let cold_started = Instant::now();
    let cold_replies = opm_par::par_map(threads, &cold_bodies, |b| {
        client::post(addr, "/solve", b)
            .expect("cold request")
            .status
    });
    let cold_s = cold_started.elapsed().as_secs_f64();
    assert!(cold_replies.iter().all(|&s| s == 200));
    let cold_sps = COLD_REQUESTS as f64 / cold_s;

    // -- warm phase: the pinned request, every request a hit ---------------
    let warm_bodies: Vec<String> = (0..WARM_REQUESTS).map(|_| pinned.clone()).collect();
    let warm_started = Instant::now();
    let warm_replies = opm_par::par_map(threads, &warm_bodies, |b| {
        let r = client::post(addr, "/solve", b).expect("warm request");
        assert_eq!(r.status, 200, "{}", r.body);
        let doc = Json::parse(&r.body).expect("warm response JSON");
        assert_eq!(
            doc.get("cache").and_then(Json::as_str),
            Some("hit"),
            "warm requests must hit"
        );
        outputs_of(&r.body)
    });
    let warm_s = warm_started.elapsed().as_secs_f64();
    let warm_sps = WARM_REQUESTS as f64 / warm_s;

    // -- gates -------------------------------------------------------------
    let mut max_abs_delta = 0.0f64;
    for w in &warm_replies {
        assert_eq!(w.len(), cold_outputs.len());
        for (a, b) in w.iter().zip(&cold_outputs) {
            max_abs_delta = max_abs_delta.max((a - b).abs());
        }
    }

    let metrics = client::get(addr, "/metrics").expect("metrics");
    let mdoc = metrics.json().expect("metrics JSON");
    let stats = mdoc.get("plan_cache").expect("plan_cache");
    let hits = stats.get("hits").unwrap().as_f64().unwrap();
    let misses = stats.get("misses").unwrap().as_f64().unwrap();
    let hit_rate = hits / (hits + misses);

    // The pinned plan is the most recently used: N requests, 1 symbolic
    // + 1 numeric factorization total.
    let plans = mdoc.get("plans").unwrap().as_array().unwrap();
    let profile = plans[0].get("profile").unwrap().clone();
    let num_symbolic = profile.get("num_symbolic").unwrap().as_usize().unwrap();
    let num_numeric = profile.get("num_numeric").unwrap().as_usize().unwrap();

    let speedup = warm_sps / cold_sps;
    println!("cold : {COLD_REQUESTS} misses in {cold_s:.3}s  ({cold_sps:.1} scenarios/s)");
    println!("warm : {WARM_REQUESTS} hits   in {warm_s:.3}s  ({warm_sps:.1} scenarios/s)");
    println!(
        "warm/cold {speedup:.2}×   hit rate {hit_rate:.3}   max |Δ| = {max_abs_delta:e}   \
         profile {num_symbolic} symbolic + {num_numeric} numeric"
    );

    assert_eq!(
        max_abs_delta, 0.0,
        "a cache hit must reproduce the cold result bit-for-bit"
    );
    assert_eq!(
        (num_symbolic, num_numeric),
        (1, 1),
        "{} requests on the pinned plan must cost exactly 1 symbolic + 1 numeric",
        WARM_REQUESTS + 1
    );
    let min_speedup = floor_env("OPM_SERVE_MIN_SPEEDUP", 2.0);
    assert!(
        speedup >= min_speedup,
        "warm-cache throughput must be ≥ {min_speedup}× cold (got {speedup:.2}×)"
    );
    let min_hit_rate = floor_env("OPM_SERVE_MIN_HIT_RATE", 0.75);
    assert!(
        hit_rate >= min_hit_rate,
        "hit rate must be ≥ {min_hit_rate} (got {hit_rate:.3})"
    );

    server.shutdown();

    // -- artifact ----------------------------------------------------------
    let note = format!(
        "opm-serve load generator: {MESH}x{MESH} RC-mesh netlist (2D fill-heavy LU), \
         m = {RESOLUTION}, {WINDOWS}-window solves, {threads} concurrent client thread(s) \
         over real sockets against an in-process daemon. serve/cold_*: {COLD_REQUESTS} \
         structurally distinct variants, every request a plan-cache miss (assembly + \
         symbolic + numeric factorization + solve). serve/warm_*: {WARM_REQUESTS} repeats \
         of one pinned request, every one a hit (the interned Arc<SimPlan>, zero \
         factorizations — the per-plan profile reads 1 symbolic + 1 numeric total, \
         asserted). warm_vs_cold_max_abs_delta == 0 is a hard bit-identity gate; the \
         hit-rate floor and speedup floor are asserted at generation time \
         (OPM_SERVE_MIN_SPEEDUP / OPM_SERVE_MIN_HIT_RATE). CI gate: ci/compare_bench.py \
         diffs a regenerated run against this committed file. Regenerate: \
         cargo run --release -p opm-bench --bin serve_bench"
    );
    let rec = |pairs: Vec<(String, Json)>| Json::Obj(pairs);
    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("opm-bench-serve/v1")),
        ("note".into(), Json::str(note)),
        (
            "records".into(),
            Json::Arr(vec![
                rec(vec![
                    (
                        "id".into(),
                        Json::str(format!("serve/cold_requests_{COLD_REQUESTS}")),
                    ),
                    ("seconds".into(), Json::Num(cold_s)),
                    ("scenarios_per_sec".into(), Json::Num(cold_sps)),
                ]),
                rec(vec![
                    (
                        "id".into(),
                        Json::str(format!("serve/warm_requests_{WARM_REQUESTS}")),
                    ),
                    ("seconds".into(), Json::Num(warm_s)),
                    ("scenarios_per_sec".into(), Json::Num(warm_sps)),
                ]),
                rec(vec![
                    ("id".into(), Json::str("serve/warm_vs_cold_speedup")),
                    ("value".into(), Json::Num(speedup)),
                ]),
                rec(vec![
                    ("id".into(), Json::str("serve/warm_vs_cold_max_abs_delta")),
                    ("value".into(), Json::Num(max_abs_delta)),
                ]),
                rec(vec![
                    ("id".into(), Json::str("serve/hit_rate")),
                    ("value".into(), Json::Num(hit_rate)),
                    ("hits".into(), Json::Num(hits)),
                    ("misses".into(), Json::Num(misses)),
                ]),
                rec(vec![
                    ("id".into(), Json::str("serve/plan_profile")),
                    ("num_symbolic".into(), Json::Int(num_symbolic as i64)),
                    ("num_numeric".into(), Json::Int(num_numeric as i64)),
                    ("windows".into(), Json::Int(WINDOWS as i64)),
                    ("profile".into(), profile),
                ]),
            ]),
        ),
    ]);

    let path = std::env::var("OPM_SERVE_JSON").unwrap_or_else(|_| "BENCH_serve.json".into());
    std::fs::write(&path, format!("{doc}\n")).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
