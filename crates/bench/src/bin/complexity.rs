//! **Experiment E2** — the paper's §IV complexity claim
//! `O(n^β m + n m²)`:
//!
//! 1. m-sweep at fixed n — linear OPM should scale ~O(m) (one LU,
//!    m solves) while fractional OPM bends toward O(m²) (history
//!    convolution).
//! 2. n-sweep at fixed m — both scale with the sparse-solve cost `n^β`,
//!    `1 < β < 2`.
//!
//! `cargo run --release -p opm-bench --bin complexity`

use opm_bench::{fmt_time, row, rule, timed};
use opm_circuits::grid::PowerGridSpec;
use opm_circuits::mna::assemble_mna;
use opm_core::{Problem, SolveOptions};
use opm_sparse::{CooMatrix, CsrMatrix};
use opm_system::{DescriptorSystem, FractionalSystem};
use opm_waveform::{InputSet, Waveform};

/// Fractional RC-style chain of order n (diagonal E, tridiagonal A).
fn chain(n: usize) -> DescriptorSystem {
    let mut a = CooMatrix::new(n, n);
    for i in 0..n {
        a.push(i, i, -2.0);
        if i + 1 < n {
            a.push(i, i + 1, 1.0);
            a.push(i + 1, i, 1.0);
        }
    }
    let mut b = CooMatrix::new(n, 1);
    b.push(0, 0, 1.0);
    DescriptorSystem::new(CsrMatrix::identity(n), a.to_csr(), b.to_csr(), None).unwrap()
}

fn main() {
    let inputs = InputSet::new(vec![Waveform::pulse(0.0, 1.0, 0.0, 0.05, 0.3, 0.05, 1.0)]);

    println!("E2a — m-sweep at n = 400 (chain): linear ~O(m), fractional ~O(m²)\n");
    let sys = chain(400);
    let fsys = FractionalSystem::new(0.5, chain(400)).unwrap();
    let widths = [8usize, 14, 14, 10];
    row(
        &[
            "m".into(),
            "linear".into(),
            "fractional".into(),
            "frac/lin".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut series = Vec::new();
    for &m in &[128usize, 256, 512, 1024, 2048] {
        let u = inputs.bpf_matrix(m, 4.0);
        let (_, t_lin) = timed(|| {
            Problem::linear(&sys)
                .coeffs(&u)
                .horizon(4.0)
                .solve(&SolveOptions::new())
                .unwrap()
        });
        let (_, t_frac) = timed(|| {
            Problem::fractional(&fsys)
                .coeffs(&u)
                .horizon(4.0)
                .solve(&SolveOptions::new())
                .unwrap()
        });
        row(
            &[
                format!("{m}"),
                fmt_time(t_lin),
                fmt_time(t_frac),
                format!("{:.1}×", t_frac / t_lin),
            ],
            &widths,
        );
        series.push((m as f64, t_lin, t_frac));
    }
    let scaling = |a: (f64, f64), b: (f64, f64)| (b.1 / a.1).ln() / (b.0 / a.0).ln();
    let lin_order = scaling(
        (series[1].0, series[1].1),
        (series[series.len() - 1].0, series[series.len() - 1].1),
    );
    let frac_order = scaling(
        (series[1].0, series[1].2),
        (series[series.len() - 1].0, series[series.len() - 1].2),
    );
    println!("\nfitted exponents in m: linear ≈ m^{lin_order:.2}, fractional ≈ m^{frac_order:.2}");

    println!("\nE2b — n-sweep at m = 200 (power-grid MNA): sparse-solve scaling n^β\n");
    let widths = [10usize, 10, 14, 16];
    row(
        &[
            "grid".into(),
            "n".into(),
            "runtime".into(),
            "per-column".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut pts = Vec::new();
    for &g in &[6usize, 9, 13, 19, 27] {
        let spec = PowerGridSpec {
            layers: 2,
            rows: g,
            cols: g,
            num_loads: 4,
            ..Default::default()
        };
        let model = assemble_mna(&spec.build(), &[]).unwrap();
        let n = model.system.order();
        let m = 200;
        let u = model.inputs.bpf_matrix(m, 10e-9);
        let x0 = vec![0.0; n];
        let (_, secs) = timed(|| {
            Problem::linear(&model.system)
                .coeffs(&u)
                .horizon(10e-9)
                .initial_state(&x0)
                .solve(&SolveOptions::new())
                .unwrap()
        });
        row(
            &[
                format!("2×{g}×{g}"),
                format!("{n}"),
                fmt_time(secs),
                fmt_time(secs / m as f64),
            ],
            &widths,
        );
        pts.push((n as f64, secs));
    }
    let beta = (pts[pts.len() - 1].1 / pts[1].1).ln() / (pts[pts.len() - 1].0 / pts[1].0).ln();
    println!("\nfitted exponent in n: runtime ≈ n^{beta:.2} (paper: 1 < β < 2)");
}
