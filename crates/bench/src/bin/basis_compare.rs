//! **Experiment E3** — the basis-generality claim of §I: OPM "can
//! readily switch to using other basis functions, each having its own
//! merits."
//!
//! The same RC response is solved in BPF, Walsh, Haar and shifted
//! Legendre bases at several m; reconstruction errors show (a) identical
//! accuracy for the three piecewise-constant bases (same span), and
//! (b) spectral accuracy for Legendre on this smooth response — plus the
//! paper's "overall trend" use case: a sequency-truncated Walsh solution.
//!
//! `cargo run --release -p opm-bench --bin basis_compare`

use opm_basis::{Basis, BpfBasis, HaarBasis, LegendreBasis, WalshBasis};
use opm_bench::{row, rule};
// Non-BPF bases solve only through the basis-generic oracle; the plan
// layer is BPF-specialized by design, so the deprecated entry stays.
#[allow(deprecated)]
use opm_core::general_basis::solve_general_basis;
use opm_sparse::{CooMatrix, CsrMatrix};
use opm_system::DescriptorSystem;
use opm_waveform::{InputSet, Waveform};

fn main() {
    let mut a = CooMatrix::new(1, 1);
    a.push(0, 0, -1.0);
    let mut b = CooMatrix::new(1, 1);
    b.push(0, 0, 1.0);
    let sys = DescriptorSystem::new(CsrMatrix::identity(1), a.to_csr(), b.to_csr(), None).unwrap();
    let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
    let t_end = 2.0;
    let exact = |t: f64| 1.0 - (-t).exp();

    println!("E3 — max reconstruction error of ẋ = −x + 1 in four bases\n");
    let widths = [6usize, 12, 12, 12, 12];
    row(
        &[
            "m".into(),
            "BPF".into(),
            "Walsh".into(),
            "Haar".into(),
            "Legendre".into(),
        ],
        &widths,
    );
    rule(&widths);
    for &m in &[8usize, 16, 32] {
        let bases: Vec<Box<dyn Basis>> = vec![
            Box::new(BpfBasis::new(m, t_end)),
            Box::new(WalshBasis::new(m, t_end)),
            Box::new(HaarBasis::new(m, t_end)),
            Box::new(LegendreBasis::new(m.min(24), t_end)),
        ];
        let mut cells = vec![format!("{m}")];
        for basis in &bases {
            #[allow(deprecated)]
            let r = solve_general_basis(&sys, basis.as_ref(), &inputs, &[0.0]).unwrap();
            let mut err = 0.0f64;
            for i in 0..500 {
                let t = t_end * (i as f64 + 0.5) / 500.0;
                err = err.max((r.reconstruct_state(basis.as_ref(), 0, t) - exact(t)).abs());
            }
            cells.push(format!("{err:.2e}"));
        }
        row(&cells, &widths);
    }

    // Walsh trend extraction: truncate to the lowest 4 sequencies.
    println!("\nWalsh low-sequency truncation (m = 32 → keep 4 coefficients):");
    let m = 32;
    let wb = WalshBasis::new(m, t_end);
    #[allow(deprecated)]
    let r = solve_general_basis(&sys, &wb, &inputs, &[0.0]).unwrap();
    let mut coeffs: Vec<f64> = (0..m).map(|j| r.x_coeffs.get(0, j)).collect();
    for c in coeffs.iter_mut().skip(4) {
        *c = 0.0;
    }
    let mut trend_err = 0.0f64;
    for i in 0..500 {
        let t = t_end * (i as f64 + 0.5) / 500.0;
        trend_err = trend_err.max((wb.reconstruct(&coeffs, t) - exact(t)).abs());
    }
    println!("  4-of-32 coefficients reproduce the trend to max error {trend_err:.2e}");
    println!("  (the paper's \"overall trend of the response\" use case for Walsh bases)");
}
