//! **Table II reproduction** — 3-D power grid: backward Euler (h, h/2,
//! h/10), Gear-2 and trapezoidal on the first-order MNA model vs OPM on
//! the second-order NA model.
//!
//! The paper's grid has 75 K (NA) / 110 K (MNA) unknowns and runtimes of
//! minutes; the default harness scale keeps the same topology family at
//! CI size and `OPM_SCALE=n` grows it (e.g. `OPM_SCALE=4` ≈ 18 K/29 K
//! unknowns). Errors are RMS vs a 32× fine-step reference, in dB relative
//! to the signal RMS — the analogue of the paper's "average relative
//! error".
//!
//! `cargo run --release -p opm-bench --bin table2` (optionally `OPM_SCALE=4`)

use opm_bench::{emit_json_record, env_scale, fmt_time, row, rule, timed};
use opm_circuits::grid::PowerGridSpec;
use opm_circuits::mna::assemble_mna;
use opm_circuits::na::assemble_na;
use opm_core::{Problem, SolveOptions};
use opm_transient::{backward_euler, bdf, fine_reference, trapezoidal};

fn main() {
    let scale = env_scale();
    let spec = PowerGridSpec {
        layers: 3,
        rows: 8 * scale,
        cols: 8 * scale,
        num_loads: 8 * scale,
        // Resolved-dynamics regime (see DESIGN.md): the error ordering of
        // the paper presumes the 10 ps step resolves the grid's LC modes.
        l_via: 2e-10,
        c_node: 2e-11,
        r_segment: 0.2,
        period: 4e-9,
        ..Default::default()
    };
    let ckt = spec.build();
    let na = assemble_na(&ckt, &[]).unwrap();
    let mna = assemble_mna(&ckt, &[]).unwrap();
    let t_end = 10e-9;
    let m = 1000; // h = 10 ps, the paper's base step

    println!(
        "Table II — power grid {}×{}×{}: NA n = {}, MNA n = {} (paper: 75 K / 110 K), T = 10 ns",
        spec.layers,
        spec.rows,
        spec.cols,
        na.system.order(),
        mna.system.order()
    );
    println!();

    // Reference: fine trapezoidal on the MNA model.
    let x0 = vec![0.0; mna.system.order()];
    let reference = fine_reference(&mna.system, &mna.inputs, t_end, m, 32, &x0).unwrap();

    // Probe all bottom-layer nodes (where the loads switch).
    let probes: Vec<usize> = (0..spec.rows * spec.cols).collect();
    let signal_rms = {
        let mut s = 0.0;
        let mut count = 0usize;
        for &p in &probes {
            for v in &reference.outputs[p] {
                s += v * v;
                count += 1;
            }
        }
        (s / count as f64).sqrt()
    };

    // Error of an endpoint-sampled method vs the reference, dB.
    let err_db = |outputs: &[Vec<f64>], stride: usize| -> f64 {
        let mut s = 0.0;
        let mut count = 0usize;
        for &p in &probes {
            for j in 0..m {
                let d = outputs[p][(j + 1) * stride - 1] - reference.outputs[p][j];
                s += d * d;
                count += 1;
            }
        }
        20.0 * ((s / count as f64).sqrt() / signal_rms).log10()
    };

    let widths = [12usize, 10, 12, 20];
    row(
        &[
            "Method".into(),
            "Step".into(),
            "Runtime".into(),
            "Avg rel. err (dB)".into(),
        ],
        &widths,
    );
    rule(&widths);

    for (label, mm, stride) in [
        ("b-Euler", m, 1usize),
        ("b-Euler", 2 * m, 2),
        ("b-Euler", 10 * m, 10),
    ] {
        let (r, secs) =
            timed(|| backward_euler(&mna.system, &mna.inputs, t_end, mm, &x0, false).unwrap());
        emit_json_record(
            &format!("table2/b_euler_{}ps", 10 * m / mm),
            secs,
            Some(err_db(&r.outputs, stride)),
        );
        row(
            &[
                label.into(),
                format!("{} ps", 10 * m / mm),
                fmt_time(secs),
                format!("{:.0}", err_db(&r.outputs, stride)),
            ],
            &widths,
        );
    }
    let (gear, secs_gear) =
        timed(|| bdf(&mna.system, &mna.inputs, t_end, m, 2, &x0, false).unwrap());
    emit_json_record(
        "table2/gear2_10ps",
        secs_gear,
        Some(err_db(&gear.outputs, 1)),
    );
    row(
        &[
            "Gear".into(),
            "10 ps".into(),
            fmt_time(secs_gear),
            format!("{:.0}", err_db(&gear.outputs, 1)),
        ],
        &widths,
    );
    let (trap, secs_trap) =
        timed(|| trapezoidal(&mna.system, &mna.inputs, t_end, m, &x0, false).unwrap());
    emit_json_record(
        "table2/trapezoidal_10ps",
        secs_trap,
        Some(err_db(&trap.outputs, 1)),
    );
    row(
        &[
            "Trapezoidal".into(),
            "10 ps".into(),
            fmt_time(secs_trap),
            format!("{:.0}", err_db(&trap.outputs, 1)),
        ],
        &widths,
    );

    // OPM on the second-order NA model (input = J̇ via exact averages).
    let bounds: Vec<f64> = (0..=m).map(|k| k as f64 * t_end / m as f64).collect();
    let u_dot = na.inputs.derivative_averages_on_grid(&bounds);
    let mt = na.system.to_multiterm();
    let (opm, secs_opm) = timed(|| {
        Problem::multiterm(&mt)
            .coeffs(&u_dot)
            .horizon(t_end)
            .solve(&SolveOptions::new())
            .unwrap()
    });
    // OPM columns are interval averages; compare against reference
    // midpoint averages.
    let opm_err = {
        let mut s = 0.0;
        let mut count = 0usize;
        for &p in &probes {
            for j in 1..m {
                let mid = 0.5 * (reference.outputs[p][j - 1] + reference.outputs[p][j]);
                let d = opm.state_coeff(p, j) - mid;
                s += d * d;
                count += 1;
            }
        }
        20.0 * ((s / count as f64).sqrt() / signal_rms).log10()
    };
    emit_json_record("table2/opm_na_10ps", secs_opm, Some(opm_err));
    row(
        &[
            "OPM".into(),
            "10 ps".into(),
            fmt_time(secs_opm),
            format!("{:.0}", opm_err),
        ],
        &widths,
    );

    println!();
    println!("paper reported (75 K/110 K nodes, CPU seconds):");
    println!("  b-Euler 10 ps 334.7 s / −91 dB · 5 ps 691.7 s / −92 dB · 1 ps 3198 s / −127 dB");
    println!(
        "  Gear 10 ps 359.1 s / −134 dB · Trapezoidal 10 ps 347.2 s / −137 dB · OPM 10 ps 314.6 s"
    );
    println!(
        "reproduction criteria: same-step runtimes within ~20 %; OPM no slower than trapezoidal;"
    );
    println!("  err(b-Euler,h) worst; Gear ≈ trapezoidal cluster best; finer b-Euler improves.");
}
