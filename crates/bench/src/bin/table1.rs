//! **Table I reproduction** — fractional transmission line (n = 7,
//! α = ½, 2 ports), T = 2.7 ns, m = 8: OPM vs FFT-1 (8 points) vs FFT-2
//! (100 points).
//!
//! Reports CPU time per solve and the paper's Eq. (30) relative error of
//! each FFT run *with respect to OPM* (the paper's own normalization —
//! OPM's row shows "−").
//!
//! `cargo run --release -p opm-bench --bin table1`

use opm_bench::{emit_json_record, fmt_time, row, rule, timed};
use opm_circuits::tline::FractionalLineSpec;
use opm_core::metrics::relative_error_db_multi;
use opm_core::{Problem, SolveOptions};
use opm_fft::FftSimulator;

fn main() {
    let spec = FractionalLineSpec::default();
    let model = spec.assemble();
    let t_end = 2.7e-9;
    let m = 8;
    println!(
        "Table I — fractional line: n = {}, α = {}, p = q = {}, T = {:.1e} s, m = {m}",
        model.system.order(),
        model.system.alpha(),
        model.system.num_inputs(),
        t_end
    );
    println!();

    const REPS: usize = 200;
    // The methods here run in single-digit microseconds, where a
    // throttling phase on a shared machine can flip the ordering the
    // shape check asserts. The timing rounds are therefore
    // *interleaved* — every round times OPM and both FFT runs back to
    // back, so a slow phase hits all three methods alike — and each
    // method reports its best round.
    const ROUNDS: usize = 5;

    // OPM.
    let u = model.inputs.bpf_matrix(m, t_end);
    let opm_round = || {
        let mut last = None;
        for _ in 0..REPS {
            last = Some(
                Problem::fractional(&model.system)
                    .coeffs(&u)
                    .horizon(t_end)
                    .solve(&SolveOptions::new())
                    .unwrap(),
            );
        }
        last.unwrap()
    };
    const FFT_RUNS: [(&str, usize); 2] = [("FFT-1", 8), ("FFT-2", 100)];
    let fft_sims: Vec<FftSimulator> = FFT_RUNS
        .iter()
        .map(|&(_, n_samples)| FftSimulator::new(n_samples))
        .collect();
    let fft_round = |sim: &FftSimulator| {
        let mut last = None;
        for _ in 0..REPS {
            last = Some(sim.simulate(&model.system, &model.inputs, t_end));
        }
        last.unwrap()
    };

    let (mut opm, mut t_opm) = timed(opm_round);
    let mut fft_runs: Vec<(_, f64)> = fft_sims.iter().map(|s| timed(|| fft_round(s))).collect();
    for _ in 1..ROUNDS {
        let (o, s) = timed(opm_round);
        if s < t_opm {
            (opm, t_opm) = (o, s);
        }
        for (sim, run) in fft_sims.iter().zip(fft_runs.iter_mut()) {
            let (r, s) = timed(|| fft_round(sim));
            if s < run.1 {
                *run = (r, s);
            }
        }
    }
    let opm_out: Vec<Vec<f64>> = (0..2).map(|o| opm.output_row(o).to_vec()).collect();

    // FFT baselines.
    let mut results = Vec::new();
    for ((name, _), (res, t_fft)) in FFT_RUNS.into_iter().zip(fft_runs) {
        // Interpolate the FFT waveform on OPM's midpoints for the Eq. (30)
        // comparison.
        let on_grid: Vec<Vec<f64>> = (0..2)
            .map(|o| {
                opm.midpoints()
                    .iter()
                    .map(|&t| res.interpolate_output(o, t))
                    .collect()
            })
            .collect();
        let err_db = relative_error_db_multi(&on_grid, &opm_out);
        results.push((name, t_fft / REPS as f64, Some(err_db)));
    }
    results.push(("OPM", t_opm / REPS as f64, None));

    for (name, secs, err) in &results {
        emit_json_record(&format!("table1/{name}"), *secs, *err);
    }

    let widths = [8usize, 14, 18];
    row(
        &["Method".into(), "CPU time".into(), "Rel. error (dB)".into()],
        &widths,
    );
    rule(&widths);
    for (name, secs, err) in &results {
        row(
            &[
                (*name).into(),
                fmt_time(*secs),
                err.map_or("-".into(), |e| format!("{e:.1}")),
            ],
            &widths,
        );
    }
    println!();
    println!("paper reported: FFT-1 6.09 ms / −29.2 dB · FFT-2 40.7 ms / −46.5 dB · OPM 3.56 ms");
    println!(
        "reproduction criteria: err(FFT-2) < err(FFT-1); time(OPM) < time(FFT-1) < time(FFT-2)"
    );

    let e1 = results[0].2.unwrap();
    let e2 = results[1].2.unwrap();
    let (t1, t2, topm) = (results[0].1, results[1].1, results[2].1);
    assert!(e2 < e1, "FFT-2 must track OPM better");
    assert!(topm < t1 && t1 < t2, "timing order: OPM < FFT-1 < FFT-2");
    println!("shape check: PASS");
}
