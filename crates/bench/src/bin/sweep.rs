//! **Plan-reuse sweep benchmark** — the `SimPlan` session economy on the
//! Table II power-grid circuit: 100 load-current scenarios solved (a)
//! naively, one `Problem::solve` each (re-validate, re-order, re-factor
//! per scenario), and (b) through one `Simulation::plan` whose single
//! factorization serves the whole batch in one interleaved pass.
//!
//! Emits `BENCH_sweep.json` (path override: `OPM_SWEEP_JSON`) with both
//! timings, the factorization counts and the speedup.
//!
//! `cargo run --release -p opm-bench --bin sweep`

use std::io::Write as _;

use opm_bench::{fmt_time, timed};
use opm_circuits::grid::PowerGridSpec;
use opm_circuits::na::assemble_na;
use opm_core::{Problem, Simulation, SolveOptions};
use opm_waveform::{InputSet, Waveform};

const SCENARIOS: usize = 100;

fn main() {
    // The Table II workload family at CI scale (same topology the table2
    // binary reproduces the paper with).
    let spec = PowerGridSpec {
        layers: 3,
        rows: 8,
        cols: 8,
        num_loads: 8,
        l_via: 2e-10,
        c_node: 2e-11,
        r_segment: 0.2,
        period: 4e-9,
        ..Default::default()
    };
    let ckt = spec.build();
    // Probe the bottom-layer corner nodes: keeps the result payload small
    // while still exercising output reconstruction.
    let probes: Vec<usize> = vec![1, spec.cols, spec.rows * spec.cols];
    let na = assemble_na(&ckt, &probes).unwrap();
    let t_end = 10e-9;
    let m = 256;
    let opts = SolveOptions::new().resolution(m);
    let num_loads = na.inputs.len();

    // 100 load patterns: every load current pulse gets a scenario-specific
    // amplitude and delay (a supply-noise corner study).
    let scenario = |s: usize| -> InputSet {
        InputSet::new(
            (0..num_loads)
                .map(|ch| {
                    let amp = 1e-3 * (1.0 + 0.05 * ((s * 7 + ch * 3) % 20) as f64);
                    let delay = 0.5e-9 + 0.02e-9 * ((s + ch) % 10) as f64;
                    Waveform::pulse(0.0, amp, delay, 0.2e-9, 1.0e-9, 0.2e-9, 4e-9)
                })
                .collect(),
        )
    };
    let sets: Vec<InputSet> = (0..SCENARIOS).map(scenario).collect();

    println!(
        "plan-reuse sweep — Table II grid {}×{}×{}: n = {} unknowns, m = {m} columns, {SCENARIOS} scenarios",
        spec.layers,
        spec.rows,
        spec.cols,
        na.system.order()
    );

    // (a) Naive: independent Problem::solve per scenario.
    let (naive, naive_s) = timed(|| {
        sets.iter()
            .map(|ws| {
                Problem::second_order(&na.system)
                    .waveforms(ws)
                    .horizon(t_end)
                    .solve(&opts)
                    .unwrap()
            })
            .collect::<Vec<_>>()
    });
    let naive_factorizations: usize = naive.iter().map(|r| r.num_factorizations).sum();

    // (b) Planned: factor once, sweep the batch.
    let sim = Simulation::from_second_order(na.system.clone()).horizon(t_end);
    let ((plan, planned), plan_s) = timed(|| {
        let plan = sim.plan(&opts).unwrap();
        let runs = plan.solve_batch(&sets).unwrap();
        (plan, runs)
    });
    let plan_factorizations = plan.num_factorizations();

    // The batch must reproduce the naive loop to roundoff.
    let mut worst = 0.0f64;
    for (a, b) in naive.iter().zip(&planned) {
        for (ra, rb) in a.outputs.iter().zip(&b.outputs) {
            for (va, vb) in ra.iter().zip(rb) {
                worst = worst.max((va - vb).abs());
            }
        }
    }
    let speedup = naive_s / plan_s;

    println!(
        "naive loop : {}  ({naive_factorizations} factorizations)",
        fmt_time(naive_s)
    );
    println!(
        "plan batch : {}  ({plan_factorizations} factorization)",
        fmt_time(plan_s)
    );
    println!("speedup    : {speedup:.2}×   max |Δ| = {worst:.2e}");

    assert_eq!(
        plan_factorizations, 1,
        "the plan must factor the pencil exactly once"
    );
    assert!(
        worst < 1e-12,
        "batch and naive results must agree to 1e-12 (got {worst:.2e})"
    );
    // Quiet machines comfortably clear 3×; shared CI runners get a
    // relaxed floor via OPM_SWEEP_MIN_SPEEDUP so noisy neighbors cannot
    // flake the build (factor count and Δ stay hard either way).
    let min_speedup = std::env::var("OPM_SWEEP_MIN_SPEEDUP")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(3.0);
    assert!(
        speedup >= min_speedup,
        "plan reuse must be ≥ {min_speedup}× faster than naive re-solving (got {speedup:.2}×)"
    );

    let path = std::env::var("OPM_SWEEP_JSON").unwrap_or_else(|_| "BENCH_sweep.json".into());
    let json = format!(
        "{{\n  \"schema\": \"opm-bench-sweep/v1\",\n  \
         \"note\": \"100-scenario load sweep on the Table II power grid (NA model, n = {n}, m = {m}): \
         independent Problem::solve per scenario vs one Simulation::plan + SimPlan::solve_batch. \
         Regenerate: cargo run --release -p opm-bench --bin sweep\",\n  \
         \"records\": [\n    \
         {{\"id\": \"sweep/naive_loop_100\", \"seconds\": {naive_s:e}, \"num_factorizations\": {naive_factorizations}}},\n    \
         {{\"id\": \"sweep/plan_batch_100\", \"seconds\": {plan_s:e}, \"num_factorizations\": {plan_factorizations}}},\n    \
         {{\"id\": \"sweep/speedup\", \"value\": {speedup:.3}}},\n    \
         {{\"id\": \"sweep/max_abs_delta\", \"value\": {worst:e}}}\n  ]\n}}\n",
        n = na.system.order(),
    );
    let mut f = std::fs::File::create(&path).expect("create BENCH_sweep.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_sweep.json");
    println!("wrote {path}");
}
