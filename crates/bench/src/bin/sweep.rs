//! **Plan-reuse sweep benchmark** — the `SimPlan` session economy on the
//! Table II power-grid circuit: 100 load-current scenarios solved (a)
//! naively, one `Problem::solve` each (re-validate, re-order, re-factor
//! per scenario), and (b) through one `Simulation::plan` whose single
//! factorization serves the whole batch in one interleaved pass.
//!
//! On top of the plan-reuse record, two hot-path records for the
//! symbolic/numeric split and the parallel batch runtime:
//!
//! - `refactor_vs_factor` — the Table II grid's MNA pencils over a
//!   64-shift step grid: fresh per-pencil factorization (pattern
//!   rebuild + RCM + pivoted LU, the pre-split hot path) vs one
//!   `PencilFamily` (pattern/ordering/symbolic analysis paid once,
//!   numeric-only refactorization per shift).
//! - `batch_threads_{1,4}` — the 100-scenario batch swept on 1 vs 4
//!   workers (`SimPlan::solve_batch_with_threads`), with the hard
//!   requirement that the results are bit-identical.
//! - `windowed_vs_whole` — a 100τ-horizon RC ladder: one whole-horizon
//!   plan at `W·m` columns vs `SimPlan::solve_windowed` over `W`
//!   windows of `m` columns, asserting the 1-symbolic + 1-numeric
//!   factorization invariant and ≤ 1e-9 agreement, plus a 512-window
//!   streaming record at per-window resident memory.
//! - `newton/*` — the diode half-wave rectifier solved through the
//!   windowed Newton path: iteration count, numeric refactorizations
//!   per time step, and the fresh-pivoted-factor fallback count (which
//!   must be exactly 0 — every Newton iteration reuses the one recorded
//!   symbolic analysis).
//!
//! Emits `BENCH_sweep.json` (path override: `OPM_SWEEP_JSON`) with all
//! timings, the factorization counts and the speedups.
//!
//! `cargo run --release -p opm-bench --bin sweep`

use std::io::Write as _;

use opm_bench::{fmt_time, timed_best};
use opm_circuits::grid::PowerGridSpec;
use opm_circuits::mna::{assemble_mna, Output};
use opm_circuits::na::assemble_na;
use opm_core::engine::{factor_pencil, PencilFamily};
use opm_core::json::Json;
use opm_core::{NewtonOptions, Problem, Simulation, SolveOptions, WindowedOptions};
use opm_waveform::{InputSet, Waveform};

const SCENARIOS: usize = 100;
const SHIFTS: usize = 64;

/// Speedup floor from the environment, with a default for quiet
/// machines; shared CI runners relax it without touching correctness.
fn min_speedup(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(default)
}

/// Elementwise `max |a − b|` over two equal-length blocks.
fn max_abs_delta(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn main() {
    // The Table II workload family at CI scale (same topology the table2
    // binary reproduces the paper with).
    let spec = PowerGridSpec {
        layers: 3,
        rows: 8,
        cols: 8,
        num_loads: 8,
        l_via: 2e-10,
        c_node: 2e-11,
        r_segment: 0.2,
        period: 4e-9,
        ..Default::default()
    };
    let ckt = spec.build();
    // Probe the bottom-layer corner nodes: keeps the result payload small
    // while still exercising output reconstruction.
    let probes: Vec<usize> = vec![1, spec.cols, spec.rows * spec.cols];
    let na = assemble_na(&ckt, &probes).unwrap();
    let t_end = 10e-9;
    let m = 256;
    let opts = SolveOptions::new().resolution(m);
    let num_loads = na.inputs.len();

    // 100 load patterns: every load current pulse gets a scenario-specific
    // amplitude and delay (a supply-noise corner study).
    let scenario = |s: usize| -> InputSet {
        InputSet::new(
            (0..num_loads)
                .map(|ch| {
                    let amp = 1e-3 * (1.0 + 0.05 * ((s * 7 + ch * 3) % 20) as f64);
                    let delay = 0.5e-9 + 0.02e-9 * ((s + ch) % 10) as f64;
                    Waveform::pulse(0.0, amp, delay, 0.2e-9, 1.0e-9, 0.2e-9, 4e-9)
                })
                .collect(),
        )
    };
    let sets: Vec<InputSet> = (0..SCENARIOS).map(scenario).collect();

    println!(
        "plan-reuse sweep — Table II grid {}×{}×{}: n = {} unknowns, m = {m} columns, {SCENARIOS} scenarios",
        spec.layers,
        spec.rows,
        spec.cols,
        na.system.order()
    );

    // (a) Naive: independent Problem::solve per scenario. Same rep count
    //     as the planned path below — a lopsided best-of-N would bias
    //     the min-estimator toward whichever side gets more chances.
    let (naive, naive_s) = timed_best(3, || {
        sets.iter()
            .map(|ws| {
                Problem::second_order(&na.system)
                    .waveforms(ws)
                    .horizon(t_end)
                    .solve(&opts)
                    .unwrap()
            })
            .collect::<Vec<_>>()
    });
    let naive_factorizations: usize = naive.iter().map(|r| r.num_factorizations).sum();

    // (b) Planned: factor once, sweep the batch. Pinned to one worker so
    //     sweep/speedup isolates the *reuse* economy — the threading win
    //     is measured separately by the batch_threads records below.
    let sim = Simulation::from_second_order(na.system.clone()).horizon(t_end);
    let ((plan, planned), plan_s) = timed_best(3, || {
        let plan = sim.plan(&opts).unwrap();
        let runs = plan.solve_batch_with_threads(&sets, 1).unwrap();
        (plan, runs)
    });
    let plan_factorizations = plan.num_factorizations();

    // The batch must reproduce the naive loop to roundoff.
    let mut worst = 0.0f64;
    for (a, b) in naive.iter().zip(&planned) {
        for (ra, rb) in a.outputs.iter().zip(&b.outputs) {
            for (va, vb) in ra.iter().zip(rb) {
                worst = worst.max((va - vb).abs());
            }
        }
    }
    let speedup = naive_s / plan_s;

    println!(
        "naive loop : {}  ({naive_factorizations} factorizations)",
        fmt_time(naive_s)
    );
    println!(
        "plan batch : {}  ({plan_factorizations} factorization)",
        fmt_time(plan_s)
    );
    println!("speedup    : {speedup:.2}×   max |Δ| = {worst:.2e}");

    assert_eq!(
        plan_factorizations, 1,
        "the plan must factor the pencil exactly once"
    );
    assert!(
        worst < 1e-12,
        "batch and naive results must agree to 1e-12 (got {worst:.2e})"
    );
    // Quiet machines comfortably clear 3×; shared CI runners get a
    // relaxed floor via OPM_SWEEP_MIN_SPEEDUP so noisy neighbors cannot
    // flake the build (factor count and Δ stay hard either way).
    let plan_floor = min_speedup("OPM_SWEEP_MIN_SPEEDUP", 3.0);
    assert!(
        speedup >= plan_floor,
        "plan reuse must be ≥ {plan_floor}× faster than naive re-solving (got {speedup:.2}×)"
    );

    // -- refactor_vs_factor: symbolic/numeric split on the grid's MNA
    //    pencils over a 64-shift step grid ----------------------------------
    let mna = assemble_mna(&ckt, &[Output::NodeVoltage(1)]).unwrap();
    let (e, a) = (mna.system.e(), mna.system.a());
    // Distinct shifts σ_j = 2/h_j over a geometric decade of steps —
    // exactly the pencil family a fractional step-grid plan factors.
    let sigmas: Vec<f64> = (0..SHIFTS)
        .map(|j| 2.0 / (1e-10 * 1.05f64.powi(j as i32)))
        .collect();
    // (a) Fresh path: pattern rebuild + RCM + pivoted LU per pencil (the
    //     pre-split hot path, kept verbatim as the baseline).
    let (fresh_lus, fresh_s) = timed_best(3, || {
        sigmas
            .iter()
            .map(|&s| factor_pencil(&e.lin_comb(s, -1.0, a)).unwrap())
            .collect::<Vec<_>>()
    });
    // (b) Family path. The first pass establishes the symbolic analysis
    //     (1 symbolic + 63 numeric — asserted below); the *timed* passes
    //     then refactor all 64 shifts numerically against it, so the
    //     refactor record measures pure numeric-only work on a single
    //     worker (the algorithmic split, not parallelism).
    let mut family = PencilFamily::new(e, a);
    let family_lus = family.factor_all(&sigmas, 1).unwrap();
    let fam_profile = family.profile();
    let (_, refac_s) = timed_best(3, || family.factor_all(&sigmas, 1).unwrap());
    let refac_speedup = fresh_s / refac_s;
    let nn = mna.system.order();
    let probe: Vec<f64> = (0..nn).map(|i| ((i * 7 % 23) as f64) - 11.0).collect();
    let mut refac_delta = 0.0f64;
    let mut scale = 0.0f64;
    for (lf, lr) in fresh_lus.iter().zip(&family_lus) {
        let xf = lf.solve(&probe);
        let xr = lr.solve(&probe);
        for (va, vb) in xf.iter().zip(&xr) {
            refac_delta = refac_delta.max((va - vb).abs());
            scale = scale.max(va.abs());
        }
    }
    println!(
        "refactor   : fresh {} vs numeric {}  ({:.2}×, {} symbolic + {} numeric, rel Δ = {:.2e})",
        fmt_time(fresh_s),
        fmt_time(refac_s),
        refac_speedup,
        fam_profile.num_symbolic,
        fam_profile.num_numeric,
        refac_delta / scale
    );
    assert_eq!(
        (fam_profile.num_symbolic, fam_profile.num_numeric),
        (1, SHIFTS - 1),
        "the family must analyze once and refactor the rest"
    );
    assert!(
        refac_delta <= 1e-9 * scale,
        "refactored and fresh factors must solve identically (rel Δ = {:.2e})",
        refac_delta / scale
    );
    let refac_floor = min_speedup("OPM_REFACTOR_MIN_SPEEDUP", 2.0);
    assert!(
        refac_speedup >= refac_floor,
        "numeric refactorization must be ≥ {refac_floor}× faster than fresh \
         factorization (got {refac_speedup:.2}×)"
    );

    // -- batch_threads_{1,4}: the parallel batch runtime -------------------
    let (t1_runs, t1_s) = timed_best(3, || plan.solve_batch_with_threads(&sets, 1).unwrap());
    let (t4_runs, t4_s) = timed_best(3, || plan.solve_batch_with_threads(&sets, 4).unwrap());
    let mut thread_delta = 0.0f64;
    for (ra, rb) in t1_runs.iter().zip(&t4_runs) {
        for (oa, ob) in ra.outputs.iter().zip(&rb.outputs) {
            for (va, vb) in oa.iter().zip(ob) {
                thread_delta = thread_delta.max((va - vb).abs());
            }
        }
    }
    let thread_speedup = t1_s / t4_s;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "threads    : 1 worker {} vs 4 workers {}  ({thread_speedup:.2}× on {cores} core(s), max |Δ| = {thread_delta:.2e})",
        fmt_time(t1_s),
        fmt_time(t4_s),
    );
    assert_eq!(
        thread_delta, 0.0,
        "the parallel batch must be bit-identical to the serial path"
    );
    // The thread-scaling floor depends on the hardware this runs on: a
    // single-core box cannot speed anything up, so the default floor
    // only bites where parallel wins are physically possible.
    let thread_floor = min_speedup(
        "OPM_THREADS_MIN_SPEEDUP",
        if cores >= 4 {
            1.5
        } else if cores >= 2 {
            1.05
        } else {
            0.0
        },
    );
    assert!(
        thread_speedup >= thread_floor,
        "4 workers must be ≥ {thread_floor}× faster than 1 on this {cores}-core \
         machine (got {thread_speedup:.2}×)"
    );
    // On a single core a "speedup" ratio is pure scheduler noise: the
    // JSON records `null` (plus `cores_available` so the reader can see
    // why) instead of publishing a sub-1.0 ratio as if it were a
    // regression. Multi-core machines record the real ratio.
    let thread_speedup_json = if cores >= 2 {
        Json::Num(thread_speedup)
    } else {
        Json::Null
    };

    // -- scaling/workers_{1,2,4}: the multi-core scaling curve -------------
    // Reuses the 1- and 4-worker batch timings above and adds the 2-worker
    // point; per-worker lane chunks are panel-aligned (56/44 lanes at
    // width 2), so the 2-worker ceiling on this batch is 100/56 ≈ 1.79×.
    // The in-binary floor (default 1.5× at ≥ 2 cores; OPM_SCALING_MIN_SPEEDUP
    // overrides) is the nightly ≥2-core scaling gate.
    let (t2_runs, t2_s) = timed_best(3, || plan.solve_batch_with_threads(&sets, 2).unwrap());
    let mut scaling_delta = 0.0f64;
    for (ra, rb) in t1_runs.iter().zip(&t2_runs) {
        for (oa, ob) in ra.outputs.iter().zip(&rb.outputs) {
            for (va, vb) in oa.iter().zip(ob) {
                scaling_delta = scaling_delta.max((va - vb).abs());
            }
        }
    }
    assert_eq!(
        scaling_delta, 0.0,
        "the 2-worker batch must be bit-identical to the serial path"
    );
    let (scale2, scale4) = (t1_s / t2_s, t1_s / t4_s);
    println!(
        "scaling    : 1w {} | 2w {} ({scale2:.2}×) | 4w {} ({scale4:.2}×) on {cores} core(s)",
        fmt_time(t1_s),
        fmt_time(t2_s),
        fmt_time(t4_s),
    );
    let (scale2_json, scale4_json) = if cores >= 2 {
        (Json::Num(scale2), Json::Num(scale4))
    } else {
        (Json::Null, Json::Null)
    };
    if cores >= 2 {
        let scaling_floor = min_speedup("OPM_SCALING_MIN_SPEEDUP", 1.5);
        assert!(
            scale2 >= scaling_floor,
            "2 workers must be ≥ {scaling_floor}× faster than 1 on this {cores}-core \
             machine (got {scale2:.2}×)"
        );
    }

    // -- kernel/*: single-thread panel vs scalar microkernels --------------
    // In-process best-of-N A/B of every lane-elementwise hot kernel
    // against its public scalar reference, on the Table II grid pencil at
    // the plan batch's lane count (the `sweep/plan_batch_100` hot path).
    // Bit-identity (max |Δ| == 0, not a tolerance) is a hard gate; the
    // triangular-solve speedup carries the acceptance floor (default
    // 1.5×, OPM_KERNEL_MIN_SPEEDUP overrides), skipped when
    // OPM_NO_PANEL=1 routes both sides to the same scalar code.
    let klanes = SCENARIOS;
    let kpencil = e.lin_comb(sigmas[0], -1.0, a);
    let klu = factor_pencil(&kpencil).unwrap();
    let kb: Vec<f64> = (0..nn * klanes)
        .map(|i| ((i * 7 % 101) as f64 * 0.13).sin())
        .collect();
    let mut kxs = vec![0.0; nn * klanes];
    let mut kxp = vec![0.0; nn * klanes];
    let (_, ksolve_scalar_s) =
        timed_best(40, || klu.solve_block_into_scalar(&kb, &mut kxs, klanes));
    let (_, ksolve_panel_s) = timed_best(40, || klu.solve_block_into(&kb, &mut kxp, klanes));
    let mut kdelta = max_abs_delta(&kxs, &kxp);
    let mut kys = vec![0.0; nn * klanes];
    let mut kyp = vec![0.0; nn * klanes];
    let (_, kspmm_scalar_s) =
        timed_best(100, || kpencil.mul_block_into_scalar(&kb, &mut kys, klanes));
    let (_, kspmm_panel_s) = timed_best(100, || kpencil.mul_block_into(&kb, &mut kyp, klanes));
    kdelta = kdelta.max(max_abs_delta(&kys, &kyp));
    let kdepth = 96;
    let kweights: Vec<f64> = (0..=kdepth + 1)
        .map(|k| (-0.85f64).powi(k as i32))
        .collect();
    let ktail: Vec<Vec<f64>> = (0..kdepth)
        .map(|d| {
            (0..nn * klanes)
                .map(|i| ((d * 31 + i) as f64 * 0.01).sin())
                .collect()
        })
        .collect();
    let mut khs = kb.clone();
    let mut khp = kb.clone();
    let (_, khist_scalar_s) = timed_best(12, || {
        opm_fracnum::history::history_convolution_into_scalar(&kweights, 0, &ktail, &mut khs)
    });
    let (_, khist_panel_s) = timed_best(12, || {
        opm_fracnum::history::history_convolution_into(&kweights, 0, &ktail, &mut khp)
    });
    kdelta = kdelta.max(max_abs_delta(&khs, &khp));
    let ksolve_speedup = ksolve_scalar_s / ksolve_panel_s;
    let kspmm_speedup = kspmm_scalar_s / kspmm_panel_s;
    let khist_speedup = khist_scalar_s / khist_panel_s;
    let panels_enabled = opm_linalg::panel::lane_panels_enabled();
    println!(
        "kernels    : solve {} / {} ({ksolve_speedup:.2}×) | spmm {} / {} ({kspmm_speedup:.2}×) | \
         history {} / {} ({khist_speedup:.2}×)  scalar/panel, max |Δ| = {kdelta:.2e}",
        fmt_time(ksolve_scalar_s),
        fmt_time(ksolve_panel_s),
        fmt_time(kspmm_scalar_s),
        fmt_time(kspmm_panel_s),
        fmt_time(khist_scalar_s),
        fmt_time(khist_panel_s),
    );
    assert_eq!(
        kdelta, 0.0,
        "panel kernels must be bit-identical to their scalar references \
         (max |Δ| = {kdelta:e})"
    );
    if panels_enabled {
        let kernel_floor = min_speedup("OPM_KERNEL_MIN_SPEEDUP", 1.5);
        assert!(
            ksolve_speedup >= kernel_floor,
            "the panel block triangular solve must be ≥ {kernel_floor}× the scalar \
             reference at {klanes} lanes (got {ksolve_speedup:.2}×)"
        );
    }

    // -- windowed_vs_whole: long-horizon windowed solving ------------------
    // A 100τ horizon on an RC ladder: one whole-horizon plan at W·m
    // columns vs W windows of m columns through ONE window
    // refactorization (the PR's long-horizon invariant).
    let (wm, ww) = (256, 64);
    let lad = opm_circuits::ladder::rc_ladder(8, 1e3, 1e-9, Waveform::step(0.0, 1.0));
    let lmodel = assemble_mna(&lad, &[Output::NodeVoltage(9)]).unwrap();
    let lt_end = 1e-4; // stage τ = 1 µs
    let lsim = Simulation::from_system(lmodel.system.clone()).horizon(lt_end);
    // Both sides time pure solves at equal column count: plans are built
    // (and the window kernel factored, by a warm-up call) outside the
    // timed closures.
    let whole_plan = lsim.plan(&SolveOptions::new().resolution(wm * ww)).unwrap();
    let (whole_run, whole_s) = timed_best(3, || whole_plan.solve(&lmodel.inputs).unwrap());
    let wplan = lsim.plan(&SolveOptions::new().resolution(wm)).unwrap();
    wplan.solve_windowed(&lmodel.inputs, ww).unwrap(); // warm the window kernel
    let wprofile = wplan.factor_profile();
    let (win_run, win_s) = timed_best(3, || wplan.solve_windowed(&lmodel.inputs, ww).unwrap());
    let mut win_delta = 0.0f64;
    for (ra, rb) in whole_run.outputs.iter().zip(&win_run.outputs) {
        for (va, vb) in ra.iter().zip(rb) {
            win_delta = win_delta.max((va - vb).abs());
        }
    }
    let win_speedup = whole_s / win_s;
    println!(
        "windowed   : whole {} ({} cols) vs {ww} windows {}  ({win_speedup:.2}×, {} symbolic + {} numeric, max |Δ| = {win_delta:.2e})",
        fmt_time(whole_s),
        wm * ww,
        fmt_time(win_s),
        wprofile.num_symbolic,
        wprofile.num_numeric,
    );
    assert_eq!(
        (wprofile.num_symbolic, wprofile.num_numeric),
        (1, 1),
        "W windows must cost exactly 1 symbolic + 1 numeric factorization"
    );
    assert!(
        win_delta <= 1e-9,
        "windowed and whole-horizon solutions must agree to 1e-9 (got {win_delta:.2e})"
    );
    // Streaming far past the whole-horizon regime: 512 windows
    // (131072 columns) at per-window resident memory.
    let w_long = 512;
    let (long_windows, long_s) = timed_best(1, || {
        let mut count = 0usize;
        wplan
            .solve_streaming(&lmodel.inputs, w_long, |_| count += 1)
            .unwrap();
        count
    });
    println!(
        "streaming  : {long_windows} windows ({} cols) in {}  (per-window resident memory)",
        wm * w_long,
        fmt_time(long_s)
    );
    assert_eq!(long_windows, w_long);

    // -- windowed_fractional: Caputo/GL history carried across windows -----
    // An RC + constant-phase-element netlist (fractional MNA, α = ½)
    // driven by a tiny early bump plus a late main step: the windowed
    // solve carries the fractional memory of every previous window, so
    // full history matches the whole-horizon plan to roundoff, and the
    // short-memory truncation (which drops the quiescent early history)
    // stays within its documented bound.
    let (fm, fw) = (64, 16);
    let ft_end = 1e-6;
    let fsim = Simulation::from_netlist(
        "V1 in 0 DC 1\nR1 in top 100\nP1 top 0 CPE 1u 0.5\n.end",
        &["top"],
    )
    .unwrap()
    .horizon(ft_end);
    let t_on = 0.55 * ft_end;
    let fstim = InputSet::new(vec![Waveform::pwl(vec![
        (0.0, 0.0),
        (0.05 * ft_end, 0.0),
        (0.08 * ft_end, 1e-5),
        (0.12 * ft_end, 1e-5),
        (0.15 * ft_end, 0.0),
        (t_on, 0.0),
        (t_on + 0.02 * ft_end, 1.0),
        (ft_end, 1.0),
    ])
    .unwrap()]);
    let fwhole_plan = fsim.plan(&SolveOptions::new().resolution(fm * fw)).unwrap();
    let (fwhole_run, fwhole_s) = timed_best(3, || fwhole_plan.solve(&fstim).unwrap());
    let fplan = fsim.plan(&SolveOptions::new().resolution(fm)).unwrap();
    fplan.solve_windowed(&fstim, fw).unwrap(); // warm the window kernel
    let fprofile = fplan.factor_profile();
    let (ffull_run, ffull_s) = timed_best(3, || fplan.solve_windowed(&fstim, fw).unwrap());
    let mut ffull_delta = 0.0f64;
    for (ra, rb) in fwhole_run.outputs.iter().zip(&ffull_run.outputs) {
        for (va, vb) in ra.iter().zip(rb) {
            ffull_delta = ffull_delta.max((va - vb).abs());
        }
    }
    let ffull_speedup = fwhole_s / ffull_s;
    // Short memory: an 8-window (512-column) tail covering the active
    // late history, dropping the quiescent early windows.
    let fopts = WindowedOptions::new(fw).history_len(8 * fm);
    let (ftrunc_run, ftrunc_s) =
        timed_best(3, || fplan.solve_windowed_opts(&fstim, &fopts).unwrap());
    let mut ftrunc_delta = 0.0f64;
    for (ra, rb) in fwhole_run.outputs.iter().zip(&ftrunc_run.outputs) {
        for (va, vb) in ra.iter().zip(rb) {
            ftrunc_delta = ftrunc_delta.max((va - vb).abs());
        }
    }
    println!(
        "frac wins  : whole {} ({} cols) vs {fw} windows {} ({ffull_speedup:.2}×, {} symbolic + {} numeric, max |Δ| = {ffull_delta:.2e}); truncated tail {} (max |Δ| = {ftrunc_delta:.2e})",
        fmt_time(fwhole_s),
        fm * fw,
        fmt_time(ffull_s),
        fprofile.num_symbolic,
        fprofile.num_numeric,
        fmt_time(ftrunc_s),
    );
    assert_eq!(
        (fprofile.num_symbolic, fprofile.num_numeric),
        (1, 1),
        "W fractional windows must cost exactly 1 symbolic + 1 numeric factorization"
    );
    assert!(
        ffull_delta <= 1e-9,
        "full-history windowed fractional must match whole-horizon to 1e-9 (got {ffull_delta:.2e})"
    );
    assert!(
        ftrunc_delta <= 1e-6,
        "truncated-history windowed fractional must stay within 1e-6 (got {ftrunc_delta:.2e})"
    );

    // Nightly-only long-horizon fractional run (OPM_SWEEP_LONG=1): a
    // 100-window horizon that is deliberately too slow for per-PR CI.
    let long_frac = if std::env::var("OPM_SWEEP_LONG").is_ok_and(|v| v == "1") {
        let wlong = 100;
        let lsim = Simulation::from_netlist(
            "V1 in 0 DC 1\nR1 in top 100\nP1 top 0 CPE 1u 0.5\n.end",
            &["top"],
        )
        .unwrap()
        .horizon(100.0 * ft_end);
        let lplan = lsim.plan(&SolveOptions::new().resolution(fm)).unwrap();
        let lopts = WindowedOptions::new(wlong).history_len(8 * fm);
        let (lrun, lsec) = timed_best(1, || {
            lplan
                .solve_windowed_opts(lsim.inputs().unwrap(), &lopts)
                .unwrap()
        });
        println!(
            "frac long  : {wlong} windows ({} cols) in {} (truncated 8-window tail)",
            fm * wlong,
            fmt_time(lsec)
        );
        assert!(lrun.output_row(0).iter().all(|v| v.is_finite()));
        Some((
            format!("windowed_fractional/long_{wlong}x{fm}"),
            lsec,
            wlong,
            fm * wlong,
        ))
    } else {
        None
    };

    // -- newton: nonlinear rectifier on the Newton-over-refactor path ------
    // The diode half-wave rectifier from the pipeline acceptance tests,
    // solved over 8 windows. Every Newton iteration re-stamps the diode
    // companion model and refactors *numerically* against the single
    // recorded symbolic analysis; falling back to a fresh pivoted factor
    // is a pattern-degradation escape hatch that must never fire here.
    let (nm, nw) = (256, 8);
    let nsim = Simulation::from_netlist(
        "V1 in 0 SIN(0 1 1)\nR1 in a 0.1\nD1 a out 1e-14\nR2 out 0 10\nC1 out 0 0.2\n.end",
        &["out"],
    )
    .unwrap()
    .horizon(2.0);
    let nplan = nsim.plan(&SolveOptions::new().resolution(nm)).unwrap();
    let nstim = nsim.inputs().unwrap();
    let nopts = NewtonOptions::new();
    // One accounting solve on the fresh plan: the profile after it holds
    // the per-solve iteration/refactorization counts undiluted.
    let nrun = nplan.solve_newton_windowed(nstim, nw, &nopts).unwrap();
    let nprofile = nplan.factor_profile();
    assert!(nrun.output_row(0).iter().all(|v| v.is_finite()));
    assert_eq!(
        nprofile.num_symbolic, 1,
        "a W-window Newton solve must cost exactly 1 symbolic factorization"
    );
    assert_eq!(
        nprofile.newton_fresh_fallbacks, 0,
        "the rectifier must never abandon the recorded symbolic pattern"
    );
    assert_eq!(
        nprofile.newton_refactors, nprofile.newton_iters,
        "every Newton iteration is exactly one numeric refactorization"
    );
    let (_, newton_s) = timed_best(3, || {
        nplan.solve_newton_windowed(nstim, nw, &nopts).unwrap()
    });
    let newton_refactors_per_step = nprofile.newton_refactors as f64 / (nm * nw) as f64;
    println!(
        "newton     : rectifier {nw}×{nm} in {} — {} iters ({newton_refactors_per_step:.2} numeric refactors/step, {} symbolic, {} fresh fallbacks)",
        fmt_time(newton_s),
        nprofile.newton_iters,
        nprofile.num_symbolic,
        nprofile.newton_fresh_fallbacks,
    );

    let path = std::env::var("OPM_SWEEP_JSON").unwrap_or_else(|_| "BENCH_sweep.json".into());
    let note = format!(
        "Table II power grid (NA model, n = {n}, m = {m}). sweep/*: 100-scenario load sweep, \
         independent Problem::solve per scenario vs one Simulation::plan + SimPlan::solve_batch. \
         refactor/*: {SHIFTS} step-grid pencils of the grid's MNA form (n = {nn}), fresh per-pencil \
         factorization vs pure numeric refactorization against a prerecorded PencilFamily analysis. \
         batch_threads_*/scaling/*: the same 100-scenario batch on 1/2/4 workers ({cores} core(s) \
         available; bit-identical results enforced; speedup ratios are null on single-core machines \
         where they would be scheduler noise). kernel/*: best-of-N panel-vs-scalar A/B of the \
         lane-elementwise hot kernels (block triangular solve, SpMM, history convolution) on the \
         grid pencil at the plan batch's {SCENARIOS}-lane width; panel_vs_scalar_max_abs_delta == 0 \
         is a hard bit-identity gate. windowed/*: 100-tau RC-ladder horizon, whole-horizon plan \
         vs SimPlan::solve_windowed over {ww} windows (1 symbolic + 1 numeric factorization, \
         <= 1e-9 delta asserted) plus a {w_long}-window streaming run at per-window memory. \
         windowed_fractional/*: RC+CPE netlist (fractional MNA, alpha = 0.5), whole-horizon vs \
         {fw} windows with carried Caputo/GL history (full history <= 1e-9, 1 symbolic + 1 numeric) \
         and an 8-window short-memory tail (<= 1e-6 on quiescent-early-history stimulus). \
         newton/*: diode half-wave rectifier through SimPlan::solve_newton_windowed over 8 windows \
         of 256 columns — total Newton iterations (ceiling-classed: a regenerated run may not need \
         more), numeric refactorizations per time step (ceiling-classed), and the fresh-pivoted- \
         factor fallback count, hard-gated at exactly 0 (every iteration must reuse the single \
         recorded symbolic analysis). \
         CI gate: ci/compare_bench.py diffs a regenerated run against this committed file. \
         Regenerate: cargo run --release -p opm-bench --bin sweep",
        n = na.system.order(),
    );
    let int = |v: usize| Json::Int(v as i64);
    let rec = |id: String, fields: Vec<(&str, Json)>| {
        let mut entries = vec![("id".to_string(), Json::str(id))];
        entries.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        Json::Obj(entries)
    };
    let mut records = vec![
        rec(
            "sweep/naive_loop_100".into(),
            vec![
                ("seconds", Json::Num(naive_s)),
                ("num_factorizations", int(naive_factorizations)),
            ],
        ),
        rec(
            "sweep/plan_batch_100".into(),
            vec![
                ("seconds", Json::Num(plan_s)),
                ("num_factorizations", int(plan_factorizations)),
            ],
        ),
        rec("sweep/speedup".into(), vec![("value", Json::Num(speedup))]),
        rec(
            "sweep/max_abs_delta".into(),
            vec![("value", Json::Num(worst))],
        ),
        rec(
            format!("refactor/fresh_factor_{SHIFTS}"),
            vec![
                ("seconds", Json::Num(fresh_s)),
                ("num_symbolic", int(SHIFTS)),
                ("num_numeric", int(0)),
            ],
        ),
        rec(
            format!("refactor/numeric_refactor_{SHIFTS}"),
            vec![
                ("seconds", Json::Num(refac_s)),
                ("num_symbolic", int(0)),
                ("num_numeric", int(SHIFTS)),
            ],
        ),
        rec(
            "refactor_vs_factor".into(),
            vec![("value", Json::Num(refac_speedup))],
        ),
        rec(
            "batch_threads_1".into(),
            vec![("seconds", Json::Num(t1_s)), ("threads", int(1))],
        ),
        rec(
            "batch_threads_4".into(),
            vec![
                ("seconds", Json::Num(t4_s)),
                ("threads", int(4)),
                ("cores_available", int(cores)),
            ],
        ),
        rec(
            "batch_threads_speedup".into(),
            vec![
                ("value", thread_speedup_json),
                ("cores_available", int(cores)),
            ],
        ),
        rec(
            "batch_threads_max_abs_delta".into(),
            vec![("value", Json::Num(thread_delta))],
        ),
        rec(
            "scaling/workers_1".into(),
            vec![
                ("seconds", Json::Num(t1_s)),
                ("workers", int(1)),
                ("cores_available", int(cores)),
            ],
        ),
        rec(
            "scaling/workers_2".into(),
            vec![
                ("seconds", Json::Num(t2_s)),
                ("workers", int(2)),
                ("cores_available", int(cores)),
            ],
        ),
        rec(
            "scaling/workers_4".into(),
            vec![
                ("seconds", Json::Num(t4_s)),
                ("workers", int(4)),
                ("cores_available", int(cores)),
            ],
        ),
        rec(
            "scaling/speedup_2".into(),
            vec![("value", scale2_json), ("cores_available", int(cores))],
        ),
        rec(
            "scaling/speedup_4".into(),
            vec![("value", scale4_json), ("cores_available", int(cores))],
        ),
        rec(
            "kernel/solve_block_scalar".into(),
            vec![
                ("seconds", Json::Num(ksolve_scalar_s)),
                ("lanes", int(klanes)),
            ],
        ),
        rec(
            "kernel/solve_block_panel".into(),
            vec![
                ("seconds", Json::Num(ksolve_panel_s)),
                ("lanes", int(klanes)),
            ],
        ),
        rec(
            "kernel/solve_block_speedup".into(),
            vec![
                ("value", Json::Num(ksolve_speedup)),
                ("panels_enabled", Json::Bool(panels_enabled)),
            ],
        ),
        rec(
            "kernel/spmm_scalar".into(),
            vec![
                ("seconds", Json::Num(kspmm_scalar_s)),
                ("lanes", int(klanes)),
            ],
        ),
        rec(
            "kernel/spmm_panel".into(),
            vec![
                ("seconds", Json::Num(kspmm_panel_s)),
                ("lanes", int(klanes)),
            ],
        ),
        rec(
            "kernel/spmm_speedup".into(),
            vec![
                ("value", Json::Num(kspmm_speedup)),
                ("panels_enabled", Json::Bool(panels_enabled)),
            ],
        ),
        rec(
            "kernel/history_scalar".into(),
            vec![
                ("seconds", Json::Num(khist_scalar_s)),
                ("lanes", int(klanes)),
                ("depth", int(kdepth)),
            ],
        ),
        rec(
            "kernel/history_panel".into(),
            vec![
                ("seconds", Json::Num(khist_panel_s)),
                ("lanes", int(klanes)),
                ("depth", int(kdepth)),
            ],
        ),
        rec(
            "kernel/history_speedup".into(),
            vec![
                ("value", Json::Num(khist_speedup)),
                ("panels_enabled", Json::Bool(panels_enabled)),
            ],
        ),
        rec(
            "kernel/panel_vs_scalar_max_abs_delta".into(),
            vec![("value", Json::Num(kdelta))],
        ),
        rec(
            "windowed/whole_horizon".into(),
            vec![("seconds", Json::Num(whole_s)), ("columns", int(wm * ww))],
        ),
        rec(
            format!("windowed/windows_{ww}x{wm}"),
            vec![
                ("seconds", Json::Num(win_s)),
                ("windows", int(ww)),
                ("num_symbolic", int(wprofile.num_symbolic)),
                ("num_numeric", int(wprofile.num_numeric)),
            ],
        ),
        rec(
            "windowed_vs_whole".into(),
            vec![("value", Json::Num(win_speedup))],
        ),
        rec(
            "windowed_max_abs_delta".into(),
            vec![("value", Json::Num(win_delta))],
        ),
        rec(
            format!("windowed/stream_{w_long}x{wm}"),
            vec![
                ("seconds", Json::Num(long_s)),
                ("windows", int(w_long)),
                ("columns", int(wm * w_long)),
            ],
        ),
        rec(
            "windowed_fractional/whole_horizon".into(),
            vec![("seconds", Json::Num(fwhole_s)), ("columns", int(fm * fw))],
        ),
        rec(
            format!("windowed_fractional/windows_{fw}x{fm}"),
            vec![
                ("seconds", Json::Num(ffull_s)),
                ("windows", int(fw)),
                ("num_symbolic", int(fprofile.num_symbolic)),
                ("num_numeric", int(fprofile.num_numeric)),
            ],
        ),
        rec(
            "windowed_fractional_vs_whole".into(),
            vec![("value", Json::Num(ffull_speedup))],
        ),
        rec(
            "windowed_fractional_max_abs_delta".into(),
            vec![("value", Json::Num(ffull_delta))],
        ),
        rec(
            format!("windowed_fractional/truncated_hist{}", 8 * fm),
            vec![
                ("seconds", Json::Num(ftrunc_s)),
                ("windows", int(fw)),
                ("history_len", int(8 * fm)),
            ],
        ),
        rec(
            "windowed_fractional_truncated_max_abs_delta".into(),
            vec![("value", Json::Num(ftrunc_delta))],
        ),
        rec(
            "newton/rectifier_iters".into(),
            vec![
                ("value", int(nprofile.newton_iters)),
                ("class", Json::str("ceiling")),
                ("seconds", Json::Num(newton_s)),
                ("windows", int(nw)),
                ("columns", int(nm * nw)),
                ("num_symbolic", int(nprofile.num_symbolic)),
            ],
        ),
        rec(
            "newton/refactors_per_step".into(),
            vec![
                ("value", Json::Num(newton_refactors_per_step)),
                ("class", Json::str("ceiling")),
                ("columns", int(nm * nw)),
            ],
        ),
        rec(
            "newton/fresh_factor_fallbacks".into(),
            vec![("value", int(nprofile.newton_fresh_fallbacks))],
        ),
    ];
    if let Some((id, lsec, lwindows, lcols)) = long_frac {
        records.push(rec(
            id,
            vec![
                ("seconds", Json::Num(lsec)),
                ("windows", int(lwindows)),
                ("columns", int(lcols)),
            ],
        ));
    }
    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("opm-bench-sweep/v6")),
        ("note".into(), Json::str(note)),
        ("records".into(), Json::Arr(records)),
    ]);
    let mut f = std::fs::File::create(&path).expect("create BENCH_sweep.json");
    f.write_all(format!("{doc}\n").as_bytes())
        .expect("write BENCH_sweep.json");
    println!("wrote {path}");
}
