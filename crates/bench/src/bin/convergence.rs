//! **Experiment E4** — accuracy orders against analytic oracles.
//!
//! 1. Linear: OPM / trapezoidal / Gear-2 / backward Euler on the RC step
//!    response vs the exact exponential.
//! 2. Fractional: OPM vs Grünwald–Letnikov on the half-order relaxation
//!    vs the Mittag-Leffler solution.
//!
//! `cargo run --release -p opm-bench --bin convergence`

use opm_bench::{row, rule};
use opm_core::{Problem, SolveOptions};
use opm_fracnum::mittag_leffler::ml_kernel;
use opm_sparse::{CooMatrix, CsrMatrix};
use opm_system::{DescriptorSystem, FractionalSystem};
use opm_transient::{backward_euler, bdf, gl_fractional, trapezoidal};
use opm_waveform::{InputSet, Waveform};

fn scalar(lambda: f64) -> DescriptorSystem {
    let mut a = CooMatrix::new(1, 1);
    a.push(0, 0, lambda);
    let mut b = CooMatrix::new(1, 1);
    b.push(0, 0, 1.0);
    DescriptorSystem::new(CsrMatrix::identity(1), a.to_csr(), b.to_csr(), None).unwrap()
}

fn main() {
    println!("E4a — linear convergence: ẋ = −x + 1, error at T = 1 vs m\n");
    let sys = scalar(-1.0);
    let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
    let exact_end = 1.0 - (-1.0f64).exp();

    let widths = [8usize, 12, 12, 12, 12];
    row(
        &[
            "m".into(),
            "OPM".into(),
            "trap".into(),
            "Gear-2".into(),
            "b-Euler".into(),
        ],
        &widths,
    );
    rule(&widths);
    let mut last: Option<[f64; 4]> = None;
    let mut rates = [0.0f64; 4];
    for &m in &[32usize, 64, 128, 256, 512] {
        let u = inputs.bpf_matrix(m, 1.0);
        let opm = Problem::linear(&sys)
            .coeffs(&u)
            .horizon(1.0)
            .solve(&SolveOptions::new())
            .unwrap();
        // Endpoint recovery for a like-for-like endpoint comparison.
        let opm_end = opm.endpoint_series(0, 0.0)[m - 1];
        let tr = trapezoidal(&sys, &inputs, 1.0, m, &[0.0], false)
            .unwrap()
            .outputs[0][m - 1];
        let ge = bdf(&sys, &inputs, 1.0, m, 2, &[0.0], false)
            .unwrap()
            .outputs[0][m - 1];
        let be = backward_euler(&sys, &inputs, 1.0, m, &[0.0], false)
            .unwrap()
            .outputs[0][m - 1];
        let errs = [
            (opm_end - exact_end).abs(),
            (tr - exact_end).abs(),
            (ge - exact_end).abs(),
            (be - exact_end).abs(),
        ];
        row(
            &[
                format!("{m}"),
                format!("{:.2e}", errs[0]),
                format!("{:.2e}", errs[1]),
                format!("{:.2e}", errs[2]),
                format!("{:.2e}", errs[3]),
            ],
            &widths,
        );
        if let Some(prev) = last {
            for k in 0..4 {
                rates[k] = (prev[k] / errs[k]).log2();
            }
        }
        last = Some(errs);
    }
    println!(
        "\nobserved orders (last refinement): OPM {:.2}, trap {:.2}, Gear-2 {:.2}, b-Euler {:.2}",
        rates[0], rates[1], rates[2], rates[3]
    );
    assert!(
        rates[0] > 1.7 && rates[1] > 1.7 && rates[2] > 1.7,
        "2nd-order cluster"
    );
    assert!(rates[3] > 0.7 && rates[3] < 1.4, "b-Euler is 1st order");

    println!(
        "\nE4b — fractional convergence: d^½x = −x + 1 vs Mittag-Leffler, RMS over (0.2, 2]\n"
    );
    let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
    let widths = [8usize, 14, 14];
    row(&["m".into(), "OPM".into(), "GL".into()], &widths);
    rule(&widths);
    for &m in &[64usize, 128, 256, 512] {
        let t_end = 2.0;
        let u = inputs.bpf_matrix(m, t_end);
        let opm = Problem::fractional(&fsys)
            .coeffs(&u)
            .horizon(t_end)
            .solve(&SolveOptions::new())
            .unwrap();
        let gl = gl_fractional(&fsys, &inputs, t_end, m, false).unwrap();
        let h = t_end / m as f64;
        let mut s_opm = 0.0;
        let mut s_gl = 0.0;
        let mut count = 0usize;
        for j in (m / 10)..m {
            let t_mid = (j as f64 + 0.5) * h;
            let t_end_pt = (j as f64 + 1.0) * h;
            let want_mid = ml_kernel(0.5, 1.5, -1.0, t_mid);
            let want_end = ml_kernel(0.5, 1.5, -1.0, t_end_pt);
            s_opm += (opm.state_coeff(0, j) - want_mid).powi(2);
            s_gl += (gl.outputs[0][j] - want_end).powi(2);
            count += 1;
        }
        row(
            &[
                format!("{m}"),
                format!("{:.3e}", (s_opm / count as f64).sqrt()),
                format!("{:.3e}", (s_gl / count as f64).sqrt()),
            ],
            &widths,
        );
    }
    println!("\nboth fractional methods converge; OPM needs no history-length tuning.");
}
