//! **Experiment E1** — the §III-B/§V claim: adaptive time steps give "a
//! more flexible simulation with lower runtime".
//!
//! A fast pulse hits an RC ladder, then a long quiet tail follows.
//! Fixed-step OPM must carry the pulse-resolving step across the whole
//! window; adaptive OPM relaxes the step after the transient and spends
//! far fewer columns at matched accuracy.
//!
//! `cargo run --release -p opm-bench --bin adaptive_demo`

use opm_bench::{fmt_time, row, rule, timed};
use opm_circuits::ladder::rc_ladder;
use opm_circuits::mna::{assemble_mna, Output};
use opm_core::adaptive::AdaptiveOpmOptions;
use opm_core::{Problem, SolveOptions};
use opm_waveform::Waveform;

fn main() {
    let drive = Waveform::pulse(0.0, 1.0, 10e-6, 50e-9, 2e-6, 50e-9, 0.0);
    let ckt = rc_ladder(8, 1e3, 0.1e-9, drive);
    let model = assemble_mna(&ckt, &[Output::NodeVoltage(9)]).unwrap();
    let t_end = 2e-3;
    let x0 = vec![0.0; model.system.order()];

    // Accuracy yardstick: a very fine uniform run.
    let m_ref = 1 << 18;
    let u_ref = model.inputs.bpf_matrix(m_ref, t_end);
    let reference = Problem::linear(&model.system)
        .coeffs(&u_ref)
        .horizon(t_end)
        .initial_state(&x0)
        .solve(&SolveOptions::new())
        .unwrap();
    let ref_avg = |a: f64, b: f64| -> f64 {
        let k0 = ((a / t_end) * m_ref as f64).round() as usize;
        let k1 = (((b / t_end) * m_ref as f64).round() as usize).min(m_ref);
        (k0..k1.max(k0 + 1))
            .map(|k| reference.output_row(0)[k.min(m_ref - 1)])
            .sum::<f64>()
            / (k1.max(k0 + 1) - k0) as f64
    };
    // Length-weighted L² error of the piecewise-constant reconstruction
    // over the whole window — the functional norm both grids share.
    let err_of = |bounds: &[f64], series: &[f64]| -> f64 {
        let mut s = 0.0;
        for (w, &v) in bounds.windows(2).zip(series) {
            let d = v - ref_avg(w[0], w[1]);
            s += d * d * (w[1] - w[0]);
        }
        (s / t_end).sqrt()
    };

    println!("E1 — adaptive vs fixed-step OPM on pulse-then-quiet RC ladder (T = 2 ms)\n");
    let widths = [22usize, 10, 12, 12, 14];
    row(
        &[
            "run".into(),
            "columns".into(),
            "factor.".into(),
            "runtime".into(),
            "L2 err (V)".into(),
        ],
        &widths,
    );
    rule(&widths);

    for &m in &[2048usize, 16384, 131072] {
        let u = model.inputs.bpf_matrix(m, t_end);
        let (r, secs) = timed(|| {
            Problem::linear(&model.system)
                .coeffs(&u)
                .horizon(t_end)
                .initial_state(&x0)
                .solve(&SolveOptions::new())
                .unwrap()
        });
        let err = err_of(&r.bounds, r.output_row(0));
        row(
            &[
                format!("fixed m = {m}"),
                format!("{m}"),
                "1".into(),
                fmt_time(secs),
                format!("{err:.2e}"),
            ],
            &widths,
        );
    }

    let (ada, secs) = timed(|| {
        Problem::linear(&model.system)
            .waveforms(&model.inputs)
            .horizon(t_end)
            .initial_state(&x0)
            .solve(&SolveOptions::new().adaptive(AdaptiveOpmOptions {
                tol: 1e-5,
                h0: 1e-7,
                h_min: 2e-8,
                h_max: 1e-4,
            }))
            .unwrap()
    });
    let err = err_of(&ada.bounds, ada.output_row(0));
    row(
        &[
            "adaptive (tol 1e-5)".into(),
            format!("{}", ada.num_intervals()),
            format!("{}", ada.num_factorizations),
            fmt_time(secs),
            format!("{err:.2e}"),
        ],
        &widths,
    );
    println!("\nthe adaptive run resolves the 50 ns edges only around the pulse and stretches");
    println!("to h_max in the tail — far fewer columns than an error-matched fixed grid.");
}
