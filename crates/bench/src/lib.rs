//! Shared plumbing for the experiment harness.
//!
//! The binaries in `src/bin/` regenerate the paper's tables and the
//! extension experiments listed in `DESIGN.md`; the benches in
//! `benches/` measure the same kernels under the statistics harness in
//! [`criterion`] (an offline drop-in subset of the crates.io crate of
//! the same name).

// No unsafe anywhere in this crate; the only unsafe in the workspace
// is the audited AVX panel dispatch in opm-{core,sparse,fracnum}.
#![forbid(unsafe_code)]

pub mod criterion;

use std::time::Instant;

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Times a closure `reps` times, returning the last result and the
/// **minimum** seconds — the standard noise-robust estimator on shared
/// or throttled machines, where the best observation is the closest to
/// the code's true cost.
///
/// # Panics
/// Panics when `reps == 0`.
pub fn timed_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(reps >= 1, "timed_best needs at least one repetition");
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (o, s) = timed(&mut f);
        if s < best {
            best = s;
        }
        out = o;
    }
    (out, best)
}

/// Formats seconds human-readably (µs/ms/s).
pub fn fmt_time(sec: f64) -> String {
    if sec < 1e-3 {
        format!("{:.2} µs", sec * 1e6)
    } else if sec < 1.0 {
        format!("{:.2} ms", sec * 1e3)
    } else {
        format!("{sec:.2} s")
    }
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a rule line matching the given widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Reads a scale factor from the environment (`OPM_SCALE`), defaulting to
/// 1 — the Table II harness uses it to grow the grid toward paper scale.
pub fn env_scale() -> usize {
    std::env::var("OPM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Appends one benchmark record to the NDJSON file named by the
/// `OPM_BENCH_JSON` environment variable (no-op when unset). The table
/// binaries and the [`criterion`] shim share this format; see the README
/// for how `BENCH_baseline.json` is assembled from it.
pub fn emit_json_record(id: &str, seconds: f64, err_db: Option<f64>) {
    use std::io::Write as _;
    let Ok(path) = std::env::var("OPM_BENCH_JSON") else {
        return;
    };
    let err = err_db.map_or("null".into(), |e| format!("{e:.3}"));
    let record = format!("{{\"id\":\"{id}\",\"seconds\":{seconds:e},\"err_db\":{err}}}");
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(file, "{record}");
    }
}
