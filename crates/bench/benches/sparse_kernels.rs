//! Criterion bench for the sparse substrate: LU factorization/solve and
//! SpMV on power-grid matrices, with and without fill-reducing orderings.

use opm_bench::criterion::{criterion_group, criterion_main, Criterion};
use opm_circuits::grid::PowerGridSpec;
use opm_circuits::mna::assemble_mna;
use opm_sparse::ordering::{min_degree, rcm};
use opm_sparse::SparseLu;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = PowerGridSpec {
        layers: 2,
        rows: 16,
        cols: 16,
        num_loads: 8,
        ..Default::default()
    };
    let model = assemble_mna(&spec.build(), &[]).unwrap();
    let n = model.system.order();
    // OPM pencil at h = 10 ps.
    let pencil = model
        .system
        .e()
        .lin_comb(2.0 / 10e-12, -1.0, model.system.a());
    let csc = pencil.to_csc();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();

    let mut g = c.benchmark_group("sparse");
    g.bench_function("spmv", |b| {
        b.iter(|| black_box(pencil.mul_vec(black_box(&x))))
    });
    g.bench_function("lu_natural", |b| {
        b.iter(|| black_box(SparseLu::factor(&csc, None).unwrap()))
    });
    let order_rcm = rcm(&pencil);
    g.bench_function("lu_rcm", |b| {
        b.iter(|| black_box(SparseLu::factor(&csc, Some(&order_rcm)).unwrap()))
    });
    let order_md = min_degree(&pencil);
    g.bench_function("lu_min_degree", |b| {
        b.iter(|| black_box(SparseLu::factor(&csc, Some(&order_md)).unwrap()))
    });
    let lu = SparseLu::factor(&csc, Some(&order_rcm)).unwrap();
    g.bench_function("lu_solve", |b| {
        b.iter(|| black_box(lu.solve(black_box(&x))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
