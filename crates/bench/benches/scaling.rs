//! Criterion bench behind E2: OPM cost vs interval count m (linear vs
//! fractional paths) and vs system size n.

use opm_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opm_core::{Problem, SolveOptions};
use opm_sparse::{CooMatrix, CsrMatrix};
use opm_system::{DescriptorSystem, FractionalSystem};
use opm_waveform::{InputSet, Waveform};
use std::hint::black_box;

fn chain(n: usize) -> DescriptorSystem {
    let mut a = CooMatrix::new(n, n);
    for i in 0..n {
        a.push(i, i, -2.0);
        if i + 1 < n {
            a.push(i, i + 1, 1.0);
            a.push(i + 1, i, 1.0);
        }
    }
    let mut b = CooMatrix::new(n, 1);
    b.push(0, 0, 1.0);
    DescriptorSystem::new(CsrMatrix::identity(n), a.to_csr(), b.to_csr(), None).unwrap()
}

fn bench(c: &mut Criterion) {
    let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);

    let mut g = c.benchmark_group("m_sweep_n200");
    g.sample_size(10);
    let sys = chain(200);
    let fsys = FractionalSystem::new(0.5, chain(200)).unwrap();
    for &m in &[128usize, 512, 2048] {
        let u = inputs.bpf_matrix(m, 4.0);
        g.bench_with_input(BenchmarkId::new("linear", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    Problem::linear(&sys)
                        .coeffs(&u)
                        .horizon(4.0)
                        .solve(&SolveOptions::new())
                        .unwrap(),
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("fractional", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    Problem::fractional(&fsys)
                        .coeffs(&u)
                        .horizon(4.0)
                        .solve(&SolveOptions::new())
                        .unwrap(),
                )
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("n_sweep_m256");
    g.sample_size(10);
    for &n in &[200usize, 800, 3200] {
        let sys = chain(n);
        let u = inputs.bpf_matrix(256, 4.0);
        g.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    Problem::linear(&sys)
                        .coeffs(&u)
                        .horizon(4.0)
                        .solve(&SolveOptions::new())
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
