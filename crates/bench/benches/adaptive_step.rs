//! Criterion bench behind E1: adaptive vs fixed-step OPM on the
//! pulse-then-quiet workload.

use opm_bench::criterion::{criterion_group, criterion_main, Criterion};
use opm_circuits::ladder::rc_ladder;
use opm_circuits::mna::{assemble_mna, Output};
use opm_core::adaptive::AdaptiveOpmOptions;
use opm_core::{Problem, SolveOptions};
use opm_waveform::Waveform;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let drive = Waveform::pulse(0.0, 1.0, 10e-6, 1e-6, 20e-6, 1e-6, 0.0);
    let ckt = rc_ladder(8, 1e3, 1e-9, drive);
    let model = assemble_mna(&ckt, &[Output::NodeVoltage(9)]).unwrap();
    let t_end = 2e-3;
    let x0 = vec![0.0; model.system.order()];

    let mut g = c.benchmark_group("adaptive");
    g.sample_size(10);
    let m = 32_768;
    let u = model.inputs.bpf_matrix(m, t_end);
    g.bench_function("fixed_m32768", |b| {
        b.iter(|| {
            black_box(
                Problem::linear(&model.system)
                    .coeffs(&u)
                    .horizon(t_end)
                    .initial_state(&x0)
                    .solve(&SolveOptions::new())
                    .unwrap(),
            )
        })
    });
    g.bench_function("adaptive_tol1e-6", |b| {
        b.iter(|| {
            black_box(
                Problem::linear(&model.system)
                    .waveforms(&model.inputs)
                    .horizon(t_end)
                    .initial_state(&x0)
                    .solve(&SolveOptions::new().adaptive(AdaptiveOpmOptions {
                        tol: 1e-6,
                        h0: 1e-6,
                        h_min: 1e-9,
                        h_max: 1e-4,
                    }))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
