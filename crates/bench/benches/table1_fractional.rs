//! Criterion bench behind Table I: OPM vs FFT-1 vs FFT-2 on the
//! fractional transmission line (n = 7, α = ½, T = 2.7 ns, m = 8).

use opm_bench::criterion::{criterion_group, criterion_main, Criterion};
use opm_circuits::tline::FractionalLineSpec;
use opm_core::{Problem, SolveOptions};
use opm_fft::FftSimulator;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = FractionalLineSpec::default().assemble();
    let t_end = 2.7e-9;
    let m = 8;
    let u = model.inputs.bpf_matrix(m, t_end);

    let mut g = c.benchmark_group("table1");
    g.bench_function("opm_m8", |b| {
        b.iter(|| {
            black_box(
                Problem::fractional(&model.system)
                    .coeffs(black_box(&u))
                    .horizon(t_end)
                    .solve(&SolveOptions::new())
                    .unwrap(),
            )
        })
    });
    let fft1 = FftSimulator::new(8);
    g.bench_function("fft1_n8", |b| {
        b.iter(|| black_box(fft1.simulate(&model.system, &model.inputs, t_end)))
    });
    let fft2 = FftSimulator::new(100);
    g.bench_function("fft2_n100", |b| {
        b.iter(|| black_box(fft2.simulate(&model.system, &model.inputs, t_end)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
