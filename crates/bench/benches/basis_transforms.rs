//! Criterion bench behind E3: basis-machinery kernels — fractional Tustin
//! coefficient generation, FWHT, operational-matrix assembly.

use opm_basis::series::tustin_frac_coeffs;
use opm_basis::walsh::fwht;
use opm_basis::{Basis, BpfBasis, WalshBasis};
use opm_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("basis");
    for &m in &[256usize, 4096] {
        g.bench_with_input(BenchmarkId::new("tustin_frac_coeffs", m), &m, |b, &m| {
            b.iter(|| black_box(tustin_frac_coeffs(black_box(0.5), m)))
        });
    }
    for &m in &[1024usize, 16384] {
        let data: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        g.bench_with_input(BenchmarkId::new("fwht", m), &m, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                fwht(&mut v);
                black_box(v)
            })
        });
    }
    g.bench_function("walsh_integration_matrix_64", |b| {
        let basis = WalshBasis::new(64, 1.0);
        b.iter(|| black_box(basis.integration_matrix()))
    });
    g.bench_function("bpf_frac_diff_matrix_256", |b| {
        let basis = BpfBasis::new(256, 1.0);
        b.iter(|| black_box(basis.frac_diff_matrix(0.5)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
