//! Criterion bench behind Table II: per-method runtimes on the power
//! grid at harness scale (same step h = 10 ps for all).

use opm_bench::criterion::{criterion_group, criterion_main, Criterion};
use opm_circuits::grid::PowerGridSpec;
use opm_circuits::mna::assemble_mna;
use opm_circuits::na::assemble_na;
use opm_core::{Problem, SolveOptions};
use opm_transient::{backward_euler, bdf, trapezoidal};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = PowerGridSpec {
        layers: 3,
        rows: 8,
        cols: 8,
        num_loads: 8,
        l_via: 2e-10,
        c_node: 2e-11,
        r_segment: 0.2,
        period: 4e-9,
        ..Default::default()
    };
    let ckt = spec.build();
    let na = assemble_na(&ckt, &[]).unwrap();
    let mna = assemble_mna(&ckt, &[]).unwrap();
    let t_end = 10e-9;
    let m = 1000;
    let x0 = vec![0.0; mna.system.order()];
    let bounds: Vec<f64> = (0..=m).map(|k| k as f64 * t_end / m as f64).collect();
    let u_dot = na.inputs.derivative_averages_on_grid(&bounds);
    let mt = na.system.to_multiterm();

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("b_euler_mna_h10ps", |b| {
        b.iter(|| {
            black_box(backward_euler(&mna.system, &mna.inputs, t_end, m, &x0, false).unwrap())
        })
    });
    g.bench_function("gear2_mna_h10ps", |b| {
        b.iter(|| black_box(bdf(&mna.system, &mna.inputs, t_end, m, 2, &x0, false).unwrap()))
    });
    g.bench_function("trapezoidal_mna_h10ps", |b| {
        b.iter(|| black_box(trapezoidal(&mna.system, &mna.inputs, t_end, m, &x0, false).unwrap()))
    });
    g.bench_function("opm_na_h10ps", |b| {
        b.iter(|| {
            black_box(
                Problem::multiterm(&mt)
                    .coeffs(black_box(&u_dot))
                    .horizon(t_end)
                    .solve(&SolveOptions::new())
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
