//! Criterion bench for the plan layer: one `SimPlan` factorization
//! amortized over a scenario batch vs independent `Problem::solve`
//! calls, on an RC-ladder MNA system.

use opm_bench::criterion::{criterion_group, criterion_main, Criterion};
use opm_circuits::ladder::rc_ladder;
use opm_circuits::mna::{assemble_mna, Output};
use opm_core::{Problem, Simulation, SolveOptions};
use opm_waveform::{InputSet, Waveform};
use std::hint::black_box;

const SCENARIOS: usize = 32;

fn bench(c: &mut Criterion) {
    let sections = 24;
    let ckt = rc_ladder(sections, 1e3, 1e-9, Waveform::step(0.0, 1.0));
    let model = assemble_mna(&ckt, &[Output::NodeVoltage(sections + 1)]).unwrap();
    let (m, t_end) = (256, 2e-5);
    let opts = SolveOptions::new().resolution(m);
    let sets: Vec<InputSet> = (0..SCENARIOS)
        .map(|s| {
            InputSet::new(vec![Waveform::pulse(
                0.0,
                1.0 + 0.1 * s as f64,
                0.0,
                1e-8 * (1 + s) as f64,
                1e-5,
                1e-7,
                0.0,
            )])
        })
        .collect();

    let mut g = c.benchmark_group("plan_sweep");
    g.sample_size(10);
    g.bench_function("naive_loop_32", |b| {
        b.iter(|| {
            for ws in &sets {
                black_box(
                    Problem::linear(&model.system)
                        .waveforms(ws)
                        .horizon(t_end)
                        .solve(&opts)
                        .unwrap(),
                );
            }
        })
    });
    let sim = Simulation::from_system(model.system.clone()).horizon(t_end);
    g.bench_function("plan_batch_32", |b| {
        b.iter(|| {
            let plan = sim.plan(&opts).unwrap();
            black_box(plan.solve_batch(&sets).unwrap());
        })
    });
    let plan = sim.plan(&opts).unwrap();
    g.bench_function("plan_batch_32_prefactored", |b| {
        b.iter(|| black_box(plan.solve_batch(&sets).unwrap()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
