//! The paper's FFT baseline: frequency-domain simulation of
//! `E·d^α x/dt^α = A·x + B·u`.
//!
//! 1. Sample the input at `N` points over `[0, T)`.
//! 2. Transform: `U(jω_k)` (Bluestein, so `N = 100` works).
//! 3. Solve `(E·(jω_k)^α − A)·X_k = B·U_k` per frequency with complex
//!    dense LU; conjugate symmetry halves the work for real inputs.
//! 4. Inverse transform; the real parts are the time samples.
//!
//! The method computes the *periodic* response (the input is implicitly
//! T-periodic) — the source of the accuracy gap vs OPM that Table I
//! reports, shrinking as `N` grows (FFT-2 beats FFT-1).

use crate::bluestein::{bluestein_fft, bluestein_ifft};
use opm_linalg::{Complex64, ZMatrix, ZVector};
use opm_system::FractionalSystem;
use opm_waveform::InputSet;

/// Result of a frequency-domain simulation.
#[derive(Clone, Debug)]
pub struct FreqResult {
    /// Sample times `t_k = k·T/N`.
    pub times: Vec<f64>,
    /// State samples: `states[i][k]` = state `i` at `t_k`.
    pub states: Vec<Vec<f64>>,
    /// Output samples: `outputs[o][k]`.
    pub outputs: Vec<Vec<f64>>,
    /// Max imaginary residue after the inverse transform (sanity metric —
    /// should be at roundoff level for real inputs).
    pub max_imag: f64,
}

/// Frequency-domain simulator for fractional descriptor systems.
#[derive(Clone, Debug)]
pub struct FftSimulator {
    /// Number of frequency sampling points (the paper's FFT-1 = 8,
    /// FFT-2 = 100).
    pub n_samples: usize,
}

impl FreqResult {
    /// Linearly interpolates output channel `o` at time `t` (periodic
    /// extension beyond the last sample — the method's own assumption).
    pub fn interpolate_output(&self, o: usize, t: f64) -> f64 {
        let n = self.times.len();
        let dt = if n > 1 {
            self.times[1] - self.times[0]
        } else {
            return self.outputs[o][0];
        };
        let pos = t / dt;
        let k = pos.floor() as usize;
        let frac = pos - k as f64;
        let a = self.outputs[o][k % n];
        let b = self.outputs[o][(k + 1) % n];
        a + frac * (b - a)
    }
}

impl FftSimulator {
    /// Creates a simulator with the given number of sampling points.
    pub fn new(n_samples: usize) -> Self {
        assert!(n_samples >= 2, "need at least two sampling points");
        FftSimulator { n_samples }
    }

    /// Simulates the system over `[0, t_end)`.
    ///
    /// # Panics
    /// Panics when `(jω)^α E − A` is singular at some sampled frequency
    /// (including DC: `A` must be nonsingular) or when input channel count
    /// mismatches `B`.
    pub fn simulate(&self, sys: &FractionalSystem, inputs: &InputSet, t_end: f64) -> FreqResult {
        let n = sys.order();
        let p = sys.num_inputs();
        assert_eq!(inputs.len(), p, "input channel count mismatch");
        let big_n = self.n_samples;
        let dt = t_end / big_n as f64;

        // Sample and transform each input channel.
        let mut u_hat: Vec<Vec<Complex64>> = Vec::with_capacity(p);
        for ch in inputs.channels() {
            let samples: Vec<Complex64> = (0..big_n)
                .map(|k| Complex64::from_real(ch.eval(k as f64 * dt)))
                .collect();
            u_hat.push(bluestein_fft(&samples));
        }

        let (e_d, a_d, b_d) = sys.system().to_dense();
        let e_z = ZMatrix::from_real(&e_d);
        let a_z = ZMatrix::from_real(&a_d);

        // Solve per frequency; exploit conjugate symmetry
        // X(−ω) = conj(X(ω)) for real inputs.
        let mut x_hat: Vec<Vec<Complex64>> = vec![vec![Complex64::ZERO; big_n]; n];
        let half = big_n / 2;
        for k in 0..=half {
            let omega = 2.0 * std::f64::consts::PI * k as f64 / t_end;
            // (jω)^α on the principal branch.
            let jw_alpha = if k == 0 {
                Complex64::ZERO
            } else {
                Complex64::new(0.0, omega).powf(sys.alpha())
            };
            let m = e_z.lin_comb(jw_alpha, &a_z, Complex64::new(-1.0, 0.0));
            let lu = m
                .factor_lu()
                .unwrap_or_else(|| panic!("singular pencil at frequency bin {k}"));
            // RHS: B·U_k.
            let mut rhs = ZVector::zeros(n);
            for i in 0..n {
                let mut s = Complex64::ZERO;
                for j in 0..p {
                    let bij = b_d.get(i, j);
                    if bij != 0.0 {
                        s += u_hat[j][k].scale(bij);
                    }
                }
                rhs[i] = s;
            }
            let xk = lu.solve(&rhs);
            for i in 0..n {
                x_hat[i][k] = xk[i];
                // Mirror bin (skip DC and Nyquist self-mirrors).
                if k != 0 && (big_n % 2 != 0 || k != half) {
                    x_hat[i][big_n - k] = xk[i].conj();
                }
            }
        }

        // Inverse transform per state.
        let mut states = Vec::with_capacity(n);
        let mut max_imag = 0.0f64;
        for row in &x_hat {
            let time = bluestein_ifft(row);
            max_imag = max_imag.max(time.iter().fold(0.0f64, |m, z| m.max(z.im.abs())));
            states.push(time.iter().map(|z| z.re).collect::<Vec<f64>>());
        }

        // Outputs.
        let outputs = match sys.system().c() {
            Some(c) => {
                let q = c.nrows();
                let mut out = vec![vec![0.0; big_n]; q];
                for k in 0..big_n {
                    let xk: Vec<f64> = (0..n).map(|i| states[i][k]).collect();
                    let yk = c.mul_vec(&xk);
                    for (o, row) in out.iter_mut().enumerate() {
                        row[k] = yk[o];
                    }
                }
                out
            }
            None => states.clone(),
        };

        FreqResult {
            times: (0..big_n).map(|k| k as f64 * dt).collect(),
            states,
            outputs,
            max_imag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_sparse::CooMatrix;
    use opm_system::DescriptorSystem;
    use opm_waveform::Waveform;

    /// Scalar system ẋ = −a·x + u (α = 1 so classic phasor analysis
    /// provides the oracle).
    fn scalar_system(a: f64) -> FractionalSystem {
        let mut e = CooMatrix::new(1, 1);
        e.push(0, 0, 1.0);
        let mut am = CooMatrix::new(1, 1);
        am.push(0, 0, -a);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        FractionalSystem::new(
            1.0,
            DescriptorSystem::new(e.to_csr(), am.to_csr(), b.to_csr(), None).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn sinusoid_at_bin_frequency_matches_phasor_solution() {
        // u = sin(2π·2·t/T): exactly bin 2. Steady state:
        // x = Im[e^{2πi·2t/T}/(a + jω)].
        let a = 3.0;
        let t_end = 1.0;
        let omega = 2.0 * std::f64::consts::PI * 2.0;
        let sys = scalar_system(a);
        let u = InputSet::new(vec![Waveform::sine(0.0, 1.0, 2.0, 0.0, 0.0)]);
        let sim = FftSimulator::new(64);
        let r = sim.simulate(&sys, &u, t_end);
        assert!(r.max_imag < 1e-9);
        let h = Complex64::new(a, omega).inv();
        for (k, &t) in r.times.iter().enumerate() {
            let phasor = (Complex64::new(0.0, omega * t).exp() * h).im;
            assert!(
                (r.states[0][k] - phasor).abs() < 1e-8,
                "t={t}: {} vs {phasor}",
                r.states[0][k]
            );
        }
    }

    #[test]
    fn dc_input_gives_static_gain() {
        let sys = scalar_system(4.0);
        let u = InputSet::new(vec![Waveform::Dc(2.0)]);
        let r = FftSimulator::new(16).simulate(&sys, &u, 5.0);
        // Periodic steady state of a constant input: x = u/a everywhere.
        for &x in &r.states[0] {
            assert!((x - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn more_samples_capture_pulse_better() {
        // A fast pulse needs more bins: the coarse run must differ more
        // from a fine reference than the medium run does.
        let sys = scalar_system(5.0);
        let u = InputSet::new(vec![Waveform::pulse(0.0, 1.0, 0.1, 0.05, 0.2, 0.05, 0.0)]);
        let t_end = 2.0;
        let fine = FftSimulator::new(512).simulate(&sys, &u, t_end);
        let coarse = FftSimulator::new(8).simulate(&sys, &u, t_end);
        let medium = FftSimulator::new(64).simulate(&sys, &u, t_end);
        // Compare at the coarse grid points (subsampling the finer runs).
        let err = |r: &FreqResult| -> f64 {
            let stride = 512 / r.states[0].len();
            r.states[0]
                .iter()
                .enumerate()
                .map(|(k, &x)| (x - fine.states[0][k * stride]).abs())
                .fold(0.0, f64::max)
        };
        let e_coarse = err(&coarse);
        let e_medium = err(&medium);
        assert!(
            e_medium < e_coarse,
            "medium {e_medium} should beat coarse {e_coarse}"
        );
    }

    #[test]
    fn arbitrary_sample_count_works() {
        // The paper's FFT-2 uses exactly 100 points.
        let sys = scalar_system(2.0);
        let u = InputSet::new(vec![Waveform::sine(0.0, 1.0, 1.0, 0.0, 0.0)]);
        let r = FftSimulator::new(100).simulate(&sys, &u, 1.0);
        assert_eq!(r.times.len(), 100);
        assert!(r.max_imag < 1e-8);
    }
}
