//! Iterative radix-2 Cooley–Tukey FFT.

use opm_linalg::Complex64;

/// In-place forward FFT (`X_k = Σ_n x_n·e^{−2πikn/N}`).
///
/// # Panics
/// Panics when the length is not a power of two (use
/// [`bluestein`](crate::bluestein) for arbitrary lengths).
pub fn fft_in_place(data: &mut [Complex64]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "radix-2 FFT needs a power-of-two length"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::from_polar(1.0, ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT returning a new vector.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut data = input.to_vec();
    fft_in_place(&mut data);
    data
}

/// Inverse FFT (`x_n = (1/N) Σ_k X_k·e^{+2πikn/N}`), via the conjugation
/// identity.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut data: Vec<Complex64> = input.iter().map(|z| z.conj()).collect();
    fft_in_place(&mut data);
    data.iter_mut()
        .for_each(|z| *z = z.conj().scale(1.0 / n as f64));
    data
}

/// FFT of a real signal (convenience wrapper).
pub fn fft_real(input: &[f64]) -> Vec<Complex64> {
    fft(&input
        .iter()
        .map(|&x| Complex64::from_real(x))
        .collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_dft_on_random_data() {
        use opm_rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for &n in &[1usize, 2, 8, 64, 256] {
            let x: Vec<Complex64> = (0..n)
                .map(|_| Complex64::new(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)))
                .collect();
            let err = max_err(&fft(&x), &dft(&x));
            assert!(err < 1e-9 * (n as f64), "n={n}: err {err}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let x: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let back = ifft(&fft(&x));
        assert!(max_err(&back, &x) < 1e-12);
    }

    #[test]
    fn parseval_identity() {
        let x: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((0.3 * i as f64).cos(), 0.0))
            .collect();
        let big_x = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = big_x.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn pure_tone_hits_single_bin() {
        let n = 64;
        let k0 = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|i| {
                Complex64::from_polar(1.0, 2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64)
            })
            .collect();
        let big_x = fft(&x);
        for (k, z) in big_x.iter().enumerate() {
            let want = if k == k0 { n as f64 } else { 0.0 };
            assert!((z.abs() - want).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let mut v = vec![Complex64::ZERO; 6];
        fft_in_place(&mut v);
    }
}
