//! The discrete Fourier transform by definition — `O(N²)`, any length.
//!
//! Kept as the oracle the fast transforms are tested against, and as the
//! fallback for tiny transforms where setup costs dominate.

use opm_linalg::Complex64;

/// Forward DFT (`X_k = Σ_n x_n e^{−2πikn/N}`).
pub fn dft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut s = Complex64::ZERO;
        for (idx, &x) in input.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * idx % n) as f64 / n as f64;
            s += x * Complex64::from_polar(1.0, ang);
        }
        *o = s;
    }
    out
}

/// Inverse DFT.
pub fn idft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let conj: Vec<Complex64> = input.iter().map(|z| z.conj()).collect();
    dft(&conj)
        .into_iter()
        .map(|z| z.conj().scale(1.0 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 7];
        x[0] = Complex64::ONE;
        for z in dft(&x) {
            assert!((z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn idft_inverts_dft_odd_length() {
        let x: Vec<Complex64> = (0..9)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.3))
            .collect();
        let back = idft(&dft(&x));
        for (a, b) in back.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-11);
        }
    }

    #[test]
    fn linearity() {
        let x: Vec<Complex64> = (0..5).map(|i| Complex64::new(i as f64, 1.0)).collect();
        let y: Vec<Complex64> = (0..5).map(|i| Complex64::new(1.0, -(i as f64))).collect();
        let sum: Vec<Complex64> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let lhs = dft(&sum);
        let fx = dft(&x);
        let fy = dft(&y);
        for k in 0..5 {
            assert!((lhs[k] - (fx[k] + fy[k])).abs() < 1e-12);
        }
    }
}
