//! Arbitrary-length FFT via Bluestein's chirp-z algorithm.
//!
//! The paper's FFT-2 baseline uses **100** frequency sampling points — not
//! a power of two — so a practical reproduction needs an O(N log N)
//! transform for arbitrary N. Bluestein rewrites the DFT as a convolution
//! with a chirp:
//!
//! ```text
//! X_k = w^{k²/2} · Σ_n (x_n·w^{n²/2}) · w^{−(k−n)²/2},  w = e^{−2πi/N}
//! ```
//!
//! and evaluates the convolution with zero-padded radix-2 FFTs.

use crate::fft::{fft_in_place, ifft};
use opm_linalg::Complex64;

/// Forward DFT of arbitrary length (`O(N log N)`).
pub fn bluestein_fft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_in_place(&mut data);
        return data;
    }
    // Chirp: c_j = e^{−iπ j²/N}. Use j² mod 2N to avoid precision loss on
    // the angle for large j.
    let chirp: Vec<Complex64> = (0..n)
        .map(|j| {
            let j2 = (j * j) % (2 * n);
            Complex64::from_polar(1.0, -std::f64::consts::PI * j2 as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    // a = x·chirp, zero-padded.
    let mut a = vec![Complex64::ZERO; m];
    for j in 0..n {
        a[j] = input[j] * chirp[j];
    }
    // b = conj(chirp) with wrap-around symmetry b[m−j] = b[j].
    let mut b = vec![Complex64::ZERO; m];
    b[0] = chirp[0].conj();
    for j in 1..n {
        let v = chirp[j].conj();
        b[j] = v;
        b[m - j] = v;
    }
    fft_in_place(&mut a);
    fft_in_place(&mut b);
    for (x, y) in a.iter_mut().zip(&b) {
        *x *= *y;
    }
    let conv = ifft(&a);
    (0..n).map(|k| conv[k] * chirp[k]).collect()
}

/// Inverse DFT of arbitrary length.
pub fn bluestein_ifft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let conj: Vec<Complex64> = input.iter().map(|z| z.conj()).collect();
    bluestein_fft(&conj)
        .into_iter()
        .map(|z| z.conj().scale(1.0 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn max_err(a: &[Complex64], b: &[Complex64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn matches_dft_on_awkward_lengths() {
        use opm_rng::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for &n in &[3usize, 5, 7, 12, 100, 127] {
            let x: Vec<Complex64> = (0..n)
                .map(|_| Complex64::new(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)))
                .collect();
            let err = max_err(&bluestein_fft(&x), &dft(&x));
            assert!(err < 1e-9 * n as f64, "n={n}: {err}");
        }
    }

    #[test]
    fn power_of_two_shortcut_agrees() {
        let x: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new((i as f64).cos(), 0.2 * i as f64))
            .collect();
        assert!(max_err(&bluestein_fft(&x), &dft(&x)) < 1e-10);
    }

    #[test]
    fn roundtrip_length_100() {
        // The paper's FFT-2 length.
        let x: Vec<Complex64> = (0..100)
            .map(|i| Complex64::new((0.17 * i as f64).sin(), (0.05 * i as f64).cos()))
            .collect();
        let back = bluestein_ifft(&bluestein_fft(&x));
        assert!(max_err(&back, &x) < 1e-10);
    }

    #[test]
    fn empty_and_single() {
        assert!(bluestein_fft(&[]).is_empty());
        let one = bluestein_fft(&[Complex64::new(2.5, -1.0)]);
        assert!((one[0] - Complex64::new(2.5, -1.0)).abs() < 1e-15);
    }
}
