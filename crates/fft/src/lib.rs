//! FFT substrate and the paper's frequency-domain FDE baseline.
//!
//! Section V-A of the paper compares OPM against simulation "in the
//! frequency domain using Fourier transform and inverse Fourier
//! transform": sample the input, transform, evaluate
//! `X(jω) = (E·(jω)^α − A)^{-1}·B·U(jω)` per frequency, transform back.
//! `FFT-1` uses 8 sampling points, `FFT-2` uses 100 — which is why this
//! crate includes a Bluestein transform for arbitrary lengths, not just
//! radix-2.
//!
//! - [`fft`] — iterative radix-2 Cooley–Tukey + inverse.
//! - [`bluestein`] — arbitrary-N FFT via chirp-z.
//! - [`dft`] — the O(N²) definition, kept as a test oracle.
//! - [`freq_solve`] — the frequency-domain simulator ([`FftSimulator`]).
//!
//! [`FftSimulator`]: freq_solve::FftSimulator

// No unsafe anywhere in this crate; the only unsafe in the workspace
// is the audited AVX panel dispatch in opm-{core,sparse,fracnum}.
#![forbid(unsafe_code)]

pub mod bluestein;
pub mod dft;
pub mod fft;
pub mod freq_solve;

pub use freq_solve::{FftSimulator, FreqResult};
