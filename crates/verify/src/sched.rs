//! The deterministic-schedule scheduler behind the model checker.
//!
//! # How an execution works
//!
//! A *model* is a closure using the shim primitives in
//! [`crate::sync`]. [`explore`] runs it many times; in each run the
//! model's threads are real OS threads, but a **controller** (the
//! thread that called [`explore`]) holds them on a leash: at every
//! synchronization operation — mutex lock/unlock, condvar
//! wait/notify, atomic access, spawn/join — the thread parks and
//! reports its *pending operation*; the controller picks which
//! runnable thread advances next. Exactly one model thread executes at
//! any instant, so each run is one totally-ordered interleaving
//! (sequential consistency) chosen by the controller.
//!
//! # Exploration
//!
//! Each point where more than one thread could advance is a *choice
//! point*; the sequence of choices is a [`Schedule`]. Two search modes:
//!
//! - **Exhaustive DFS** (small models): depth-first over the choice
//!   tree — rerun with a schedule prefix, extend with the first
//!   alternative (biased to keep the current thread running, so
//!   low-preemption schedules come first), backtrack the deepest
//!   untried alternative. Complete when the tree is exhausted below
//!   the budget.
//! - **Seeded random with conflict reduction** (larger models): after
//!   the DFS budget, remaining schedules are drawn with an
//!   [`opm_rng::StdRng`]-seeded picker. A lightweight partial-order
//!   reduction keeps the current thread running whenever its pending
//!   operation cannot conflict with any other enabled thread's pending
//!   operation (different objects, or both reads) — schedules that
//!   only permute commuting steps collapse into one. The reduction is
//!   a heuristic (it looks one pending operation ahead, not at whole
//!   futures), which is why DFS mode never uses it: exhaustive means
//!   exhaustive.
//!
//! # Violations
//!
//! A run fails when a model thread panics (assertion failure), when no
//! thread can advance while some are unfinished (**deadlock** — this is
//! how a lost wakeup surfaces: the un-woken waiter sleeps forever), or
//! when a run exceeds the step bound (livelock guard). The failing
//! [`Schedule`] plus a human-readable step trace is returned in the
//! [`Violation`]; [`replay`] re-runs it deterministically and
//! [`shrink`] greedily simplifies it (fewer preemptions, shorter
//! prefix) while preserving the failure.
//!
//! # Condvar semantics
//!
//! Faithful to `std`: `wait` atomically releases the mutex and joins
//! the condvar's sleeper set — a notify that fires *before* a thread
//! sleeps does not wake it (lost wakeups are representable, which is
//! the point). `notify_all` moves every sleeper to a mutex-reacquire
//! state; `notify_one` wakes the lowest-numbered sleeper (a
//! deterministic subset of the `std` contract). Spurious wakeups are
//! injected as extra schedule choices when
//! [`ExploreOpts::spurious_budget`] is nonzero.
//!
//! # Invariants the harness itself relies on
//!
//! - Models must be deterministic apart from scheduling: same choices
//!   in, same behavior out. (No wall-clock, no ambient randomness —
//!   the same discipline `opm-verify -- lint` enforces on kernel
//!   crates.)
//! - Shim operations must not be called from `Drop` impls other than
//!   the shims' own guards (the abandon path unwinds through user
//!   code; a panic raised inside a foreign `Drop` would abort).

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use opm_rng::StdRng;

/// Model-thread id (dense, starting at 0 for the model's root thread).
pub type Tid = usize;

/// A pending synchronization operation, as reported by a parked thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// First step of a spawned thread's body.
    Begin,
    /// `thread::spawn` by the parent (makes `child` schedulable).
    Spawn {
        /// The spawned thread.
        child: Tid,
    },
    /// `JoinHandle::join`; enabled once `child` finished.
    Join {
        /// The joined thread.
        child: Tid,
    },
    /// Atomic read.
    AtomicLoad {
        /// Object id.
        obj: usize,
    },
    /// Atomic read-modify-write (store/swap/fetch_add/CAS).
    AtomicRmw {
        /// Object id.
        obj: usize,
    },
    /// Mutex acquisition; enabled while the mutex is free.
    MutexLock {
        /// Object id.
        obj: usize,
    },
    /// Mutex release (guard drop).
    MutexUnlock {
        /// Object id.
        obj: usize,
    },
    /// Condvar wait: atomically release `mutex` and sleep on `cv`.
    CondWait {
        /// Condvar object id.
        cv: usize,
        /// The mutex released while sleeping and reacquired on wake.
        mutex: usize,
    },
    /// Post-notify mutex reacquisition (internal continuation of
    /// [`Op::CondWait`]); enabled while the mutex is free.
    Reacquire {
        /// The mutex being reacquired.
        mutex: usize,
    },
    /// Wake every sleeper of `cv`.
    NotifyAll {
        /// Condvar object id.
        cv: usize,
    },
    /// Wake the lowest-numbered sleeper of `cv`.
    NotifyOne {
        /// Condvar object id.
        cv: usize,
    },
    /// Explicit scheduling point with no object effect.
    Yield,
}

impl Op {
    fn label(&self) -> String {
        match self {
            Op::Begin => "begin".into(),
            Op::Spawn { child } => format!("spawn(t{child})"),
            Op::Join { child } => format!("join(t{child})"),
            Op::AtomicLoad { obj } => format!("atomic-load(a{obj})"),
            Op::AtomicRmw { obj } => format!("atomic-rmw(a{obj})"),
            Op::MutexLock { obj } => format!("lock(m{obj})"),
            Op::MutexUnlock { obj } => format!("unlock(m{obj})"),
            Op::CondWait { cv, mutex } => format!("cond-wait(c{cv}, m{mutex})"),
            Op::Reacquire { mutex } => format!("reacquire(m{mutex})"),
            Op::NotifyAll { cv } => format!("notify-all(c{cv})"),
            Op::NotifyOne { cv } => format!("notify-one(c{cv})"),
            Op::Yield => "yield".into(),
        }
    }

    /// Whether two pending operations could fail to commute: they touch
    /// a common object and at least one side mutates it. Used only by
    /// the random-mode reduction.
    fn conflicts(&self, other: &Op) -> bool {
        use Op::*;
        let touch = |op: &Op| -> Option<(u8, usize, bool)> {
            // (object class, id, writes?)
            match op {
                AtomicLoad { obj } => Some((0, *obj, false)),
                AtomicRmw { obj } => Some((0, *obj, true)),
                MutexLock { obj } | MutexUnlock { obj } | Reacquire { mutex: obj } => {
                    Some((1, *obj, true))
                }
                NotifyAll { cv } | NotifyOne { cv } => Some((2, *cv, true)),
                _ => None,
            }
        };
        // CondWait touches both its condvar and its mutex.
        let objs = |op: &Op| -> Vec<(u8, usize, bool)> {
            if let CondWait { cv, mutex } = op {
                vec![(2, *cv, true), (1, *mutex, true)]
            } else {
                touch(op).into_iter().collect()
            }
        };
        for (ca, ia, wa) in objs(self) {
            for &(cb, ib, wb) in &objs(other) {
                if ca == cb && ia == ib && (wa || wb) {
                    return true;
                }
            }
        }
        false
    }
}

#[derive(Clone, Debug)]
enum Status {
    /// Registered by `spawn`, not yet released by the `Spawn` grant.
    Unborn,
    /// Parked with a pending operation.
    Ready(Op),
    /// Sleeping inside `CondWait` until a notify (or spurious wake).
    Sleeping { cv: usize, mutex: usize },
    /// Executing model code (at most one thread at a time).
    Running,
    /// Body returned (or unwound).
    Finished,
}

struct ThreadSt {
    status: Status,
    spurious_left: u32,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No execution in progress (shims pass through to `std`).
    Idle,
    /// A run is active; threads park at shim operations.
    Running,
    /// The run is over (violation or completion); parked threads wake
    /// and unwind via [`AbandonSignal`].
    Abandon,
}

/// Why a schedule failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A model thread panicked (assertion failure).
    Panic(String),
    /// No thread can advance but some are unfinished — a deadlock or a
    /// lost wakeup.
    Deadlock(String),
    /// The run exceeded [`ExploreOpts::max_steps`] (livelock guard).
    StepLimit,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::Panic(m) => write!(f, "model panic: {m}"),
            ViolationKind::Deadlock(m) => write!(f, "deadlock/lost wakeup: {m}"),
            ViolationKind::StepLimit => write!(f, "step limit exceeded (possible livelock)"),
        }
    }
}

/// A replayable schedule: the choice taken at each choice point, plus
/// the exploration flags that shape where choice points occur.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Index into the (deterministically ordered) candidate list at
    /// each choice point, in execution order.
    pub choices: Vec<usize>,
    /// Whether the conflict reduction was active (it changes which
    /// steps are choice points, so replay must match).
    pub reduced: bool,
    /// The spurious-wakeup budget the run was explored with.
    pub spurious_budget: u32,
}

/// A failing schedule with its human-readable step trace.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The schedule that reproduces it (feed to [`replay`]).
    pub schedule: Schedule,
    /// One line per granted step, in execution order.
    pub trace: Vec<String>,
}

/// Search budgets and knobs for [`explore`].
#[derive(Clone, Debug)]
pub struct ExploreOpts {
    /// Total schedule budget across both phases.
    pub max_schedules: usize,
    /// Schedules given to exhaustive DFS before switching to seeded
    /// random search (the remainder of `max_schedules`).
    pub dfs_budget: usize,
    /// Seed for the random phase.
    pub seed: u64,
    /// How many spurious condvar wakeups may be injected per thread per
    /// run (0 disables the extra choices).
    pub spurious_budget: u32,
    /// Step bound per run (livelock guard).
    pub max_steps: usize,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            max_schedules: 4096,
            dfs_budget: 4096,
            seed: 0x6f70_6d76_6572_6966, // "opmverif"
            spurious_budget: 0,
            max_steps: 20_000,
        }
    }
}

/// The checker's verdict for one model.
#[derive(Clone, Debug)]
pub struct Report {
    /// Model name (for logs and the JSON records).
    pub name: String,
    /// Schedules actually executed.
    pub schedules: usize,
    /// Whether the DFS exhausted the whole choice tree (every
    /// interleaving at this spurious budget was covered).
    pub complete: bool,
    /// The first failing schedule, if any.
    pub violation: Option<Violation>,
}

// ---------------------------------------------------------------------------
// Global execution state
// ---------------------------------------------------------------------------

struct Shared {
    st: Mutex<ExecState>,
    cv: Condvar,
    /// Serializes whole explorations (one execution at a time per
    /// process; `cargo test` runs tests concurrently).
    exec_slot: Mutex<()>,
}

struct ExecState {
    phase: Phase,
    threads: Vec<ThreadSt>,
    mutex_owner: Vec<Option<Tid>>,
    n_cvs: usize,
    n_atomics: usize,
    /// The thread currently allowed to execute model code.
    active: Option<Tid>,
    last_granted: Option<Tid>,
    trace: Vec<String>,
    steps: usize,
    violation: Option<ViolationKind>,
    /// Live model threads (registered, real thread not yet exited);
    /// the controller resets state only once this drains to zero.
    live: usize,
}

impl ExecState {
    fn new() -> Self {
        ExecState {
            phase: Phase::Idle,
            threads: Vec::new(),
            mutex_owner: Vec::new(),
            n_cvs: 0,
            n_atomics: 0,
            active: None,
            last_granted: None,
            trace: Vec::new(),
            steps: 0,
            violation: None,
            live: 0,
        }
    }
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        st: Mutex::new(ExecState::new()),
        cv: Condvar::new(),
        exec_slot: Mutex::new(()),
    })
}

fn lock_state() -> MutexGuard<'static, ExecState> {
    // Poison recovery: a model-thread panic while holding this lock is
    // part of normal violation handling; the state stays structurally
    // valid (every update is atomic under the lock).
    shared().st.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static CUR_TID: std::cell::Cell<Option<Tid>> = const { std::cell::Cell::new(None) };
}

fn current_tid() -> Option<Tid> {
    CUR_TID.with(|c| c.get())
}

/// Whether the calling thread is a controlled model thread of the
/// active execution (shims pass through to plain `std` otherwise).
pub(crate) fn in_model() -> bool {
    current_tid().is_some()
}

/// Panic payload used to unwind model threads when a run is abandoned;
/// caught (and swallowed) by the thread wrapper.
struct AbandonSignal;

// ---------------------------------------------------------------------------
// Thread-side entry points (called by the shims)
// ---------------------------------------------------------------------------

/// Registers a shim object, returning its id — or `None` when no
/// execution is active (pass-through mode).
pub(crate) fn register_mutex() -> Option<usize> {
    if !in_model() {
        return None;
    }
    let mut st = lock_state();
    st.mutex_owner.push(None);
    Some(st.mutex_owner.len() - 1)
}

/// As [`register_mutex`], for condvars.
pub(crate) fn register_cv() -> Option<usize> {
    if !in_model() {
        return None;
    }
    let mut st = lock_state();
    st.n_cvs += 1;
    Some(st.n_cvs - 1)
}

/// As [`register_mutex`], for atomics.
pub(crate) fn register_atomic() -> Option<usize> {
    if !in_model() {
        return None;
    }
    let mut st = lock_state();
    st.n_atomics += 1;
    Some(st.n_atomics - 1)
}

fn abandon_exit(op: &Op) {
    // `MutexUnlock` is the one shim operation reachable from a `Drop`
    // impl (the guard); it must not panic mid-unwind. Everything else
    // unwinds the thread out of the abandoned run.
    if matches!(op, Op::MutexUnlock { .. }) {
        return;
    }
    std::panic::panic_any(AbandonSignal);
}

/// Parks the calling model thread with `op` pending until the
/// controller grants it. Pass-through (no-op) when not in a model.
pub(crate) fn step(op: Op) {
    let Some(tid) = current_tid() else { return };
    let sh = shared();
    let mut st = lock_state();
    if st.phase == Phase::Abandon {
        drop(st);
        abandon_exit(&op);
        return;
    }
    st.threads[tid].status = Status::Ready(op.clone());
    st.active = None;
    sh.cv.notify_all();
    loop {
        if st.phase == Phase::Abandon {
            drop(st);
            abandon_exit(&op);
            return;
        }
        if st.active == Some(tid) {
            st.threads[tid].status = Status::Running;
            return;
        }
        st = sh.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// First park of a spawned thread; returns `false` when the run was
/// abandoned before the thread ever ran (the body must be skipped).
fn enter(tid: Tid) -> bool {
    let sh = shared();
    let mut st = lock_state();
    loop {
        if st.phase == Phase::Abandon {
            return false;
        }
        if st.active == Some(tid) {
            st.threads[tid].status = Status::Running;
            return true;
        }
        st = sh.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

fn finish(tid: Tid, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
    let sh = shared();
    let mut st = lock_state();
    st.threads[tid].status = Status::Finished;
    st.live -= 1;
    if let Some(p) = panic_payload {
        if !p.is::<AbandonSignal>() && st.violation.is_none() {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".into());
            st.trace.push(format!("t{tid} panicked: {msg}"));
            st.violation = Some(ViolationKind::Panic(msg));
        }
    }
    if st.active == Some(tid) {
        st.active = None;
    }
    sh.cv.notify_all();
}

/// Spawns a controlled model thread running `f`; returns its tid and
/// the real join handle (`None` result means the body was skipped or
/// unwound by an abandon).
pub(crate) fn spawn_model<T, F>(f: F) -> (Tid, std::thread::JoinHandle<Option<T>>)
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let child = {
        let mut st = lock_state();
        debug_assert!(st.phase == Phase::Running);
        let budget = st.threads.first().map_or(0, |t| t.spurious_left);
        st.threads.push(ThreadSt {
            status: Status::Unborn,
            spurious_left: budget,
        });
        st.live += 1;
        st.threads.len() - 1
    };
    let handle = std::thread::Builder::new()
        .name(format!("opm-verify-t{child}"))
        .spawn(move || {
            CUR_TID.with(|c| c.set(Some(child)));
            let out = if enter(child) {
                match std::panic::catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        finish(child, None);
                        Some(v)
                    }
                    Err(p) => {
                        finish(child, Some(p));
                        None
                    }
                }
            } else {
                // Abandoned before Begin: never ran, just retire.
                finish(child, None);
                None
            };
            CUR_TID.with(|c| c.set(None));
            out
        })
        .expect("spawn model thread");
    (child, handle)
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// One scheduling alternative at a choice point.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Choice {
    /// Grant `tid` its pending operation.
    Grant(Tid),
    /// Spuriously wake sleeping `tid` (it reacquires its mutex and its
    /// `cond-wait` returns without a notify).
    Spurious(Tid),
}

fn enabled(st: &ExecState, tid: Tid) -> bool {
    match &st.threads[tid].status {
        Status::Ready(op) => match op {
            Op::MutexLock { obj } | Op::Reacquire { mutex: obj } => st.mutex_owner[*obj].is_none(),
            Op::Join { child } => matches!(st.threads[*child].status, Status::Finished),
            _ => true,
        },
        _ => false,
    }
}

/// Deterministic candidate order: the last-granted thread first (bias
/// toward run-to-completion, so DFS visits low-preemption schedules
/// early), then remaining grants by tid, then spurious wakes by tid.
fn candidates(st: &ExecState) -> Vec<Choice> {
    let mut out = Vec::new();
    if let Some(g) = st.last_granted {
        if enabled(st, g) {
            out.push(Choice::Grant(g));
        }
    }
    for tid in 0..st.threads.len() {
        if Some(tid) != st.last_granted && enabled(st, tid) {
            out.push(Choice::Grant(tid));
        }
    }
    for (tid, t) in st.threads.iter().enumerate() {
        if matches!(t.status, Status::Sleeping { .. }) && t.spurious_left > 0 {
            out.push(Choice::Spurious(tid));
        }
    }
    out
}

/// Applies a chosen step to the execution state. Returns the thread to
/// activate, or `None` for steps that leave every thread parked
/// (cond-wait entering sleep, spurious wakes).
fn apply(st: &mut ExecState, choice: &Choice) -> Option<Tid> {
    st.steps += 1;
    match choice {
        Choice::Spurious(tid) => {
            let Status::Sleeping { mutex, .. } = st.threads[*tid].status else {
                unreachable!("spurious wake of a non-sleeping thread");
            };
            st.threads[*tid].spurious_left -= 1;
            st.threads[*tid].status = Status::Ready(Op::Reacquire { mutex });
            st.trace.push(format!("t{tid} spurious-wake"));
            None
        }
        Choice::Grant(tid) => {
            let Status::Ready(op) = st.threads[*tid].status.clone() else {
                unreachable!("granted a non-ready thread");
            };
            st.trace.push(format!("t{tid} {}", op.label()));
            st.last_granted = Some(*tid);
            match op {
                Op::Spawn { child } => {
                    st.threads[child].status = Status::Ready(Op::Begin);
                    Some(*tid)
                }
                Op::MutexLock { obj } | Op::Reacquire { mutex: obj } => {
                    debug_assert!(st.mutex_owner[obj].is_none());
                    st.mutex_owner[obj] = Some(*tid);
                    Some(*tid)
                }
                Op::MutexUnlock { obj } => {
                    debug_assert_eq!(st.mutex_owner[obj], Some(*tid));
                    st.mutex_owner[obj] = None;
                    Some(*tid)
                }
                Op::CondWait { cv, mutex } => {
                    debug_assert_eq!(st.mutex_owner[mutex], Some(*tid));
                    st.mutex_owner[mutex] = None;
                    st.threads[*tid].status = Status::Sleeping { cv, mutex };
                    None
                }
                Op::NotifyAll { cv } => {
                    for t in st.threads.iter_mut() {
                        if let Status::Sleeping { cv: c, mutex } = t.status {
                            if c == cv {
                                t.status = Status::Ready(Op::Reacquire { mutex });
                            }
                        }
                    }
                    Some(*tid)
                }
                Op::NotifyOne { cv } => {
                    for t in st.threads.iter_mut() {
                        if let Status::Sleeping { cv: c, mutex } = t.status {
                            if c == cv {
                                t.status = Status::Ready(Op::Reacquire { mutex });
                                break; // lowest tid only
                            }
                        }
                    }
                    Some(*tid)
                }
                Op::Begin
                | Op::Join { .. }
                | Op::AtomicLoad { .. }
                | Op::AtomicRmw { .. }
                | Op::Yield => Some(*tid),
            }
        }
    }
}

enum Mode<'a> {
    /// Follow `prefix`, then always take alternative 0.
    Dfs { prefix: &'a [usize] },
    /// Follow `prefix` (replay), then draw from the seeded rng.
    Random { prefix: &'a [usize], rng: StdRng },
}

struct RunOutcome {
    violation: Option<(ViolationKind, Vec<String>)>,
    /// `(chosen, n_candidates)` at each choice point.
    points: Vec<(usize, usize)>,
}

/// Executes one schedule of `model` under the controller. `reduced`
/// applies the conflict reduction (random mode only; see module docs).
fn run_one(
    model: &Arc<dyn Fn() + Send + Sync>,
    mode: &mut Mode<'_>,
    opts: &ExploreOpts,
    reduced: bool,
    strict_replay: bool,
) -> RunOutcome {
    let sh = shared();
    // Fresh state for this run.
    {
        let mut st = lock_state();
        debug_assert_eq!(st.live, 0, "stale model threads from a previous run");
        *st = ExecState::new();
        st.phase = Phase::Running;
    }
    // The root model thread (tid 0) runs the closure.
    let model = Arc::clone(model);
    let root = {
        // spawn_model expects to be called with CUR_TID unset only for
        // the root; it reads `spurious_left` from thread 0, so seed the
        // budget by registering the root manually.
        let mut st = lock_state();
        st.threads.push(ThreadSt {
            status: Status::Ready(Op::Begin),
            spurious_left: opts.spurious_budget,
        });
        st.live += 1;
        0
    };
    let root_handle = std::thread::Builder::new()
        .name("opm-verify-t0".into())
        .spawn(move || {
            CUR_TID.with(|c| c.set(Some(root)));
            if enter(root) {
                match std::panic::catch_unwind(AssertUnwindSafe(|| model())) {
                    Ok(()) => finish(root, None),
                    Err(p) => finish(root, Some(p)),
                }
            } else {
                finish(root, None);
            }
            CUR_TID.with(|c| c.set(None));
        })
        .expect("spawn model root thread");

    let mut points: Vec<(usize, usize)> = Vec::new();
    let mut cursor = 0usize;
    let violation = loop {
        let mut st = lock_state();
        // Wait until the active thread parks (or finishes/panics).
        while st.active.is_some() {
            st = sh.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if let Some(v) = st.violation.clone() {
            break Some((v, st.trace.clone()));
        }
        if st.steps >= opts.max_steps {
            break Some((ViolationKind::StepLimit, st.trace.clone()));
        }
        let cands = candidates(&st);
        if cands.is_empty() {
            if st
                .threads
                .iter()
                .all(|t| matches!(t.status, Status::Finished))
            {
                break None; // run complete
            }
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.status, Status::Finished))
                .map(|(tid, t)| match &t.status {
                    Status::Ready(op) => format!("t{tid} blocked at {}", op.label()),
                    Status::Sleeping { cv, .. } => format!("t{tid} sleeping on c{cv}"),
                    _ => format!("t{tid} stuck"),
                })
                .collect();
            break Some((ViolationKind::Deadlock(stuck.join("; ")), st.trace.clone()));
        }
        // Conflict reduction (random mode): keep the current thread
        // running while its pending op commutes with every other
        // enabled pending op — those interleavings are equivalent.
        let mut idx = None;
        if reduced && cands.len() > 1 {
            if let Some(g) = st.last_granted {
                if cands.first() == Some(&Choice::Grant(g)) {
                    let my_op = match &st.threads[g].status {
                        Status::Ready(op) => op.clone(),
                        _ => unreachable!(),
                    };
                    let clash = cands.iter().skip(1).any(|c| match c {
                        Choice::Grant(t) => match &st.threads[*t].status {
                            Status::Ready(op) => my_op.conflicts(op),
                            _ => false,
                        },
                        // A possible spurious wake is always a real
                        // alternative (it can change waiter behavior).
                        Choice::Spurious(_) => true,
                    });
                    if !clash {
                        idx = Some(0);
                    }
                }
            }
        }
        let idx = match idx {
            Some(i) => i, // reduced: not a choice point
            None if cands.len() == 1 => 0,
            None => {
                let want = match &*mode {
                    Mode::Dfs { prefix } => prefix.get(cursor).copied(),
                    Mode::Random { prefix, .. } => prefix.get(cursor).copied(),
                };
                let chosen = match want {
                    Some(w) if w >= cands.len() => {
                        assert!(
                            !strict_replay,
                            "replay diverged: choice {w} of {} at point {cursor} — \
                             the model is not deterministic",
                            cands.len()
                        );
                        cands.len() - 1
                    }
                    Some(w) => w,
                    None => match mode {
                        Mode::Dfs { .. } => 0,
                        Mode::Random { rng, .. } => rng.next_u64() as usize % cands.len(),
                    },
                };
                cursor += 1;
                points.push((chosen, cands.len()));
                chosen
            }
        };
        let activate = apply(&mut st, &cands[idx]);
        st.active = activate;
        sh.cv.notify_all();
        drop(st);
    };

    // End of run: abandon whatever is still parked, then wait for every
    // model thread to retire before the state can be reset.
    {
        let mut st = lock_state();
        st.phase = Phase::Abandon;
        st.active = None;
        sh.cv.notify_all();
        while st.live > 0 {
            st = sh.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.phase = Phase::Idle;
    }
    let _ = root_handle.join();
    RunOutcome { violation, points }
}

/// Suppresses panic output from model threads for the duration of an
/// exploration (expected violations would otherwise spam stderr);
/// panics on other threads keep the previous hook's behavior.
///
/// The previous hook's concrete type is never written out — the hook
/// info type was renamed across toolchains and this crate builds on the
/// workspace MSRV — so the guard stores an erased restore closure.
struct HookGuard {
    restore: Option<Box<dyn FnOnce()>>,
}

impl HookGuard {
    fn install() -> Self {
        let prev = Arc::new(std::panic::take_hook());
        let fwd = Arc::clone(&prev);
        std::panic::set_hook(Box::new(move |info| {
            if !in_model() {
                fwd(info);
            }
        }));
        HookGuard {
            restore: Some(Box::new(move || {
                std::panic::set_hook(Box::new(move |info| prev(info)));
            })),
        }
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        if let Some(restore) = self.restore.take() {
            restore();
        }
    }
}

/// Explores `model` under the schedule search described in the module
/// docs: exhaustive DFS up to [`ExploreOpts::dfs_budget`], then seeded
/// random search with conflict reduction for the remaining budget.
/// Stops at the first violation.
pub fn explore(name: &str, opts: &ExploreOpts, model: impl Fn() + Send + Sync + 'static) -> Report {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let sh = shared();
    let _slot = sh.exec_slot.lock().unwrap_or_else(PoisonError::into_inner);
    let _hook = HookGuard::install();

    let mut schedules = 0usize;
    let mut complete = false;

    // Phase 1: exhaustive DFS.
    let mut prefix: Vec<usize> = Vec::new();
    let dfs_budget = opts.dfs_budget.min(opts.max_schedules);
    loop {
        if schedules >= dfs_budget {
            break;
        }
        let out = run_one(
            &model,
            &mut Mode::Dfs { prefix: &prefix },
            opts,
            false,
            true,
        );
        schedules += 1;
        if let Some((kind, trace)) = out.violation {
            let choices: Vec<usize> = out.points.iter().map(|&(c, _)| c).collect();
            return Report {
                name: name.into(),
                schedules,
                complete: false,
                violation: Some(Violation {
                    kind,
                    schedule: Schedule {
                        choices,
                        reduced: false,
                        spurious_budget: opts.spurious_budget,
                    },
                    trace,
                }),
            };
        }
        // Backtrack: deepest choice point with an untried alternative.
        let mut next_prefix = None;
        for (depth, &(chosen, n)) in out.points.iter().enumerate().rev() {
            if chosen + 1 < n {
                let mut p: Vec<usize> = out.points[..depth].iter().map(|&(c, _)| c).collect();
                p.push(chosen + 1);
                next_prefix = Some(p);
                break;
            }
        }
        match next_prefix {
            Some(p) => prefix = p,
            None => {
                complete = true;
                break;
            }
        }
    }

    // Phase 2: seeded random with conflict reduction, for whatever
    // budget remains (skipped when DFS already covered the whole tree).
    if !complete {
        let mut seeder = StdRng::seed_from_u64(opts.seed);
        while schedules < opts.max_schedules {
            let run_seed = seeder.next_u64();
            let out = run_one(
                &model,
                &mut Mode::Random {
                    prefix: &[],
                    rng: StdRng::seed_from_u64(run_seed),
                },
                opts,
                true,
                true,
            );
            schedules += 1;
            if let Some((kind, trace)) = out.violation {
                let choices: Vec<usize> = out.points.iter().map(|&(c, _)| c).collect();
                return Report {
                    name: name.into(),
                    schedules,
                    complete: false,
                    violation: Some(Violation {
                        kind,
                        schedule: Schedule {
                            choices,
                            reduced: true,
                            spurious_budget: opts.spurious_budget,
                        },
                        trace,
                    }),
                };
            }
        }
    }

    Report {
        name: name.into(),
        schedules,
        complete,
        violation: None,
    }
}

/// Re-runs `model` under a captured [`Schedule`], returning the
/// violation it reproduces (deterministically `None` if it does not —
/// e.g. after the underlying bug was fixed).
pub fn replay(
    model: impl Fn() + Send + Sync + 'static,
    schedule: &Schedule,
    opts: &ExploreOpts,
) -> Option<Violation> {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    replay_arc(&model, schedule, opts, true)
}

fn replay_arc(
    model: &Arc<dyn Fn() + Send + Sync>,
    schedule: &Schedule,
    opts: &ExploreOpts,
    strict: bool,
) -> Option<Violation> {
    let sh = shared();
    let _slot = sh.exec_slot.lock().unwrap_or_else(PoisonError::into_inner);
    let _hook = HookGuard::install();
    let opts = ExploreOpts {
        spurious_budget: schedule.spurious_budget,
        ..opts.clone()
    };
    let out = if schedule.reduced {
        run_one(
            model,
            &mut Mode::Random {
                prefix: &schedule.choices,
                // Past the prefix, bias to run-to-completion (choice 0):
                // deterministic and preemption-minimal.
                rng: StdRng::seed_from_u64(0),
            },
            &opts,
            true,
            strict,
        )
    } else {
        run_one(
            model,
            &mut Mode::Dfs {
                prefix: &schedule.choices,
            },
            &opts,
            false,
            strict,
        )
    };
    out.violation.map(|(kind, trace)| Violation {
        kind,
        schedule: Schedule {
            choices: out.points.iter().map(|&(c, _)| c).collect(),
            reduced: schedule.reduced,
            spurious_budget: schedule.spurious_budget,
        },
        trace,
    })
}

/// Greedily simplifies a failing schedule while preserving its
/// violation kind: first tries zeroing each nonzero choice (choice 0 is
/// "keep the current thread running", so zeros mean fewer
/// preemptions), then trims trailing zeros. Bounded by `max_runs`
/// replays.
pub fn shrink(
    model: impl Fn() + Send + Sync + 'static,
    violation: &Violation,
    opts: &ExploreOpts,
    max_runs: usize,
) -> Violation {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let same_kind = |a: &ViolationKind, b: &ViolationKind| {
        std::mem::discriminant(a) == std::mem::discriminant(b)
    };
    let mut best = violation.clone();
    let mut runs = 0usize;
    let mut i = 0;
    while i < best.schedule.choices.len() && runs < max_runs {
        if best.schedule.choices[i] != 0 {
            let mut cand = best.schedule.clone();
            cand.choices[i] = 0;
            runs += 1;
            if let Some(v) = replay_arc(&model, &cand, opts, false) {
                if same_kind(&v.kind, &best.kind) {
                    best = v;
                    continue; // re-examine the same index in the new schedule
                }
            }
        }
        i += 1;
    }
    while best.schedule.choices.last() == Some(&0) {
        best.schedule.choices.pop();
    }
    // The trimmed schedule must still reproduce (replay fills the tail
    // with zeros, so trimming zeros is semantics-preserving).
    best
}
