//! `opm-verify` — the workspace's correctness-tooling binary.
//!
//! ```text
//! opm-verify model-check [--json PATH] [--budget N]
//! opm-verify lint [--root PATH]
//! ```
//!
//! `model-check` explores the three production sync protocols under the
//! deterministic scheduler (plus the seeded buggy-latch canary, which
//! must *fail* and replay), prints a per-model table, and optionally
//! writes a BENCH-style JSON artifact that `ci/compare_bench.py` gates:
//! explored-schedule floors (`class: "floor"`) and must-hold booleans
//! (`class: "hard_true"`).
//!
//! `lint` runs the repo-invariant scanner over every workspace `src/`
//! tree and exits nonzero on any unallowlisted finding.

use std::path::PathBuf;
use std::process::ExitCode;

use opm_core::json::Json;
use opm_verify::models;
use opm_verify::sched::{replay, shrink, Report};
use opm_verify::{lint, sched};

/// Default per-model schedule budget: three protocol models at this
/// budget clear the 10k explored-schedules CI floor with headroom.
const DEFAULT_BUDGET: usize = 4096;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("model-check") => model_check(&args[1..]),
        Some("lint") => run_lint(&args[1..]),
        _ => {
            eprintln!(
                "usage: opm-verify <model-check [--json PATH] [--budget N] | lint [--root PATH]>"
            );
            ExitCode::from(2)
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Repo root: `--root`, else the workspace root this binary was built
/// from (robust to being run from any working directory).
fn repo_root(args: &[String]) -> PathBuf {
    if let Some(r) = flag_value(args, "--root") {
        return PathBuf::from(r);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn print_report(r: &Report) {
    let status = match &r.violation {
        None if r.complete => "ok (exhaustive)",
        None => "ok",
        Some(_) => "VIOLATION",
    };
    println!("  {:<24} {:>8} schedules   {status}", r.name, r.schedules);
    if let Some(v) = &r.violation {
        println!("    {}", v.kind);
        println!("    schedule: {:?}", v.schedule.choices);
        for step in &v.trace {
            println!("      {step}");
        }
    }
}

fn model_check(args: &[String]) -> ExitCode {
    let budget: usize = flag_value(args, "--budget")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_BUDGET);

    println!("opm-verify model-check (budget {budget} schedules/model)");
    println!("protocol models (must pass):");
    let cache = models::check_cache_latch(budget);
    print_report(&cache);
    let work = models::check_work_index(budget);
    print_report(&work);
    let cancel = models::check_cancel(budget);
    print_report(&cancel);
    let protocols_ok =
        cache.violation.is_none() && work.violation.is_none() && cancel.violation.is_none();

    // The canary: a seeded lost wakeup the checker must catch, replay
    // deterministically, and shrink.
    println!("seeded-bug canary (must fail):");
    let buggy = sched::explore(
        "buggy_latch",
        &models::buggy_opts(),
        models::buggy_latch_model(),
    );
    let caught = buggy.violation.is_some();
    let (replayed, shrunk_len) = match &buggy.violation {
        Some(v) => {
            let again = replay(
                models::buggy_latch_model(),
                &v.schedule,
                &models::buggy_opts(),
            );
            let replayed = again.as_ref().is_some_and(|w| {
                std::mem::discriminant(&w.kind) == std::mem::discriminant(&v.kind)
            });
            let small = shrink(models::buggy_latch_model(), v, &models::buggy_opts(), 64);
            (replayed, Some(small.schedule.choices.len()))
        }
        None => (false, None),
    };
    println!(
        "  {:<24} {:>8} schedules   {}",
        buggy.name,
        buggy.schedules,
        if caught { "caught (good)" } else { "MISSED" },
    );
    if let Some(v) = &buggy.violation {
        println!("    {}", v.kind);
        println!(
            "    schedule: {:?}  (replayed: {replayed}, shrunk to {} choice(s))",
            v.schedule.choices,
            shrunk_len.unwrap_or(v.schedule.choices.len()),
        );
    }

    let total = cache.schedules + work.schedules + cancel.schedules;
    println!("total protocol schedules explored: {total}");

    if let Some(path) = flag_value(args, "--json") {
        let record = |id: &str, value: Json, class: &str| {
            Json::Obj(vec![
                ("id".into(), Json::str(id)),
                ("value".into(), value),
                ("class".into(), Json::str(class)),
            ])
        };
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("opm-bench-verify/v1")),
            (
                "note".into(),
                Json::str(
                    "opm-verify model-check artifact: explored-schedule counts for the three \
                     production sync-protocol models (GateCache single-flight + panic \
                     containment, opm-par work-index claims, CancelCore monotonicity) and \
                     must-hold booleans for the seeded buggy-latch canary. `class: floor` \
                     records gate the candidate at >= the committed reference; `class: \
                     hard_true` records must be exactly 1. Regenerate: cargo run --release -p \
                     opm-verify -- model-check --json BENCH_verify.json",
                ),
            ),
            (
                "records".into(),
                Json::Arr(vec![
                    record(
                        "verify/cache_latch_schedules",
                        Json::Int(cache.schedules as i64),
                        "floor",
                    ),
                    record(
                        "verify/work_index_schedules",
                        Json::Int(work.schedules as i64),
                        "floor",
                    ),
                    record(
                        "verify/cancel_schedules",
                        Json::Int(cancel.schedules as i64),
                        "floor",
                    ),
                    record("verify/total_schedules", Json::Int(total as i64), "floor"),
                    record(
                        "verify/model_check_passed",
                        Json::Int(i64::from(protocols_ok)),
                        "hard_true",
                    ),
                    record(
                        "verify/buggy_latch_caught",
                        Json::Int(i64::from(caught)),
                        "hard_true",
                    ),
                    record(
                        "verify/buggy_latch_replayed",
                        Json::Int(i64::from(replayed)),
                        "hard_true",
                    ),
                ]),
            ),
        ]);
        if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if protocols_ok && caught && replayed {
        println!("model-check: PASS");
        ExitCode::SUCCESS
    } else {
        println!("model-check: FAIL");
        ExitCode::FAILURE
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let root = repo_root(args);
    match lint::lint_repo(&root) {
        Err(e) => {
            eprintln!("lint infrastructure error: {e}");
            ExitCode::FAILURE
        }
        Ok(report) => {
            println!(
                "opm-verify lint: {} file(s) scanned, {} finding(s) allowlisted",
                report.files_scanned, report.allowed
            );
            for stale in &report.unused_allows {
                println!("  note: unused allowlist entry ({stale})");
            }
            if report.ok() {
                println!("lint: PASS");
                ExitCode::SUCCESS
            } else {
                for f in &report.findings {
                    println!("  {f}");
                }
                println!("lint: FAIL ({} finding(s))", report.findings.len());
                ExitCode::FAILURE
            }
        }
    }
}
