//! The concurrency models `opm-verify -- model-check` explores.
//!
//! Three of the four models instantiate *production* protocol code —
//! [`opm_core::gate::GateCache`], [`opm_par::claim_indices`],
//! [`opm_core::cancel::CancelCore`] — on the shim primitives in
//! [`crate::sync`], so the checked code is byte-for-byte the code the
//! engine runs (the generic-over-[`MonitorFamily`] refactor exists for
//! exactly this). The fourth, [`BuggyLatch`], carries a deliberately
//! seeded lost-wakeup and exists to prove the checker *can* catch the
//! bug class the real latch is claimed to be free of: its exploration
//! must fail, replay deterministically, and shrink to a short trace.
//!
//! [`MonitorFamily`]: opm_core::sync::MonitorFamily

use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::PoisonError;

use opm_core::cancel::{CancelCore, CancelReason};
use opm_core::gate::GateCache;

use crate::sched::{explore, ExploreOpts, Report};
use crate::sync::{
    thread, Arc, AtomicUsize, Condvar, Mutex, ShimAtomicCounter, ShimCancelFlag, ShimSync,
    TickDeadline,
};

/// The cache the single-flight models drive: the production
/// [`GateCache`] on the shim sync family.
type ShimCache = GateCache<u64, u64, String, ShimSync>;

const PANIC_ERROR: &str = "build panicked";

/// Single-flight: two racers hit a cold key; the checker proves that in
/// **every** interleaving exactly one runs the build closure, the other
/// parks on the key's latch and wakes with the built value (a lost
/// wakeup would leave it asleep forever — reported as a deadlock), and
/// both observe the same value.
pub fn cache_single_flight_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let cache: Arc<ShimCache> = Arc::new(GateCache::new(2, || PANIC_ERROR.to_string()));
        let builds = Arc::new(AtomicUsize::new(0));
        let racers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                thread::spawn(move || {
                    let (v, hit) = cache
                        .get_or_build(7, || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            Ok(40)
                        })
                        .expect("the build closure is infallible");
                    assert_eq!(v, 40, "waiter observed a value it did not wait for");
                    hit
                })
            })
            .collect();
        let hits: Vec<bool> = racers
            .into_iter()
            .map(|h| h.join().expect("racer panicked"))
            .collect();
        assert_eq!(
            builds.load(Ordering::SeqCst),
            1,
            "N racers must cost exactly one build"
        );
        assert_eq!(
            hits.iter().filter(|&&h| !h).count(),
            1,
            "exactly one racer may report a miss"
        );
        let s = cache.stats();
        assert_eq!((s.misses, s.len), (1, 1), "one interned value, one miss");
    }
}

/// Panic containment: every racer's build panics. The checker proves
/// the builder re-raises on its own thread, every waiter wakes with the
/// `panic_error` (not a hang, not a poisoned lock), the placeholder is
/// removed, and the cache remains fully usable for the next build.
pub fn cache_panicking_build_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let cache: Arc<ShimCache> = Arc::new(GateCache::new(2, || PANIC_ERROR.to_string()));
        let racers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let out = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        cache.get_or_build(7, || panic!("injected build failure"))
                    }));
                    match out {
                        // The builder: the injected panic resumed here.
                        Err(_) => {}
                        // A waiter: woken with the panic error.
                        Ok(Err(e)) => assert_eq!(e, PANIC_ERROR),
                        Ok(Ok(_)) => panic!("no value can come out of a panicking build"),
                    }
                })
            })
            .collect();
        for h in racers {
            h.join().expect("racer panicked outside the injected path");
        }
        // The placeholder must be gone and the key rebuildable.
        let (v, hit) = cache
            .get_or_build(7, || Ok(1))
            .expect("cache unusable after a panicked build");
        assert_eq!((v, hit), (1, false), "the failed build must not be cached");
    }
}

/// Work distribution: three workers run the production
/// [`opm_par::claim_indices`] loop over a shared shim counter. The
/// checker proves every index in `0..len` is claimed exactly once
/// across workers and every loop terminates (non-termination would trip
/// the deadlock/step-limit detector) — for every interleaving of the
/// counter's read-modify-writes.
pub fn work_index_model() -> impl Fn() + Send + Sync + 'static {
    || {
        const LEN: usize = 3;
        let next = Arc::new(ShimAtomicCounter::new());
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let next = Arc::clone(&next);
                thread::spawn(move || {
                    let mut mine = Vec::new();
                    opm_par::claim_indices(&*next, LEN, |i| mine.push(i));
                    mine
                })
            })
            .collect();
        let mut all: Vec<usize> = workers
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..LEN).collect::<Vec<_>>(),
            "every index must be claimed exactly once across workers"
        );
    }
}

/// Cancellation: the production [`CancelCore`] on a shim flag and a
/// virtual-clock deadline, with one thread cancelling explicitly and
/// another expiring the deadline. The checker proves cancellation is
/// monotone (no observer ever sees cancelled → not-cancelled), an
/// `Explicit` observation never degrades to `Deadline`, and with both
/// causes fired every clone settles on `Explicit` (the documented
/// flag-before-deadline priority).
pub fn cancel_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let clock = Arc::new(AtomicUsize::new(0));
        let core = Arc::new(CancelCore::new(
            ShimCancelFlag::new(),
            Some(TickDeadline {
                now: Arc::clone(&clock),
                at: 1,
            }),
        ));
        let canceller = {
            let core = Arc::clone(&core);
            thread::spawn(move || core.cancel())
        };
        let ticker = thread::spawn(move || clock.store(1, Ordering::SeqCst));
        let mut seen: Option<CancelReason> = None;
        for _ in 0..4 {
            let r = core.reason();
            match (seen, r) {
                (Some(_), None) => panic!("cancellation went backwards"),
                (Some(CancelReason::Explicit), Some(CancelReason::Deadline)) => {
                    panic!("an Explicit observation degraded to Deadline")
                }
                _ => {}
            }
            if r.is_some() {
                seen = r;
            }
        }
        canceller.join().expect("canceller panicked");
        ticker.join().expect("ticker panicked");
        assert_eq!(
            core.reason(),
            Some(CancelReason::Explicit),
            "with both causes fired, the flag must outrank the deadline"
        );
        assert!(core.is_cancelled());
    }
}

// ---------------------------------------------------------------------------
// The seeded bug
// ---------------------------------------------------------------------------

/// A latch with a deliberately seeded **lost wakeup** — the bug class
/// [`opm_core::latch::Latch`] is model-checked to be free of. `wait`
/// checks the slot under the lock, *releases* it, then reacquires to
/// sleep: a `resolve` landing in that gap stores the value and fires
/// its notify while nobody is sleeping, and the waiter then sleeps
/// forever. The checker must find this as a deadlock within a bounded
/// number of schedules.
pub struct BuggyLatch<T: Clone> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T: Clone> Default for BuggyLatch<T> {
    fn default() -> Self {
        BuggyLatch::new()
    }
}

impl<T: Clone> BuggyLatch<T> {
    /// An unresolved buggy latch.
    pub fn new() -> Self {
        BuggyLatch {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Stores the outcome and wakes current sleepers — correct on its
    /// own; the bug is on the wait side.
    pub fn resolve(&self, v: T) {
        let mut g = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if g.is_none() {
            *g = Some(v);
        }
        drop(g);
        self.cv.notify_all();
    }

    /// BUG: the slot check and the sleep are under *separate* lock
    /// acquisitions, so a resolve between them is lost. (The correct
    /// pattern — the one `Monitor::wait_until` hard-codes — re-checks
    /// the predicate under the same lock the wait releases.)
    pub fn wait(&self) -> T {
        loop {
            if let Some(v) = self
                .slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()
            {
                return v;
            }
            // <-- the gap: a resolve + notify landing here is lost.
            let g = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
            let _woken = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One waiter, one resolver, over [`BuggyLatch`]. Exploration must
/// report a deadlock (the lost wakeup) — this model failing to fail
/// would mean the checker has lost its teeth.
pub fn buggy_latch_model() -> impl Fn() + Send + Sync + 'static {
    || {
        let latch: Arc<BuggyLatch<u32>> = Arc::new(BuggyLatch::new());
        let waiter = {
            let latch = Arc::clone(&latch);
            thread::spawn(move || latch.wait())
        };
        latch.resolve(9);
        assert_eq!(waiter.join().expect("waiter panicked"), 9);
    }
}

// ---------------------------------------------------------------------------
// Exploration entry points (shared by `main.rs` and the self-tests)
// ---------------------------------------------------------------------------

/// Per-model exploration budgets tuned so the three protocol models
/// clear the CI floor on explored schedules while the whole pass stays
/// in single-digit seconds. Half the budget goes to exhaustive DFS,
/// half to the seeded random phase (skipped when DFS already covered
/// the whole tree) — either way the schedule count is deterministic,
/// which is what lets a bench-style gate assert a floor on it.
fn protocol_opts(max_schedules: usize) -> ExploreOpts {
    ExploreOpts {
        max_schedules,
        dfs_budget: max_schedules / 2,
        spurious_budget: 1,
        ..ExploreOpts::default()
    }
}

/// Explores the single-flight model (plus its panic-containment
/// variant, folded into one report: the sum of schedules, the first
/// violation of either).
pub fn check_cache_latch(max_schedules: usize) -> Report {
    let a = explore(
        "cache_latch/single_flight",
        &protocol_opts(max_schedules / 2),
        cache_single_flight_model(),
    );
    if a.violation.is_some() {
        return a;
    }
    let b = explore(
        "cache_latch/panicking_build",
        &protocol_opts(max_schedules - a.schedules),
        cache_panicking_build_model(),
    );
    Report {
        name: "cache_latch".into(),
        schedules: a.schedules + b.schedules,
        complete: a.complete && b.complete,
        violation: b.violation,
    }
}

/// Explores the work-index model.
pub fn check_work_index(max_schedules: usize) -> Report {
    explore(
        "work_index",
        &protocol_opts(max_schedules),
        work_index_model(),
    )
}

/// Explores the cancellation model.
pub fn check_cancel(max_schedules: usize) -> Report {
    explore("cancel", &protocol_opts(max_schedules), cancel_model())
}

/// Budget for the buggy-latch hunt: the lost wakeup must surface within
/// this many schedules (it shows up almost immediately under DFS — the
/// bound exists so a regression fails loudly instead of spinning).
pub const BUGGY_LATCH_BUDGET: usize = 200;

/// Exploration options for the buggy-latch model: no spurious wakeups
/// (a spurious wake would *mask* the lost wakeup — precisely why real
/// code must not rely on them).
pub fn buggy_opts() -> ExploreOpts {
    ExploreOpts {
        max_schedules: BUGGY_LATCH_BUDGET,
        dfs_budget: BUGGY_LATCH_BUDGET,
        spurious_budget: 0,
        ..ExploreOpts::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The models are also plain functions over pass-through shims:
    /// outside an exploration they must run clean on the real OS
    /// scheduler (one arbitrary interleaving). The buggy-latch model is
    /// deliberately absent — on the OS scheduler its lost wakeup is a
    /// genuine (if unlikely) hang, which is the whole point of checking
    /// it under a controlled one instead.
    #[test]
    fn models_pass_through_outside_the_checker() {
        cache_single_flight_model()();
        cache_panicking_build_model()();
        work_index_model()();
        cancel_model()();
    }
}
