//! Shim synchronization primitives controlled by the scheduler.
//!
//! Drop-in lookalikes for the `std::sync` types the workspace's
//! protocols use — [`Mutex`], [`Condvar`], [`AtomicUsize`],
//! [`AtomicBool`], [`thread::spawn`]/[`thread::JoinHandle`] — that
//! report every operation to [`crate::sched`] as a scheduling point.
//! Data is still genuinely guarded: each shim mutex wraps a real
//! `std::sync::Mutex` (always uncontended, because the scheduler admits
//! the lock only when it is free), so a scheduler bug would surface as
//! a real race rather than silent corruption.
//!
//! Outside an active exploration the shims **pass through** to plain
//! `std` behavior (the scheduler hooks are no-ops), so code generic
//! over [`ShimSync`] also runs normally — handy in the checker's own
//! unit tests.
//!
//! [`ShimSync`] implements [`opm_core::sync::MonitorFamily`] (and
//! [`ShimCancelFlag`] implements [`opm_core::sync::CancelFlag`],
//! [`ShimAtomicCounter`] implements [`opm_par::ClaimCounter`]), which
//! is how the *production* protocol code — `GateCache`, `Latch`,
//! `CancelCore`, `claim_indices` — is instantiated on these shims and
//! model-checked without a test-only copy drifting out of sync.

use std::panic::{RefUnwindSafe, UnwindSafe};
use std::sync::PoisonError;

use crate::sched::{self, Op};

pub use std::sync::Arc;

/// A scheduler-controlled mutex.
///
/// `lock` is a scheduling point; the scheduler grants it only while no
/// other model thread holds the mutex, so the inner `std` mutex never
/// blocks (a `try_lock` failure would mean a scheduler bug, and
/// panics).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    /// Scheduler object id; `None` when created outside an execution
    /// (pass-through mode).
    id: Option<usize>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new shim mutex registered with the active execution (if any).
    pub fn new(value: T) -> Self {
        Mutex {
            id: sched::register_mutex(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex (scheduling point).
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        if let Some(id) = self.id {
            sched::step(Op::MutexLock { obj: id });
            let inner = match self.inner.try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => {
                    unreachable!("scheduler granted a held mutex")
                }
            };
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
            })
        } else {
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
            })
        }
    }
}

impl<T> UnwindSafe for Mutex<T> {}
impl<T> RefUnwindSafe for Mutex<T> {}

/// Guard returned by [`Mutex::lock`]; releasing it (drop) is a
/// scheduling point.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    /// The shim mutex this guard locks — kept so [`Condvar::wait`] can
    /// release and reacquire the underlying lock.
    lock: &'a Mutex<T>,
    /// `Option` so [`Condvar::wait`] can release and reacquire in
    /// place; always `Some` outside that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then report: the scheduler may
        // immediately grant the mutex to another thread.
        self.inner.take();
        if let Some(id) = self.lock.id {
            sched::step(Op::MutexUnlock { obj: id });
        }
    }
}

/// A scheduler-controlled condition variable with `std` semantics:
/// `wait` atomically releases the mutex and sleeps; a notify arriving
/// while no one sleeps is lost (which is exactly the class of bug the
/// checker exists to find).
#[derive(Debug, Default)]
pub struct Condvar {
    id: Option<usize>,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new shim condvar registered with the active execution (if any).
    pub fn new() -> Self {
        Condvar {
            id: sched::register_cv(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Releases `guard`'s mutex, sleeps until a notify (or an injected
    /// spurious wakeup), reacquires, and returns the guard.
    pub fn wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>> {
        match (self.id, guard.lock.id) {
            (Some(cv), Some(mutex)) => {
                // Drop the real lock; the scheduler's CondWait step
                // makes release-and-sleep atomic from the model's view
                // (no other thread runs in between).
                drop(guard.inner.take().expect("guard live"));
                sched::step(Op::CondWait { cv, mutex });
                // Woken: the scheduler has granted the reacquire, so
                // the real mutex is ours again.
                let inner = match guard.lock.inner.try_lock() {
                    Ok(g) => g,
                    Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        unreachable!("scheduler granted a held mutex on wake")
                    }
                };
                guard.inner = Some(inner);
                Ok(guard)
            }
            _ => {
                let std_guard = guard.inner.take().expect("guard live");
                let woken = self
                    .inner
                    .wait(std_guard)
                    .unwrap_or_else(PoisonError::into_inner);
                guard.inner = Some(woken);
                Ok(guard)
            }
        }
    }

    /// Wakes every thread sleeping on this condvar (scheduling point).
    pub fn notify_all(&self) {
        match self.id {
            Some(cv) => sched::step(Op::NotifyAll { cv }),
            None => self.inner.notify_all(),
        }
    }

    /// Wakes one thread sleeping on this condvar (scheduling point;
    /// the scheduler deterministically picks the lowest-numbered
    /// sleeper).
    pub fn notify_one(&self) {
        match self.id {
            Some(cv) => sched::step(Op::NotifyOne { cv }),
            None => self.inner.notify_one(),
        }
    }
}

/// Atomic counter shim; every access is a scheduling point.
#[derive(Debug, Default)]
pub struct AtomicUsize {
    id: Option<usize>,
    inner: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    /// A new shim atomic registered with the active execution (if any).
    pub fn new(v: usize) -> Self {
        AtomicUsize {
            id: sched::register_atomic(),
            inner: std::sync::atomic::AtomicUsize::new(v),
        }
    }

    /// Atomic read (scheduling point).
    pub fn load(&self, order: std::sync::atomic::Ordering) -> usize {
        if let Some(obj) = self.id {
            sched::step(Op::AtomicLoad { obj });
        }
        self.inner.load(order)
    }

    /// Atomic fetch-add (scheduling point).
    pub fn fetch_add(&self, v: usize, order: std::sync::atomic::Ordering) -> usize {
        if let Some(obj) = self.id {
            sched::step(Op::AtomicRmw { obj });
        }
        self.inner.fetch_add(v, order)
    }

    /// Atomic store (scheduling point).
    pub fn store(&self, v: usize, order: std::sync::atomic::Ordering) {
        if let Some(obj) = self.id {
            sched::step(Op::AtomicRmw { obj });
        }
        self.inner.store(v, order);
    }
}

/// Atomic flag shim; every access is a scheduling point.
#[derive(Debug, Default)]
pub struct AtomicBool {
    id: Option<usize>,
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// A new shim atomic registered with the active execution (if any).
    pub fn new(v: bool) -> Self {
        AtomicBool {
            id: sched::register_atomic(),
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    /// Atomic read (scheduling point).
    pub fn load(&self, order: std::sync::atomic::Ordering) -> bool {
        if let Some(obj) = self.id {
            sched::step(Op::AtomicLoad { obj });
        }
        self.inner.load(order)
    }

    /// Atomic store (scheduling point).
    pub fn store(&self, v: bool, order: std::sync::atomic::Ordering) {
        if let Some(obj) = self.id {
            sched::step(Op::AtomicRmw { obj });
        }
        self.inner.store(v, order);
    }
}

/// Scheduler-controlled `thread` namespace: [`thread::spawn`] and
/// [`thread::yield_now`] over model threads.
pub mod thread {
    use crate::sched::{self, Op};

    /// Handle to a spawned model (or, in pass-through mode, plain OS)
    /// thread.
    pub struct JoinHandle<T> {
        /// `None` when spawned outside an execution (pass-through).
        tid: Option<sched::Tid>,
        inner: std::thread::JoinHandle<Option<T>>,
    }

    impl<T> JoinHandle<T> {
        /// Joins the thread (scheduling point; enabled once the child
        /// finished). Returns `Err` if the child panicked — but note
        /// that under the checker a child panic already ends the run
        /// as a violation.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some(tid) = self.tid {
                sched::step(Op::Join { child: tid });
            }
            match self.inner.join() {
                Ok(Some(v)) => Ok(v),
                // Body skipped/unwound by an abandoned run: surface as
                // a panic-shaped error; the violation is already
                // recorded and the caller is itself unwinding.
                Ok(None) => Err(Box::new("model run abandoned")),
                Err(e) => Err(e),
            }
        }
    }

    /// Spawns a scheduler-controlled thread (a plain OS thread when no
    /// execution is active).
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if sched::in_model() {
            let (tid, inner) = sched::spawn_model(f);
            sched::step(Op::Spawn { child: tid });
            JoinHandle {
                tid: Some(tid),
                inner,
            }
        } else {
            JoinHandle {
                tid: None,
                inner: std::thread::spawn(move || Some(f())),
            }
        }
    }

    /// Explicit scheduling point with no object effect (a plain
    /// [`std::thread::yield_now`] outside an execution).
    pub fn yield_now() {
        if sched::in_model() {
            sched::step(Op::Yield);
        } else {
            std::thread::yield_now();
        }
    }
}

// ---------------------------------------------------------------------------
// Trait impls wiring the production protocols onto the shims
// ---------------------------------------------------------------------------

/// Shim monitor: [`Mutex`] + [`Condvar`] implementing
/// [`opm_core::sync::Monitor`], mirroring `StdMonitor` exactly.
#[derive(Debug, Default)]
pub struct ShimMonitor<T> {
    state: Mutex<T>,
    cv: Condvar,
}

impl<T: Send + 'static> opm_core::sync::Monitor<T> for ShimMonitor<T> {
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut g)
    }

    fn wait_until<R>(&self, mut pred: impl FnMut(&mut T) -> Option<R>) -> R {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = pred(&mut g) {
                return r;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn notify_with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        // Mirrors `StdMonitor` exactly: mutate, notify while still
        // holding the lock, release on return.
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let r = f(&mut g);
        self.cv.notify_all();
        r
    }
}

/// [`opm_core::sync::MonitorFamily`] over the shim primitives —
/// substitute for `StdSync` to model-check monitor-based protocols.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShimSync;

impl opm_core::sync::MonitorFamily for ShimSync {
    type Monitor<T: Send + 'static> = ShimMonitor<T>;

    fn monitor<T: Send + 'static>(init: T) -> Self::Monitor<T> {
        ShimMonitor {
            state: Mutex::new(init),
            cv: Condvar::new(),
        }
    }
}

/// Shim [`opm_core::sync::CancelFlag`] over [`AtomicBool`].
#[derive(Debug, Default)]
pub struct ShimCancelFlag(AtomicBool);

impl ShimCancelFlag {
    /// A fresh, unset flag.
    pub fn new() -> Self {
        ShimCancelFlag(AtomicBool::new(false))
    }
}

impl opm_core::sync::CancelFlag for ShimCancelFlag {
    fn set(&self) {
        self.0.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    fn get(&self) -> bool {
        self.0.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// Virtual-clock [`opm_core::sync::DeadlineSource`]: "now" is an
/// [`AtomicUsize`] tick some model thread advances; the deadline
/// expires at a fixed tick. Stands in for the wall clock so deadline
/// protocols are schedulable.
#[derive(Debug)]
pub struct TickDeadline {
    /// Shared virtual clock.
    pub now: Arc<AtomicUsize>,
    /// Expiry tick (expired once `now >= at`).
    pub at: usize,
}

impl opm_core::sync::DeadlineSource for TickDeadline {
    fn expired(&self) -> bool {
        self.now.load(std::sync::atomic::Ordering::SeqCst) >= self.at
    }
}

/// Shim [`opm_par::ClaimCounter`] over [`AtomicUsize`] — lets the
/// checker drive the *production* `claim_indices` loop.
#[derive(Debug, Default)]
pub struct ShimAtomicCounter(pub AtomicUsize);

impl ShimAtomicCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        ShimAtomicCounter(AtomicUsize::new(0))
    }
}

impl opm_par::ClaimCounter for ShimAtomicCounter {
    fn claim_next(&self) -> usize {
        self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }
}
