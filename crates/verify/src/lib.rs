//! In-tree correctness tooling for the OPM workspace.
//!
//! Two instruments, one crate:
//!
//! - **A deterministic-schedule concurrency model checker**
//!   ([`sched`], [`sync`], [`models`]): shim sync primitives under a
//!   controlling scheduler explore the interleavings of the
//!   workspace's load-bearing protocols — the plan cache's
//!   single-flight build gate, `opm-par`'s work-index claim loop, and
//!   `CancelToken`'s flag/deadline core. The protocols are *production
//!   code*, instantiated on the shims through the
//!   [`opm_core::sync::MonitorFamily`] abstraction, so what is checked
//!   is what ships. Violations come back as replayable, shrinkable
//!   schedule traces.
//! - **A repo-invariant lint pass** ([`lint`]): a hand-rolled scanner
//!   enforcing the workspace's cross-cutting source rules (poison
//!   discipline, no wall-clock in kernel crates, `SAFETY:`-annotated
//!   `unsafe`, no fused multiply-add in panel kernels, no stray
//!   printing in library crates), each rule with a justified allowlist.
//!
//! Both run in CI via the `opm-verify` binary: `opm-verify model-check`
//! and `opm-verify lint`.

// No unsafe anywhere in this crate; the only unsafe in the workspace
// is the audited AVX panel dispatch in opm-{core,sparse,fracnum}.
#![forbid(unsafe_code)]

pub mod lint;
pub mod models;
pub mod sched;
pub mod sync;
