//! Repo-invariant lint pass: a hand-rolled scanner for the
//! cross-cutting source rules the workspace's correctness story leans
//! on. No `syn`, no regex crate — a code mask (comments and string
//! literals blanked) plus token scanning is enough for every rule here,
//! and keeps the tool std-only like the rest of the tree.
//!
//! # Rules
//!
//! | rule | scope | bans |
//! |------|-------|------|
//! | `poison-unwrap` | all library code | `.lock().unwrap()` / `.lock().expect(` — PR 8's poison discipline is `unwrap_or_else(PoisonError::into_inner)` (or a monitor that encapsulates it) |
//! | `wall-clock` | kernel crates | `Instant`, `SystemTime`, `thread::sleep` — solver numerics must be replayable; time is a serving-layer concern |
//! | `unsafe-safety` | all library code | an `unsafe` token with no `SAFETY:` comment (or `# Safety` doc) within the preceding lines |
//! | `panel-fast-math` | kernel crates | `mul_add` / `*_fast` intrinsics — the panel kernels carry a bit-identity contract against the scalar reference (`kernel/panel_vs_scalar_max_abs_delta == 0`), and fused rounding breaks it |
//! | `stray-print` | library code (not bins) | `println!` / `eprintln!` / `print!` / `eprint!` / `dbg!` — libraries report through return values and the JSON metrics surface |
//!
//! Test code is exempt everywhere: `#[cfg(test)]` regions are tracked
//! by brace counting, and only `src/` trees are scanned (integration
//! `tests/`, `benches/`, `examples/` are not library code).
//!
//! # Allowlists
//!
//! Each rule reads `crates/verify/allow/<rule>.txt`: one
//! `path -- justification` per line. An entry must carry a non-empty
//! justification and silences the rule for that whole file. Unused
//! entries are reported (stale allowlists rot) but do not fail the run.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose `src/` holds solver numerics: deterministic, clock-free
/// code the paper-facing claims (replayability, bit-identity panels)
/// are made about. The serving/bench layers are deliberately absent.
pub const KERNEL_CRATES: &[&str] = &[
    "basis",
    "circuits",
    "core",
    "fft",
    "fracnum",
    "linalg",
    "par",
    "rng",
    "sparse",
    "system",
    "transient",
    "waveform",
];

/// Every lint rule, in report order.
pub const RULES: &[&str] = &[
    "poison-unwrap",
    "wall-clock",
    "unsafe-safety",
    "panel-fast-math",
    "stray-print",
];

/// One lint hit.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// Outcome of a whole-repo lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations (after allowlisting). Empty = pass.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings silenced by allowlist entries.
    pub allowed: usize,
    /// Allowlist entries that silenced nothing (stale — reported, not
    /// fatal).
    pub unused_allows: Vec<String>,
}

impl LintReport {
    /// Whether the run passed.
    pub fn ok(&self) -> bool {
        self.findings.is_empty()
    }
}

/// How a file is classified for rule scoping.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileClass {
    /// Inside a kernel crate's `src/` ([`KERNEL_CRATES`]).
    pub kernel: bool,
    /// A binary entry point (`main.rs` or under `src/bin/`) — exempt
    /// from `stray-print`.
    pub bin: bool,
}

impl FileClass {
    /// Classification from a repo-relative path.
    pub fn from_path(rel: &str) -> FileClass {
        let kernel = KERNEL_CRATES
            .iter()
            .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
        let bin = rel.ends_with("/main.rs") || rel.contains("/src/bin/");
        FileClass { kernel, bin }
    }
}

// ---------------------------------------------------------------------------
// Code mask
// ---------------------------------------------------------------------------

/// Returns `source` with comments, string/char literals blanked to
/// spaces (newlines kept), so token scans cannot be fooled by text in
/// strings or docs. Handles line/nested-block comments, raw strings
/// (`r#"…"#`), byte strings, escapes, and distinguishes char literals
/// from lifetimes.
pub fn mask_code(source: &str) -> String {
    let b = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, bytes: &[u8]| {
        for &c in bytes {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = source[i..].find('\n').map_or(b.len(), |n| i + n);
            blank(&mut out, &b[i..end]);
            i = end;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, &b[start..i]);
            continue;
        }
        // Raw string: r"…" / r#"…"# / br#"…"# (any # count).
        if c == b'r' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'r') {
            let r_at = if c == b'b' { i + 1 } else { i };
            let mut j = r_at + 1;
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                // Find closing `"` followed by `hashes` #s.
                let closer = format!("\"{}", "#".repeat(hashes));
                let body_start = j + 1;
                let end = source[body_start..]
                    .find(&closer)
                    .map_or(b.len(), |n| body_start + n + closer.len());
                blank(&mut out, &b[i..end]);
                i = end;
                continue;
            }
        }
        // Plain / byte string.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"') {
            let start = i;
            i += if c == b'b' { 2 } else { 1 };
            while i < b.len() {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, &b[start..i.min(b.len())]);
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal; 'ident
        // (no closing quote right after) is a lifetime and passes
        // through.
        if c == b'\'' && i + 1 < b.len() {
            let is_escape = b[i + 1] == b'\\';
            let closes_simple = i + 2 < b.len() && b[i + 2] == b'\'';
            if is_escape || closes_simple {
                let start = i;
                i += 1;
                if b[i] == b'\\' {
                    i += 2;
                } else {
                    i += 1;
                }
                // Consume up to the closing quote (handles '\x7f').
                while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                    i += 1;
                }
                if i < b.len() && b[i] == b'\'' {
                    i += 1;
                }
                blank(&mut out, &b[start..i.min(b.len())]);
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8(out).expect("mask preserves UTF-8 (multibyte only inside blanked spans)")
}

/// Marks, per line (0-based), whether it falls inside a `#[cfg(test)]`
/// item — tracked by brace counting on the masked source.
pub fn test_region_lines(mask: &str) -> Vec<bool> {
    let n_lines = mask.lines().count();
    let mut in_test = vec![false; n_lines];
    let b = mask.as_bytes();
    let mut search_from = 0;
    while let Some(pos) = mask[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + pos;
        // The guarded item's body: from the first `{` after the
        // attribute to its matching `}`.
        let Some(open_rel) = mask[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0usize;
        let mut end = b.len();
        for (k, &c) in b.iter().enumerate().skip(open) {
            if c == b'{' {
                depth += 1;
            } else if c == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
        }
        let line_of = |byte: usize| mask[..byte].bytes().filter(|&c| c == b'\n').count();
        let (first, last) = (
            line_of(attr_at),
            line_of(end.min(b.len().saturating_sub(1))),
        );
        for l in in_test.iter_mut().take((last + 1).min(n_lines)).skip(first) {
            *l = true;
        }
        search_from = end;
    }
    in_test
}

/// Whether `hay` contains `needle` as a whole word (the neighbors are
/// not identifier characters) — so `unsafe_code` does not match
/// `unsafe`.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let pre_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let post_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Collapses whitespace so `.lock() . unwrap()` still matches
/// `.lock().unwrap()`.
fn squash(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Lints one file's source, returning every (pre-allowlist) finding.
/// Pure — the fixture tests call it directly.
pub fn lint_source(rel: &str, source: &str, class: FileClass) -> Vec<Finding> {
    let mask = mask_code(source);
    let in_test = test_region_lines(&mask);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    let mut push = |rule: &'static str, line_idx: usize| {
        out.push(Finding {
            rule,
            path: rel.to_string(),
            line: line_idx + 1,
            excerpt: raw_lines
                .get(line_idx)
                .map_or(String::new(), |l| l.trim().to_string()),
        });
    };

    for (idx, line) in mask.lines().enumerate() {
        if in_test.get(idx).copied().unwrap_or(false) {
            continue;
        }
        let flat = squash(line);

        // poison-unwrap: bare unwrap/expect on a lock result.
        if flat.contains(".lock().unwrap()") || flat.contains(".lock().expect(") {
            push("poison-unwrap", idx);
        }

        // wall-clock: kernel crates must be clock-free.
        if class.kernel
            && (contains_word(line, "Instant")
                || contains_word(line, "SystemTime")
                || flat.contains("thread::sleep(")
                || flat.contains("::sleep("))
        {
            push("wall-clock", idx);
        }

        // unsafe-safety: `unsafe` needs a SAFETY rationale — on the
        // line itself, in the few lines above, or anywhere in the
        // contiguous doc/attribute block preceding the item (so a
        // `# Safety` doc section followed by `#[target_feature]`
        // attributes still counts).
        if contains_word(line, "unsafe") {
            let mut justified = raw_lines
                .get(idx)
                .is_some_and(|l| l.contains("SAFETY:") || l.contains("# Safety"));
            let mut k = idx;
            while !justified && k > 0 {
                k -= 1;
                let above = raw_lines[k].trim();
                let attached = above.starts_with("///")
                    || above.starts_with("//!")
                    || above.starts_with("//")
                    || above.starts_with("#[")
                    || above.starts_with(')')
                    || above.starts_with(']')
                    || idx - k <= 2;
                if !attached || idx - k > 40 {
                    break;
                }
                justified = above.contains("SAFETY:") || above.contains("# Safety");
            }
            if !justified {
                push("unsafe-safety", idx);
            }
        }

        // panel-fast-math: fused/fast ops break panel bit-identity.
        if class.kernel
            && (flat.contains(".mul_add(")
                || contains_word(line, "fadd_fast")
                || contains_word(line, "fmul_fast")
                || contains_word(line, "fdiv_fast")
                || contains_word(line, "fsub_fast"))
        {
            push("panel-fast-math", idx);
        }

        // stray-print: libraries speak through return values.
        if !class.bin
            && (flat.contains("println!(")
                || flat.contains("eprintln!(")
                || flat.contains("print!(")
                || flat.contains("eprint!(")
                || flat.contains("dbg!("))
        {
            push("stray-print", idx);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Allowlists + repo walk
// ---------------------------------------------------------------------------

/// One parsed allowlist entry.
#[derive(Clone, Debug)]
struct Allow {
    rule: String,
    path: String,
    used: bool,
}

fn load_allowlists(root: &Path) -> Result<Vec<Allow>, String> {
    let mut out = Vec::new();
    for rule in RULES {
        let file = root.join("crates/verify/allow").join(format!("{rule}.txt"));
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue; // a rule with no exceptions has no file
        };
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((path, justification)) = line.split_once("--") else {
                return Err(format!(
                    "{}:{}: allowlist entry must be `path -- justification`",
                    file.display(),
                    n + 1
                ));
            };
            if justification.trim().is_empty() {
                return Err(format!(
                    "{}:{}: allowlist entry for `{}` has an empty justification",
                    file.display(),
                    n + 1,
                    path.trim()
                ));
            }
            out.push(Allow {
                rule: rule.to_string(),
                path: path.trim().to_string(),
                used: false,
            });
        }
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Lints the whole workspace under `root`: every `src/` tree of every
/// workspace crate plus the facade's `src/`. Returns `Err` only for
/// infrastructure problems (unreadable allowlist); rule violations come
/// back inside the report.
pub fn lint_repo(root: &Path) -> Result<LintReport, String> {
    let mut allows = load_allowlists(root)?;
    let mut files = Vec::new();
    // Workspace crates.
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            collect_rs_files(&d.join("src"), &mut files);
        }
    }
    // The facade crate at the workspace root.
    collect_rs_files(&root.join("src"), &mut files);

    let mut report = LintReport::default();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        report.files_scanned += 1;
        let class = FileClass::from_path(&rel);
        for finding in lint_source(&rel, &source, class) {
            let allowed = allows
                .iter_mut()
                .find(|a| a.rule == finding.rule && a.path == finding.path);
            match allowed {
                Some(a) => {
                    a.used = true;
                    report.allowed += 1;
                }
                None => report.findings.push(finding),
            }
        }
    }
    let mut unused: BTreeSet<String> = BTreeSet::new();
    for a in &allows {
        if !a.used {
            unused.insert(format!("{}: {}", a.rule, a.path));
        }
    }
    report.unused_allows = unused.into_iter().collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_blanks_comments_strings_and_chars() {
        let src = "let a = \"lock().unwrap()\"; // Instant\nlet c = 'x'; let lt: &'static str = s;";
        let m = mask_code(src);
        assert!(!m.contains("unwrap"));
        assert!(!m.contains("Instant"));
        assert!(!m.contains("'x'"));
        assert!(m.contains("'static"), "lifetimes must survive: {m}");
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn mask_handles_raw_strings() {
        let src = "let r = r#\"thread::sleep(\"#; let after = 1;";
        let m = mask_code(src);
        assert!(!m.contains("sleep"));
        assert!(m.contains("after"));
    }

    #[test]
    fn cfg_test_regions_are_tracked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let mask = mask_code(src);
        let t = test_region_lines(&mask);
        assert_eq!(t, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn word_boundaries_protect_unsafe_code_attr() {
        assert!(!contains_word("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!contains_word("unsafe_op_in_unsafe_fn", "unsafe"));
        assert!(contains_word("unsafe { x }", "unsafe"));
    }
}
