//! Checker self-tests: the production protocols stay clean under
//! bounded exploration, and the seeded buggy latch is caught, replays
//! deterministically, and shrinks. Budgets here are a fraction of the
//! CI `model-check` run — these are regression canaries for the
//! checker itself, not the coverage pass.

use opm_verify::models;
use opm_verify::sched::{self, replay, shrink, ExploreOpts, ViolationKind};

/// Small shared budget: enough to hit real interleavings (the buggy
/// latch falls over within ~10 schedules), small enough for `cargo
/// test` to stay fast.
const BUDGET: usize = 300;

fn assert_clean(r: &sched::Report) {
    if let Some(v) = &r.violation {
        panic!(
            "{}: {}\nschedule {:?}\ntrace:\n  {}",
            r.name,
            v.kind,
            v.schedule.choices,
            v.trace.join("\n  ")
        );
    }
    assert!(r.schedules > 0);
}

#[test]
fn gate_cache_protocols_hold_under_exploration() {
    assert_clean(&models::check_cache_latch(BUDGET));
}

#[test]
fn work_index_claims_hold_under_exploration() {
    assert_clean(&models::check_work_index(BUDGET));
}

#[test]
fn cancel_core_holds_under_exploration() {
    assert_clean(&models::check_cancel(BUDGET));
}

#[test]
fn seeded_lost_wakeup_is_caught_within_bounded_schedules() {
    let report = sched::explore(
        "buggy_latch",
        &models::buggy_opts(),
        models::buggy_latch_model(),
    );
    let v = report.violation.as_ref().unwrap_or_else(|| {
        panic!(
            "the seeded lost wakeup escaped {} schedules — the checker lost its teeth",
            report.schedules
        )
    });
    assert!(
        matches!(v.kind, ViolationKind::Deadlock(_)),
        "a lost wakeup must surface as a deadlock, got: {}",
        v.kind
    );
    assert!(
        report.schedules <= models::BUGGY_LATCH_BUDGET,
        "took {} schedules",
        report.schedules
    );
    assert!(!v.trace.is_empty(), "violations must carry a step trace");
}

#[test]
fn buggy_latch_replay_is_deterministic_and_shrinks() {
    let report = sched::explore(
        "buggy_latch",
        &models::buggy_opts(),
        models::buggy_latch_model(),
    );
    let v = report.violation.expect("seeded bug must be caught");

    // Replay twice: identical violation kind and identical trace.
    let a = replay(
        models::buggy_latch_model(),
        &v.schedule,
        &models::buggy_opts(),
    )
    .expect("first replay must reproduce");
    let b = replay(
        models::buggy_latch_model(),
        &v.schedule,
        &models::buggy_opts(),
    )
    .expect("second replay must reproduce");
    assert!(matches!(a.kind, ViolationKind::Deadlock(_)), "{}", a.kind);
    assert_eq!(a.trace, b.trace, "replay must be deterministic");

    // Shrink: still failing, no longer than the original.
    let small = shrink(models::buggy_latch_model(), &v, &models::buggy_opts(), 64);
    assert!(
        matches!(small.kind, ViolationKind::Deadlock(_)),
        "shrinking must preserve the violation kind"
    );
    assert!(
        small.schedule.choices.len() <= v.schedule.choices.len(),
        "shrink grew the schedule: {:?} -> {:?}",
        v.schedule.choices,
        small.schedule.choices
    );
    let again = replay(
        models::buggy_latch_model(),
        &small.schedule,
        &models::buggy_opts(),
    )
    .expect("the shrunk schedule must still reproduce");
    assert!(matches!(again.kind, ViolationKind::Deadlock(_)));
}

/// A correct latch under the same harness as the buggy one: the
/// production `Latch` on shim sync, same thread structure, full
/// exploration — must be clean. (Pairs with the buggy model to show
/// the checker separates the two implementations, not just that it
/// can fail.)
#[test]
fn production_latch_survives_the_buggy_latch_harness() {
    use opm_core::latch::Latch;
    use opm_verify::sync::{thread, Arc, ShimSync};

    let report = sched::explore(
        "production_latch",
        &ExploreOpts {
            max_schedules: BUDGET,
            dfs_budget: BUDGET,
            spurious_budget: 1,
            ..ExploreOpts::default()
        },
        || {
            let latch: Arc<Latch<u32, ShimSync>> = Arc::new(Latch::new());
            let waiter = {
                let latch = Arc::clone(&latch);
                thread::spawn(move || latch.wait())
            };
            latch.resolve(9);
            assert_eq!(waiter.join().expect("waiter panicked"), 9);
        },
    );
    assert_clean(&report);
}
