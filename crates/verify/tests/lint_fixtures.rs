//! The lint rules, proven on fixtures: each banned pattern trips its
//! rule, each deliberately-ignorable occurrence (strings, comments,
//! tests, word-boundary lookalikes) does not, and the live workspace
//! itself lints clean.

use std::path::Path;

use opm_verify::lint::{self, FileClass};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn rules_fired(name: &str, class: FileClass) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint::lint_source(name, &fixture(name), class)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    rules.dedup();
    rules
}

const KERNEL: FileClass = FileClass {
    kernel: true,
    bin: false,
};
const LIBRARY: FileClass = FileClass {
    kernel: false,
    bin: false,
};

#[test]
fn poison_unwrap_fires_on_bare_lock_unwrap() {
    let findings = lint::lint_source("poison_unwrap.rs", &fixture("poison_unwrap.rs"), LIBRARY);
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "poison-unwrap")
        .collect();
    assert_eq!(hits.len(), 2, "unwrap() and expect(): {findings:?}");
    assert!(hits.iter().all(|f| f.line == 5 || f.line == 9), "{hits:?}");
}

#[test]
fn wall_clock_fires_only_in_kernel_non_test_code() {
    let fired = rules_fired("wall_clock.rs", KERNEL);
    assert_eq!(fired, vec!["wall-clock"]);
    let findings = lint::lint_source("wall_clock.rs", &fixture("wall_clock.rs"), KERNEL);
    assert_eq!(
        findings.len(),
        3,
        "Instant import + Instant::now + sleep, none from the test module: {findings:?}"
    );
    // The same file outside a kernel crate is fine.
    assert!(rules_fired("wall_clock.rs", LIBRARY).is_empty());
}

#[test]
fn unsafe_without_safety_fires_and_justified_unsafe_does_not() {
    let findings = lint::lint_source(
        "unsafe_no_safety.rs",
        &fixture("unsafe_no_safety.rs"),
        LIBRARY,
    );
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "unsafe-safety")
        .collect();
    assert_eq!(hits.len(), 1, "only the unjustified block: {findings:?}");
    assert_eq!(hits[0].line, 5, "{hits:?}");
}

#[test]
fn panel_fast_math_fires_in_kernel_code_only() {
    assert_eq!(
        rules_fired("panel_fast_math.rs", KERNEL),
        vec!["panel-fast-math"]
    );
    assert!(rules_fired("panel_fast_math.rs", LIBRARY).is_empty());
}

#[test]
fn stray_print_fires_in_libraries_but_not_bins() {
    assert_eq!(rules_fired("stray_print.rs", LIBRARY), vec!["stray-print"]);
    let bin = FileClass {
        kernel: false,
        bin: true,
    };
    assert!(rules_fired("stray_print.rs", bin).is_empty());
}

#[test]
fn clean_fixture_produces_zero_findings_even_as_kernel_code() {
    let findings = lint::lint_source("clean.rs", &fixture("clean.rs"), KERNEL);
    assert!(findings.is_empty(), "false positives: {findings:?}");
}

#[test]
fn file_classification_follows_paths() {
    assert!(FileClass::from_path("crates/sparse/src/lu.rs").kernel);
    assert!(!FileClass::from_path("crates/serve/src/lib.rs").kernel);
    assert!(!FileClass::from_path("crates/bench/src/lib.rs").kernel);
    assert!(FileClass::from_path("crates/verify/src/main.rs").bin);
    assert!(FileClass::from_path("crates/bench/src/bin/sweep.rs").bin);
    assert!(!FileClass::from_path("crates/core/src/lib.rs").bin);
}

/// The gate CI enforces: the workspace itself must lint clean (findings
/// covered by the allowlists are fine; anything else fails this test
/// the same way it fails `opm-verify lint`).
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint::lint_repo(&root).expect("lint infrastructure");
    assert!(
        report.files_scanned > 50,
        "walked {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.ok(),
        "workspace lint violations:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
