// Fixture: a file where every banned pattern appears ONLY where the
// scanner must ignore it — strings, comments, raw strings, char
// context, cfg(test) regions, and word-boundary lookalikes. Zero
// findings expected, even classified as kernel code.

// println!("in a comment"); lock().unwrap(); Instant::now();

/* block comment: thread::sleep(d); a.mul_add(b, c); unsafe { } */

pub const DOCS: &str = "println!(\"in a string\"); .lock().unwrap()";
pub const RAW: &str = r#"Instant::now(); eprintln!("raw"); mul_add("#;

// The attribute below contains `unsafe_code` — a word-boundary
// lookalike that must NOT count as an `unsafe` token.
#[deny(unsafe_code)]
pub mod inner {
    pub fn lifetime_not_char<'a>(s: &'a str) -> &'a str {
        s
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn banned_patterns_are_fine_in_tests() {
        let m = std::sync::Mutex::new(1u32);
        let v = *m.lock().unwrap();
        println!("v = {v}");
        let _t = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _f = 2.0f64.mul_add(3.0, v as f64);
    }
}
