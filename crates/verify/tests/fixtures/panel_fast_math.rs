// Fixture: fused multiply-add in kernel code must trip
// `panel-fast-math` (the panels carry a bit-identity contract against
// the scalar reference; fused rounding breaks it).

pub fn bad(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c)
}

pub fn fine(a: f64, b: f64, c: f64) -> f64 {
    a * b + c
}
