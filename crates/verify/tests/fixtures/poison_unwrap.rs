// Fixture: bare unwrap on a lock result must trip `poison-unwrap`.
use std::sync::Mutex;

pub fn bad(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn also_bad(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned")
}

pub fn fine(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
