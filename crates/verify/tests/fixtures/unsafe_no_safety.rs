// Fixture: `unsafe` without a SAFETY rationale must trip
// `unsafe-safety`; with one, it must not.

pub fn bad(p: *const u32) -> u32 {
    unsafe { *p }
}

pub fn fine(p: *const u32) -> u32 {
    // SAFETY: the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

/// Doc-justified variant.
///
/// # Safety
/// `p` must be valid for reads.
#[allow(clippy::missing_safety_doc)]
pub unsafe fn fine_fn(p: *const u32) -> u32 {
    // SAFETY: forwarded obligation from this fn's own contract.
    unsafe { *p }
}
