// Fixture: printing from library code must trip `stray-print`.

pub fn bad(x: u32) {
    println!("x = {x}");
}

pub fn also_bad(x: u32) {
    eprintln!("x = {x}");
}

pub fn fine(x: u32) -> String {
    format!("x = {x}")
}
