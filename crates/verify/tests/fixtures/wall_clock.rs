// Fixture: clock reads in kernel-crate code must trip `wall-clock`.
use std::time::Instant;

pub fn bad_timing() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn bad_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
