//! The two-parameter Mittag-Leffler function `E_{α,β}(z)`.
//!
//! `E_{α,β}` plays the role for fractional linear systems that the
//! exponential plays for ODEs: the Caputo relaxation `d^α x = λ x`,
//! `x(0) = x₀` has the solution `x(t) = x₀·E_α(λ t^α)`, and step responses
//! involve `t^α E_{α,α+1}(λ t^α)`. The workspace uses these as *analytic
//! oracles* for OPM's fractional solver.
//!
//! Evaluation strategy (double precision):
//! - `z ≥ 0` or `|z|` small — the defining power series
//!   `Σ_k z^k / Γ(αk + β)` (all-positive terms for `z ≥ 0`, mild
//!   cancellation for small negative `z`).
//! - `z < 0` large — fixed-Talbot numerical inversion of the Laplace
//!   transform `L{t^{β−1} E_{α,β}(λ t^α)} = s^{α−β}/(s^α − λ)`, the same
//!   numerical-Laplace-inversion idea the paper builds on (refs \[1,3,5\]).
//!   Fixed Talbot in `f64` delivers ≈ 8–10 significant digits, ample for
//!   oracle duty.

use crate::gamma::recip_gamma;

/// Complex arithmetic is only needed internally for the Talbot contour;
/// a tiny local implementation avoids a dependency edge.
#[derive(Clone, Copy, Debug)]
struct Cx {
    re: f64,
    im: f64,
}

impl Cx {
    fn new(re: f64, im: f64) -> Self {
        Cx { re, im }
    }
    fn mul(self, o: Cx) -> Cx {
        Cx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
    fn div(self, o: Cx) -> Cx {
        let d = o.re * o.re + o.im * o.im;
        Cx::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
    fn sub(self, o: Cx) -> Cx {
        Cx::new(self.re - o.re, self.im - o.im)
    }
    fn exp(self) -> Cx {
        let r = self.re.exp();
        Cx::new(r * self.im.cos(), r * self.im.sin())
    }
    fn powf(self, p: f64) -> Cx {
        let r = (self.re * self.re + self.im * self.im).sqrt();
        let th = self.im.atan2(self.re);
        let rp = r.powf(p);
        Cx::new(rp * (p * th).cos(), rp * (p * th).sin())
    }
}

/// Evaluates `E_{α,β}(z)` for real `z`, `α > 0`.
///
/// # Panics
/// Panics when `α ≤ 0`.
///
/// ```
/// use opm_fracnum::mittag_leffler;
/// // E_{1,1}(z) = e^z
/// assert!((mittag_leffler(1.0, 1.0, -2.0) - (-2.0f64).exp()).abs() < 1e-8);
/// // E_{2,1}(z) = cosh(√z)
/// assert!((mittag_leffler(2.0, 1.0, 4.0) - 2.0f64.cosh()).abs() < 1e-10);
/// ```
pub fn mittag_leffler(alpha: f64, beta: f64, z: f64) -> f64 {
    assert!(alpha > 0.0, "mittag_leffler requires alpha > 0");
    if z == 0.0 {
        return recip_gamma(beta);
    }
    // Series region: non-negative arguments (monotone terms) or small |z|.
    if z > 0.0 || z.abs() <= series_radius(alpha) {
        return ml_series(alpha, beta, z);
    }
    // Large negative argument: Talbot inversion at t = 1, λ = z
    // (t^{β−1} = 1 and λ t^α = z, so the inversion returns E directly).
    ml_talbot(alpha, beta, z, 1.0)
}

/// Evaluates `t^{β−1}·E_{α,β}(λ·t^α)` — the fundamental solution kernel of
/// the linear FDE — directly from its Laplace transform when advantageous.
///
/// # Panics
/// Panics when `α ≤ 0` or `t < 0`.
pub fn ml_kernel(alpha: f64, beta: f64, lambda: f64, t: f64) -> f64 {
    assert!(alpha > 0.0 && t >= 0.0);
    if t == 0.0 {
        // t^{β−1} → {0 if β>1, 1 if β=1, ∞ if β<1}; the β=1 case is the
        // only finite nonzero limit.
        return if beta > 1.0 {
            0.0
        } else if beta == 1.0 {
            1.0
        } else {
            f64::INFINITY
        };
    }
    let z = lambda * t.powf(alpha);
    if z >= 0.0 || z.abs() <= series_radius(alpha) {
        t.powf(beta - 1.0) * ml_series(alpha, beta, z)
    } else {
        ml_talbot(alpha, beta, lambda, t)
    }
}

/// Largest |z| (z < 0) the power series evaluates without losing more than
/// ~6 digits to cancellation. The peak term is `|z|^k/Γ(αk+β)`; smaller α
/// means slower Γ growth and worse cancellation.
fn series_radius(alpha: f64) -> f64 {
    match alpha {
        a if a >= 1.5 => 30.0,
        a if a >= 1.0 => 10.0,
        a if a >= 0.75 => 5.0,
        a if a >= 0.5 => 3.0,
        _ => 1.0,
    }
}

fn ml_series(alpha: f64, beta: f64, z: f64) -> f64 {
    let mut sum = 0.0f64;
    let mut zk = 1.0f64;
    for k in 0..600 {
        let term = zk * recip_gamma(alpha * k as f64 + beta);
        sum += term;
        zk *= z;
        if !zk.is_finite() {
            break;
        }
        if term.abs() < 1e-17 * sum.abs().max(1e-300) && k > 3 {
            break;
        }
    }
    sum
}

/// Fixed-Talbot inversion (Abate–Valkó 2004) of
/// `F(s) = s^{α−β}/(s^α − λ)` at time `t`, returning
/// `f(t) = t^{β−1} E_{α,β}(λ t^α)`.
fn ml_talbot(alpha: f64, beta: f64, lambda: f64, t: f64) -> f64 {
    // M balances truncation (≈10^{−0.6M}) against roundoff amplification by
    // e^{2M/5}; M ≈ 24 is the f64 sweet spot (≈12 significant digits).
    const M: usize = 24;
    let r = 2.0 * M as f64 / (5.0 * t);
    let fs = |s: Cx| -> Cx {
        // s^{α−β} / (s^α − λ)
        let num = s.powf(alpha - beta);
        let den = s.powf(alpha).sub(Cx::new(lambda, 0.0));
        num.div(den)
    };
    // k = 0 term: s = r (real axis).
    let mut acc = 0.5 * fs(Cx::new(r, 0.0)).re * (r * t).exp();
    for k in 1..M {
        let theta = k as f64 * std::f64::consts::PI / M as f64;
        let cot = theta.cos() / theta.sin();
        let s = Cx::new(r * theta * cot, r * theta);
        let sigma = theta + (theta * cot - 1.0) * cot;
        let val = fs(s).mul(s.mul(Cx::new(t, 0.0)).exp());
        // Re[(1 + i σ)·val]
        acc += val.re - sigma * val.im;
    }
    acc * r / M as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::{erfcx, gamma_fn};

    #[test]
    fn reduces_to_exponential() {
        for &z in &[-8.0, -3.0, -0.5, 0.0, 0.5, 3.0] {
            let e = mittag_leffler(1.0, 1.0, z);
            assert!((e - z.exp()).abs() < 2e-8 * z.exp().max(1e-4), "z={z}: {e}");
        }
    }

    #[test]
    fn e_1_2_closed_form() {
        // E_{1,2}(z) = (e^z − 1)/z
        for &z in &[-6.0f64, -1.0, 0.7, 2.0] {
            let want = (z.exp() - 1.0) / z;
            let got = mittag_leffler(1.0, 2.0, z);
            assert!((got - want).abs() < 1e-7 * want.abs().max(1e-3), "z={z}");
        }
    }

    #[test]
    fn e_2_1_is_cos_or_cosh() {
        for &x in &[0.3f64, 1.0, 2.5] {
            // cos: E_{2,1}(−x²) = cos x
            let got = mittag_leffler(2.0, 1.0, -x * x);
            assert!((got - x.cos()).abs() < 1e-8, "cos x={x}");
            // cosh: E_{2,1}(x²) = cosh x
            let got = mittag_leffler(2.0, 1.0, x * x);
            assert!((got - x.cosh()).abs() < 1e-10, "cosh x={x}");
        }
    }

    #[test]
    fn e_2_2_is_sinhc() {
        // E_{2,2}(z) = sinh(√z)/√z for z > 0
        for &z in &[0.25f64, 1.0, 9.0] {
            let rz = z.sqrt();
            let want = rz.sinh() / rz;
            assert!((mittag_leffler(2.0, 2.0, z) - want).abs() < 1e-10 * want);
        }
    }

    #[test]
    fn half_order_matches_erfcx() {
        // E_{1/2,1}(−x) = erfcx(x) = e^{x²} erfc(x) for x ≥ 0.
        for &x in &[0.2f64, 1.0, 2.0, 5.0, 12.0] {
            let want = erfcx(x);
            let got = mittag_leffler(0.5, 1.0, -x);
            assert!(
                (got - want).abs() < 1e-7 * want.abs().max(1e-6),
                "x={x}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn recurrence_identity() {
        // E_{α,β}(z) = 1/Γ(β) + z·E_{α,β+α}(z)
        for &(a, b, z) in &[
            (0.5, 1.0, -4.0),
            (0.7, 1.2, -9.0),
            (0.9, 1.0, 2.0),
            (1.5, 0.8, -20.0),
        ] {
            let lhs = mittag_leffler(a, b, z);
            let rhs = 1.0 / gamma_fn(b) + z * mittag_leffler(a, b + a, z);
            assert!(
                (lhs - rhs).abs() < 1e-6 * lhs.abs().max(1.0),
                "α={a}, β={b}, z={z}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn asymptotic_decay_for_large_negative() {
        // E_{α,1}(z) ~ −1/(z·Γ(1−α)) as z → −∞ for 0 < α < 1.
        let alpha = 0.6;
        let z = -200.0;
        let got = mittag_leffler(alpha, 1.0, z);
        let want = -1.0 / (z * gamma_fn(1.0 - alpha));
        assert!((got - want).abs() < 2e-3 * want.abs(), "{got} vs {want}");
    }

    #[test]
    fn kernel_matches_series_and_talbot() {
        // Evaluate t^{β−1} E_{α,β}(λ t^α) both ways across the seam.
        let (alpha, beta, lambda) = (0.5, 1.5, -2.0);
        for &t in &[0.1f64, 0.5, 1.0, 4.0, 10.0] {
            let z = lambda * t.powf(alpha);
            let direct = t.powf(beta - 1.0) * mittag_leffler(alpha, beta, z);
            let kernel = ml_kernel(alpha, beta, lambda, t);
            assert!(
                (direct - kernel).abs() < 1e-6 * direct.abs().max(1e-6),
                "t={t}: {direct} vs {kernel}"
            );
        }
    }

    #[test]
    fn kernel_limits_at_zero() {
        assert_eq!(ml_kernel(0.5, 2.0, -1.0, 0.0), 0.0);
        assert_eq!(ml_kernel(0.5, 1.0, -1.0, 0.0), 1.0);
        assert!(ml_kernel(0.5, 0.5, -1.0, 0.0).is_infinite());
    }

    #[test]
    fn monotone_decay_of_relaxation() {
        // E_α(−t^α) is completely monotone for 0 < α < 1: strictly
        // decreasing, positive.
        let alpha = 0.5;
        let mut prev = 1.0;
        for i in 1..40 {
            let t = i as f64 * 0.5;
            let v = mittag_leffler(alpha, 1.0, -t.powf(alpha));
            assert!(v > 0.0 && v < prev, "t={t}: {v} !< {prev}");
            prev = v;
        }
    }
}
