//! Generalized binomial coefficients `C(α, k)` for real `α`.
//!
//! These drive both the Grünwald–Letnikov weights and the binomial-series
//! expansions behind the fractional Tustin coefficients of the paper's
//! Eq. (21).

/// Generalized binomial coefficient
/// `C(α, k) = α·(α−1)⋯(α−k+1) / k!` for real `α` and integer `k ≥ 0`.
///
/// Computed by the stable product recurrence (no gamma-function
/// cancellation).
///
/// ```
/// use opm_fracnum::binomial_alpha;
/// assert_eq!(binomial_alpha(5.0, 2), 10.0);
/// // C(1/2, 2) = (1/2)(−1/2)/2 = −1/8
/// assert!((binomial_alpha(0.5, 2) + 0.125).abs() < 1e-15);
/// ```
pub fn binomial_alpha(alpha: f64, k: usize) -> f64 {
    let mut c = 1.0;
    for i in 0..k {
        c *= (alpha - i as f64) / (i as f64 + 1.0);
    }
    c
}

/// First `n` coefficients of the binomial series `(1 + q)^α = Σ C(α,k) q^k`.
pub fn binomial_series(alpha: f64, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut c = 1.0;
    for k in 0..n {
        out.push(c);
        c *= (alpha - k as f64) / (k as f64 + 1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_alpha_matches_pascal() {
        let pascal5 = [1.0, 5.0, 10.0, 10.0, 5.0, 1.0];
        for (k, &want) in pascal5.iter().enumerate() {
            assert_eq!(binomial_alpha(5.0, k), want);
        }
        // Beyond the top of the triangle the coefficients vanish.
        assert_eq!(binomial_alpha(5.0, 6), 0.0);
        assert_eq!(binomial_alpha(5.0, 9), 0.0);
    }

    #[test]
    fn negative_alpha_alternating() {
        // C(−1, k) = (−1)^k.
        for k in 0..8 {
            assert_eq!(binomial_alpha(-1.0, k), if k % 2 == 0 { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn series_matches_pointwise() {
        let s = binomial_series(0.7, 10);
        for (k, &v) in s.iter().enumerate() {
            assert!((v - binomial_alpha(0.7, k)).abs() < 1e-14);
        }
    }

    #[test]
    fn series_sums_to_power_of_two() {
        // Σ_k C(α,k) x^k at x=1 converges to 2^α for α > −1.
        let alpha = 0.5;
        let s = binomial_series(alpha, 2000);
        let total: f64 = s.iter().sum();
        assert!((total - 2f64.powf(alpha)).abs() < 1e-3);
    }

    #[test]
    fn vandermonde_identity_spot_check() {
        // Σ_j C(a,j)·C(b,k−j) = C(a+b,k)
        let (a, b, k) = (0.5, 1.5, 6);
        let mut sum = 0.0;
        for j in 0..=k {
            sum += binomial_alpha(a, j) * binomial_alpha(b, k - j);
        }
        assert!((sum - binomial_alpha(a + b, k)).abs() < 1e-12);
    }
}
