//! Fractional-calculus numerics for the OPM workspace.
//!
//! The paper simulates fractional differential equations (FDEs) with
//! operational matrices; this crate supplies everything needed to *verify*
//! such simulations and to build classical baselines:
//!
//! - [`gamma`] — Γ, ln Γ (Lanczos), regularized incomplete gamma, erf/erfc.
//! - [`binomial`] — generalized binomial coefficients `C(α, k)`.
//! - [`mod@mittag_leffler`] — the two-parameter Mittag-Leffler function
//!   `E_{α,β}(z)`, the analytic solution kernel of linear FDEs. Negative
//!   arguments are evaluated by fixed-Talbot numerical Laplace-transform
//!   inversion — the very technique of the paper's references \[1,3,5\].
//! - [`grunwald`] — Grünwald–Letnikov coefficients and pointwise fractional
//!   derivatives (the classical time-domain FDE discretization).
//! - [`history`] — the shared history-convolution kernel (and the
//!   short-memory [`history::HistoryTail`]) behind every memory-carrying
//!   fractional recurrence in the workspace.
//! - [`rl`] — Riemann–Liouville fractional integrals by product-trapezoid
//!   quadrature (Diethelm), an independent oracle.
//!
//! # Example: fractional relaxation oracle
//!
//! ```
//! use opm_fracnum::mittag_leffler::mittag_leffler;
//! // d^α x / dt^α = −x, x(0) = 1 (Caputo) ⇒ x(t) = E_α(−t^α).
//! let x = mittag_leffler(0.5, 1.0, -1.0);
//! assert!((x - 0.42758357615580705).abs() < 1e-6); // e^{1}·erfc(1)
//! ```

pub mod binomial;
pub mod gamma;
pub mod grunwald;
pub mod history;
pub mod mittag_leffler;
pub mod rl;

pub use binomial::binomial_alpha;
pub use gamma::{erf, erfc, gamma_fn, ln_gamma};
pub use grunwald::GrunwaldCoefficients;
pub use history::{history_convolution_into, HistoryTail};
pub use mittag_leffler::mittag_leffler;
