//! Grünwald–Letnikov fractional differentiation.
//!
//! The GL definition
//! `D^α f(t) = lim_{h→0} h^{−α} Σ_k (−1)^k C(α,k) f(t − kh)`
//! is the classical finite-difference route to fractional derivatives —
//! the "traditional transient analysis" the paper contrasts OPM against is
//! extended to FDEs exactly this way. The coefficients also power the GL
//! baseline time-stepper in `opm-transient`.

/// Precomputed Grünwald–Letnikov weights `w_k = (−1)^k·C(α, k)`.
///
/// Satisfy the recurrence `w_0 = 1`, `w_k = w_{k−1}·(k − 1 − α)/k`, which is
/// how they are generated (numerically stable, O(n)).
///
/// ```
/// use opm_fracnum::GrunwaldCoefficients;
/// let g = GrunwaldCoefficients::new(1.0, 4);
/// // Order 1: finite difference weights [1, −1, 0, 0].
/// assert_eq!(g.as_slice(), &[1.0, -1.0, 0.0, 0.0]);
/// ```
#[derive(Clone, Debug)]
pub struct GrunwaldCoefficients {
    alpha: f64,
    w: Vec<f64>,
}

impl GrunwaldCoefficients {
    /// Generates the first `n` weights for order `α`.
    pub fn new(alpha: f64, n: usize) -> Self {
        let mut w = Vec::with_capacity(n);
        if n > 0 {
            w.push(1.0);
            for k in 1..n {
                let prev = w[k - 1];
                w.push(prev * ((k as f64 - 1.0 - alpha) / k as f64));
            }
        }
        GrunwaldCoefficients { alpha, w }
    }

    /// The differentiation order.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of generated weights.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True when no weights were generated.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Borrows the weights.
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }

    /// `w_k`.
    ///
    /// # Panics
    /// Panics when `k` is out of range.
    pub fn weight(&self, k: usize) -> f64 {
        self.w[k]
    }

    /// Applies the GL derivative to uniformly sampled values
    /// (`samples[i] = f(i·h)`, zero history before `t = 0`), returning the
    /// derivative estimate at each sample point.
    pub fn derivative(&self, samples: &[f64], h: f64) -> Vec<f64> {
        let scale = h.powf(-self.alpha);
        let n = samples.len();
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let mut s = 0.0;
            for k in 0..=i.min(self.w.len() - 1) {
                s += self.w[k] * samples[i - k];
            }
            *o = scale * s;
        }
        out
    }
}

/// GL weights of the *shifted* Grünwald formula are not provided: the plain
/// formula is first-order accurate, which is all the baseline claims.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::binomial_alpha;
    use crate::gamma::gamma_fn;

    #[test]
    fn integer_order_weights_are_binomial() {
        let g = GrunwaldCoefficients::new(2.0, 5);
        assert_eq!(g.as_slice(), &[1.0, -2.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn recurrence_matches_binomial_formula() {
        let alpha = 0.5;
        let g = GrunwaldCoefficients::new(alpha, 20);
        for k in 0..20 {
            let direct = if k % 2 == 0 { 1.0 } else { -1.0 } * binomial_alpha(alpha, k);
            assert!((g.weight(k) - direct).abs() < 1e-14, "k={k}");
        }
    }

    #[test]
    fn weights_sum_to_zero_for_positive_order() {
        // Σ_{k=0}^{∞} w_k = (1−1)^α = 0; partial sums decay like k^{−α}.
        let g = GrunwaldCoefficients::new(0.5, 20000);
        let s: f64 = g.as_slice().iter().sum();
        assert!(s.abs() < 1e-2, "partial sum {s}");
    }

    #[test]
    fn derivative_of_power_function() {
        // D^α t^1 = t^{1−α} / Γ(2−α) for GL/RL with zero history.
        let alpha = 0.5;
        let h = 1e-4;
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|i| i as f64 * h).collect();
        let g = GrunwaldCoefficients::new(alpha, n);
        let d = g.derivative(&samples, h);
        let t = (n - 1) as f64 * h;
        let want = t.powf(1.0 - alpha) / gamma_fn(2.0 - alpha);
        let got = d[n - 1];
        assert!(
            (got - want).abs() < 5e-3 * want,
            "GL derivative {got} vs analytic {want}"
        );
    }

    #[test]
    fn order_one_reduces_to_backward_difference() {
        let g = GrunwaldCoefficients::new(1.0, 100);
        let h = 0.01;
        let samples: Vec<f64> = (0..100).map(|i| (i as f64 * h).powi(2)).collect();
        let d = g.derivative(&samples, h);
        // Backward difference of t² at t: (t² − (t−h)²)/h = 2t − h.
        let t = 99.0 * h;
        assert!((d[99] - (2.0 * t - h)).abs() < 1e-10);
    }

    #[test]
    fn empty_and_single() {
        let g = GrunwaldCoefficients::new(0.7, 0);
        assert!(g.is_empty());
        let g1 = GrunwaldCoefficients::new(0.7, 1);
        assert_eq!(g1.as_slice(), &[1.0]);
    }
}
