//! Gamma-family special functions: Γ, ln Γ, regularized incomplete gamma,
//! erf/erfc.
//!
//! Lanczos approximation (g = 7, 9 terms) for the gamma function, series +
//! continued fraction for the incomplete gamma, from which erf/erfc follow
//! with near machine precision — accuracy the Mittag-Leffler closed forms
//! (`E_{1/2,1}(z) = e^{z²} erfc(−z)`) inherit.

/// Lanczos coefficients for g = 7.
const LANCZOS_G: f64 = 7.0;
// The published Lanczos(g = 7, n = 9) coefficients, kept verbatim even
// where they exceed f64 resolution.
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_59,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of Γ(x) for `x > 0`.
///
/// # Panics
/// Panics when `x <= 0` (poles / reflection handled by [`gamma_fn`]).
///
/// ```
/// use opm_fracnum::ln_gamma;
/// assert!((ln_gamma(10.0) - (362880.0f64).ln()).abs() < 1e-10);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection in log space: ln Γ(x) = ln(π / sin(πx)) − ln Γ(1−x).
        let s = (std::f64::consts::PI * x).sin();
        return (std::f64::consts::PI / s).ln() - ln_gamma(1.0 - x);
    }
    let xx = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (xx + i as f64);
    }
    let t = xx + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (xx + 0.5) * t.ln() - t + acc.ln()
}

/// Gamma function Γ(x) for real `x` (poles at non-positive integers return
/// ±∞ via the reflection formula's division).
///
/// ```
/// use opm_fracnum::gamma_fn;
/// assert!((gamma_fn(5.0) - 24.0).abs() < 1e-12);
/// assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
/// assert!((gamma_fn(-0.5) + 2.0 * std::f64::consts::PI.sqrt()).abs() < 1e-10);
/// ```
pub fn gamma_fn(x: f64) -> f64 {
    if x > 0.0 {
        if x > 171.61 {
            return f64::INFINITY; // overflow threshold of Γ in f64
        }
        ln_gamma(x).exp()
    } else {
        if x == x.floor() {
            return f64::NAN; // pole at non-positive integer
        }
        // Reflection: Γ(x) = π / (sin(πx) · Γ(1−x)).
        let s = (std::f64::consts::PI * x).sin();
        std::f64::consts::PI / (s * gamma_fn(1.0 - x))
    }
}

/// Reciprocal gamma 1/Γ(x), finite everywhere (zero at the poles).
pub fn recip_gamma(x: f64) -> f64 {
    if x > 0.0 {
        if x > 171.61 {
            return 0.0;
        }
        (-ln_gamma(x)).exp()
    } else if x == x.floor() {
        0.0 // pole of Γ ⇒ zero of 1/Γ
    } else {
        1.0 / gamma_fn(x)
    }
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`, `a > 0`,
/// `x ≥ 0`. Series for `x < a + 1`, continued fraction otherwise.
///
/// # Panics
/// Panics on invalid arguments.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
/// Panics on invalid arguments.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q requires a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's method for the continued fraction representation.
    let fpmin = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / fpmin;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = b + an / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function to near machine precision (via incomplete gamma).
///
/// ```
/// use opm_fracnum::erf;
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-13);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `1 − erf(x)`, accurate for large `x`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        2.0 - gamma_q(0.5, x * x)
    }
}

/// Scaled complementary error function `erfcx(x) = e^{x²}·erfc(x)`,
/// overflow-free for large positive `x` (continued-fraction asymptotics).
pub fn erfcx(x: f64) -> f64 {
    if x < 25.0 {
        (x * x).exp() * erfc(x)
    } else {
        // Asymptotic: erfcx(x) ~ (1/(x√π))·(1 − 1/(2x²) + 3/(4x⁴) − …)
        let ix2 = 1.0 / (x * x);
        (1.0 - 0.5 * ix2 + 0.75 * ix2 * ix2) / (x * std::f64::consts::PI.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn gamma_at_integers_is_factorial() {
        let mut fact = 1.0;
        for n in 1..15u32 {
            assert!(
                (gamma_fn(n as f64) - fact).abs() < 1e-9 * fact,
                "Γ({n}) != {fact}"
            );
            fact *= n as f64;
        }
    }

    #[test]
    fn gamma_half_integers() {
        assert!((gamma_fn(0.5) - PI.sqrt()).abs() < 1e-13);
        assert!((gamma_fn(1.5) - 0.5 * PI.sqrt()).abs() < 1e-13);
        assert!((gamma_fn(2.5) - 0.75 * PI.sqrt()).abs() < 1e-13);
    }

    #[test]
    fn gamma_reflection_negative_arguments() {
        // Γ(−1.5) = 4√π/3
        assert!((gamma_fn(-1.5) - 4.0 * PI.sqrt() / 3.0).abs() < 1e-10);
        assert!(gamma_fn(-1.0).is_nan());
        assert!(gamma_fn(0.0).is_nan() || gamma_fn(0.0).is_infinite());
    }

    #[test]
    fn recip_gamma_zero_at_poles() {
        assert_eq!(recip_gamma(0.0), 0.0);
        assert_eq!(recip_gamma(-3.0), 0.0);
        assert!((recip_gamma(0.5) - 1.0 / PI.sqrt()).abs() < 1e-13);
        // Γ(β − αk) poles appear in ML asymptotics: α=1, β=1, k=1 → Γ(0).
        assert_eq!(recip_gamma(1.0 - 1.0), 0.0);
    }

    #[test]
    fn functional_equation() {
        for &x in &[0.3, 1.7, 4.2, 10.5] {
            let lhs = gamma_fn(x + 1.0);
            let rhs = x * gamma_fn(x);
            assert!((lhs - rhs).abs() < 1e-10 * lhs.abs());
        }
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 5.0), (3.5, 1.0), (1.0, 10.0)] {
            assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 1.0, 3.0, 8.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-13);
        }
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-13);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-13);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15);
        assert!((erf(6.0) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn erfc_large_argument_accuracy() {
        // erfc(3) = 2.209049699858544e-5
        assert!((erfc(3.0) - 2.209_049_699_858_544e-5).abs() < 1e-17);
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-15);
    }

    #[test]
    fn erfcx_consistent_and_stable() {
        for &x in &[0.5f64, 2.0, 10.0, 24.0] {
            let direct = (x * x).exp() * erfc(x);
            assert!((erfcx(x) - direct).abs() < 1e-10 * direct);
        }
        // No overflow far beyond exp range.
        let v = erfcx(1e4);
        assert!(v > 0.0 && v.is_finite());
    }
}
