//! Reusable history-convolution kernels for memory-carrying fractional
//! recurrences.
//!
//! Every discrete fractional operator in this workspace — the
//! Grünwald–Letnikov stepper (`opm-transient`), the OPM nilpotent-series
//! sweep and its windowed restart (`opm-core`) — spends its time in the
//! same place: a weighted sum of *past* solution columns,
//!
//! ```text
//! conv = Σ_{d=1}^{P} w_{offset+d} · tail[P − d]
//! ```
//!
//! with `tail` ordered oldest → newest. The kernel here is that sum,
//! shared so the whole-horizon, windowed and time-stepping paths cannot
//! drift apart numerically. It is elementwise across the column length,
//! so it applies equally to single columns and to the engine's
//! lane-interleaved `n × K` blocks.
//!
//! [`HistoryTail`] adds the *short-memory principle* on top: a
//! bounded-length tail of retained columns. Dropping columns older than
//! `cap` is exactly the Grünwald–Letnikov short-memory truncation —
//! since the weights of a fractional difference decay like
//! `|w_k| = O(k^{−1−α})`, the neglected forcing is bounded by the tail
//! sum `Σ_{k>cap}|w_k| = O(cap^{−α})` times the solution's sup-norm.

/// Accumulates the history convolution
/// `out[i] += Σ_{d=1}^{tail.len()} weights[offset + d] · tail[len − d][i]`
/// — the memory term of a fractional recurrence, with `tail` ordered
/// oldest → newest and `offset` the local column index (0 for plain
/// time-stepping, `j` for column `j` of a restarted window).
///
/// Weight indices past the end of `weights` are treated as zero, so a
/// deliberately truncated weight vector is a valid short-memory
/// truncation. Zero weights are skipped without touching the column.
///
/// # Panics
/// Panics when some tail column is shorter than `out`.
pub fn history_convolution_into(
    weights: &[f64],
    offset: usize,
    tail: &[Vec<f64>],
    out: &mut [f64],
) {
    let len = tail.len();
    for d in 1..=len {
        let Some(&w) = weights.get(offset + d) else {
            break; // weights exhausted: every older column weighs zero
        };
        if w == 0.0 {
            continue;
        }
        let col = &tail[len - d];
        assert!(
            col.len() >= out.len(),
            "tail column {} entries for a {}-entry accumulator",
            col.len(),
            out.len()
        );
        for (o, &c) in out.iter_mut().zip(col) {
            *o += w * c;
        }
    }
}

/// A bounded tail of retained history columns — the short-memory
/// truncation state of a windowed fractional solve.
///
/// Push each window's solved columns with [`HistoryTail::extend`]; the
/// tail keeps at most `cap` of the most recent ones (all of them when
/// `cap` is `None` — the exact, full-memory mode). The retained slice
/// ([`HistoryTail::columns`], oldest → newest) feeds
/// [`history_convolution_into`] directly.
///
/// ```
/// use opm_fracnum::history::HistoryTail;
/// let mut tail = HistoryTail::new(Some(3));
/// tail.extend(vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
/// // Only the 3 most recent columns survive.
/// assert_eq!(tail.columns(), &[vec![2.0], vec![3.0], vec![4.0]]);
/// ```
#[derive(Clone, Debug)]
pub struct HistoryTail {
    cap: Option<usize>,
    cols: Vec<Vec<f64>>,
}

impl HistoryTail {
    /// An empty tail retaining at most `cap` columns (`None`: unbounded).
    pub fn new(cap: Option<usize>) -> Self {
        HistoryTail {
            cap,
            cols: Vec::new(),
        }
    }

    /// Appends newly solved columns (oldest → newest) and drops columns
    /// beyond the retention cap.
    pub fn extend(&mut self, cols: impl IntoIterator<Item = Vec<f64>>) {
        self.cols.extend(cols);
        if let Some(cap) = self.cap {
            if self.cols.len() > cap {
                let excess = self.cols.len() - cap;
                self.cols.drain(..excess);
            }
        }
    }

    /// The retained columns, oldest → newest.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.cols
    }

    /// Number of retained columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when nothing is retained yet.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolution_matches_direct_sum() {
        let weights = [0.0, 0.5, -0.25, 0.125, -0.0625];
        let tail = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let mut out = vec![1.0, -1.0];
        history_convolution_into(&weights, 0, &tail, &mut out);
        // d=1 → w_1·tail[2], d=2 → w_2·tail[1], d=3 → w_3·tail[0].
        let want0 = 1.0 + 0.5 * 3.0 - 0.25 * 2.0 + 0.125 * 1.0;
        let want1 = -1.0 + 0.5 * 30.0 - 0.25 * 20.0 + 0.125 * 10.0;
        assert!((out[0] - want0).abs() < 1e-15);
        assert!((out[1] - want1).abs() < 1e-15);
    }

    #[test]
    fn offset_shifts_the_weight_window() {
        let weights = [9.0, 9.0, 9.0, 2.0, 4.0];
        let tail = vec![vec![1.0], vec![1.0]];
        let mut out = vec![0.0];
        // offset 2: uses w_3 (newest) and w_4 (oldest).
        history_convolution_into(&weights, 2, &tail, &mut out);
        assert_eq!(out[0], 2.0 + 4.0);
    }

    #[test]
    fn exhausted_weights_act_as_zero() {
        let weights = [1.0, 3.0];
        let tail = vec![vec![100.0], vec![7.0]];
        let mut out = vec![0.0];
        // Only d=1 has a weight (w_1 = 3); d=2 would need w_2.
        history_convolution_into(&weights, 0, &tail, &mut out);
        assert_eq!(out[0], 21.0);
    }

    #[test]
    fn tail_caps_retention() {
        let mut tail = HistoryTail::new(Some(2));
        assert!(tail.is_empty());
        tail.extend(vec![vec![1.0]]);
        tail.extend(vec![vec![2.0], vec![3.0], vec![4.0]]);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.columns(), &[vec![3.0], vec![4.0]]);
        // Unbounded tail keeps everything.
        let mut full = HistoryTail::new(None);
        full.extend((0..5).map(|i| vec![i as f64]));
        assert_eq!(full.len(), 5);
    }

    #[test]
    fn truncated_tail_equals_truncated_weights() {
        // Dropping old columns ≡ zeroing their weights: the two
        // implementations of short memory must agree exactly.
        let weights: Vec<f64> = (0..8).map(|k| 0.7f64.powi(k)).collect();
        let cols: Vec<Vec<f64>> = (0..6).map(|i| vec![(i as f64).sin() + 2.0]).collect();
        let mut capped = HistoryTail::new(Some(3));
        capped.extend(cols.clone());
        let mut via_cap = vec![0.0];
        history_convolution_into(&weights, 1, capped.columns(), &mut via_cap);
        let mut short_w = weights.clone();
        for w in short_w.iter_mut().skip(1 + 3 + 1) {
            *w = 0.0; // offset + cap reached: older columns weigh zero
        }
        let mut via_weights = vec![0.0];
        history_convolution_into(&short_w, 1, &cols, &mut via_weights);
        assert_eq!(via_cap, via_weights);
    }
}
