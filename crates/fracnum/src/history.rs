//! Reusable history-convolution kernels for memory-carrying fractional
//! recurrences.
//!
//! Every discrete fractional operator in this workspace — the
//! Grünwald–Letnikov stepper (`opm-transient`), the OPM nilpotent-series
//! sweep and its windowed restart (`opm-core`) — spends its time in the
//! same place: a weighted sum of *past* solution columns,
//!
//! ```text
//! conv = Σ_{d=1}^{P} w_{offset+d} · tail[P − d]
//! ```
//!
//! with `tail` ordered oldest → newest. The kernel here is that sum,
//! shared so the whole-horizon, windowed and time-stepping paths cannot
//! drift apart numerically. It is elementwise across the column length,
//! so it applies equally to single columns and to the engine's
//! lane-interleaved `n × K` blocks.
//!
//! [`HistoryTail`] adds the *short-memory principle* on top: a
//! bounded-length tail of retained columns. Dropping columns older than
//! `cap` is exactly the Grünwald–Letnikov short-memory truncation —
//! since the weights of a fractional difference decay like
//! `|w_k| = O(k^{−1−α})`, the neglected forcing is bounded by the tail
//! sum `Σ_{k>cap}|w_k| = O(cap^{−α})` times the solution's sup-norm.

/// Accumulates the history convolution
/// `out[i] += Σ_{d=1}^{tail.len()} weights[offset + d] · tail[len − d][i]`
/// — the memory term of a fractional recurrence, with `tail` ordered
/// oldest → newest and `offset` the local column index (0 for plain
/// time-stepping, `j` for column `j` of a restarted window).
///
/// Weight indices past the end of `weights` are treated as zero, so a
/// deliberately truncated weight vector is a valid short-memory
/// truncation. Zero weights are skipped without touching the column.
///
/// Accumulation runs in fixed-width lane panels
/// ([`opm_linalg::panel::LANE_PANEL_WIDTH`] elements of `out` at a time,
/// held in registers across a chunk of history columns, with the chunk
/// count bounded so the memory streams stay prefetchable); per element
/// the terms are added in the exact depth order of
/// [`history_convolution_into_scalar`], so results are bit-identical.
/// `OPM_NO_PANEL=1` routes to the scalar reference.
///
/// # Panics
/// Panics when some tail column is shorter than `out`.
pub fn history_convolution_into(
    weights: &[f64],
    offset: usize,
    tail: &[Vec<f64>],
    out: &mut [f64],
) {
    if !opm_linalg::panel::lane_panels_enabled() {
        return history_convolution_into_scalar(weights, offset, tail, out);
    }
    let len = tail.len();
    // Resolve the (weight, column) terms once, with the scalar path's
    // exact break/skip semantics, so the panel loops below are pure
    // elementwise accumulation.
    let mut terms: Vec<(f64, &[f64])> = Vec::with_capacity(len);
    for d in 1..=len {
        let Some(&w) = weights.get(offset + d) else {
            break; // weights exhausted: every older column weighs zero
        };
        if w == 0.0 {
            continue;
        }
        let col = &tail[len - d];
        assert!(
            col.len() >= out.len(),
            "tail column {} entries for a {}-entry accumulator",
            col.len(),
            out.len()
        );
        terms.push((w, col.as_slice()));
    }
    #[cfg(target_arch = "x86_64")]
    if opm_linalg::panel::avx_available() {
        // SAFETY: the `avx` target feature was detected on this CPU.
        unsafe { convolution_panels_avx(&terms, out) };
        return;
    }
    convolution_panels_body(&terms, out);
}

/// History columns walked concurrently per panel pass. A deep tail read
/// panel-wise across *all* columns at once would interleave more memory
/// streams than the hardware prefetcher tracks; chunking the terms keeps
/// the stream count bounded while per-element accumulation order (chunk
/// order × in-chunk depth order = depth order) is exactly the scalar
/// reference's.
const CONV_STREAMS: usize = 8;

/// The AVX codegen copy of the convolution driver (`avx` only — no
/// `fma`, so the per-element arithmetic stays bit-identical to the
/// portable copy and the scalar reference).
///
/// # Safety
/// The caller must have verified that the running CPU supports the
/// `avx` target feature (this crate gates every call behind
/// [`opm_linalg::panel::avx_available`]). The body is ordinary safe
/// Rust — the only obligation is the feature check.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn convolution_panels_avx(terms: &[(f64, &[f64])], out: &mut [f64]) {
    convolution_panels_body(terms, out);
}

/// The panel sweep over term chunks of [`CONV_STREAMS`] columns (main
/// width plus `4 → 2 → 1` remainder per chunk); `#[inline(always)]` so
/// each dispatch copy compiles it with its own target features.
#[inline(always)]
fn convolution_panels_body(terms: &[(f64, &[f64])], out: &mut [f64]) {
    const W: usize = opm_linalg::panel::LANE_PANEL_WIDTH;
    let n = out.len();
    for chunk in terms.chunks(CONV_STREAMS) {
        let mut p0 = 0;
        while p0 + W <= n {
            convolution_panel::<W>(chunk, p0, out);
            p0 += W;
        }
        if p0 + 4 <= n {
            convolution_panel::<4>(chunk, p0, out);
            p0 += 4;
        }
        if p0 + 2 <= n {
            convolution_panel::<2>(chunk, p0, out);
            p0 += 2;
        }
        if p0 < n {
            convolution_panel::<1>(chunk, p0, out);
        }
    }
}

/// Accumulates all convolution terms into `out[p0..p0 + W]` with a
/// register panel: each element receives its terms in slice order (the
/// scalar path's depth order), one load/store of `out` per panel.
#[inline(always)]
fn convolution_panel<const W: usize>(terms: &[(f64, &[f64])], p0: usize, out: &mut [f64]) {
    let mut acc = [0.0; W];
    acc.copy_from_slice(&out[p0..p0 + W]);
    for &(w, col) in terms {
        let c: &[f64; W] = col[p0..p0 + W].try_into().unwrap();
        for i in 0..W {
            acc[i] += w * c[i];
        }
    }
    out[p0..p0 + W].copy_from_slice(&acc);
}

/// The scalar reference implementation of [`history_convolution_into`]:
/// one full pass over `out` per history column, in depth order. The
/// panel path is validated against this bit-for-bit by the `kernel/*`
/// bench records and proptests.
///
/// # Panics
/// As [`history_convolution_into`].
pub fn history_convolution_into_scalar(
    weights: &[f64],
    offset: usize,
    tail: &[Vec<f64>],
    out: &mut [f64],
) {
    let len = tail.len();
    for d in 1..=len {
        let Some(&w) = weights.get(offset + d) else {
            break; // weights exhausted: every older column weighs zero
        };
        if w == 0.0 {
            continue;
        }
        let col = &tail[len - d];
        assert!(
            col.len() >= out.len(),
            "tail column {} entries for a {}-entry accumulator",
            col.len(),
            out.len()
        );
        for (o, &c) in out.iter_mut().zip(col) {
            *o += w * c;
        }
    }
}

/// A bounded tail of retained history columns — the short-memory
/// truncation state of a windowed fractional solve.
///
/// Push each window's solved columns with [`HistoryTail::extend`]; the
/// tail keeps at most `cap` of the most recent ones (all of them when
/// `cap` is `None` — the exact, full-memory mode). The retained slice
/// ([`HistoryTail::columns`], oldest → newest) feeds
/// [`history_convolution_into`] directly.
///
/// ```
/// use opm_fracnum::history::HistoryTail;
/// let mut tail = HistoryTail::new(Some(3));
/// tail.extend(vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
/// // Only the 3 most recent columns survive.
/// assert_eq!(tail.columns(), &[vec![2.0], vec![3.0], vec![4.0]]);
/// ```
#[derive(Clone, Debug)]
pub struct HistoryTail {
    cap: Option<usize>,
    cols: Vec<Vec<f64>>,
}

impl HistoryTail {
    /// An empty tail retaining at most `cap` columns (`None`: unbounded).
    pub fn new(cap: Option<usize>) -> Self {
        HistoryTail {
            cap,
            cols: Vec::new(),
        }
    }

    /// Appends newly solved columns (oldest → newest) and drops columns
    /// beyond the retention cap.
    pub fn extend(&mut self, cols: impl IntoIterator<Item = Vec<f64>>) {
        self.cols.extend(cols);
        if let Some(cap) = self.cap {
            if self.cols.len() > cap {
                let excess = self.cols.len() - cap;
                self.cols.drain(..excess);
            }
        }
    }

    /// The retained columns, oldest → newest.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.cols
    }

    /// Number of retained columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// True when nothing is retained yet.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolution_matches_direct_sum() {
        let weights = [0.0, 0.5, -0.25, 0.125, -0.0625];
        let tail = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let mut out = vec![1.0, -1.0];
        history_convolution_into(&weights, 0, &tail, &mut out);
        // d=1 → w_1·tail[2], d=2 → w_2·tail[1], d=3 → w_3·tail[0].
        let want0 = 1.0 + 0.5 * 3.0 - 0.25 * 2.0 + 0.125 * 1.0;
        let want1 = -1.0 + 0.5 * 30.0 - 0.25 * 20.0 + 0.125 * 10.0;
        assert!((out[0] - want0).abs() < 1e-15);
        assert!((out[1] - want1).abs() < 1e-15);
    }

    #[test]
    fn offset_shifts_the_weight_window() {
        let weights = [9.0, 9.0, 9.0, 2.0, 4.0];
        let tail = vec![vec![1.0], vec![1.0]];
        let mut out = vec![0.0];
        // offset 2: uses w_3 (newest) and w_4 (oldest).
        history_convolution_into(&weights, 2, &tail, &mut out);
        assert_eq!(out[0], 2.0 + 4.0);
    }

    #[test]
    fn exhausted_weights_act_as_zero() {
        let weights = [1.0, 3.0];
        let tail = vec![vec![100.0], vec![7.0]];
        let mut out = vec![0.0];
        // Only d=1 has a weight (w_1 = 3); d=2 would need w_2.
        history_convolution_into(&weights, 0, &tail, &mut out);
        assert_eq!(out[0], 21.0);
    }

    #[test]
    fn tail_caps_retention() {
        let mut tail = HistoryTail::new(Some(2));
        assert!(tail.is_empty());
        tail.extend(vec![vec![1.0]]);
        tail.extend(vec![vec![2.0], vec![3.0], vec![4.0]]);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.columns(), &[vec![3.0], vec![4.0]]);
        // Unbounded tail keeps everything.
        let mut full = HistoryTail::new(None);
        full.extend((0..5).map(|i| vec![i as f64]));
        assert_eq!(full.len(), 5);
    }

    #[test]
    fn panel_convolution_matches_scalar_for_ragged_lengths() {
        // Column lengths straddle every remainder width (8/4/2/1).
        for n in [1usize, 2, 3, 7, 8, 9, 15, 16, 29] {
            let weights: Vec<f64> = (0..12)
                .map(|k| if k == 5 { 0.0 } else { (-0.8f64).powi(k) })
                .collect();
            let tail: Vec<Vec<f64>> = (0..9)
                .map(|d| {
                    (0..n)
                        .map(|i| ((d * 31 + i * 7) as f64 * 0.37).sin())
                        .collect()
                })
                .collect();
            let mut scalar: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 1.0).collect();
            let mut panels = scalar.clone();
            history_convolution_into_scalar(&weights, 1, &tail, &mut scalar);
            history_convolution_into(&weights, 1, &tail, &mut panels);
            assert_eq!(scalar, panels, "n = {n}");
        }
    }

    #[test]
    fn truncated_tail_equals_truncated_weights() {
        // Dropping old columns ≡ zeroing their weights: the two
        // implementations of short memory must agree exactly.
        let weights: Vec<f64> = (0..8).map(|k| 0.7f64.powi(k)).collect();
        let cols: Vec<Vec<f64>> = (0..6).map(|i| vec![(i as f64).sin() + 2.0]).collect();
        let mut capped = HistoryTail::new(Some(3));
        capped.extend(cols.clone());
        let mut via_cap = vec![0.0];
        history_convolution_into(&weights, 1, capped.columns(), &mut via_cap);
        let mut short_w = weights.clone();
        for w in short_w.iter_mut().skip(1 + 3 + 1) {
            *w = 0.0; // offset + cap reached: older columns weigh zero
        }
        let mut via_weights = vec![0.0];
        history_convolution_into(&short_w, 1, &cols, &mut via_weights);
        assert_eq!(via_cap, via_weights);
    }
}
