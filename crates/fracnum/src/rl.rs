//! Riemann–Liouville fractional integration by product-trapezoid quadrature.
//!
//! `I^α f(t) = (1/Γ(α)) ∫₀ᵗ (t−τ)^{α−1} f(τ) dτ`.
//!
//! The product-trapezoidal rule (Diethelm) integrates the weakly singular
//! kernel exactly against a piecewise-linear interpolant of `f`, giving
//! `O(h²)` accuracy — an oracle of independent pedigree for the BPF
//! fractional integration operational matrix.

use crate::gamma::gamma_fn;

/// Computes the RL fractional integral of order `α > 0` of uniformly
/// sampled values (`samples[i] = f(i·h)`) at every sample point.
///
/// Uses Diethelm's product-trapezoid weights
/// `I^α f(t_n) ≈ h^α/Γ(α+2) · Σ_{k=0}^{n} a_{k,n} f(t_k)`.
///
/// # Panics
/// Panics when `α ≤ 0` or `h ≤ 0`.
pub fn rl_integral(alpha: f64, samples: &[f64], h: f64) -> Vec<f64> {
    assert!(alpha > 0.0, "rl_integral requires alpha > 0");
    assert!(h > 0.0, "rl_integral requires h > 0");
    let n = samples.len();
    let scale = h.powf(alpha) / gamma_fn(alpha + 2.0);
    let a1 = alpha + 1.0;

    // Precompute k^{α+1} to reuse across target points.
    let pow_a1: Vec<f64> = (0..=n).map(|k| (k as f64).powf(a1)).collect();
    let pow_a: Vec<f64> = (0..=n).map(|k| (k as f64).powf(alpha)).collect();

    let mut out = vec![0.0; n];
    for i in 1..n {
        let mut s = 0.0;
        // a_{0,i} = (i−1)^{α+1} − i^α·(i − α − 1)
        s += samples[0] * (pow_a1[i - 1] - pow_a[i] * (i as f64 - alpha - 1.0));
        // interior: a_{k,i} = (i−k+1)^{α+1} − 2(i−k)^{α+1} + (i−k−1)^{α+1}
        for k in 1..i {
            let d = i - k;
            s += samples[k] * (pow_a1[d + 1] - 2.0 * pow_a1[d] + pow_a1[d - 1]);
        }
        // a_{i,i} = 1
        s += samples[i];
        out[i] = scale * s;
    }
    out
}

/// Semigroup check helper: applies `I^α` twice and compares against
/// `I^{2α}` on the same samples, returning the max abs deviation (used by
/// tests; exposed for the experiment harness's self-checks).
pub fn semigroup_deviation(alpha: f64, samples: &[f64], h: f64) -> f64 {
    let once = rl_integral(alpha, samples, h);
    let twice = rl_integral(alpha, &once, h);
    let direct = rl_integral(2.0 * alpha, samples, h);
    twice
        .iter()
        .zip(&direct)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_is_plain_integration() {
        // I¹ t = t²/2.
        let h = 1e-3;
        let n = 2000;
        let samples: Vec<f64> = (0..n).map(|i| i as f64 * h).collect();
        let integral = rl_integral(1.0, &samples, h);
        let t = (n - 1) as f64 * h;
        assert!((integral[n - 1] - t * t / 2.0).abs() < 1e-6);
    }

    #[test]
    fn half_integral_of_constant() {
        // I^{1/2} 1 = t^{1/2}/Γ(3/2) = 2√(t/π).
        let h = 1e-3;
        let n = 3000;
        let samples = vec![1.0; n];
        let integral = rl_integral(0.5, &samples, h);
        let t = (n - 1) as f64 * h;
        let want = 2.0 * (t / std::f64::consts::PI).sqrt();
        assert!(
            (integral[n - 1] - want).abs() < 1e-4 * want,
            "{} vs {want}",
            integral[n - 1]
        );
    }

    #[test]
    fn half_integral_of_t() {
        // I^{1/2} t = t^{3/2}/Γ(5/2).
        let h = 1e-3;
        let n = 2000;
        let samples: Vec<f64> = (0..n).map(|i| i as f64 * h).collect();
        let integral = rl_integral(0.5, &samples, h);
        let t = (n - 1) as f64 * h;
        let want = t.powf(1.5) / gamma_fn(2.5);
        assert!((integral[n - 1] - want).abs() < 1e-6 * want.max(1.0));
    }

    #[test]
    fn semigroup_property_holds_numerically() {
        let h = 2e-3;
        let n = 1000;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 * h * 3.0).sin()).collect();
        let dev = semigroup_deviation(0.4, &samples, h);
        assert!(dev < 5e-4, "semigroup deviation {dev}");
    }

    #[test]
    fn inverse_of_grunwald_derivative() {
        // I^α(D^α f) ≈ f for f with f(0)=0.
        use crate::grunwald::GrunwaldCoefficients;
        let h = 1e-3;
        let n = 2000;
        let alpha = 0.5;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 * h).powf(1.25)).collect();
        let d = GrunwaldCoefficients::new(alpha, n).derivative(&samples, h);
        let back = rl_integral(alpha, &d, h);
        let idx = n - 1;
        assert!(
            (back[idx] - samples[idx]).abs() < 5e-3 * samples[idx].max(1.0),
            "{} vs {}",
            back[idx],
            samples[idx]
        );
    }

    #[test]
    #[should_panic(expected = "alpha > 0")]
    fn rejects_nonpositive_alpha() {
        rl_integral(0.0, &[1.0], 0.1);
    }
}
