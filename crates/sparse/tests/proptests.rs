//! Property-based tests for sparse formats and solvers.

use opm_sparse::lu::SparseLu;
use opm_sparse::ordering::{min_degree, rcm};
use opm_sparse::{CooMatrix, CsrMatrix, SparseCholesky};
use proptest::prelude::*;

/// Strategy: random sparse square matrix as triplets, made diagonally
/// dominant so it is comfortably nonsingular (and SPD when symmetrized).
fn dd_sparse(n: usize, extra: usize) -> impl Strategy<Value = CsrMatrix> {
    let entry = (0..n, 0..n, -1.0..1.0f64);
    prop::collection::vec(entry, 0..extra).prop_map(move |tris| {
        let mut c = CooMatrix::new(n, n);
        for (i, j, v) in tris {
            if i != j {
                c.push(i, j, v);
            }
        }
        let partial = c.to_csr();
        let mut full = CooMatrix::new(n, n);
        for i in 0..n {
            let mut rowsum = 0.0;
            for (j, v) in partial.row(i) {
                full.push(i, j, v);
                rowsum += v.abs();
            }
            // Column entries also contribute to the column sums; bounding by
            // the max possible keeps things dominant without bookkeeping.
            full.push(i, i, rowsum + (extra as f64) + 1.0);
        }
        full.to_csr()
    })
}

fn dense_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0..5.0f64, n)
}

proptest! {
    #[test]
    fn coo_to_csr_matches_dense_accumulation(
        tris in prop::collection::vec((0usize..6, 0usize..6, -3.0..3.0f64), 0..40)
    ) {
        let mut c = CooMatrix::new(6, 6);
        let mut dense = [[0.0f64; 6]; 6];
        for (i, j, v) in tris {
            c.push(i, j, v);
            dense[i][j] += v;
        }
        let csr = c.to_csr();
        for i in 0..6 {
            for j in 0..6 {
                prop_assert!((csr.get(i, j) - dense[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spmv_is_linear(a in dd_sparse(8, 30), x in dense_vec(8), y in dense_vec(8), k in -3.0..3.0f64) {
        let lhs: Vec<f64> = {
            let combo: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + k * q).collect();
            a.mul_vec(&combo)
        };
        let ax = a.mul_vec(&x);
        let ay = a.mul_vec(&y);
        for i in 0..8 {
            prop_assert!((lhs[i] - (ax[i] + k * ay[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_involution(a in dd_sparse(7, 25)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn lin_comb_matches_dense(a in dd_sparse(6, 20), b in dd_sparse(6, 20), al in -2.0..2.0f64, be in -2.0..2.0f64) {
        let c = a.lin_comb(al, be, &b);
        let cd = a.to_dense().scale(al).add(&b.to_dense().scale(be));
        prop_assert!(c.to_dense().sub(&cd).norm_max() < 1e-12);
    }

    #[test]
    fn sparse_lu_solves(a in dd_sparse(10, 50), b in dense_vec(10)) {
        let lu = SparseLu::factor(&a.to_csc(), None).expect("dd is nonsingular");
        let x = lu.solve(&b);
        let r = a.mul_vec(&x);
        for i in 0..10 {
            prop_assert!((r[i] - b[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn sparse_lu_with_orderings_agree(a in dd_sparse(9, 40), b in dense_vec(9)) {
        let x0 = SparseLu::factor(&a.to_csc(), None).unwrap().solve(&b);
        let x1 = SparseLu::factor(&a.to_csc(), Some(&rcm(&a))).unwrap().solve(&b);
        let x2 = SparseLu::factor(&a.to_csc(), Some(&min_degree(&a))).unwrap().solve(&b);
        for i in 0..9 {
            prop_assert!((x0[i] - x1[i]).abs() < 1e-8);
            prop_assert!((x0[i] - x2[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn cholesky_matches_lu_on_spd(a in dd_sparse(8, 30), b in dense_vec(8)) {
        // Symmetrize: S = (A + Aᵀ)/2 stays diagonally dominant => SPD.
        let s = a.lin_comb(0.5, 0.5, &a.transpose());
        let xc = SparseCholesky::factor(&s.to_csc(), None).unwrap().solve(&b);
        let xl = SparseLu::factor(&s.to_csc(), None).unwrap().solve(&b);
        for i in 0..8 {
            prop_assert!((xc[i] - xl[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_det_sign_consistent_with_dense(a in dd_sparse(5, 15)) {
        let ds = SparseLu::factor(&a.to_csc(), None).unwrap().det();
        let dd = a.to_dense().factor_lu().unwrap().det();
        prop_assert!((ds - dd).abs() < 1e-8 * dd.abs().max(1.0));
    }
}
