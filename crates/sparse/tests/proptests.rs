//! Property-based tests for sparse formats and solvers.
//!
//! Randomized cases are drawn from a fixed-seed [`StdRng`] so every CI
//! run exercises the identical sample set — failures reproduce exactly.

use opm_rng::StdRng;
use opm_sparse::lu::SparseLu;
use opm_sparse::ordering::{min_degree, rcm};
use opm_sparse::{CooMatrix, CsrMatrix, SparseCholesky};

const CASES: usize = 32;

/// Random sparse square matrix with up to `extra` off-diagonal triplets,
/// made diagonally dominant so it is comfortably nonsingular (and SPD
/// when symmetrized).
fn dd_sparse(rng: &mut StdRng, n: usize, extra: usize) -> CsrMatrix {
    let mut c = CooMatrix::new(n, n);
    for _ in 0..rng.random_range(0..extra) {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i != j {
            c.push(i, j, rng.random_range(-1.0..1.0));
        }
    }
    let partial = c.to_csr();
    let mut full = CooMatrix::new(n, n);
    for i in 0..n {
        let mut rowsum = 0.0;
        for (j, v) in partial.row(i) {
            full.push(i, j, v);
            rowsum += v.abs();
        }
        // Column entries also contribute to the column sums; bounding by
        // the max possible keeps things dominant without bookkeeping.
        full.push(i, i, rowsum + (extra as f64) + 1.0);
    }
    full.to_csr()
}

#[test]
fn coo_to_csr_matches_dense_accumulation() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0001);
    for _ in 0..CASES {
        let mut c = CooMatrix::new(6, 6);
        let mut dense = [[0.0f64; 6]; 6];
        for _ in 0..rng.random_range(0..40usize) {
            let (i, j) = (rng.random_range(0..6usize), rng.random_range(0..6usize));
            let v = rng.random_range(-3.0..3.0);
            c.push(i, j, v);
            dense[i][j] += v;
        }
        let csr = c.to_csr();
        for (i, row) in dense.iter().enumerate() {
            for (j, want) in row.iter().enumerate() {
                assert!((csr.get(i, j) - want).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn spmv_is_linear() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0002);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 8, 30);
        let x = rng.vec_in(-5.0..5.0, 8);
        let y = rng.vec_in(-5.0..5.0, 8);
        let k = rng.random_range(-3.0..3.0);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + k * q).collect();
        let lhs = a.mul_vec(&combo);
        let ax = a.mul_vec(&x);
        let ay = a.mul_vec(&y);
        for i in 0..8 {
            assert!((lhs[i] - (ax[i] + k * ay[i])).abs() < 1e-9);
        }
    }
}

#[test]
fn transpose_involution() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0003);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 7, 25);
        assert_eq!(a.transpose().transpose(), a);
    }
}

#[test]
fn lin_comb_matches_dense() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0004);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 6, 20);
        let b = dd_sparse(&mut rng, 6, 20);
        let al = rng.random_range(-2.0..2.0);
        let be = rng.random_range(-2.0..2.0);
        let c = a.lin_comb(al, be, &b);
        let cd = a.to_dense().scale(al).add(&b.to_dense().scale(be));
        assert!(c.to_dense().sub(&cd).norm_max() < 1e-12);
    }
}

#[test]
fn sparse_lu_solves() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0005);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 10, 50);
        let b = rng.vec_in(-5.0..5.0, 10);
        let lu = SparseLu::factor(&a.to_csc(), None).expect("dd is nonsingular");
        let x = lu.solve(&b);
        let r = a.mul_vec(&x);
        for i in 0..10 {
            assert!((r[i] - b[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn sparse_lu_with_orderings_agree() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0006);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 9, 40);
        let b = rng.vec_in(-5.0..5.0, 9);
        let x0 = SparseLu::factor(&a.to_csc(), None).unwrap().solve(&b);
        let x1 = SparseLu::factor(&a.to_csc(), Some(&rcm(&a)))
            .unwrap()
            .solve(&b);
        let x2 = SparseLu::factor(&a.to_csc(), Some(&min_degree(&a)))
            .unwrap()
            .solve(&b);
        for i in 0..9 {
            assert!((x0[i] - x1[i]).abs() < 1e-8);
            assert!((x0[i] - x2[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn cholesky_matches_lu_on_spd() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0007);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 8, 30);
        let b = rng.vec_in(-5.0..5.0, 8);
        // Symmetrize: S = (A + Aᵀ)/2 stays diagonally dominant => SPD.
        let s = a.lin_comb(0.5, 0.5, &a.transpose());
        let xc = SparseCholesky::factor(&s.to_csc(), None).unwrap().solve(&b);
        let xl = SparseLu::factor(&s.to_csc(), None).unwrap().solve(&b);
        for i in 0..8 {
            assert!((xc[i] - xl[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn lu_det_sign_consistent_with_dense() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0008);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 5, 15);
        let ds = SparseLu::factor(&a.to_csc(), None).unwrap().det();
        let dd = a.to_dense().factor_lu().unwrap().det();
        assert!((ds - dd).abs() < 1e-8 * dd.abs().max(1.0));
    }
}
