//! Property-based tests for sparse formats and solvers.
//!
//! Randomized cases are drawn from a fixed-seed [`StdRng`] so every CI
//! run exercises the identical sample set — failures reproduce exactly.

use opm_rng::StdRng;
use opm_sparse::lu::{SparseLu, SymbolicLu};
use opm_sparse::ordering::{min_degree, rcm};
use opm_sparse::pencil::ShiftedPencil;
use opm_sparse::{CooMatrix, CsrMatrix, SparseCholesky, SparseError};

const CASES: usize = 32;

/// Random sparse square matrix with up to `extra` off-diagonal triplets,
/// made diagonally dominant so it is comfortably nonsingular (and SPD
/// when symmetrized).
fn dd_sparse(rng: &mut StdRng, n: usize, extra: usize) -> CsrMatrix {
    let mut c = CooMatrix::new(n, n);
    for _ in 0..rng.random_range(0..extra) {
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i != j {
            c.push(i, j, rng.random_range(-1.0..1.0));
        }
    }
    let partial = c.to_csr();
    let mut full = CooMatrix::new(n, n);
    for i in 0..n {
        let mut rowsum = 0.0;
        for (j, v) in partial.row(i) {
            full.push(i, j, v);
            rowsum += v.abs();
        }
        // Column entries also contribute to the column sums; bounding by
        // the max possible keeps things dominant without bookkeeping.
        full.push(i, i, rowsum + (extra as f64) + 1.0);
    }
    full.to_csr()
}

#[test]
fn coo_to_csr_matches_dense_accumulation() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0001);
    for _ in 0..CASES {
        let mut c = CooMatrix::new(6, 6);
        let mut dense = [[0.0f64; 6]; 6];
        for _ in 0..rng.random_range(0..40usize) {
            let (i, j) = (rng.random_range(0..6usize), rng.random_range(0..6usize));
            let v = rng.random_range(-3.0..3.0);
            c.push(i, j, v);
            dense[i][j] += v;
        }
        let csr = c.to_csr();
        for (i, row) in dense.iter().enumerate() {
            for (j, want) in row.iter().enumerate() {
                assert!((csr.get(i, j) - want).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn spmv_is_linear() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0002);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 8, 30);
        let x = rng.vec_in(-5.0..5.0, 8);
        let y = rng.vec_in(-5.0..5.0, 8);
        let k = rng.random_range(-3.0..3.0);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(p, q)| p + k * q).collect();
        let lhs = a.mul_vec(&combo);
        let ax = a.mul_vec(&x);
        let ay = a.mul_vec(&y);
        for i in 0..8 {
            assert!((lhs[i] - (ax[i] + k * ay[i])).abs() < 1e-9);
        }
    }
}

#[test]
fn transpose_involution() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0003);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 7, 25);
        assert_eq!(a.transpose().transpose(), a);
    }
}

#[test]
fn lin_comb_matches_dense() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0004);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 6, 20);
        let b = dd_sparse(&mut rng, 6, 20);
        let al = rng.random_range(-2.0..2.0);
        let be = rng.random_range(-2.0..2.0);
        let c = a.lin_comb(al, be, &b);
        let cd = a.to_dense().scale(al).add(&b.to_dense().scale(be));
        assert!(c.to_dense().sub(&cd).norm_max() < 1e-12);
    }
}

#[test]
fn sparse_lu_solves() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0005);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 10, 50);
        let b = rng.vec_in(-5.0..5.0, 10);
        let lu = SparseLu::factor(&a.to_csc(), None).expect("dd is nonsingular");
        let x = lu.solve(&b);
        let r = a.mul_vec(&x);
        for i in 0..10 {
            assert!((r[i] - b[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn sparse_lu_with_orderings_agree() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0006);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 9, 40);
        let b = rng.vec_in(-5.0..5.0, 9);
        let x0 = SparseLu::factor(&a.to_csc(), None).unwrap().solve(&b);
        let x1 = SparseLu::factor(&a.to_csc(), Some(&rcm(&a)))
            .unwrap()
            .solve(&b);
        let x2 = SparseLu::factor(&a.to_csc(), Some(&min_degree(&a)))
            .unwrap()
            .solve(&b);
        for i in 0..9 {
            assert!((x0[i] - x1[i]).abs() < 1e-8);
            assert!((x0[i] - x2[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn cholesky_matches_lu_on_spd() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0007);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 8, 30);
        let b = rng.vec_in(-5.0..5.0, 8);
        // Symmetrize: S = (A + Aᵀ)/2 stays diagonally dominant => SPD.
        let s = a.lin_comb(0.5, 0.5, &a.transpose());
        let xc = SparseCholesky::factor(&s.to_csc(), None).unwrap().solve(&b);
        let xl = SparseLu::factor(&s.to_csc(), None).unwrap().solve(&b);
        for i in 0..8 {
            assert!((xc[i] - xl[i]).abs() < 1e-8);
        }
    }
}

#[test]
fn lu_det_sign_consistent_with_dense() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0008);
    for _ in 0..CASES {
        let a = dd_sparse(&mut rng, 5, 15);
        let ds = SparseLu::factor(&a.to_csc(), None).unwrap().det();
        let dd = a.to_dense().factor_lu().unwrap().det();
        assert!((ds - dd).abs() < 1e-8 * dd.abs().max(1.0));
    }
}

/// Symbolic/numeric split: for random pencil families `σ·E − A` (random
/// patterns, random values, random shift sequences) a numeric
/// refactorization against one shared symbolic analysis must agree with
/// a fresh pivoted factorization of the same matrix to 1e-12.
#[test]
fn refactor_agrees_with_fresh_factor_over_random_shifts() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0011);
    for case in 0..CASES {
        let n = 8 + rng.random_range(0..24usize);
        let e = dd_sparse(&mut rng, n, 3 * n);
        // −A diagonally dominant keeps σE − A comfortably nonsingular
        // for every positive shift.
        let a = dd_sparse(&mut rng, n, 3 * n).scale(-1.0);
        let mut pencil = ShiftedPencil::new(&e, &a);
        let order = rcm(&pencil.pattern().to_csr());
        let sigma0 = 1.0 + 4.0 * rng.random();
        let (sym, _) = SymbolicLu::factor(pencil.shifted(sigma0), Some(&order)).unwrap();
        let b = rng.vec_in(-2.0..2.0, n);
        let mut vals = Vec::new();
        for shift in 0..6 {
            let sigma = 0.5 + 8.0 * rng.random();
            pencil.shift_values(sigma, &mut vals);
            let x_re = SparseLu::refactor(&sym, &vals).unwrap().solve(&b);
            let x_fresh = SparseLu::factor(pencil.shifted(sigma), Some(&order))
                .unwrap()
                .solve(&b);
            for i in 0..n {
                assert!(
                    (x_re[i] - x_fresh[i]).abs() < 1e-12,
                    "case {case}, shift {shift}, row {i}: {} vs {}",
                    x_re[i],
                    x_fresh[i]
                );
            }
        }
    }
}

/// A shift that cancels the analyzed pivot must be *refused* by the
/// numeric refactorization (pivot degradation), and the fresh pivoted
/// fallback must still solve the system.
#[test]
fn refactor_degradation_falls_back_to_fresh_factor() {
    // E = diag(1, 1), A = [[−2, 1], [1, −3]]: the pencil σE − A keeps
    // the diagonal pivot for moderate σ, but σ = −2 zeroes entry (0,0).
    let mut ec = CooMatrix::new(2, 2);
    ec.push(0, 0, 1.0);
    ec.push(1, 1, 1.0);
    let mut ac = CooMatrix::new(2, 2);
    ac.push(0, 0, -2.0);
    ac.push(0, 1, 1.0);
    ac.push(1, 0, 1.0);
    ac.push(1, 1, -3.0);
    let (e, a) = (ec.to_csr(), ac.to_csr());
    let mut pencil = ShiftedPencil::new(&e, &a);
    let (sym, _) = SymbolicLu::factor(pencil.shifted(1.0), None).unwrap();

    // Benign shift: refactor accepted, agrees with a fresh factor.
    let mut vals = Vec::new();
    pencil.shift_values(2.0, &mut vals);
    let x_re = SparseLu::refactor(&sym, &vals).unwrap().solve(&[1.0, 2.0]);
    let x_fr = SparseLu::factor(pencil.shifted(2.0), None)
        .unwrap()
        .solve(&[1.0, 2.0]);
    assert!((x_re[0] - x_fr[0]).abs() < 1e-12 && (x_re[1] - x_fr[1]).abs() < 1e-12);

    // Degenerate shift: the fixed (0,0) pivot collapses to ~0 while the
    // off-diagonal stays O(1) — refactor must refuse...
    let sigma_bad = -2.0 + 1e-15;
    pencil.shift_values(sigma_bad, &mut vals);
    let err = SparseLu::refactor(&sym, &vals).unwrap_err();
    assert!(matches!(err, SparseError::PivotDegraded(_)), "{err:?}");
    // ...and the fresh pivoted fallback must succeed (row swap).
    let lu = SparseLu::factor(pencil.shifted(sigma_bad), None).unwrap();
    let x = lu.solve(&[1.0, 2.0]);
    let m = pencil.shifted(sigma_bad).to_csr();
    let r: Vec<f64> = m
        .mul_vec(&x)
        .iter()
        .zip([1.0, 2.0])
        .map(|(y, b)| (y - b).abs())
        .collect();
    assert!(r.iter().all(|&v| v < 1e-9), "fallback residual {r:?}");
}

/// Panel block solves are bit-identical to the scalar reference across
/// ragged lane counts — `lanes % 8 != 0`, `lanes == 1`, lanes beyond the
/// widest register panel — on random sparse patterns. `assert_eq!` (not
/// a tolerance): lanes are independent, so panelling must not change a
/// single bit.
#[test]
fn panel_block_solve_bit_identical_to_scalar() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0010);
    for case in 0..CASES {
        let n = rng.random_range(3..28usize);
        let a = dd_sparse(&mut rng, n, 6 * n);
        let lu = SparseLu::factor(&a.to_csc(), Some(&rcm(&a))).unwrap();
        for lanes in [1usize, 3, 7, 8, 11, 16, 29, 37, 64, 100] {
            let b = rng.vec_in(-4.0..4.0, n * lanes);
            let mut scalar = vec![0.0; n * lanes];
            let mut panels = vec![0.0; n * lanes];
            lu.solve_block_into_scalar(&b, &mut scalar, lanes);
            lu.solve_block_into(&b, &mut panels, lanes);
            assert_eq!(scalar, panels, "case {case}, n = {n}, lanes = {lanes}");
        }
    }
}

/// Panel SpMM is bit-identical to the scalar reference across ragged
/// lane counts on random sparse patterns.
#[test]
fn panel_block_spmm_bit_identical_to_scalar() {
    let mut rng = StdRng::seed_from_u64(0x5AA_0011);
    for case in 0..CASES {
        let n = rng.random_range(2..24usize);
        let a = dd_sparse(&mut rng, n, 8 * n);
        for lanes in [1usize, 2, 5, 8, 13, 16, 21, 32, 57] {
            let x = rng.vec_in(-3.0..3.0, n * lanes);
            let mut scalar = vec![0.0; n * lanes];
            let mut panels = vec![0.0; n * lanes];
            a.mul_block_into_scalar(&x, &mut scalar, lanes);
            a.mul_block_into(&x, &mut panels, lanes);
            assert_eq!(scalar, panels, "case {case}, n = {n}, lanes = {lanes}");
        }
    }
}
