//! Permutation vectors for fill-reducing orderings and pivoting.

/// A permutation of `0..n`, stored as `new_position → old_index`.
///
/// Applying the permutation to a vector `v` yields `w[k] = v[perm[k]]` —
/// position `k` of the permuted order takes the old entry `perm[k]`.
///
/// ```
/// use opm_sparse::Permutation;
/// let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.apply(&[10.0, 20.0, 30.0]), vec![30.0, 10.0, 20.0]);
/// let q = p.inverse();
/// assert_eq!(q.apply(&p.apply(&[1.0, 2.0, 3.0])), vec![1.0, 2.0, 3.0]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    fwd: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation {
            fwd: (0..n).collect(),
        }
    }

    /// Wraps a vector as a permutation after validating it is a bijection.
    ///
    /// Returns `None` if any index is out of range or repeated.
    pub fn from_vec(fwd: Vec<usize>) -> Option<Self> {
        let n = fwd.len();
        let mut seen = vec![false; n];
        for &i in &fwd {
            if i >= n || seen[i] {
                return None;
            }
            seen[i] = true;
        }
        Some(Permutation { fwd })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    /// True for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }

    /// Old index placed at position `k`.
    #[inline]
    pub fn old_of(&self, k: usize) -> usize {
        self.fwd[k]
    }

    /// Borrows the underlying `new → old` map.
    pub fn as_slice(&self) -> &[usize] {
        &self.fwd
    }

    /// Inverse permutation (`old → new` map wrapped as `new → old`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.fwd.len()];
        for (k, &old) in self.fwd.iter().enumerate() {
            inv[old] = k;
        }
        Permutation { fwd: inv }
    }

    /// Applies to a slice: `out[k] = v[perm[k]]`.
    ///
    /// # Panics
    /// Panics when `v.len() != self.len()`.
    pub fn apply<T: Copy>(&self, v: &[T]) -> Vec<T> {
        assert_eq!(v.len(), self.fwd.len(), "permutation length mismatch");
        self.fwd.iter().map(|&old| v[old]).collect()
    }

    /// Composition `self ∘ other`: applying the result equals applying
    /// `other` first, then `self`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "permutation length mismatch");
        Permutation {
            fwd: self.fwd.iter().map(|&k| other.fwd[k]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(4);
        assert_eq!(p.apply(&[1, 2, 3, 4]), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rejects_invalid_vectors() {
        assert!(Permutation::from_vec(vec![0, 0]).is_none());
        assert!(Permutation::from_vec(vec![0, 2]).is_none());
        assert!(Permutation::from_vec(vec![1, 0]).is_some());
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        let q = p.inverse();
        let v = [9.0, 8.0, 7.0, 6.0];
        assert_eq!(q.apply(&p.apply(&v)), v.to_vec());
        assert_eq!(p.apply(&q.apply(&v)), v.to_vec());
    }

    #[test]
    fn composition_order() {
        let p = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let v = [10, 20, 30];
        // compose(p, q) applies q then p.
        let pq = p.compose(&q);
        assert_eq!(pq.apply(&v), p.apply(&q.apply(&v)));
    }
}
