//! Sparse-matrix formats and direct solvers for the OPM workspace.
//!
//! The paper's complexity claim — `O(n^β m + n m²)` with `1 < β < 2` — rests
//! on a sparse direct solver for the per-column systems `(d_jj·E − A)·x = r`.
//! This crate provides that substrate, built from scratch:
//!
//! - [`coo::CooMatrix`] — triplet builder (duplicates summed), the natural
//!   output of circuit stamping.
//! - [`csr::CsrMatrix`] — compressed sparse row: matrix–vector products,
//!   linear combinations (`α·E + β·A`), transpose.
//! - [`csc::CscMatrix`] — compressed sparse column, the factorization format.
//! - [`lu::SparseLu`] — left-looking Gilbert–Peierls LU with partial
//!   pivoting (diagonal-preference threshold, SPICE style), split into a
//!   reusable symbolic analysis ([`lu::SymbolicLu`]) and numeric-only
//!   refactorization ([`lu::SparseLu::refactor`]) for many-matrix,
//!   one-pattern workloads.
//! - [`pencil::ShiftedPencil`] — the `σ·E − A` pencil family: union CSC
//!   pattern assembled once, values rewritten per shift.
//! - [`cholesky::SparseCholesky`] — left-looking simplicial Cholesky for the
//!   SPD matrices of the second-order nodal formulation.
//! - [`ordering`] — reverse Cuthill–McKee and minimum-degree fill-reducing
//!   orderings; [`perm::Permutation`].
//!
//! # Example
//!
//! ```
//! use opm_sparse::{CooMatrix, lu::SparseLu};
//!
//! let mut coo = CooMatrix::new(2, 2);
//! coo.push(0, 0, 4.0);
//! coo.push(0, 1, 1.0);
//! coo.push(1, 0, 1.0);
//! coo.push(1, 1, 3.0);
//! let a = coo.to_csr();
//! let lu = SparseLu::factor(&a.to_csc(), None).expect("nonsingular");
//! let x = lu.solve(&[9.0, 7.0]);
//! assert!((x[0] - 20.0 / 11.0).abs() < 1e-12);
//! ```

pub mod cholesky;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod lu;
pub mod ordering;
pub mod pencil;
pub mod perm;

pub use cholesky::SparseCholesky;
pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use lu::{SparseLu, SymbolicLu};
pub use pencil::ShiftedPencil;
pub use perm::Permutation;

/// Errors produced by sparse factorizations.
#[derive(Clone, Debug, PartialEq)]
pub enum SparseError {
    /// The matrix is structurally or numerically singular; the payload is
    /// the column at which factorization broke down.
    Singular(usize),
    /// A numeric refactorization ([`lu::SparseLu::refactor`]) found the
    /// fixed pivot of this column degraded past
    /// [`lu::LuOptions::refactor_threshold`]; the caller should fall
    /// back to a fresh pivoted factorization.
    PivotDegraded(usize),
    /// Cholesky encountered a non-positive pivot; the matrix is not
    /// positive definite.
    NotPositiveDefinite(usize),
    /// Dimensions are inconsistent for the requested operation.
    DimensionMismatch {
        /// What the operation expected.
        expected: (usize, usize),
        /// What it received.
        found: (usize, usize),
    },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::Singular(k) => write!(f, "matrix is singular at column {k}"),
            SparseError::PivotDegraded(k) => write!(
                f,
                "refactorization pivot degraded at column {k}; a fresh pivoted \
                 factorization is required"
            ),
            SparseError::NotPositiveDefinite(k) => {
                write!(f, "matrix is not positive definite (pivot {k})")
            }
            SparseError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
        }
    }
}

impl std::error::Error for SparseError {}
