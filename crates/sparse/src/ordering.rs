//! Fill-reducing orderings: reverse Cuthill–McKee and minimum degree.
//!
//! The Gilbert–Peierls LU fills in proportional to the envelope of the
//! permuted matrix; for the banded grid structures of power-delivery
//! networks RCM is both cheap and effective, while minimum degree wins on
//! more irregular topologies. Orderings operate on the symmetrized pattern
//! `A + Aᵀ` so they are safe for the unsymmetric MNA matrices.

use crate::csr::CsrMatrix;
use crate::perm::Permutation;

/// Builds the adjacency lists of the symmetrized pattern `A + Aᵀ`,
/// excluding the diagonal.
fn symmetric_adjacency(a: &CsrMatrix) -> Vec<Vec<usize>> {
    assert_eq!(a.nrows(), a.ncols(), "ordering requires a square matrix");
    let n = a.nrows();
    let t = a.transpose();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for (j, _) in a.row(i) {
            if i != j {
                adj[i].push(j);
            }
        }
        for (j, _) in t.row(i) {
            if i != j {
                adj[i].push(j);
            }
        }
        adj[i].sort_unstable();
        adj[i].dedup();
    }
    adj
}

/// Finds a pseudo-peripheral node of the component containing `start`
/// (George–Liu double BFS heuristic).
fn pseudo_peripheral(adj: &[Vec<usize>], start: usize) -> usize {
    let n = adj.len();
    let mut node = start;
    let mut last_ecc = 0usize;
    let mut level = vec![usize::MAX; n];
    loop {
        // BFS from `node`.
        level.iter_mut().for_each(|l| *l = usize::MAX);
        level[node] = 0;
        let mut queue = std::collections::VecDeque::from([node]);
        let mut far = node;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if level[v] == usize::MAX {
                    level[v] = level[u] + 1;
                    if level[v] > level[far]
                        || (level[v] == level[far] && adj[v].len() < adj[far].len())
                    {
                        far = v;
                    }
                    queue.push_back(v);
                }
            }
        }
        let ecc = level[far];
        if ecc <= last_ecc {
            return node;
        }
        last_ecc = ecc;
        node = far;
    }
}

/// Reverse Cuthill–McKee ordering of the symmetrized pattern of `a`.
///
/// Returns a [`Permutation`] `p` such that relabelling unknown `p.old_of(k)`
/// as `k` concentrates the pattern near the diagonal. Handles disconnected
/// graphs (each component seeded from a pseudo-peripheral node).
///
/// ```
/// use opm_sparse::{CooMatrix, ordering::rcm};
/// let mut c = CooMatrix::new(3, 3);
/// c.push(0, 2, 1.0); c.push(2, 0, 1.0);
/// for i in 0..3 { c.push(i, i, 1.0); }
/// let p = rcm(&c.to_csr());
/// assert_eq!(p.len(), 3);
/// ```
pub fn rcm(a: &CsrMatrix) -> Permutation {
    let adj = symmetric_adjacency(a);
    let n = adj.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);

    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let root = pseudo_peripheral(&adj, seed);
        // Cuthill–McKee BFS with neighbors sorted by ascending degree.
        visited[root] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut nbrs: Vec<usize> = adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            nbrs.sort_unstable_by_key(|&v| adj[v].len());
            for v in nbrs {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    Permutation::from_vec(order).expect("RCM produces a valid permutation")
}

/// Greedy minimum-degree ordering on the symmetrized pattern of `a`.
///
/// Classic elimination-graph minimum degree: repeatedly eliminate a node of
/// minimum current degree and connect its neighbourhood into a clique.
/// Exact (not "approximate minimum degree"); intended for systems up to a
/// few tens of thousands of unknowns — use [`rcm`] beyond that.
pub fn min_degree(a: &CsrMatrix) -> Permutation {
    use std::collections::BTreeSet;
    let adj0 = symmetric_adjacency(a);
    let n = adj0.len();
    let mut adj: Vec<BTreeSet<usize>> = adj0.into_iter().map(|v| v.into_iter().collect()).collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);

    // Degree buckets would be faster; a scan keeps the code transparent and
    // is adequate at the intended scales.
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && adj[v].len() < best_deg {
                best = v;
                best_deg = adj[v].len();
            }
        }
        let v = best;
        eliminated[v] = true;
        order.push(v);
        let nbrs: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        // Form the elimination clique.
        for (idx, &u) in nbrs.iter().enumerate() {
            adj[u].remove(&v);
            for &w in &nbrs[idx + 1..] {
                adj[u].insert(w);
                adj[w].insert(u);
            }
        }
        adj[v].clear();
    }
    Permutation::from_vec(order).expect("min-degree produces a valid permutation")
}

/// Bandwidth of the pattern of `a` under permutation `p` — the quality
/// metric RCM optimizes for.
pub fn bandwidth(a: &CsrMatrix, p: &Permutation) -> usize {
    let inv = p.inverse();
    let mut bw = 0usize;
    for i in 0..a.nrows() {
        let pi = inv.old_of(i);
        for (j, _) in a.row(i) {
            let pj = inv.old_of(j);
            bw = bw.max(pi.abs_diff(pj));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// 1-D chain graph labelled badly (even nodes first, then odd).
    fn scrambled_chain(n: usize) -> CsrMatrix {
        // Chain in "true" order is 0-1-2-...; we label true node t as
        // (t/2) if even else (n+1)/2 + t/2 to scramble locality.
        let label = |t: usize| {
            if t % 2 == 0 {
                t / 2
            } else {
                n.div_ceil(2) + t / 2
            }
        };
        let mut c = CooMatrix::new(n, n);
        for t in 0..n {
            c.push(label(t), label(t), 4.0);
            if t + 1 < n {
                c.push(label(t), label(t + 1), -1.0);
                c.push(label(t + 1), label(t), -1.0);
            }
        }
        c.to_csr()
    }

    #[test]
    fn rcm_restores_chain_bandwidth() {
        let a = scrambled_chain(40);
        let ident = Permutation::identity(40);
        let before = bandwidth(&a, &ident);
        let after = bandwidth(&a, &rcm(&a));
        assert!(before > 10, "scramble should start wide, got {before}");
        assert_eq!(after, 1, "a chain reorders to bandwidth 1");
    }

    #[test]
    fn min_degree_orders_star_center_last() {
        // Star: center 0 connected to all others. Min degree eliminates
        // leaves (degree 1) before the hub (degree n−1).
        let n = 8;
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 1.0);
        }
        for l in 1..n {
            c.push(0, l, 1.0);
            c.push(l, 0, 1.0);
        }
        let p = min_degree(&c.to_csr());
        // Leaves (degree 1) are eliminated first; the hub only becomes
        // degree-1 when a single leaf remains, so it lands in the last two.
        let hub_pos = p.as_slice().iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= n - 2, "hub eliminated too early: {hub_pos}");
    }

    #[test]
    fn orderings_are_valid_permutations_on_disconnected_graphs() {
        let mut c = CooMatrix::new(6, 6);
        for i in 0..6 {
            c.push(i, i, 1.0);
        }
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        c.push(4, 5, 1.0);
        c.push(5, 4, 1.0);
        let a = c.to_csr();
        assert_eq!(rcm(&a).len(), 6);
        assert_eq!(min_degree(&a).len(), 6);
    }

    #[test]
    fn rcm_handles_unsymmetric_patterns() {
        let mut c = CooMatrix::new(3, 3);
        for i in 0..3 {
            c.push(i, i, 1.0);
        }
        c.push(0, 2, 1.0); // only upper entry; symmetrization must catch it
        let p = rcm(&c.to_csr());
        assert_eq!(p.len(), 3);
    }
}
