//! Shifted-pencil assembly: the CSC pattern of `σ·E − A` built **once**.
//!
//! Every OPM strategy that factors many pencils — step grids, the
//! adaptive step lattice, repeated plans over one model — factors the
//! same *pattern* `pattern(E) ∪ pattern(A)` with different values
//! `σ·e_ij − a_ij`. Rebuilding the CSC (a linear combination plus a
//! transpose-shaped conversion) per shift is pure waste: this module
//! assembles the union pattern once, stores the `E` and `A` values
//! aligned to it, and rewrites only the value array per shift. Combined
//! with [`crate::lu::SymbolicLu`] the whole symbolic side of a
//! factorization (pattern, ordering, elimination reach) is paid once per
//! pencil *family* instead of once per pencil.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;

/// The pencil family `σ·E − A` over all shifts `σ`: one CSC union
/// pattern plus the `E`/`A` values aligned to it.
///
/// ```
/// use opm_sparse::{CooMatrix, pencil::ShiftedPencil, lu::SparseLu};
/// let mut e = CooMatrix::new(2, 2);
/// e.push(0, 0, 1.0);
/// e.push(1, 1, 2.0);
/// let mut a = CooMatrix::new(2, 2);
/// a.push(0, 1, -1.0);
/// a.push(1, 0, 1.0);
/// let mut pencil = ShiftedPencil::new(&e.to_csr(), &a.to_csr());
/// // σ = 3: factor (3E − A) = [[3, 1], [−1, 6]] without rebuilding
/// // the pattern; (3E − A)·[1, 1]ᵀ = [4, 5]ᵀ.
/// let lu = SparseLu::factor(pencil.shifted(3.0), None).unwrap();
/// let x = lu.solve(&[4.0, 5.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct ShiftedPencil {
    /// Union pattern; its value array is scratch for the last shift.
    csc: CscMatrix,
    /// `E` values on the union pattern (0 where only `A` has an entry).
    e_vals: Vec<f64>,
    /// `A` values on the union pattern (0 where only `E` has an entry).
    a_vals: Vec<f64>,
}

impl ShiftedPencil {
    /// Assembles the union pattern of `E` and `A` in CSC layout and
    /// aligns both value sets to it.
    ///
    /// # Panics
    /// Panics when `e` and `a` have different dimensions.
    pub fn new(e: &CsrMatrix, a: &CsrMatrix) -> Self {
        // lin_comb with a zero coefficient keeps the union pattern while
        // selecting one matrix's values — two passes give E and A on the
        // *identical* pattern, so a single CSC conversion each leaves
        // the value arrays position-aligned.
        let e_union = e.lin_comb(1.0, 0.0, a).to_csc();
        let a_union = e.lin_comb(0.0, 1.0, a).to_csc();
        let e_vals = e_union.values().to_vec();
        let a_vals = a_union.values().to_vec();
        ShiftedPencil {
            csc: e_union,
            e_vals,
            a_vals,
        }
    }

    /// Matrix dimension (the pencil is square iff `E` and `A` are).
    pub fn nrows(&self) -> usize {
        self.csc.nrows()
    }

    /// Stored entries of the union pattern.
    pub fn nnz(&self) -> usize {
        self.e_vals.len()
    }

    /// The union pattern (the value payload is whatever shift was last
    /// written via [`ShiftedPencil::shifted`]; use it for pattern-only
    /// work such as fill-reducing orderings).
    pub fn pattern(&self) -> &CscMatrix {
        &self.csc
    }

    /// Writes the values of `σ·E − A` (pattern order) into `out` — the
    /// borrowed form parallel refactorization uses, one scratch buffer
    /// per worker against one shared pattern.
    pub fn shift_values(&self, sigma: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.e_vals
                .iter()
                .zip(&self.a_vals)
                .map(|(&ev, &av)| sigma * ev - av),
        );
    }

    /// Sets the internal value array to `σ·E − A` and returns the CSC —
    /// ready to factor, with no pattern rebuild.
    pub fn shifted(&mut self, sigma: f64) -> &CscMatrix {
        let vals = self.csc.values_mut();
        for ((v, &ev), &av) in vals.iter_mut().zip(&self.e_vals).zip(&self.a_vals) {
            *v = sigma * ev - av;
        }
        &self.csc
    }

    /// An owned CSC of `σ·E − A` (clones the pattern) — for callers that
    /// cannot borrow `self` mutably, e.g. the fresh-factorization
    /// fallback inside a parallel refactorization sweep.
    pub fn shifted_csc(&self, sigma: f64) -> CscMatrix {
        let mut csc = self.csc.clone();
        let vals = csc.values_mut();
        for ((v, &ev), &av) in vals.iter_mut().zip(&self.e_vals).zip(&self.a_vals) {
            *v = sigma * ev - av;
        }
        csc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> (CsrMatrix, CsrMatrix) {
        let mut e = CooMatrix::new(3, 3);
        e.push(0, 0, 2.0);
        e.push(1, 1, 1.0);
        e.push(2, 2, 3.0);
        let mut a = CooMatrix::new(3, 3);
        a.push(0, 0, -1.0);
        a.push(0, 2, 0.5);
        a.push(2, 0, 1.5);
        (e.to_csr(), a.to_csr())
    }

    #[test]
    fn shifted_matches_lin_comb_for_every_shift() {
        let (e, a) = sample();
        let mut pencil = ShiftedPencil::new(&e, &a);
        for &sigma in &[0.0, 1.0, -2.5, 1e6] {
            let want = e.lin_comb(sigma, -1.0, &a);
            let got = pencil.shifted(sigma);
            for i in 0..3 {
                for j in 0..3 {
                    assert_eq!(got.get(i, j), want.get(i, j), "σ={sigma} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn shift_values_and_owned_agree_with_in_place() {
        let (e, a) = sample();
        let mut pencil = ShiftedPencil::new(&e, &a);
        let mut vals = Vec::new();
        pencil.shift_values(7.25, &mut vals);
        let owned = pencil.shifted_csc(7.25);
        let in_place = pencil.shifted(7.25);
        assert_eq!(vals, in_place.values());
        assert_eq!(owned.values(), in_place.values());
    }

    #[test]
    fn pattern_is_the_union() {
        let (e, a) = sample();
        let pencil = ShiftedPencil::new(&e, &a);
        // E has 3 diagonal entries, A adds (0,2) and (2,0); (0,0) overlaps.
        assert_eq!(pencil.nnz(), 5);
    }
}
