//! Left-looking simplicial sparse Cholesky (`A = L·Lᵀ`).
//!
//! The second-order nodal formulation of the power-grid experiment
//! (Table II) produces SPD matrices `d²·C + d·G + Γ`; Cholesky factors
//! them with half the work and none of the pivoting of LU.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::perm::Permutation;
use crate::SparseError;

/// Sparse Cholesky factor `P·A·Pᵀ = L·Lᵀ` with `L` lower triangular.
///
/// ```
/// use opm_sparse::{CooMatrix, cholesky::SparseCholesky};
/// let mut c = CooMatrix::new(2, 2);
/// c.push(0, 0, 4.0);
/// c.push(0, 1, 2.0);
/// c.push(1, 0, 2.0);
/// c.push(1, 1, 3.0);
/// let ch = SparseCholesky::factor(&c.to_csc(), None).unwrap();
/// let x = ch.solve(&[8.0, 7.0]);
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct SparseCholesky {
    n: usize,
    /// Columns of `L`, sorted by row, including the diagonal entry first.
    cols: Vec<Vec<(usize, f64)>>,
    perm: Permutation,
}

impl SparseCholesky {
    /// Factors an SPD matrix with an optional symmetric ordering.
    ///
    /// Only the lower triangle of `a` is read; the caller is trusted on
    /// symmetry (checked cheaply in debug builds).
    ///
    /// # Errors
    /// [`SparseError::NotPositiveDefinite`] on a non-positive pivot;
    /// [`SparseError::DimensionMismatch`] when `a` is not square.
    pub fn factor(a: &CscMatrix, order: Option<&Permutation>) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: (a.nrows(), a.nrows()),
                found: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let perm = order.cloned().unwrap_or_else(|| Permutation::identity(n));
        assert_eq!(perm.len(), n, "ordering length mismatch");

        // Apply the symmetric permutation once: B = P·A·Pᵀ.
        let b = permute_symmetric(a, &perm);

        let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        // link[j] = columns whose next unconsumed entry sits at row j.
        let mut link: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut col_pos: Vec<usize> = vec![0; n];

        let mut x = vec![0.0f64; n];
        let mut in_pattern = vec![false; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(n);

        for j in 0..n {
            // Scatter lower part of B[:, j].
            pattern.clear();
            for (i, v) in b.col(j) {
                if i >= j {
                    x[i] = v;
                    if !in_pattern[i] {
                        in_pattern[i] = true;
                        pattern.push(i);
                    }
                }
            }
            // Left-looking updates from all columns k with L[j,k] ≠ 0.
            let updating: Vec<usize> = std::mem::take(&mut link[j]);
            for k in updating {
                let ljk = cols[k][col_pos[k]].1;
                // Subtract ljk · L[j.., k].
                for &(i, lik) in &cols[k][col_pos[k]..] {
                    if !in_pattern[i] {
                        in_pattern[i] = true;
                        pattern.push(i);
                        x[i] = 0.0;
                    }
                    x[i] -= ljk * lik;
                }
                // Advance column k to its next row and re-link.
                col_pos[k] += 1;
                if col_pos[k] < cols[k].len() {
                    let next_row = cols[k][col_pos[k]].0;
                    link[next_row].push(k);
                }
            }
            // Pivot.
            let pivot = x[j];
            if pivot <= 0.0 || !pivot.is_finite() {
                return Err(SparseError::NotPositiveDefinite(j));
            }
            let ljj = pivot.sqrt();
            // Emit column j (sorted by row; diagonal first).
            pattern.sort_unstable();
            let mut col = Vec::with_capacity(pattern.len());
            for &i in &pattern {
                let v = x[i];
                in_pattern[i] = false;
                x[i] = 0.0;
                if i == j {
                    col.push((j, ljj));
                } else if v != 0.0 {
                    col.push((i, v / ljj));
                }
            }
            debug_assert_eq!(col[0].0, j, "diagonal must lead the column");
            if col.len() > 1 {
                let next_row = col[1].0;
                link[next_row].push(j);
            }
            col_pos[j] = 1; // position past the diagonal
            cols.push(col);
        }

        Ok(SparseCholesky { n, cols, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entry count of `L`.
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    /// Panics when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "solve: rhs length mismatch");
        // y ← P·b
        let mut y: Vec<f64> = (0..self.n).map(|k| b[self.perm.old_of(k)]).collect();
        // Forward: L·z = y (column sweep).
        for k in 0..self.n {
            let (dk, lkk) = self.cols[k][0];
            debug_assert_eq!(dk, k);
            y[k] /= lkk;
            let yk = y[k];
            for &(i, lv) in &self.cols[k][1..] {
                y[i] -= lv * yk;
            }
        }
        // Backward: Lᵀ·w = z (dot products against columns).
        for k in (0..self.n).rev() {
            let mut s = y[k];
            for &(i, lv) in &self.cols[k][1..] {
                s -= lv * y[i];
            }
            y[k] = s / self.cols[k][0].1;
        }
        // Undo permutation.
        let mut out = vec![0.0; self.n];
        for k in 0..self.n {
            out[self.perm.old_of(k)] = y[k];
        }
        out
    }
}

/// Symmetric permutation `B = P·A·Pᵀ` through a COO rebuild.
fn permute_symmetric(a: &CscMatrix, p: &Permutation) -> CscMatrix {
    let n = a.nrows();
    let inv = p.inverse();
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
    for j in 0..n {
        for (i, v) in a.col(j) {
            coo.push(inv.old_of(i), inv.old_of(j), v);
        }
    }
    coo.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::ordering::{min_degree, rcm};

    fn spd_grid(g: usize) -> CsrMatrix {
        let n = g * g;
        let mut c = CooMatrix::new(n, n);
        let idx = |r: usize, s: usize| r * g + s;
        for r in 0..g {
            for s in 0..g {
                c.push(idx(r, s), idx(r, s), 4.5);
                if r + 1 < g {
                    c.push(idx(r, s), idx(r + 1, s), -1.0);
                    c.push(idx(r + 1, s), idx(r, s), -1.0);
                }
                if s + 1 < g {
                    c.push(idx(r, s), idx(r, s + 1), -1.0);
                    c.push(idx(r, s + 1), idx(r, s), -1.0);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn solves_spd_grid() {
        let a = spd_grid(15);
        let n = a.nrows();
        let xt: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
        let b = a.mul_vec(&xt);
        for order in [None, Some(rcm(&a)), Some(min_degree(&a))] {
            let ch = SparseCholesky::factor(&a.to_csc(), order.as_ref()).unwrap();
            let x = ch.solve(&b);
            let err = x
                .iter()
                .zip(&xt)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9);
        }
    }

    #[test]
    fn cholesky_matches_lu_solution() {
        let a = spd_grid(8);
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.1).cos()).collect();
        let ch = SparseCholesky::factor(&a.to_csc(), None).unwrap();
        let lu = crate::lu::SparseLu::factor(&a.to_csc(), None).unwrap();
        let xc = ch.solve(&b);
        let xl = lu.solve(&b);
        let diff = xc
            .iter()
            .zip(&xl)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max);
        assert!(diff < 1e-10);
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 1, -1.0);
        let err = SparseCholesky::factor(&c.to_csc(), None).unwrap_err();
        assert_eq!(err, SparseError::NotPositiveDefinite(1));
    }

    #[test]
    fn semidefinite_matrix_rejected() {
        // Laplacian without grounding: singular (row sums zero).
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 1, -1.0);
        c.push(1, 0, -1.0);
        c.push(1, 1, 1.0);
        assert!(SparseCholesky::factor(&c.to_csc(), None).is_err());
    }

    #[test]
    fn ordering_reduces_cholesky_fill() {
        let a = spd_grid(20);
        let nat = SparseCholesky::factor(&a.to_csc(), None).unwrap();
        let md = SparseCholesky::factor(&a.to_csc(), Some(&min_degree(&a))).unwrap();
        assert!(md.nnz() < nat.nnz(), "{} !< {}", md.nnz(), nat.nnz());
    }

    #[test]
    fn diagonal_matrix_factors() {
        let mut c = CooMatrix::new(3, 3);
        for i in 0..3 {
            c.push(i, i, (i + 1) as f64);
        }
        let ch = SparseCholesky::factor(&c.to_csc(), None).unwrap();
        let x = ch.solve(&[1.0, 2.0, 3.0]);
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-14);
        }
        assert_eq!(ch.nnz(), 3);
    }
}
