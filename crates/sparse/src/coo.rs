//! Triplet (coordinate) sparse format — the assembly format.
//!
//! Circuit stamping naturally generates `(row, col, value)` triplets with
//! repeats (each element stamps into shared nodes); [`CooMatrix::to_csr`]
//! sorts and sums duplicates, exactly what MNA assembly needs.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;

/// A sparse matrix under construction, stored as unsorted triplets.
///
/// ```
/// use opm_sparse::CooMatrix;
/// let mut m = CooMatrix::new(2, 2);
/// m.push(0, 0, 1.0);
/// m.push(0, 0, 2.0); // duplicate — summed on conversion
/// let csr = m.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` builder.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with space reserved for `cap` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw triplets pushed so far (duplicates not collapsed).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends a triplet. Zero values are kept (they may pin structure).
    ///
    /// # Panics
    /// Panics when the indices are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "coo push out of bounds: ({row},{col}) in {}x{}",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, value));
    }

    /// Converts to CSR, sorting triplets and summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(sorted.len());
        let mut data = Vec::with_capacity(sorted.len());
        indptr.push(0);

        let mut row = 0usize;
        let mut it = sorted.into_iter().peekable();
        while let Some((r, c, mut v)) = it.next() {
            while row < r {
                indptr.push(indices.len());
                row += 1;
            }
            while let Some(&(r2, c2, v2)) = it.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    it.next();
                } else {
                    break;
                }
            }
            indices.push(c);
            data.push(v);
        }
        while row < self.nrows {
            indptr.push(indices.len());
            row += 1;
        }

        CsrMatrix::from_raw(self.nrows, self.ncols, indptr, indices, data)
    }

    /// Converts to CSC (via CSR transpose plumbing).
    pub fn to_csc(&self) -> CscMatrix {
        self.to_csr().to_csc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut m = CooMatrix::new(3, 3);
        m.push(1, 1, 2.0);
        m.push(1, 1, 3.0);
        m.push(0, 2, -1.0);
        let csr = m.to_csr();
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.get(0, 2), -1.0);
        assert_eq!(csr.get(2, 2), 0.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn empty_rows_have_empty_ranges() {
        let mut m = CooMatrix::new(4, 4);
        m.push(3, 0, 1.0);
        let csr = m.to_csr();
        for r in 0..3 {
            assert_eq!(csr.row(r).count(), 0);
        }
        assert_eq!(csr.row(3).count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut m = CooMatrix::new(2, 2);
        m.push(2, 0, 1.0);
    }

    #[test]
    fn empty_matrix_converts() {
        let m = CooMatrix::new(3, 2);
        assert!(m.is_empty());
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.ncols(), 2);
    }
}
