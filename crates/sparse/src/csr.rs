//! Compressed sparse row format: products, combinations, transpose.
//!
//! CSR is the workhorse for the simulation loop — `E·v` accumulations in
//! the OPM column recurrence and the right-hand sides of every baseline
//! integrator are CSR mat-vecs.

use crate::csc::CscMatrix;
use opm_linalg::{DMatrix, DVector};

/// An immutable sparse matrix in compressed sparse row layout.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from raw CSR arrays.
    ///
    /// # Panics
    /// Panics when the arrays are inconsistent (wrong `indptr` length,
    /// non-monotone `indptr`, column index out of range, or unsorted
    /// columns within a row).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Self {
        assert_eq!(indptr.len(), nrows + 1, "indptr length must be nrows+1");
        assert_eq!(indices.len(), data.len(), "indices/data length mismatch");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr tail wrong");
        for r in 0..nrows {
            assert!(indptr[r] <= indptr[r + 1], "indptr must be monotone");
            let row = &indices[indptr[r]..indptr[r + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "columns within a row must be sorted/unique");
            }
            if let Some(&last) = row.last() {
                assert!(last < ncols, "column index out of range");
            }
        }
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Builds an `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: vec![1.0; n],
        }
    }

    /// Builds from a dense matrix, dropping explicit zeros.
    pub fn from_dense(a: &DMatrix) -> Self {
        let mut indptr = Vec::with_capacity(a.nrows() + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                let v = a.get(i, j);
                if v != 0.0 {
                    indices.push(j);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows: a.nrows(),
            ncols: a.ncols(),
            indptr,
            indices,
            data,
        }
    }

    /// Row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Iterates over `(col, value)` pairs of row `i`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.data[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Reads entry `(i, j)` (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        match self.indices[lo..hi].binary_search(&j) {
            Ok(pos) => self.data[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a preallocated buffer (`y` overwritten).
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "mul_vec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "mul_vec: y length mismatch");
        for i in 0..self.nrows {
            let mut s = 0.0;
            for k in self.indptr[i]..self.indptr[i + 1] {
                s += self.data[k] * x[self.indices[k]];
            }
            y[i] = s;
        }
    }

    /// Accumulating product `y += k·A·x`.
    pub fn mul_vec_acc(&self, k: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        for i in 0..self.nrows {
            let mut s = 0.0;
            for p in self.indptr[i]..self.indptr[i + 1] {
                s += self.data[p] * x[self.indices[p]];
            }
            y[i] += k * s;
        }
    }

    /// Matrix–block product `Y = A·X` for `lanes` vectors at once.
    ///
    /// `x` and `y` are row-major `ncols × lanes` / `nrows × lanes` blocks
    /// (the lane values of row `i` at `i*lanes..(i+1)*lanes`); one pass
    /// over the sparse structure serves every lane (`y` overwritten).
    ///
    /// Lanes are processed in fixed-width register panels
    /// ([`opm_linalg::panel::LANE_PANEL_WIDTH`]); per lane the
    /// accumulation order is exactly [`CsrMatrix::mul_block_into_scalar`]'s
    /// (CSR entry order), so results are bit-identical. `OPM_NO_PANEL=1`
    /// routes to the scalar reference.
    ///
    /// # Panics
    /// Panics when `lanes == 0` or on dimension mismatch.
    pub fn mul_block_into(&self, x: &[f64], y: &mut [f64], lanes: usize) {
        if !opm_linalg::panel::lane_panels_enabled() {
            return self.mul_block_into_scalar(x, y, lanes);
        }
        assert!(lanes > 0, "mul_block: zero lanes");
        assert_eq!(x.len(), self.ncols * lanes, "mul_block: x size mismatch");
        assert_eq!(y.len(), self.nrows * lanes, "mul_block: y size mismatch");
        #[cfg(target_arch = "x86_64")]
        if opm_linalg::panel::avx_available() {
            // SAFETY: the `avx` target feature was detected on this CPU.
            unsafe { self.mul_block_panels_avx(x, y, lanes) };
            return;
        }
        self.mul_block_panels_body(x, y, lanes);
    }

    /// The AVX codegen copy of the panel driver (`avx` only — no `fma`,
    /// so the per-lane arithmetic stays bit-identical to the portable
    /// copy and the scalar reference).
    ///
    /// # Safety
    /// The caller must have verified that the running CPU supports the
    /// `avx` target feature (this crate gates every call behind
    /// [`opm_linalg::panel::avx_available`]). The body is ordinary safe
    /// Rust — the only obligation is the feature check.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn mul_block_panels_avx(&self, x: &[f64], y: &mut [f64], lanes: usize) {
        self.mul_block_panels_body(x, y, lanes);
    }

    /// The panel sweep (main width plus `4 → 2 → 1` remainder);
    /// `#[inline(always)]` so each dispatch copy compiles it with its own
    /// target features.
    #[inline(always)]
    fn mul_block_panels_body(&self, x: &[f64], y: &mut [f64], lanes: usize) {
        const W: usize = opm_linalg::panel::LANE_PANEL_WIDTH;
        let mut p0 = 0;
        while p0 + 2 * W <= lanes {
            self.mul_panel::<{ 2 * W }>(x, y, lanes, p0);
            p0 += 2 * W;
        }
        if p0 + W <= lanes {
            self.mul_panel::<W>(x, y, lanes, p0);
            p0 += W;
        }
        if p0 + 4 <= lanes {
            self.mul_panel::<4>(x, y, lanes, p0);
            p0 += 4;
        }
        if p0 + 2 <= lanes {
            self.mul_panel::<2>(x, y, lanes, p0);
            p0 += 2;
        }
        if p0 < lanes {
            self.mul_panel::<1>(x, y, lanes, p0);
        }
    }

    /// The scalar reference implementation of
    /// [`mul_block_into`](Self::mul_block_into): one structure pass with
    /// a full-width lane loop per entry. The panel path is validated
    /// against this bit-for-bit by the `kernel/*` bench records and the
    /// ragged-lane proptests.
    ///
    /// # Panics
    /// As [`mul_block_into`](Self::mul_block_into).
    pub fn mul_block_into_scalar(&self, x: &[f64], y: &mut [f64], lanes: usize) {
        assert!(lanes > 0, "mul_block: zero lanes");
        assert_eq!(x.len(), self.ncols * lanes, "mul_block: x size mismatch");
        assert_eq!(y.len(), self.nrows * lanes, "mul_block: y size mismatch");
        for i in 0..self.nrows {
            let row = &mut y[i * lanes..(i + 1) * lanes];
            row.iter_mut().for_each(|v| *v = 0.0);
            for k in self.indptr[i]..self.indptr[i + 1] {
                let a = self.data[k];
                let src = self.indices[k] * lanes;
                for (yi, xi) in row.iter_mut().zip(&x[src..src + lanes]) {
                    *yi += a * xi;
                }
            }
        }
    }

    /// Lanes `p0 .. p0 + W` of the block product, accumulated in a
    /// `[f64; W]` register panel per output row (single store per row,
    /// no read-modify-write of `y` per entry).
    #[inline(always)]
    fn mul_panel<const W: usize>(&self, x: &[f64], y: &mut [f64], lanes: usize, p0: usize) {
        for i in 0..self.nrows {
            let mut acc = [0.0; W];
            for k in self.indptr[i]..self.indptr[i + 1] {
                let a = self.data[k];
                let src = self.indices[k] * lanes + p0;
                let xs: &[f64; W] = x[src..src + W].try_into().unwrap();
                for w in 0..W {
                    acc[w] += a * xs[w];
                }
            }
            let dst = i * lanes + p0;
            y[dst..dst + W].copy_from_slice(&acc);
        }
    }

    /// Matrix–vector product with [`DVector`].
    pub fn mul_dvec(&self, x: &DVector) -> DVector {
        DVector::from(self.mul_vec(x.as_slice()))
    }

    /// Returns `k·self` with the same pattern.
    pub fn scale(&self, k: f64) -> CsrMatrix {
        let mut out = self.clone();
        out.data.iter_mut().for_each(|v| *v *= k);
        out
    }

    /// Linear combination `α·self + β·other` with pattern union.
    ///
    /// This is the kernel that forms the OPM system matrix
    /// `d_jj·E − A` and every implicit-integrator matrix `E/h − θ·A`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn lin_comb(&self, alpha: f64, beta: f64, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "lin_comb: dimension mismatch"
        );
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        let mut data = Vec::with_capacity(self.nnz() + other.nnz());
        indptr.push(0);
        for i in 0..self.nrows {
            let (mut p, pe) = (self.indptr[i], self.indptr[i + 1]);
            let (mut q, qe) = (other.indptr[i], other.indptr[i + 1]);
            while p < pe || q < qe {
                let cp = if p < pe { self.indices[p] } else { usize::MAX };
                let cq = if q < qe { other.indices[q] } else { usize::MAX };
                if cp < cq {
                    indices.push(cp);
                    data.push(alpha * self.data[p]);
                    p += 1;
                } else if cq < cp {
                    indices.push(cq);
                    data.push(beta * other.data[q]);
                    q += 1;
                } else {
                    indices.push(cp);
                    data.push(alpha * self.data[p] + beta * other.data[q]);
                    p += 1;
                    q += 1;
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Transpose (also the CSR↔CSC conversion kernel).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.indices {
            counts[c] += 1;
        }
        let mut indptr = vec![0usize; self.ncols + 1];
        for j in 0..self.ncols {
            indptr[j + 1] = indptr[j] + counts[j];
        }
        let mut next = indptr.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut data = vec![0.0; self.nnz()];
        for i in 0..self.nrows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let j = self.indices[k];
                let dst = next[j];
                indices[dst] = i;
                data[dst] = self.data[k];
                next[j] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            data,
        }
    }

    /// Converts to CSC (same matrix, column-compressed layout).
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        CscMatrix::from_raw(self.nrows, self.ncols, t.indptr, t.indices, t.data)
    }

    /// Densifies (test/diagnostic helper; avoid on large systems).
    pub fn to_dense(&self) -> DMatrix {
        let mut a = DMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                a.set(i, j, v);
            }
        }
        a
    }

    /// The diagonal as a vector (missing entries are 0).
    pub fn diag(&self) -> Vec<f64> {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Drops entries with `|v| <= tol`, returning a pruned matrix.
    pub fn prune(&self, tol: f64) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                if v.abs() > tol {
                    indices.push(j);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|i| self.row(i).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Symmetric pattern check: `true` when `A` and `Aᵀ` share their
    /// nonzero pattern and values within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            // Patterns differ structurally; fall back to value comparison.
            return self.lin_comb(1.0, -1.0, &t).norm_inf() <= tol;
        }
        self.data
            .iter()
            .zip(&t.data)
            .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut c = CooMatrix::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            c.push(i, j, v);
        }
        c.to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let y = a.mul_vec(&x);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
        let d = a.to_dense();
        let yd = d.mul_vec(&DVector::from_slice(&x));
        assert_eq!(y, yd.into_vec());
    }

    #[test]
    fn mul_block_matches_per_lane_spmv() {
        let a = sample();
        let lanes = 3;
        // Lane l carries x_l = [1+l, 2, 3−l].
        let mut x_block = vec![0.0; 3 * lanes];
        for l in 0..lanes {
            let x = [1.0 + l as f64, 2.0, 3.0 - l as f64];
            for i in 0..3 {
                x_block[i * lanes + l] = x[i];
            }
        }
        let mut y_block = vec![f64::NAN; 3 * lanes]; // must be overwritten
        a.mul_block_into(&x_block, &mut y_block, lanes);
        for l in 0..lanes {
            let x = [1.0 + l as f64, 2.0, 3.0 - l as f64];
            let y = a.mul_vec(&x);
            for i in 0..3 {
                assert_eq!(y_block[i * lanes + l], y[i], "lane {l}, row {i}");
            }
        }
    }

    #[test]
    fn mul_vec_acc_accumulates() {
        let a = sample();
        let x = [1.0, 1.0, 1.0];
        let mut y = vec![1.0, 1.0, 1.0];
        a.mul_vec_acc(2.0, &x, &mut y);
        assert_eq!(y, vec![7.0, 7.0, 19.0]);
    }

    #[test]
    fn transpose_involution_and_correctness() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.get(0, 2), 4.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn lin_comb_pattern_union() {
        let a = sample();
        let i = CsrMatrix::identity(3);
        // 2A − 3I
        let c = a.lin_comb(2.0, -3.0, &i);
        assert_eq!(c.get(0, 0), -1.0);
        assert_eq!(c.get(1, 1), 3.0);
        assert_eq!(c.get(0, 2), 4.0);
        // Identity entry absent from A still appears.
        let c2 = CsrMatrix::identity(3).lin_comb(1.0, 1.0, &sample());
        assert_eq!(c2.get(1, 1), 4.0);
    }

    #[test]
    fn prune_drops_small_entries() {
        let a = sample().lin_comb(1.0, -1.0, &sample());
        // All-zero after cancellation; entries remain structurally.
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.prune(0.0).nnz(), 0);
    }

    #[test]
    fn norms_and_diag() {
        let a = sample();
        assert_eq!(a.norm_inf(), 9.0);
        assert_eq!(a.diag(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn symmetry_detection() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 1, 2.0);
        c.push(1, 0, 2.0);
        c.push(0, 0, 1.0);
        assert!(c.to_csr().is_symmetric(0.0));
        let mut d = CooMatrix::new(2, 2);
        d.push(0, 1, 2.0);
        assert!(!d.to_csr().is_symmetric(1e-15));
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = DMatrix::from_rows(&[&[0.0, 1.5], &[-2.0, 0.0]]);
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_raw_rejects_unsorted() {
        let _ = CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]);
    }

    #[test]
    fn identity_spmv_is_copy() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x.to_vec());
    }
}
