//! Left-looking sparse LU with partial pivoting (Gilbert–Peierls).
//!
//! This is the `O(n^β)` direct solver the paper's complexity analysis
//! assumes. Each column is computed by a *sparse triangular solve* whose
//! nonzero pattern is discovered by depth-first search through the graph of
//! the partially built `L` (Gilbert & Peierls, 1988), so the factorization
//! runs in time proportional to arithmetic work rather than `O(n²)`.
//!
//! Pivoting is partial (by magnitude) with a diagonal-preference threshold:
//! the diagonal row is accepted whenever it is within `pivot_threshold` of
//! the largest candidate — the SPICE convention, which preserves the
//! benefit of a fill-reducing pre-ordering on MNA matrices.
//!
//! # Symbolic/numeric split
//!
//! Workloads that factor **many matrices on one sparsity pattern** (the
//! OPM pencils `σ·E − A` over varying shifts, the SPICE per-timestep
//! Jacobians this solver family was designed for) pay the depth-first
//! reach discovery, pivot search and pattern bookkeeping only once:
//! [`SymbolicLu::factor_with`] records the elimination reach and pivot
//! order of a reference factorization, and [`SparseLu::refactor`] replays
//! the *numeric* half against new values — fixed pivots, fixed fill, no
//! DFS — in the KLU style. A pivot that degrades past
//! [`LuOptions::refactor_threshold`] aborts with
//! [`SparseError::PivotDegraded`] so the caller can fall back to a fresh
//! pivoted factorization.

use crate::csc::CscMatrix;
use crate::perm::Permutation;
use crate::SparseError;
use opm_linalg::panel::{
    backward_upper_panels, forward_unit_lower_panels, lane_panels_enabled, LANE_PANEL_WIDTH,
};

/// Minimum width for a supernodal dense tail: trailing column blocks
/// narrower than this stay in sparse form (the dense kernels cannot
/// recoup their zero-fill overhead on tiny blocks).
const MIN_DENSE_TAIL: usize = 8;

/// Maximum width for a supernodal dense tail: caps the redundant dense
/// mirror at `512² × 8 B = 2 MiB` per factorization.
const MAX_DENSE_TAIL: usize = 512;

/// Factorization options.
#[derive(Clone, Copy, Debug)]
pub struct LuOptions {
    /// Relative threshold for accepting the diagonal pivot (`0 < t ≤ 1`);
    /// `1.0` forces strict partial pivoting, small values prefer the
    /// diagonal. Default `1e-3`.
    pub pivot_threshold: f64,
    /// Pivot-degradation guard for [`SparseLu::refactor`]: a numeric
    /// refactorization rejects column `k` when the fixed pivot falls
    /// below `refactor_threshold` times the largest candidate magnitude
    /// in that column — the values have drifted too far from the
    /// analyzed ones for the recorded pivot order to stay stable.
    /// Default `1e-10`.
    pub refactor_threshold: f64,
    /// Density threshold (stored entries over dense capacity, in
    /// `(0, 1]`) at which the trailing columns of the factors collapse
    /// into a **supernodal dense tail**: the largest trailing block
    /// `[t, n)` whose factor density reaches the threshold is mirrored
    /// into one row-major dense panel and solved with the blocked dense
    /// triangular kernels of `opm-linalg` instead of per-entry sparse
    /// sweeps. Elimination fill concentrates in exactly this trailing
    /// corner (the columns share their elimination reach), so MNA-style
    /// matrices routinely end almost fully dense there while the head
    /// stays sparse.
    ///
    /// The dense tail changes **where** the arithmetic runs, never what
    /// it computes: block solves stay bit-identical to the sparse path.
    /// Values above `1.0` disable detection; see
    /// [`SparseLu::supernode_stats`] for the observability side.
    /// Default `0.9`.
    pub supernode_threshold: f64,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            pivot_threshold: 1e-3,
            refactor_threshold: 1e-10,
            supernode_threshold: 0.9,
        }
    }
}

/// Supernode observability of one factorization — how much of the
/// factors' structure is supernodal (consecutive columns with identical
/// elimination reach) and how wide the detected dense tail is. Reported
/// through `FactorProfile` by the session layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupernodeStats {
    /// Maximal runs (width ≥ 2) of consecutive pivotal columns whose `L`
    /// patterns nest exactly (`pattern(k) = {k+1} ∪ pattern(k+1)`) — the
    /// classical supernode condition.
    pub num_supernodes: usize,
    /// Columns covered by those runs.
    pub supernode_cols: usize,
    /// Width of the detected dense tail (0 when none qualified).
    pub dense_tail_cols: usize,
    /// Total pivotal columns, the denominator for coverage ratios.
    pub num_cols: usize,
}

/// The supernodal dense tail: a redundant row-major mirror of the
/// trailing `dim × dim` corner of the factors, solved with blocked dense
/// triangular kernels while the sparse columns remain authoritative for
/// everything else (`nnz`, `det`, single-vector solves).
#[derive(Clone, Debug)]
struct DenseTail {
    /// First pivotal column of the tail, `t`.
    start: usize,
    /// Tail width `n − t`.
    dim: usize,
    /// Row-major `dim × dim` panel: `L` strictly below the diagonal
    /// (unit diagonal implicit), `U` strictly above it; absent pattern
    /// entries are zero-filled, diagonal slots are unused (`u_diag`
    /// stays authoritative).
    lu: Vec<f64>,
    /// Per tail column: the `U` border entries whose pivotal row lies
    /// *above* the tail (`row < t`), in stored order — applied after the
    /// dense back-substitution, before the sparse one.
    u_above: Vec<Vec<(usize, f64)>>,
}

/// Scans the factor patterns for the largest trailing block `[t, n)`
/// whose stored-entry density reaches `threshold`, returning `t`.
///
/// An `L` entry of a column `k ≥ t` always lies in the tail (its row
/// exceeds `k`); a `U` entry lies in the tail exactly when its pivotal
/// row is `≥ t` (its column is even larger). Both counts are therefore
/// plain suffix sums, and the scan is `O(nnz + min(n, MAX_DENSE_TAIL))`.
fn detect_dense_tail(
    n: usize,
    l_cols: &[Vec<(usize, f64)>],
    u_cols: &[Vec<(usize, f64)>],
    threshold: f64,
) -> Option<usize> {
    if !(threshold > 0.0 && threshold <= 1.0) || n < MIN_DENSE_TAIL {
        return None;
    }
    let lo = n.saturating_sub(MAX_DENSE_TAIL);
    // Suffix counts over the candidate range: l_nnz[t - lo] counts L
    // entries of columns ≥ t, u_nnz[t - lo] counts U entries with
    // pivotal row ≥ t.
    let mut u_rows = vec![0usize; n - lo];
    for col in u_cols {
        for &(i, _) in col {
            if i >= lo {
                u_rows[i - lo] += 1;
            }
        }
    }
    let width = n - lo;
    let mut l_nnz = vec![0usize; width + 1];
    let mut u_nnz = vec![0usize; width + 1];
    for t in (lo..n).rev() {
        l_nnz[t - lo] = l_nnz[t - lo + 1] + l_cols[t].len();
        u_nnz[t - lo] = u_nnz[t - lo + 1] + u_rows[t - lo];
    }
    for t in lo..=(n - MIN_DENSE_TAIL) {
        let d = n - t;
        let stored = l_nnz[t - lo] + u_nnz[t - lo] + d;
        if stored as f64 >= threshold * (d * d) as f64 {
            return Some(t);
        }
    }
    None
}

/// Mirrors the trailing factor columns `[start, n)` into a [`DenseTail`].
fn build_dense_tail(
    n: usize,
    l_cols: &[Vec<(usize, f64)>],
    u_cols: &[Vec<(usize, f64)>],
    start: usize,
) -> DenseTail {
    let dim = n - start;
    let mut lu = vec![0.0; dim * dim];
    let mut u_above: Vec<Vec<(usize, f64)>> = vec![Vec::new(); dim];
    for k in start..n {
        let kk = k - start;
        for &(i, lv) in &l_cols[k] {
            lu[(i - start) * dim + kk] = lv; // rows of L col k are > k ≥ start
        }
        for &(i, uv) in &u_cols[k] {
            if i >= start {
                lu[(i - start) * dim + kk] = uv;
            } else {
                u_above[kk].push((i, uv));
            }
        }
    }
    DenseTail {
        start,
        dim,
        lu,
        u_above,
    }
}

/// The reusable symbolic half of a sparse LU: fill pattern, pivot and
/// column order, and per-column elimination reach in topological order.
///
/// Computed once per sparsity pattern by [`SymbolicLu::factor_with`]
/// (alongside the numeric factors of the analyzed matrix), then amortized
/// over every [`SparseLu::refactor`] with new values on the *same*
/// pattern. The struct is immutable and `Sync`, so one analysis can feed
/// any number of concurrent refactorizations.
///
/// ```
/// use opm_sparse::{CooMatrix, lu::{SparseLu, SymbolicLu}};
/// let mut c = CooMatrix::new(2, 2);
/// c.push(0, 0, 4.0);
/// c.push(0, 1, 1.0);
/// c.push(1, 0, 1.0);
/// c.push(1, 1, 3.0);
/// let csc = c.to_csc();
/// let (sym, lu0) = SymbolicLu::factor(&csc, None).unwrap();
/// // New values, same pattern: numeric-only refactorization.
/// let lu1 = SparseLu::refactor(&sym, &[8.0, 2.0, 2.0, 6.0]).unwrap();
/// let x = lu1.solve(&[10.0, 8.0]);
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// assert_eq!(lu0.dim(), lu1.dim());
/// ```
#[derive(Clone, Debug)]
pub struct SymbolicLu {
    n: usize,
    /// Column ordering shared with every refactorization.
    col_perm: Permutation,
    /// `row_perm[k]` = original row pinned as pivot `k`.
    row_perm: Vec<usize>,
    /// Flat scatter map: input value slot `p` (CSC pattern order) lands
    /// at pivotal row `a_dst[p]` of its column.
    a_dst: Vec<usize>,
    /// Per pivotal column `k`: the slot range of original column
    /// `col_perm[k]` in the input value array.
    a_range: Vec<(usize, usize)>,
    /// U pattern per column (pivotal positions `< k`), flattened, in the
    /// topological order the numeric update loop must follow.
    u_ptr: Vec<usize>,
    u_idx: Vec<usize>,
    /// L pattern per column (pivotal positions `> k`), flattened.
    l_ptr: Vec<usize>,
    l_idx: Vec<usize>,
    /// Pivot-degradation guard inherited from the analysis options.
    refactor_threshold: f64,
    /// First column of the supernodal dense tail detected on the
    /// recorded pattern (`None`: no tail qualified). Pattern-only, so
    /// every refactorization on this analysis shares it.
    tail_start: Option<usize>,
}

impl SymbolicLu {
    /// Factors `a` and records the symbolic analysis, with default
    /// [`LuOptions`].
    ///
    /// # Errors
    /// As [`SparseLu::factor`].
    pub fn factor(
        a: &CscMatrix,
        order: Option<&Permutation>,
    ) -> Result<(Self, SparseLu), SparseError> {
        Self::factor_with(a, order, LuOptions::default())
    }

    /// Factors `a` with explicit options, returning both the symbolic
    /// analysis (reusable for every matrix sharing `a`'s pattern) and
    /// the numeric factors of `a` itself.
    ///
    /// Unlike [`SparseLu::factor_with`], entries of the elimination
    /// reach that happen to be numerically zero for *this* value set are
    /// kept in the factors: the pattern must cover every value set the
    /// analysis will be replayed against.
    ///
    /// # Errors
    /// As [`SparseLu::factor`].
    pub fn factor_with(
        a: &CscMatrix,
        order: Option<&Permutation>,
        opts: LuOptions,
    ) -> Result<(Self, SparseLu), SparseError> {
        let (lu, sym) = factor_impl(a, order, opts, true)?;
        Ok((sym.expect("symbolic recording requested"), lu))
    }

    /// Dimension of the analyzed pattern.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries of the analyzed input pattern — the length
    /// [`SparseLu::refactor`] expects of its value array.
    pub fn pattern_nnz(&self) -> usize {
        self.a_dst.len()
    }

    /// Stored entries in the factors (`L` strictly lower + `U` incl.
    /// diagonal) every refactorization will produce.
    pub fn factor_nnz(&self) -> usize {
        self.l_idx.len() + self.u_idx.len() + self.n
    }
}

/// Sparse LU factors `P·A·Q = L·U` with unit-diagonal `L`.
///
/// ```
/// use opm_sparse::{CooMatrix, lu::SparseLu};
/// // A saddle-point (MNA-like) matrix with a structural zero diagonal.
/// let mut c = CooMatrix::new(3, 3);
/// c.push(0, 0, 2.0);
/// c.push(0, 2, 1.0);
/// c.push(1, 1, 3.0);
/// c.push(1, 2, -1.0);
/// c.push(2, 0, 1.0);
/// c.push(2, 1, -1.0); // last diagonal entry absent: pivoting required
/// let lu = SparseLu::factor(&c.to_csc(), None).unwrap();
/// let x = lu.solve(&[3.0, 2.0, 0.0]);
/// let a = c.to_csr();
/// let r: Vec<f64> = a.mul_vec(&x).iter().zip([3.0, 2.0, 0.0]).map(|(y, b)| y - b).collect();
/// assert!(r.iter().all(|e| e.abs() < 1e-12));
/// ```
#[derive(Clone, Debug)]
pub struct SparseLu {
    n: usize,
    /// Strictly-lower entries of `L` per column, in pivotal row indices.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Upper entries of `U` per column (positions `< k`), pivotal indices.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// `U[k,k]` pivots.
    u_diag: Vec<f64>,
    /// `row_perm[k]` = original row chosen as pivot `k`.
    row_perm: Vec<usize>,
    /// Column ordering: position `k` factors original column `col_perm[k]`.
    col_perm: Permutation,
    /// Supernodal dense tail, when the trailing factor columns are dense
    /// enough ([`LuOptions::supernode_threshold`]). Used by the panel
    /// block solves; the sparse columns above stay authoritative.
    tail: Option<DenseTail>,
}

impl SparseLu {
    /// Factors `a` with an optional fill-reducing column ordering.
    ///
    /// # Errors
    /// [`SparseError::Singular`] when no acceptable pivot exists in some
    /// column; [`SparseError::DimensionMismatch`] when `a` is not square.
    pub fn factor(a: &CscMatrix, order: Option<&Permutation>) -> Result<Self, SparseError> {
        Self::factor_with(a, order, LuOptions::default())
    }

    /// Factors with explicit [`LuOptions`].
    ///
    /// # Errors
    /// See [`factor`](Self::factor).
    pub fn factor_with(
        a: &CscMatrix,
        order: Option<&Permutation>,
        opts: LuOptions,
    ) -> Result<Self, SparseError> {
        factor_impl(a, order, opts, false).map(|(lu, _)| lu)
    }

    /// Numeric-only refactorization: replays the elimination recorded in
    /// `sym` against new `values` on the analyzed sparsity pattern —
    /// fixed pivot order, fixed fill, no reach discovery. `values` must
    /// be the value array of a CSC with the analyzed pattern (see
    /// [`CscMatrix::values`]), e.g. one produced by
    /// [`crate::pencil::ShiftedPencil::shift_values`].
    ///
    /// Refactoring with the values the analysis itself was run on
    /// replays the exact same pivots and update sequence, so downstream
    /// solves are bitwise-identical across the factor/refactor boundary.
    ///
    /// # Errors
    /// [`SparseError::PivotDegraded`] when a fixed pivot falls below
    /// [`LuOptions::refactor_threshold`] times the largest candidate in
    /// its column (fall back to a fresh pivoted [`SparseLu::factor`]);
    /// [`SparseError::Singular`] when a column vanishes entirely, an
    /// input value is non-finite, or a pivot turns non-finite.
    ///
    /// # Panics
    /// Panics when `values.len() != sym.pattern_nnz()`.
    pub fn refactor(sym: &SymbolicLu, values: &[f64]) -> Result<Self, SparseError> {
        assert_eq!(
            values.len(),
            sym.pattern_nnz(),
            "refactor: value array does not match the analyzed pattern"
        );
        let n = sym.n;
        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_diag = vec![0.0; n];
        // Dense accumulator in *pivotal* row coordinates.
        let mut x = vec![0.0f64; n];

        for k in 0..n {
            let upat = &sym.u_idx[sym.u_ptr[k]..sym.u_ptr[k + 1]];
            let lpat = &sym.l_idx[sym.l_ptr[k]..sym.l_ptr[k + 1]];

            // Scatter A[:, col_perm[k]] into pivotal positions,
            // rejecting non-finite input values up front (they would
            // otherwise slip past the pivot checks into the factors).
            let (lo, hi) = sym.a_range[k];
            let mut finite = true;
            for (p, &v) in (lo..hi).zip(&values[lo..hi]) {
                finite &= v.is_finite();
                x[sym.a_dst[p]] = v;
            }
            if !finite {
                for p in lo..hi {
                    x[sym.a_dst[p]] = 0.0;
                }
                return Err(SparseError::Singular(k));
            }

            // Sparse triangular solve over the recorded reach, in the
            // recorded topological order — the same update sequence the
            // analysis performed, hence bitwise-reproducible.
            for &j in upat {
                let xj = x[j];
                if xj != 0.0 {
                    for &(i, lv) in &l_cols[j] {
                        x[i] -= lv * xj;
                    }
                }
            }

            // Fixed pivot with degradation guard.
            let pivot = x[k];
            let mut max_cand = pivot.abs();
            for &i in lpat {
                max_cand = max_cand.max(x[i].abs());
            }
            if !pivot.is_finite() || (pivot == 0.0 && max_cand == 0.0) {
                for &i in upat.iter().chain(lpat) {
                    x[i] = 0.0;
                }
                x[k] = 0.0;
                return Err(SparseError::Singular(k));
            }
            if pivot.abs() < sym.refactor_threshold * max_cand {
                for &i in upat.iter().chain(lpat) {
                    x[i] = 0.0;
                }
                x[k] = 0.0;
                return Err(SparseError::PivotDegraded(k));
            }

            // Gather into the fixed factor pattern; reset workspace.
            let mut ucol = Vec::with_capacity(upat.len());
            for &i in upat {
                ucol.push((i, x[i]));
                x[i] = 0.0;
            }
            let mut lcol = Vec::with_capacity(lpat.len());
            for &i in lpat {
                lcol.push((i, x[i] / pivot));
                x[i] = 0.0;
            }
            x[k] = 0.0;
            u_diag[k] = pivot;
            u_cols.push(ucol);
            l_cols.push(lcol);
        }

        // The analysis already decided where the dense tail starts (a
        // pattern property); only the values need re-mirroring.
        let tail = sym
            .tail_start
            .map(|t| build_dense_tail(n, &l_cols, &u_cols, t));
        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            row_perm: sym.row_perm.clone(),
            col_perm: sym.col_perm.clone(),
            tail,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` (strictly lower) plus `U` (including diagonal).
    pub fn nnz(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
            + self.n
    }

    /// Fill factor: factor nnz relative to the input nnz.
    pub fn fill_factor(&self, input_nnz: usize) -> f64 {
        self.nnz() as f64 / input_nnz.max(1) as f64
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    /// Panics when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.solve_into(b, &mut out);
        out
    }

    /// Solves `A·x = b` into a caller-provided buffer (no allocation beyond
    /// one internal scratch reuse).
    ///
    /// # Panics
    /// Panics when slice lengths differ from `self.dim()`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.n, "solve: rhs length mismatch");
        assert_eq!(out.len(), self.n, "solve: out length mismatch");
        // y ← P·b in pivotal order.
        let mut y: Vec<f64> = (0..self.n).map(|k| b[self.row_perm[k]]).collect();
        // Forward solve L·z = y (unit diagonal, column sweep).
        for k in 0..self.n {
            let yk = y[k];
            if yk != 0.0 {
                for &(i, lv) in &self.l_cols[k] {
                    y[i] -= lv * yk;
                }
            }
        }
        // Back solve U·w = z (column sweep from the right).
        for k in (0..self.n).rev() {
            y[k] /= self.u_diag[k];
            let yk = y[k];
            if yk != 0.0 {
                for &(i, uv) in &self.u_cols[k] {
                    y[i] -= uv * yk;
                }
            }
        }
        // Undo column permutation: x[q[k]] = w[k].
        for k in 0..self.n {
            out[self.col_perm.old_of(k)] = y[k];
        }
    }

    /// Solves `A·X = B` for `lanes` right-hand sides in **one** traversal
    /// of the factors.
    ///
    /// `b` and `out` are row-major `n × lanes` blocks: the `lanes` values
    /// of row `i` live at `b[i*lanes..(i+1)*lanes]`. A single pass over
    /// `L` and `U` serves every lane, so the per-entry index decode and
    /// factor traffic are amortized `lanes`-fold — the kernel behind the
    /// engine's multi-scenario block sweep.
    ///
    /// Lanes are swept in fixed-width panels
    /// ([`opm_linalg::panel::LANE_PANEL_WIDTH`] wide, with narrower
    /// remainder panels) held in `[f64; W]` register accumulators, and a
    /// detected supernodal dense tail is solved with blocked dense
    /// kernels; both are pure blocking changes — lanes are independent,
    /// so the per-lane arithmetic sequence is exactly that of
    /// [`SparseLu::solve_block_into_scalar`] and results agree bit-for-bit (up to
    /// the sign of zero). `OPM_NO_PANEL=1` routes here to the scalar
    /// reference instead.
    ///
    /// # Panics
    /// Panics when `lanes == 0` or slice lengths differ from
    /// `self.dim() * lanes`.
    pub fn solve_block_into(&self, b: &[f64], out: &mut [f64], lanes: usize) {
        if lane_panels_enabled() {
            self.solve_block_into_panels(b, out, lanes);
        } else {
            self.solve_block_into_scalar(b, out, lanes);
        }
    }

    /// The scalar reference implementation of
    /// [`solve_block_into`](Self::solve_block_into): one pass over the
    /// factors with a full-width lane loop per entry, no panelling, no
    /// dense tail. The panel path is validated against this, bit for
    /// bit, by the `kernel/*` bench records and the ragged-lane
    /// proptests.
    ///
    /// # Panics
    /// As [`solve_block_into`](Self::solve_block_into).
    pub fn solve_block_into_scalar(&self, b: &[f64], out: &mut [f64], lanes: usize) {
        assert!(lanes > 0, "solve_block: zero lanes");
        assert_eq!(b.len(), self.n * lanes, "solve_block: rhs size mismatch");
        assert_eq!(out.len(), self.n * lanes, "solve_block: out size mismatch");
        // y ← P·B in pivotal order.
        let mut y = vec![0.0; self.n * lanes];
        for k in 0..self.n {
            let src = self.row_perm[k] * lanes;
            y[k * lanes..(k + 1) * lanes].copy_from_slice(&b[src..src + lanes]);
        }
        let mut piv = vec![0.0; lanes];
        // Forward solve L·Z = Y (unit diagonal, column sweep).
        for k in 0..self.n {
            piv.copy_from_slice(&y[k * lanes..(k + 1) * lanes]);
            if piv.iter().all(|&v| v == 0.0) {
                continue;
            }
            for &(i, lv) in &self.l_cols[k] {
                for (yi, pv) in y[i * lanes..(i + 1) * lanes].iter_mut().zip(&piv) {
                    *yi -= lv * pv;
                }
            }
        }
        // Back solve U·W = Z (column sweep from the right).
        for k in (0..self.n).rev() {
            let d = self.u_diag[k];
            for (yk, pv) in y[k * lanes..(k + 1) * lanes].iter_mut().zip(piv.iter_mut()) {
                *yk /= d;
                *pv = *yk;
            }
            if piv.iter().all(|&v| v == 0.0) {
                continue;
            }
            for &(i, uv) in &self.u_cols[k] {
                for (yi, pv) in y[i * lanes..(i + 1) * lanes].iter_mut().zip(&piv) {
                    *yi -= uv * pv;
                }
            }
        }
        // Undo column permutation: X[q[k]] = W[k].
        for k in 0..self.n {
            let dst = self.col_perm.old_of(k) * lanes;
            out[dst..dst + lanes].copy_from_slice(&y[k * lanes..(k + 1) * lanes]);
        }
    }

    /// Panel driver: dispatches to the runtime-selected codegen copy of
    /// [`solve_block_panels_body`](Self::solve_block_panels_body) — the
    /// AVX clone where the CPU supports it, the portable build elsewhere.
    fn solve_block_into_panels(&self, b: &[f64], out: &mut [f64], lanes: usize) {
        assert!(lanes > 0, "solve_block: zero lanes");
        assert_eq!(b.len(), self.n * lanes, "solve_block: rhs size mismatch");
        assert_eq!(out.len(), self.n * lanes, "solve_block: out size mismatch");
        #[cfg(target_arch = "x86_64")]
        if opm_linalg::panel::avx_available() {
            // SAFETY: the `avx` target feature was detected on this CPU.
            unsafe { self.solve_block_panels_avx(b, out, lanes) };
            return;
        }
        self.solve_block_panels_body(b, out, lanes);
    }

    /// The AVX codegen copy of the panel driver: same Rust body, compiled
    /// with 4-wide `f64` vectors (`avx` only — no `fma`, so multiplies
    /// and adds stay separate IEEE operations and bit-identity with the
    /// portable copy and the scalar reference is preserved).
    ///
    /// # Safety
    /// The caller must have verified that the running CPU supports the
    /// `avx` target feature (this crate gates every call behind
    /// [`opm_linalg::panel::avx_available`]). The body is ordinary safe
    /// Rust — the only obligation is the feature check.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn solve_block_panels_avx(&self, b: &[f64], out: &mut [f64], lanes: usize) {
        self.solve_block_panels_body(b, out, lanes);
    }

    /// The panel sweep. Wide batches go through quad/pair panels (4× and
    /// 2× [`LANE_PANEL_WIDTH`] accumulators) so each pass over the factor
    /// structure serves as many lanes as the register file sustains; an
    /// `8 → 4 → 2 → 1` remainder chain (powers of two) covers every lane
    /// count without a per-element scalar tail. `#[inline(always)]` so
    /// each dispatch copy compiles it with its own target features.
    #[inline(always)]
    fn solve_block_panels_body(&self, b: &[f64], out: &mut [f64], lanes: usize) {
        let mut p0 = 0;
        let mut buf4: Vec<[f64; 4 * LANE_PANEL_WIDTH]> = Vec::new();
        while p0 + 4 * LANE_PANEL_WIDTH <= lanes {
            self.solve_panel::<{ 4 * LANE_PANEL_WIDTH }>(b, out, lanes, p0, &mut buf4);
            p0 += 4 * LANE_PANEL_WIDTH;
        }
        if p0 + 2 * LANE_PANEL_WIDTH <= lanes {
            self.solve_panel::<{ 2 * LANE_PANEL_WIDTH }>(b, out, lanes, p0, &mut Vec::new());
            p0 += 2 * LANE_PANEL_WIDTH;
        }
        if p0 + LANE_PANEL_WIDTH <= lanes {
            self.solve_panel::<LANE_PANEL_WIDTH>(b, out, lanes, p0, &mut Vec::new());
            p0 += LANE_PANEL_WIDTH;
        }
        if p0 + 4 <= lanes {
            self.solve_panel::<4>(b, out, lanes, p0, &mut Vec::new());
            p0 += 4;
        }
        if p0 + 2 <= lanes {
            self.solve_panel::<2>(b, out, lanes, p0, &mut Vec::new());
            p0 += 2;
        }
        if p0 < lanes {
            self.solve_panel::<1>(b, out, lanes, p0, &mut Vec::new());
        }
    }

    /// Solves lanes `p0 .. p0 + W` of the block in one cache-resident
    /// panel (`n × W` f64s): gather through the row permutation, sparse
    /// forward/backward column sweeps over the head columns, the dense
    /// tail (when present) via the blocked kernels, scatter through the
    /// column permutation.
    ///
    /// Every per-lane update happens in the scalar path's order: the
    /// outer column order is identical, and within a column each target
    /// row receives at most one update — so panelling cannot reassociate.
    #[inline(always)]
    fn solve_panel<const W: usize>(
        &self,
        b: &[f64],
        out: &mut [f64],
        lanes: usize,
        p0: usize,
        y: &mut Vec<[f64; W]>,
    ) {
        let n = self.n;
        y.clear();
        y.reserve(n);
        for k in 0..n {
            let src = self.row_perm[k] * lanes + p0;
            let mut panel = [0.0; W];
            panel.copy_from_slice(&b[src..src + W]);
            y.push(panel);
        }
        let t = self.tail.as_ref().map_or(n, |tl| tl.start);
        // Forward solve over the sparse head (every column when no tail).
        for k in 0..t {
            let piv = y[k];
            if piv == [0.0; W] {
                continue;
            }
            for &(i, lv) in &self.l_cols[k] {
                let yi = &mut y[i];
                for w in 0..W {
                    yi[w] -= lv * piv[w];
                }
            }
        }
        if let Some(tl) = &self.tail {
            let (head, tail_y) = y.split_at_mut(t);
            forward_unit_lower_panels(&tl.lu, tl.dim, tail_y);
            backward_upper_panels(&tl.lu, &self.u_diag[t..], tl.dim, tail_y);
            // U border above the tail: target rows are disjoint from the
            // dense block's, and per target row the column order stays
            // descending — the scalar back-substitution's order.
            for kk in (0..tl.dim).rev() {
                let piv = tail_y[kk];
                if piv == [0.0; W] {
                    continue;
                }
                for &(i, uv) in &tl.u_above[kk] {
                    let yi = &mut head[i];
                    for w in 0..W {
                        yi[w] -= uv * piv[w];
                    }
                }
            }
        }
        // Back solve over the sparse head.
        for k in (0..t).rev() {
            let d = self.u_diag[k];
            let yk = &mut y[k];
            for w in 0..W {
                yk[w] /= d;
            }
            let piv = *yk;
            if piv == [0.0; W] {
                continue;
            }
            for &(i, uv) in &self.u_cols[k] {
                let yi = &mut y[i];
                for w in 0..W {
                    yi[w] -= uv * piv[w];
                }
            }
        }
        // Undo column permutation: X[q[k]] = W[k].
        for k in 0..n {
            let dst = self.col_perm.old_of(k) * lanes + p0;
            out[dst..dst + W].copy_from_slice(&y[k]);
        }
    }

    /// Supernode observability: maximal runs of consecutive columns whose
    /// `L` patterns nest exactly (`pattern(k) = {k+1} ∪ pattern(k+1)` —
    /// identical elimination reach below the diagonal), plus the width of
    /// the detected dense tail. Runs of width ≥ 2 count as supernodes.
    pub fn supernode_stats(&self) -> SupernodeStats {
        let n = self.n;
        let mut stats = SupernodeStats {
            dense_tail_cols: self.tail.as_ref().map_or(0, |t| t.dim),
            num_cols: n,
            ..SupernodeStats::default()
        };
        // mark[i] = k after processing column k ⇒ row i ∈ pattern(k);
        // stale marks carry an older k, so no per-column reset is needed.
        let mut mark = vec![usize::MAX; n];
        let mut run = 1usize;
        for k in 0..n.saturating_sub(1) {
            let cur = &self.l_cols[k];
            let nxt = &self.l_cols[k + 1];
            let merges = cur.len() == nxt.len() + 1 && {
                for &(i, _) in cur {
                    mark[i] = k;
                }
                mark[k + 1] == k && nxt.iter().all(|&(i, _)| mark[i] == k)
            };
            if merges {
                run += 1;
            } else {
                if run >= 2 {
                    stats.num_supernodes += 1;
                    stats.supernode_cols += run;
                }
                run = 1;
            }
        }
        if run >= 2 {
            stats.num_supernodes += 1;
            stats.supernode_cols += run;
        }
        stats
    }

    /// Determinant of `A` (product of pivots, sign from both permutations).
    pub fn det(&self) -> f64 {
        let mut d: f64 = self.u_diag.iter().product();
        d *= perm_sign(&self.row_perm);
        d *= perm_sign(self.col_perm.as_slice());
        d
    }
}

/// Shared left-looking factorization. With `record` set, the elimination
/// reach, pivot order and scatter map are captured into a [`SymbolicLu`],
/// and reached-but-numerically-zero entries are kept in the factors so
/// the recorded pattern covers every value set on this sparsity pattern.
fn factor_impl(
    a: &CscMatrix,
    order: Option<&Permutation>,
    opts: LuOptions,
    record: bool,
) -> Result<(SparseLu, Option<SymbolicLu>), SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.nrows(), a.nrows()),
            found: (a.nrows(), a.ncols()),
        });
    }
    let n = a.nrows();
    let col_perm = order.cloned().unwrap_or_else(|| Permutation::identity(n));
    assert_eq!(col_perm.len(), n, "ordering length mismatch");

    // During factorization L columns carry ORIGINAL row indices; they
    // are renumbered to pivotal positions once all pivots are known.
    let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    let mut u_diag = vec![0.0; n];
    let mut pinv: Vec<Option<usize>> = vec![None; n];
    let mut row_perm = Vec::with_capacity(n);

    let mut x = vec![0.0f64; n]; // dense accumulator
    let mut visited = vec![false; n];
    let mut xi: Vec<usize> = Vec::with_capacity(n); // postorder
    let mut stack: Vec<(usize, usize)> = Vec::with_capacity(n);

    // Symbolic recording (reach in topological order; L pattern is kept
    // in original row indices and renumbered with the rest at the end).
    let mut u_ptr = vec![0usize];
    let mut u_idx: Vec<usize> = Vec::new();
    let mut l_ptr = vec![0usize];
    let mut l_orig: Vec<usize> = Vec::new();

    for k in 0..n {
        let jcol = col_perm.old_of(k);

        // --- Symbolic: reach of pattern(A[:, jcol]) through L. ---
        xi.clear();
        for &r0 in a.col_pattern(jcol) {
            if visited[r0] {
                continue;
            }
            visited[r0] = true;
            stack.push((r0, 0));
            while let Some(&mut (node, ref mut ci)) = stack.last_mut() {
                let children: &[(usize, f64)] = match pinv[node] {
                    Some(jl) => &l_cols[jl],
                    None => &[],
                };
                if *ci < children.len() {
                    let child = children[*ci].0;
                    *ci += 1;
                    if !visited[child] {
                        visited[child] = true;
                        stack.push((child, 0));
                    }
                } else {
                    xi.push(node);
                    stack.pop();
                }
            }
        }

        // --- Numeric: sparse lower-triangular solve. ---
        for (r, v) in a.col(jcol) {
            x[r] = v;
        }
        // Reverse postorder = topological order (parents first).
        for &r in xi.iter().rev() {
            if let Some(jl) = pinv[r] {
                if record {
                    u_idx.push(jl);
                }
                let xr = x[r];
                if xr != 0.0 {
                    for &(rr, lv) in &l_cols[jl] {
                        x[rr] -= lv * xr;
                    }
                }
            }
        }

        // --- Pivot selection among non-pivotal reached rows. ---
        let mut max_abs = 0.0f64;
        let mut piv_row = usize::MAX;
        for &r in &xi {
            if pinv[r].is_none() {
                let v = x[r].abs();
                if v > max_abs {
                    max_abs = v;
                    piv_row = r;
                }
            }
        }
        // Diagonal preference: accept original row `jcol` when close
        // enough to the magnitude winner.
        if pinv[jcol].is_none()
            && visited[jcol]
            && x[jcol].abs() >= opts.pivot_threshold * max_abs
            && x[jcol] != 0.0
        {
            piv_row = jcol;
        }
        if piv_row == usize::MAX || x[piv_row] == 0.0 || !x[piv_row].is_finite() {
            // Clean up workspace before reporting failure.
            for &r in &xi {
                visited[r] = false;
                x[r] = 0.0;
            }
            return Err(SparseError::Singular(k));
        }
        let pivot = x[piv_row];

        // --- Emit U column k and L column k; reset workspace. ---
        let mut ucol = Vec::new();
        let mut lcol = Vec::new();
        for &r in &xi {
            let v = x[r];
            match pinv[r] {
                Some(pos) => {
                    if record || v != 0.0 {
                        ucol.push((pos, v));
                    }
                }
                None => {
                    if r != piv_row && (record || v != 0.0) {
                        lcol.push((r, v / pivot));
                        if record {
                            l_orig.push(r);
                        }
                    }
                }
            }
            visited[r] = false;
            x[r] = 0.0;
        }
        if record {
            u_ptr.push(u_idx.len());
            l_ptr.push(l_orig.len());
        }
        u_diag[k] = pivot;
        pinv[piv_row] = Some(k);
        row_perm.push(piv_row);
        u_cols.push(ucol);
        l_cols.push(lcol);
    }

    // Renumber L's row indices from original to pivotal positions.
    for col in &mut l_cols {
        for entry in col.iter_mut() {
            entry.0 = pinv[entry.0].expect("all rows pivotal after completion");
        }
    }

    let tail_start = detect_dense_tail(n, &l_cols, &u_cols, opts.supernode_threshold);
    let tail = tail_start.map(|t| build_dense_tail(n, &l_cols, &u_cols, t));

    let sym = if record {
        for r in l_orig.iter_mut() {
            *r = pinv[*r].expect("all rows pivotal after completion");
        }
        // Scatter map: value slot p of the input CSC (pattern order)
        // lands at pivotal row pinv[rowind[p]]; per-column slot ranges
        // come from prefix sums over the (contiguous) column patterns.
        let mut col_lo = vec![0usize; n + 1];
        for j in 0..n {
            col_lo[j + 1] = col_lo[j] + a.col_pattern(j).len();
        }
        let mut a_dst = Vec::with_capacity(col_lo[n]);
        for j in 0..n {
            for &r in a.col_pattern(j) {
                a_dst.push(pinv[r].expect("all rows pivotal after completion"));
            }
        }
        let a_range = (0..n)
            .map(|k| {
                let jcol = col_perm.old_of(k);
                (col_lo[jcol], col_lo[jcol + 1])
            })
            .collect();
        Some(SymbolicLu {
            n,
            col_perm: col_perm.clone(),
            row_perm: row_perm.clone(),
            a_dst,
            a_range,
            u_ptr,
            u_idx,
            l_ptr,
            l_idx: l_orig,
            refactor_threshold: opts.refactor_threshold,
            tail_start,
        })
    } else {
        None
    };

    Ok((
        SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            row_perm,
            col_perm,
            tail,
        },
        sym,
    ))
}

fn perm_sign(p: &[usize]) -> f64 {
    let mut seen = vec![false; p.len()];
    let mut sign = 1.0;
    for start in 0..p.len() {
        if seen[start] {
            continue;
        }
        let mut len = 0usize;
        let mut j = start;
        while !seen[j] {
            seen[j] = true;
            j = p[j];
            len += 1;
        }
        if len % 2 == 0 {
            sign = -sign;
        }
    }
    sign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::ordering::{min_degree, rcm};

    fn residual_inf(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(y, bb)| (y - bb).abs())
            .fold(0.0, f64::max)
    }

    /// 2-D Laplacian + identity on a g×g grid (SPD, well conditioned).
    fn grid_matrix(g: usize) -> CsrMatrix {
        let n = g * g;
        let mut c = CooMatrix::new(n, n);
        let idx = |r: usize, s: usize| r * g + s;
        for r in 0..g {
            for s in 0..g {
                c.push(idx(r, s), idx(r, s), 5.0);
                if r + 1 < g {
                    c.push(idx(r, s), idx(r + 1, s), -1.0);
                    c.push(idx(r + 1, s), idx(r, s), -1.0);
                }
                if s + 1 < g {
                    c.push(idx(r, s), idx(r, s + 1), -1.0);
                    c.push(idx(r, s + 1), idx(r, s), -1.0);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn identity_factors_trivially() {
        let lu = SparseLu::factor(&CsrMatrix::identity(5).to_csc(), None).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(lu.solve(&b), b.to_vec());
        assert!((lu.det() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn tridiagonal_solve() {
        let n = 50;
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.5);
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
                c.push(i + 1, i, -1.0);
            }
        }
        let a = c.to_csr();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.mul_vec(&xt);
        let lu = SparseLu::factor(&a.to_csc(), None).unwrap();
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn grid_solve_with_and_without_ordering() {
        let a = grid_matrix(20); // n = 400
        let xt: Vec<f64> = (0..400).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = a.mul_vec(&xt);
        for order in [None, Some(rcm(&a)), Some(min_degree(&a))] {
            let lu = SparseLu::factor(&a.to_csc(), order.as_ref()).unwrap();
            let x = lu.solve(&b);
            let err = x
                .iter()
                .zip(&xt)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "order {:?} err {err}", order.map(|_| "some"));
        }
    }

    #[test]
    fn ordering_reduces_fill_on_grid() {
        let a = grid_matrix(24);
        let natural = SparseLu::factor(&a.to_csc(), None).unwrap();
        let md = SparseLu::factor(&a.to_csc(), Some(&min_degree(&a))).unwrap();
        assert!(
            md.nnz() < natural.nnz(),
            "min degree should reduce fill: {} vs {}",
            md.nnz(),
            natural.nnz()
        );
    }

    #[test]
    fn saddle_point_matrix_requires_pivoting() {
        // [[0, 1], [1, 0]] has no usable first diagonal pivot.
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        let a = c.to_csr();
        let lu = SparseLu::factor(&a.to_csc(), None).unwrap();
        let x = lu.solve(&[5.0, 7.0]);
        assert_eq!(x, vec![7.0, 5.0]);
        assert!((lu.det() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn mna_like_block_system() {
        // [G  B; Bᵀ 0] with G SPD — the canonical MNA shape with voltage
        // sources. n = 4 nodes + 1 source current.
        let mut c = CooMatrix::new(5, 5);
        let g = [
            (0, 0, 3.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 2.0),
            (2, 2, 2.0),
            (3, 3, 1.5),
        ];
        for &(i, j, v) in &g {
            c.push(i, j, v);
        }
        c.push(0, 4, 1.0);
        c.push(4, 0, 1.0); // source at node 0: structural zero at (4,4)
        let a = c.to_csr();
        let b = [0.0, 1.0, 0.5, -0.25, 2.0];
        let lu = SparseLu::factor(&a.to_csc(), None).unwrap();
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-12);
        // x[0] is pinned to the source value.
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_reported() {
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(1, 1, 1.0);
        // Row/col 2 empty: structurally singular.
        let err = SparseLu::factor(&c.to_csc(), None).unwrap_err();
        assert!(matches!(err, SparseError::Singular(_)));
    }

    #[test]
    fn numerically_singular_matrix_reported() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 1, 2.0);
        c.push(1, 0, 2.0);
        c.push(1, 1, 4.0);
        let err = SparseLu::factor(&c.to_csc(), None).unwrap_err();
        assert!(matches!(err, SparseError::Singular(1)));
    }

    #[test]
    fn det_matches_dense() {
        let mut c = CooMatrix::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 1, 3.0),
            (1, 2, -1.0),
            (2, 0, 1.0),
            (2, 2, 4.0),
        ] {
            c.push(i, j, v);
        }
        let a = c.to_csr();
        let dense_det = a.to_dense().factor_lu().unwrap().det();
        let sparse_det = SparseLu::factor(&a.to_csc(), None).unwrap().det();
        assert!((dense_det - sparse_det).abs() < 1e-12 * dense_det.abs());
    }

    #[test]
    fn strict_partial_pivoting_option() {
        let a = grid_matrix(6);
        let lu = SparseLu::factor_with(
            &a.to_csc(),
            None,
            LuOptions {
                pivot_threshold: 1.0,
                ..LuOptions::default()
            },
        )
        .unwrap();
        let b: Vec<f64> = (0..36).map(|i| i as f64).collect();
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn block_solve_matches_lane_by_lane() {
        let a = grid_matrix(9); // n = 81, needs ordering-agnostic check
        let n = 81;
        let lanes = 5;
        let lu = SparseLu::factor(&a.to_csc(), Some(&rcm(&a))).unwrap();
        // Lane l gets rhs b_l[i] = sin(0.1·i·(l+1)), with lane 2 all zero
        // (exercises the zero-skip path).
        let mut b_block = vec![0.0; n * lanes];
        let mut singles: Vec<Vec<f64>> = Vec::new();
        for l in 0..lanes {
            let b: Vec<f64> = (0..n)
                .map(|i| {
                    if l == 2 {
                        0.0
                    } else {
                        (0.1 * i as f64 * (l + 1) as f64).sin()
                    }
                })
                .collect();
            for i in 0..n {
                b_block[i * lanes + l] = b[i];
            }
            singles.push(lu.solve(&b));
        }
        let mut x_block = vec![0.0; n * lanes];
        lu.solve_block_into(&b_block, &mut x_block, lanes);
        for l in 0..lanes {
            for i in 0..n {
                assert_eq!(
                    x_block[i * lanes + l],
                    singles[l][i],
                    "lane {l}, row {i}: block and single solves must agree bitwise"
                );
            }
        }
    }

    #[test]
    fn block_solve_single_lane_equals_solve_into() {
        // With pivoting engaged (saddle-point matrix) the lanes = 1 block
        // path must follow the exact same arithmetic as solve_into.
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 2.0);
        c.push(0, 2, 1.0);
        c.push(1, 1, 3.0);
        c.push(1, 2, -1.0);
        c.push(2, 0, 1.0);
        c.push(2, 1, -1.0);
        let lu = SparseLu::factor(&c.to_csc(), None).unwrap();
        let b = [3.0, 2.0, 0.5];
        let mut single = vec![0.0; 3];
        lu.solve_into(&b, &mut single);
        let mut block = vec![0.0; 3];
        lu.solve_block_into(&b, &mut block, 1);
        assert_eq!(single, block);
    }

    #[test]
    fn refactor_same_values_is_bitwise_identical() {
        let a = grid_matrix(12); // n = 144, with pivoting-friendly structure
        let csc = a.to_csc();
        let order = rcm(&a);
        let (sym, lu0) = SymbolicLu::factor(&csc, Some(&order)).unwrap();
        let lu1 = SparseLu::refactor(&sym, csc.values()).unwrap();
        let b: Vec<f64> = (0..144).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        assert_eq!(lu0.solve(&b), lu1.solve(&b));
        assert_eq!(lu0.det(), lu1.det());
    }

    #[test]
    fn refactor_new_values_solves_the_new_matrix() {
        let a = grid_matrix(10);
        let csc = a.to_csc();
        let (sym, _) = SymbolicLu::factor(&csc, Some(&min_degree(&a))).unwrap();
        // Scale + perturb the values on the same pattern.
        let vals: Vec<f64> = csc.values().iter().map(|&v| 3.0 * v + 0.1).collect();
        let mut csc2 = csc.clone();
        csc2.values_mut().copy_from_slice(&vals);
        let lu = SparseLu::refactor(&sym, &vals).unwrap();
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.17).cos()).collect();
        let x = lu.solve(&b);
        let r = residual_inf(&csc2.to_csr(), &x, &b);
        assert!(r < 1e-10, "refactor residual {r}");
    }

    #[test]
    fn refactor_detects_pivot_degradation() {
        // Analyze [[1, 2], [3, 4]]: the diagonal-preference rule pins the
        // pivot of column 0 to row 0. New values make that pivot vanish
        // relative to row 1 — the fixed order must refuse, and a fresh
        // pivoted factorization must succeed by swapping rows.
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 0, 3.0);
        c.push(0, 1, 2.0);
        c.push(1, 1, 4.0);
        let csc = c.to_csc();
        let (sym, _) = SymbolicLu::factor(&csc, None).unwrap();
        // Pattern order is column-major: [(0,0), (1,0), (0,1), (1,1)].
        let degraded = [1e-16, 3.0, 2.0, 4.0];
        let err = SparseLu::refactor(&sym, &degraded).unwrap_err();
        assert!(matches!(err, SparseError::PivotDegraded(0)), "{err:?}");
        let mut csc2 = csc.clone();
        csc2.values_mut().copy_from_slice(&degraded);
        let fresh = SparseLu::factor(&csc2, None).unwrap();
        let x = fresh.solve(&[2.0, 7.0]);
        let r = residual_inf(&csc2.to_csr(), &x, &[2.0, 7.0]);
        assert!(r < 1e-12);
    }

    #[test]
    fn refactor_reports_vanished_column_as_singular() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 1, 1.0);
        let (sym, _) = SymbolicLu::factor(&c.to_csc(), None).unwrap();
        let err = SparseLu::refactor(&sym, &[0.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::Singular(0)), "{err:?}");
    }

    #[test]
    fn refactor_rejects_non_finite_values_anywhere_in_a_column() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(1, 0, 3.0);
        c.push(0, 1, 2.0);
        c.push(1, 1, 4.0);
        let (sym, _) = SymbolicLu::factor(&c.to_csc(), None).unwrap();
        // NaN off the pivot (an L-slot) must not slip into the factors.
        let err = SparseLu::refactor(&sym, &[1.0, f64::NAN, 2.0, 4.0]).unwrap_err();
        assert!(matches!(err, SparseError::Singular(0)), "{err:?}");
        // Infinity in a later column reports that column.
        let err = SparseLu::refactor(&sym, &[1.0, 3.0, f64::INFINITY, 4.0]).unwrap_err();
        assert!(matches!(err, SparseError::Singular(1)), "{err:?}");
        // And the workspace is clean afterwards: a good refactor works.
        let lu = SparseLu::refactor(&sym, &[1.0, 3.0, 2.0, 4.0]).unwrap();
        let x = lu.solve(&[3.0, 7.0]);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symbolic_pattern_counts_are_consistent() {
        let a = grid_matrix(8);
        let csc = a.to_csc();
        let (sym, lu) = SymbolicLu::factor(&csc, Some(&rcm(&a))).unwrap();
        assert_eq!(sym.dim(), 64);
        assert_eq!(sym.pattern_nnz(), csc.nnz());
        assert_eq!(sym.factor_nnz(), lu.nnz());
    }

    /// Sparse diagonal head of `head` columns + fully dense trailing
    /// `dim × dim` block — the canonical supernodal-tail shape (fill
    /// concentrated in the elimination corner).
    fn arrow_matrix(head: usize, dim: usize) -> CsrMatrix {
        let n = head + dim;
        let mut c = CooMatrix::new(n, n);
        for i in 0..head {
            c.push(i, i, 2.0 + i as f64 * 0.1);
        }
        for i in head..n {
            for j in head..n {
                let v = if i == j {
                    10.0 + i as f64 * 0.01
                } else {
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                };
                c.push(i, j, v);
            }
        }
        c.to_csr()
    }

    #[test]
    fn dense_tail_detected_on_arrow_matrix() {
        let a = arrow_matrix(12, 12);
        let lu = SparseLu::factor(&a.to_csc(), None).unwrap();
        let stats = lu.supernode_stats();
        assert_eq!(stats.num_cols, 24);
        // The trailing 12 columns are fully dense: one supernode, and
        // the dense tail must cover exactly that block (the head is
        // diagonal, so no wider tail reaches 90% density).
        assert_eq!(stats.dense_tail_cols, 12, "{stats:?}");
        assert_eq!(stats.num_supernodes, 1, "{stats:?}");
        assert_eq!(stats.supernode_cols, 12, "{stats:?}");
    }

    #[test]
    fn dense_tail_disabled_by_threshold() {
        let a = arrow_matrix(12, 12);
        let lu = SparseLu::factor_with(
            &a.to_csc(),
            None,
            LuOptions {
                supernode_threshold: 1.5,
                ..LuOptions::default()
            },
        )
        .unwrap();
        assert_eq!(lu.supernode_stats().dense_tail_cols, 0);
    }

    #[test]
    fn dense_tail_block_solve_matches_scalar_reference() {
        // Couple the head to the tail so the U border above the tail
        // (`u_above`) is exercised, not just the dense block.
        let mut c = CooMatrix::new(24, 24);
        for i in 0..12 {
            c.push(i, i, 2.0 + i as f64 * 0.1);
            c.push(i, 12 + i, 0.5); // head row → tail column border
        }
        for i in 12..24 {
            for j in 12..24 {
                let v = if i == j {
                    10.0 + i as f64 * 0.01
                } else {
                    1.0 / (1.0 + (i as f64 - j as f64).abs())
                };
                c.push(i, j, v);
            }
        }
        let lu = SparseLu::factor(&c.to_csc(), None).unwrap();
        assert!(lu.supernode_stats().dense_tail_cols >= 12);
        for lanes in [1usize, 3, 8, 11, 16, 37, 100] {
            let b: Vec<f64> = (0..24 * lanes)
                .map(|i| ((i * 37 % 101) as f64 - 50.0) / 7.0)
                .collect();
            let mut scalar = vec![0.0; 24 * lanes];
            lu.solve_block_into_scalar(&b, &mut scalar, lanes);
            let mut panels = vec![0.0; 24 * lanes];
            lu.solve_block_into(&b, &mut panels, lanes);
            assert_eq!(scalar, panels, "lanes = {lanes}");
        }
    }

    #[test]
    fn refactor_shares_the_dense_tail_decision() {
        let a = arrow_matrix(12, 12);
        let csc = a.to_csc();
        let (sym, lu0) = SymbolicLu::factor(&csc, None).unwrap();
        let lu1 = SparseLu::refactor(&sym, csc.values()).unwrap();
        assert_eq!(lu0.supernode_stats(), lu1.supernode_stats());
        assert!(lu1.supernode_stats().dense_tail_cols >= 12);
        let lanes = 9;
        let b: Vec<f64> = (0..24 * lanes).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut x0 = vec![0.0; 24 * lanes];
        let mut x1 = vec![0.0; 24 * lanes];
        lu0.solve_block_into(&b, &mut x0, lanes);
        lu1.solve_block_into(&b, &mut x1, lanes);
        assert_eq!(x0, x1);
    }

    #[test]
    fn rectangular_rejected() {
        let c = CooMatrix::new(2, 3);
        assert!(matches!(
            SparseLu::factor(&c.to_csc(), None),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }
}
