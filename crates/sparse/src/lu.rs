//! Left-looking sparse LU with partial pivoting (Gilbert–Peierls).
//!
//! This is the `O(n^β)` direct solver the paper's complexity analysis
//! assumes. Each column is computed by a *sparse triangular solve* whose
//! nonzero pattern is discovered by depth-first search through the graph of
//! the partially built `L` (Gilbert & Peierls, 1988), so the factorization
//! runs in time proportional to arithmetic work rather than `O(n²)`.
//!
//! Pivoting is partial (by magnitude) with a diagonal-preference threshold:
//! the diagonal row is accepted whenever it is within `pivot_threshold` of
//! the largest candidate — the SPICE convention, which preserves the
//! benefit of a fill-reducing pre-ordering on MNA matrices.

use crate::csc::CscMatrix;
use crate::perm::Permutation;
use crate::SparseError;

/// Factorization options.
#[derive(Clone, Copy, Debug)]
pub struct LuOptions {
    /// Relative threshold for accepting the diagonal pivot (`0 < t ≤ 1`);
    /// `1.0` forces strict partial pivoting, small values prefer the
    /// diagonal. Default `1e-3`.
    pub pivot_threshold: f64,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            pivot_threshold: 1e-3,
        }
    }
}

/// Sparse LU factors `P·A·Q = L·U` with unit-diagonal `L`.
///
/// ```
/// use opm_sparse::{CooMatrix, lu::SparseLu};
/// // A saddle-point (MNA-like) matrix with a structural zero diagonal.
/// let mut c = CooMatrix::new(3, 3);
/// c.push(0, 0, 2.0);
/// c.push(0, 2, 1.0);
/// c.push(1, 1, 3.0);
/// c.push(1, 2, -1.0);
/// c.push(2, 0, 1.0);
/// c.push(2, 1, -1.0); // last diagonal entry absent: pivoting required
/// let lu = SparseLu::factor(&c.to_csc(), None).unwrap();
/// let x = lu.solve(&[3.0, 2.0, 0.0]);
/// let a = c.to_csr();
/// let r: Vec<f64> = a.mul_vec(&x).iter().zip([3.0, 2.0, 0.0]).map(|(y, b)| y - b).collect();
/// assert!(r.iter().all(|e| e.abs() < 1e-12));
/// ```
#[derive(Clone, Debug)]
pub struct SparseLu {
    n: usize,
    /// Strictly-lower entries of `L` per column, in pivotal row indices.
    l_cols: Vec<Vec<(usize, f64)>>,
    /// Upper entries of `U` per column (positions `< k`), pivotal indices.
    u_cols: Vec<Vec<(usize, f64)>>,
    /// `U[k,k]` pivots.
    u_diag: Vec<f64>,
    /// `row_perm[k]` = original row chosen as pivot `k`.
    row_perm: Vec<usize>,
    /// Column ordering: position `k` factors original column `col_perm[k]`.
    col_perm: Permutation,
}

impl SparseLu {
    /// Factors `a` with an optional fill-reducing column ordering.
    ///
    /// # Errors
    /// [`SparseError::Singular`] when no acceptable pivot exists in some
    /// column; [`SparseError::DimensionMismatch`] when `a` is not square.
    pub fn factor(a: &CscMatrix, order: Option<&Permutation>) -> Result<Self, SparseError> {
        Self::factor_with(a, order, LuOptions::default())
    }

    /// Factors with explicit [`LuOptions`].
    ///
    /// # Errors
    /// See [`factor`](Self::factor).
    pub fn factor_with(
        a: &CscMatrix,
        order: Option<&Permutation>,
        opts: LuOptions,
    ) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::DimensionMismatch {
                expected: (a.nrows(), a.nrows()),
                found: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let col_perm = order.cloned().unwrap_or_else(|| Permutation::identity(n));
        assert_eq!(col_perm.len(), n, "ordering length mismatch");

        // During factorization L columns carry ORIGINAL row indices; they
        // are renumbered to pivotal positions once all pivots are known.
        let mut l_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut u_diag = vec![0.0; n];
        let mut pinv: Vec<Option<usize>> = vec![None; n];
        let mut row_perm = Vec::with_capacity(n);

        let mut x = vec![0.0f64; n]; // dense accumulator
        let mut visited = vec![false; n];
        let mut xi: Vec<usize> = Vec::with_capacity(n); // postorder
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(n);

        for k in 0..n {
            let jcol = col_perm.old_of(k);

            // --- Symbolic: reach of pattern(A[:, jcol]) through L. ---
            xi.clear();
            for &r0 in a.col_pattern(jcol) {
                if visited[r0] {
                    continue;
                }
                visited[r0] = true;
                stack.push((r0, 0));
                while let Some(&mut (node, ref mut ci)) = stack.last_mut() {
                    let children: &[(usize, f64)] = match pinv[node] {
                        Some(jl) => &l_cols[jl],
                        None => &[],
                    };
                    if *ci < children.len() {
                        let child = children[*ci].0;
                        *ci += 1;
                        if !visited[child] {
                            visited[child] = true;
                            stack.push((child, 0));
                        }
                    } else {
                        xi.push(node);
                        stack.pop();
                    }
                }
            }

            // --- Numeric: sparse lower-triangular solve. ---
            for (r, v) in a.col(jcol) {
                x[r] = v;
            }
            // Reverse postorder = topological order (parents first).
            for &r in xi.iter().rev() {
                if let Some(jl) = pinv[r] {
                    let xr = x[r];
                    if xr != 0.0 {
                        for &(rr, lv) in &l_cols[jl] {
                            x[rr] -= lv * xr;
                        }
                    }
                }
            }

            // --- Pivot selection among non-pivotal reached rows. ---
            let mut max_abs = 0.0f64;
            let mut piv_row = usize::MAX;
            for &r in &xi {
                if pinv[r].is_none() {
                    let v = x[r].abs();
                    if v > max_abs {
                        max_abs = v;
                        piv_row = r;
                    }
                }
            }
            // Diagonal preference: accept original row `jcol` when close
            // enough to the magnitude winner.
            if pinv[jcol].is_none()
                && visited[jcol]
                && x[jcol].abs() >= opts.pivot_threshold * max_abs
                && x[jcol] != 0.0
            {
                piv_row = jcol;
            }
            if piv_row == usize::MAX || x[piv_row] == 0.0 || !x[piv_row].is_finite() {
                // Clean up workspace before reporting failure.
                for &r in &xi {
                    visited[r] = false;
                    x[r] = 0.0;
                }
                return Err(SparseError::Singular(k));
            }
            let pivot = x[piv_row];

            // --- Emit U column k and L column k; reset workspace. ---
            let mut ucol = Vec::new();
            let mut lcol = Vec::new();
            for &r in &xi {
                let v = x[r];
                match pinv[r] {
                    Some(pos) => {
                        if v != 0.0 {
                            ucol.push((pos, v));
                        }
                    }
                    None => {
                        if r != piv_row && v != 0.0 {
                            lcol.push((r, v / pivot));
                        }
                    }
                }
                visited[r] = false;
                x[r] = 0.0;
            }
            u_diag[k] = pivot;
            pinv[piv_row] = Some(k);
            row_perm.push(piv_row);
            u_cols.push(ucol);
            l_cols.push(lcol);
        }

        // Renumber L's row indices from original to pivotal positions.
        for col in &mut l_cols {
            for entry in col.iter_mut() {
                entry.0 = pinv[entry.0].expect("all rows pivotal after completion");
            }
        }

        Ok(SparseLu {
            n,
            l_cols,
            u_cols,
            u_diag,
            row_perm,
            col_perm,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` (strictly lower) plus `U` (including diagonal).
    pub fn nnz(&self) -> usize {
        self.l_cols.iter().map(Vec::len).sum::<usize>()
            + self.u_cols.iter().map(Vec::len).sum::<usize>()
            + self.n
    }

    /// Fill factor: factor nnz relative to the input nnz.
    pub fn fill_factor(&self, input_nnz: usize) -> f64 {
        self.nnz() as f64 / input_nnz.max(1) as f64
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    /// Panics when `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        self.solve_into(b, &mut out);
        out
    }

    /// Solves `A·x = b` into a caller-provided buffer (no allocation beyond
    /// one internal scratch reuse).
    ///
    /// # Panics
    /// Panics when slice lengths differ from `self.dim()`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.n, "solve: rhs length mismatch");
        assert_eq!(out.len(), self.n, "solve: out length mismatch");
        // y ← P·b in pivotal order.
        let mut y: Vec<f64> = (0..self.n).map(|k| b[self.row_perm[k]]).collect();
        // Forward solve L·z = y (unit diagonal, column sweep).
        for k in 0..self.n {
            let yk = y[k];
            if yk != 0.0 {
                for &(i, lv) in &self.l_cols[k] {
                    y[i] -= lv * yk;
                }
            }
        }
        // Back solve U·w = z (column sweep from the right).
        for k in (0..self.n).rev() {
            y[k] /= self.u_diag[k];
            let yk = y[k];
            if yk != 0.0 {
                for &(i, uv) in &self.u_cols[k] {
                    y[i] -= uv * yk;
                }
            }
        }
        // Undo column permutation: x[q[k]] = w[k].
        for k in 0..self.n {
            out[self.col_perm.old_of(k)] = y[k];
        }
    }

    /// Solves `A·X = B` for `lanes` right-hand sides in **one** traversal
    /// of the factors.
    ///
    /// `b` and `out` are row-major `n × lanes` blocks: the `lanes` values
    /// of row `i` live at `b[i*lanes..(i+1)*lanes]`. A single pass over
    /// `L` and `U` serves every lane, so the per-entry index decode and
    /// factor traffic are amortized `lanes`-fold — the kernel behind the
    /// engine's multi-scenario block sweep.
    ///
    /// # Panics
    /// Panics when `lanes == 0` or slice lengths differ from
    /// `self.dim() * lanes`.
    pub fn solve_block_into(&self, b: &[f64], out: &mut [f64], lanes: usize) {
        assert!(lanes > 0, "solve_block: zero lanes");
        assert_eq!(b.len(), self.n * lanes, "solve_block: rhs size mismatch");
        assert_eq!(out.len(), self.n * lanes, "solve_block: out size mismatch");
        // y ← P·B in pivotal order.
        let mut y = vec![0.0; self.n * lanes];
        for k in 0..self.n {
            let src = self.row_perm[k] * lanes;
            y[k * lanes..(k + 1) * lanes].copy_from_slice(&b[src..src + lanes]);
        }
        let mut piv = vec![0.0; lanes];
        // Forward solve L·Z = Y (unit diagonal, column sweep).
        for k in 0..self.n {
            piv.copy_from_slice(&y[k * lanes..(k + 1) * lanes]);
            if piv.iter().all(|&v| v == 0.0) {
                continue;
            }
            for &(i, lv) in &self.l_cols[k] {
                for (yi, pv) in y[i * lanes..(i + 1) * lanes].iter_mut().zip(&piv) {
                    *yi -= lv * pv;
                }
            }
        }
        // Back solve U·W = Z (column sweep from the right).
        for k in (0..self.n).rev() {
            let d = self.u_diag[k];
            for (yk, pv) in y[k * lanes..(k + 1) * lanes].iter_mut().zip(piv.iter_mut()) {
                *yk /= d;
                *pv = *yk;
            }
            if piv.iter().all(|&v| v == 0.0) {
                continue;
            }
            for &(i, uv) in &self.u_cols[k] {
                for (yi, pv) in y[i * lanes..(i + 1) * lanes].iter_mut().zip(&piv) {
                    *yi -= uv * pv;
                }
            }
        }
        // Undo column permutation: X[q[k]] = W[k].
        for k in 0..self.n {
            let dst = self.col_perm.old_of(k) * lanes;
            out[dst..dst + lanes].copy_from_slice(&y[k * lanes..(k + 1) * lanes]);
        }
    }

    /// Determinant of `A` (product of pivots, sign from both permutations).
    pub fn det(&self) -> f64 {
        let mut d: f64 = self.u_diag.iter().product();
        d *= perm_sign(&self.row_perm);
        d *= perm_sign(self.col_perm.as_slice());
        d
    }
}

fn perm_sign(p: &[usize]) -> f64 {
    let mut seen = vec![false; p.len()];
    let mut sign = 1.0;
    for start in 0..p.len() {
        if seen[start] {
            continue;
        }
        let mut len = 0usize;
        let mut j = start;
        while !seen[j] {
            seen[j] = true;
            j = p[j];
            len += 1;
        }
        if len.is_multiple_of(2) {
            sign = -sign;
        }
    }
    sign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::csr::CsrMatrix;
    use crate::ordering::{min_degree, rcm};

    fn residual_inf(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .iter()
            .zip(b)
            .map(|(y, bb)| (y - bb).abs())
            .fold(0.0, f64::max)
    }

    /// 2-D Laplacian + identity on a g×g grid (SPD, well conditioned).
    fn grid_matrix(g: usize) -> CsrMatrix {
        let n = g * g;
        let mut c = CooMatrix::new(n, n);
        let idx = |r: usize, s: usize| r * g + s;
        for r in 0..g {
            for s in 0..g {
                c.push(idx(r, s), idx(r, s), 5.0);
                if r + 1 < g {
                    c.push(idx(r, s), idx(r + 1, s), -1.0);
                    c.push(idx(r + 1, s), idx(r, s), -1.0);
                }
                if s + 1 < g {
                    c.push(idx(r, s), idx(r, s + 1), -1.0);
                    c.push(idx(r, s + 1), idx(r, s), -1.0);
                }
            }
        }
        c.to_csr()
    }

    #[test]
    fn identity_factors_trivially() {
        let lu = SparseLu::factor(&CsrMatrix::identity(5).to_csc(), None).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(lu.solve(&b), b.to_vec());
        assert!((lu.det() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn tridiagonal_solve() {
        let n = 50;
        let mut c = CooMatrix::new(n, n);
        for i in 0..n {
            c.push(i, i, 2.5);
            if i + 1 < n {
                c.push(i, i + 1, -1.0);
                c.push(i + 1, i, -1.0);
            }
        }
        let a = c.to_csr();
        let xt: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.mul_vec(&xt);
        let lu = SparseLu::factor(&a.to_csc(), None).unwrap();
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn grid_solve_with_and_without_ordering() {
        let a = grid_matrix(20); // n = 400
        let xt: Vec<f64> = (0..400).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = a.mul_vec(&xt);
        for order in [None, Some(rcm(&a)), Some(min_degree(&a))] {
            let lu = SparseLu::factor(&a.to_csc(), order.as_ref()).unwrap();
            let x = lu.solve(&b);
            let err = x
                .iter()
                .zip(&xt)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0, f64::max);
            assert!(err < 1e-9, "order {:?} err {err}", order.map(|_| "some"));
        }
    }

    #[test]
    fn ordering_reduces_fill_on_grid() {
        let a = grid_matrix(24);
        let natural = SparseLu::factor(&a.to_csc(), None).unwrap();
        let md = SparseLu::factor(&a.to_csc(), Some(&min_degree(&a))).unwrap();
        assert!(
            md.nnz() < natural.nnz(),
            "min degree should reduce fill: {} vs {}",
            md.nnz(),
            natural.nnz()
        );
    }

    #[test]
    fn saddle_point_matrix_requires_pivoting() {
        // [[0, 1], [1, 0]] has no usable first diagonal pivot.
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 1, 1.0);
        c.push(1, 0, 1.0);
        let a = c.to_csr();
        let lu = SparseLu::factor(&a.to_csc(), None).unwrap();
        let x = lu.solve(&[5.0, 7.0]);
        assert_eq!(x, vec![7.0, 5.0]);
        assert!((lu.det() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn mna_like_block_system() {
        // [G  B; Bᵀ 0] with G SPD — the canonical MNA shape with voltage
        // sources. n = 4 nodes + 1 source current.
        let mut c = CooMatrix::new(5, 5);
        let g = [
            (0, 0, 3.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 2.0),
            (2, 2, 2.0),
            (3, 3, 1.5),
        ];
        for &(i, j, v) in &g {
            c.push(i, j, v);
        }
        c.push(0, 4, 1.0);
        c.push(4, 0, 1.0); // source at node 0: structural zero at (4,4)
        let a = c.to_csr();
        let b = [0.0, 1.0, 0.5, -0.25, 2.0];
        let lu = SparseLu::factor(&a.to_csc(), None).unwrap();
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-12);
        // x[0] is pinned to the source value.
        assert!((x[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_reported() {
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(1, 1, 1.0);
        // Row/col 2 empty: structurally singular.
        let err = SparseLu::factor(&c.to_csc(), None).unwrap_err();
        assert!(matches!(err, SparseError::Singular(_)));
    }

    #[test]
    fn numerically_singular_matrix_reported() {
        let mut c = CooMatrix::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 1, 2.0);
        c.push(1, 0, 2.0);
        c.push(1, 1, 4.0);
        let err = SparseLu::factor(&c.to_csc(), None).unwrap_err();
        assert!(matches!(err, SparseError::Singular(1)));
    }

    #[test]
    fn det_matches_dense() {
        let mut c = CooMatrix::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 1, 3.0),
            (1, 2, -1.0),
            (2, 0, 1.0),
            (2, 2, 4.0),
        ] {
            c.push(i, j, v);
        }
        let a = c.to_csr();
        let dense_det = a.to_dense().factor_lu().unwrap().det();
        let sparse_det = SparseLu::factor(&a.to_csc(), None).unwrap().det();
        assert!((dense_det - sparse_det).abs() < 1e-12 * dense_det.abs());
    }

    #[test]
    fn strict_partial_pivoting_option() {
        let a = grid_matrix(6);
        let lu = SparseLu::factor_with(
            &a.to_csc(),
            None,
            LuOptions {
                pivot_threshold: 1.0,
            },
        )
        .unwrap();
        let b: Vec<f64> = (0..36).map(|i| i as f64).collect();
        let x = lu.solve(&b);
        assert!(residual_inf(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn block_solve_matches_lane_by_lane() {
        let a = grid_matrix(9); // n = 81, needs ordering-agnostic check
        let n = 81;
        let lanes = 5;
        let lu = SparseLu::factor(&a.to_csc(), Some(&rcm(&a))).unwrap();
        // Lane l gets rhs b_l[i] = sin(0.1·i·(l+1)), with lane 2 all zero
        // (exercises the zero-skip path).
        let mut b_block = vec![0.0; n * lanes];
        let mut singles: Vec<Vec<f64>> = Vec::new();
        for l in 0..lanes {
            let b: Vec<f64> = (0..n)
                .map(|i| {
                    if l == 2 {
                        0.0
                    } else {
                        (0.1 * i as f64 * (l + 1) as f64).sin()
                    }
                })
                .collect();
            for i in 0..n {
                b_block[i * lanes + l] = b[i];
            }
            singles.push(lu.solve(&b));
        }
        let mut x_block = vec![0.0; n * lanes];
        lu.solve_block_into(&b_block, &mut x_block, lanes);
        for l in 0..lanes {
            for i in 0..n {
                assert_eq!(
                    x_block[i * lanes + l],
                    singles[l][i],
                    "lane {l}, row {i}: block and single solves must agree bitwise"
                );
            }
        }
    }

    #[test]
    fn block_solve_single_lane_equals_solve_into() {
        // With pivoting engaged (saddle-point matrix) the lanes = 1 block
        // path must follow the exact same arithmetic as solve_into.
        let mut c = CooMatrix::new(3, 3);
        c.push(0, 0, 2.0);
        c.push(0, 2, 1.0);
        c.push(1, 1, 3.0);
        c.push(1, 2, -1.0);
        c.push(2, 0, 1.0);
        c.push(2, 1, -1.0);
        let lu = SparseLu::factor(&c.to_csc(), None).unwrap();
        let b = [3.0, 2.0, 0.5];
        let mut single = vec![0.0; 3];
        lu.solve_into(&b, &mut single);
        let mut block = vec![0.0; 3];
        lu.solve_block_into(&b, &mut block, 1);
        assert_eq!(single, block);
    }

    #[test]
    fn rectangular_rejected() {
        let c = CooMatrix::new(2, 3);
        assert!(matches!(
            SparseLu::factor(&c.to_csc(), None),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }
}
