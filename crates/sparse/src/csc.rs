//! Compressed sparse column format — the factorization-side layout.
//!
//! Left-looking LU and Cholesky consume matrices column by column, so both
//! factor from CSC. Conversion from CSR is a transpose-shaped pass.

use crate::csr::CsrMatrix;

/// An immutable sparse matrix in compressed sparse column layout.
#[derive(Clone, Debug, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowind: Vec<usize>,
    data: Vec<f64>,
}

impl CscMatrix {
    /// Builds from raw CSC arrays.
    ///
    /// # Panics
    /// Panics when the arrays are inconsistent (see [`CsrMatrix::from_raw`]
    /// for the mirrored conditions).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowind: Vec<usize>,
        data: Vec<f64>,
    ) -> Self {
        assert_eq!(colptr.len(), ncols + 1, "colptr length must be ncols+1");
        assert_eq!(rowind.len(), data.len(), "rowind/data length mismatch");
        assert_eq!(*colptr.last().unwrap(), rowind.len(), "colptr tail wrong");
        for c in 0..ncols {
            assert!(colptr[c] <= colptr[c + 1], "colptr must be monotone");
            let col = &rowind[colptr[c]..colptr[c + 1]];
            for w in col.windows(2) {
                assert!(w[0] < w[1], "rows within a column must be sorted/unique");
            }
            if let Some(&last) = col.last() {
                assert!(last < nrows, "row index out of range");
            }
        }
        CscMatrix {
            nrows,
            ncols,
            colptr,
            rowind,
            data,
        }
    }

    /// Row count.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Column count.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entry count.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Iterates over `(row, value)` pairs of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        self.rowind[lo..hi]
            .iter()
            .zip(&self.data[lo..hi])
            .map(|(&r, &v)| (r, v))
    }

    /// Row indices of column `j` (pattern only).
    pub fn col_pattern(&self, j: usize) -> &[usize] {
        &self.rowind[self.colptr[j]..self.colptr[j + 1]]
    }

    /// The stored values in pattern order (column-major, rows ascending
    /// within each column) — the layout [`SymbolicLu::factor_with`]
    /// analyzes and [`SparseLu::refactor`] consumes.
    ///
    /// [`SymbolicLu::factor_with`]: crate::lu::SymbolicLu::factor_with
    /// [`SparseLu::refactor`]: crate::lu::SparseLu::refactor
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the stored values. The sparsity *pattern* is
    /// immutable — only the numeric payload can change — which is
    /// exactly the contract symbolic/numeric factorization splits rely
    /// on: rewrite the values of a shifted pencil in place, then
    /// refactor against the unchanged pattern.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reads entry `(i, j)` via binary search in column `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        match self.rowind[lo..hi].binary_search(&i) {
            Ok(pos) => self.data[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Converts back to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        // A CSC of A has the same arrays as a CSR of Aᵀ; transpose once.
        CsrMatrix::from_raw(
            self.ncols,
            self.nrows,
            self.colptr.clone(),
            self.rowind.clone(),
            self.data.clone(),
        )
        .transpose()
    }

    /// Matrix–vector product `y = A·x` (column-sweep form).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "mul_vec: x length mismatch");
        let mut y = vec![0.0; self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for k in self.colptr[j]..self.colptr[j + 1] {
                y[self.rowind[k]] += self.data[k] * xj;
            }
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample_csc() -> CscMatrix {
        let mut c = CooMatrix::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            c.push(i, j, v);
        }
        c.to_csc()
    }

    #[test]
    fn csc_layout_matches_csr() {
        let a = sample_csc();
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 0), 0.0);
        let cols0: Vec<_> = a.col(0).collect();
        assert_eq!(cols0, vec![(0, 1.0), (2, 4.0)]);
    }

    #[test]
    fn roundtrip_csr_csc_csr() {
        let mut c = CooMatrix::new(4, 3);
        c.push(0, 1, 1.0);
        c.push(3, 2, -2.0);
        c.push(2, 0, 0.5);
        let csr = c.to_csr();
        assert_eq!(csr.to_csc().to_csr(), csr);
    }

    #[test]
    fn spmv_agrees_with_csr() {
        let a = sample_csc();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.mul_vec(&x), a.to_csr().mul_vec(&x));
    }

    #[test]
    fn col_pattern_is_sorted() {
        let a = sample_csc();
        assert_eq!(a.col_pattern(0), &[0, 2]);
        assert_eq!(a.col_pattern(1), &[1]);
    }
}
