//! **opm-serve** — a multi-tenant simulation daemon over the session
//! API, with a keyed [`PlanCache`] so repeated plan requests skip
//! symbolic *and* numeric factorization entirely.
//!
//! Hermetic and std-only: the HTTP/1.1 framing ([`http`]) and the JSON
//! dialect ([`api`], backed by [`opm_core::json`]) are in-tree, in the
//! spirit of the workspace's `opm-rng`/criterion shims. Endpoints:
//!
//! | Endpoint | Body | Response |
//! |---|---|---|
//! | `POST /solve` | model/netlist + scenario batch | results per scenario |
//! | `POST /sweep` | model/netlist + `levels` | one result per drive level |
//! | `POST /stream` | model/netlist + `windows` | chunked NDJSON, one line per window block |
//! | `GET /metrics` | — | cache counters, per-plan profiles, latencies |
//!
//! Every request that needs a plan goes through one shared
//! [`PlanCache`] keyed by [`opm_core::cache::plan_key`]; a repeated
//! identical request is a **hit** — pure solve work against the interned
//! `Arc<SimPlan>`, concurrently with every other connection (plans are
//! `Sync`; batch solves fan out over `opm-par` worker threads
//! internally). `/metrics` exposes the per-plan
//! [`opm_core::FactorProfile`], so N identical solve requests visibly
//! cost 1 symbolic + 1 numeric factorization total.
//!
//! ```no_run
//! let server = opm_serve::spawn(opm_serve::ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! // … point clients at it …
//! server.shutdown();
//! ```

pub mod api;
pub mod client;
pub mod http;

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use opm_core::json::Json;
use opm_core::{OpmError, PlanCache};

use api::{error_json, ApiError, SimRequest};
use http::{ChunkedWriter, RecvError, Request};

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Plans interned at once (LRU beyond this).
    pub cache_capacity: usize,
    /// Request-body cap in bytes; beyond it the daemon answers 413.
    pub max_body: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            cache_capacity: 32,
            max_body: 8 << 20,
        }
    }
}

/// Request-latency counters (microseconds), one instance per endpoint.
#[derive(Debug, Default)]
struct Latency {
    count: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Latency {
    fn record(&self, micros: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    fn to_json(&self) -> Json {
        let count = self.count.load(Ordering::Relaxed);
        let total = self.total_micros.load(Ordering::Relaxed);
        Json::Obj(vec![
            ("count".into(), Json::Int(count as i64)),
            ("total_micros".into(), Json::Int(total as i64)),
            (
                "max_micros".into(),
                Json::Int(self.max_micros.load(Ordering::Relaxed) as i64),
            ),
            (
                "mean_micros".into(),
                Json::Num(if count == 0 {
                    0.0
                } else {
                    total as f64 / count as f64
                }),
            ),
        ])
    }
}

/// State shared by every connection thread.
struct ServerState {
    cache: PlanCache,
    max_body: usize,
    solve: Latency,
    sweep: Latency,
    stream: Latency,
    metrics: Latency,
    errors: AtomicU64,
}

/// A running daemon; dropping it (or calling [`Server::shutdown`])
/// stops the accept loop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

/// Binds and starts serving on a background accept loop,
/// thread-per-connection.
///
/// # Errors
/// I/O errors from binding the listener.
pub fn spawn(config: ServerConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let state = Arc::new(ServerState {
        cache: PlanCache::new(config.cache_capacity),
        max_body: config.max_body,
        solve: Latency::default(),
        sweep: Latency::default(),
        stream: Latency::default(),
        metrics: Latency::default(),
        errors: AtomicU64::new(0),
    });

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = conn else { continue };
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                handle_connection(&mut stream, &state);
            });
        }
    });

    Ok(Server {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop.
    /// In-flight request threads finish on their own.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

fn handle_connection(stream: &mut TcpStream, state: &ServerState) {
    let req = match http::read_request(stream, state.max_body) {
        Ok(req) => req,
        Err(e) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            let (status, msg) = match e {
                RecvError::Io(_) => return, // peer went away; nothing to answer
                RecvError::Malformed(m) => (400, m),
                RecvError::LengthRequired => (411, "Content-Length is required"),
                RecvError::TooLarge => (413, "request body exceeds the server cap"),
            };
            let _ = http::write_response(
                stream,
                status,
                "application/json",
                error_json(msg).as_bytes(),
            );
            return;
        }
    };

    match route(stream, &req, state) {
        Ok(()) => {}
        Err(Reply { status, body }) => {
            state.errors.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(stream, status, "application/json", body.as_bytes());
        }
    }
}

/// An error reply yet to be written.
struct Reply {
    status: u16,
    body: String,
}

impl From<ApiError> for Reply {
    fn from(e: ApiError) -> Self {
        Reply {
            status: e.status,
            body: error_json(&e.msg),
        }
    }
}

impl From<OpmError> for Reply {
    fn from(e: OpmError) -> Self {
        // Solver rejections are the caller's fault (bad model, bad
        // options) → 400.
        Reply {
            status: 400,
            body: error_json(&e.to_string()),
        }
    }
}

fn route(stream: &mut TcpStream, req: &Request, state: &ServerState) -> Result<(), Reply> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/solve") => handle_solve(stream, req, state),
        ("POST", "/sweep") => handle_sweep(stream, req, state),
        ("POST", "/stream") => handle_stream(stream, req, state),
        ("GET", "/metrics") => handle_metrics(stream, state),
        (_, "/solve" | "/sweep" | "/stream" | "/metrics") => Err(Reply {
            status: 405,
            body: error_json("method not allowed for this endpoint"),
        }),
        _ => Err(Reply {
            status: 404,
            body: error_json("no such endpoint"),
        }),
    }
}

/// Latency counters are recorded **before** the final bytes go out, so
/// a client that has read its response is guaranteed to see its own
/// request in a subsequent `/metrics` — only *successful* requests are
/// timed; failures land in the `errors` counter instead.
struct Timer<'l> {
    latency: &'l Latency,
    started: Instant,
}

impl Timer<'_> {
    fn start(latency: &Latency) -> Timer<'_> {
        Timer {
            latency,
            started: Instant::now(),
        }
    }

    fn record(self) {
        self.latency
            .record(self.started.elapsed().as_micros() as u64);
    }
}

fn plan_header(cache_hit: bool, plan: &opm_core::SimPlan) -> Vec<(String, Json)> {
    vec![
        (
            "cache".into(),
            Json::str(if cache_hit { "hit" } else { "miss" }),
        ),
        ("profile".into(), plan.factor_profile().to_json()),
    ]
}

fn handle_solve(stream: &mut TcpStream, req: &Request, state: &ServerState) -> Result<(), Reply> {
    let timer = Timer::start(&state.solve);
    let parsed = SimRequest::parse(&req.body)?;
    let stimuli = parsed.stimuli()?;
    let (plan, hit) = state.cache.get_or_plan_traced(&parsed.sim, &parsed.opts)?;
    let results = match parsed.windows {
        Some(w) => plan.solve_windowed_batch(&stimuli, w)?,
        None => plan.solve_batch(&stimuli)?,
    };
    let mut doc = plan_header(hit, &plan);
    doc.push((
        "results".into(),
        Json::Arr(results.iter().map(api::result_json).collect()),
    ));
    let body = Json::Obj(doc).to_string();
    timer.record();
    http::write_response(stream, 200, "application/json", body.as_bytes()).map_err(io_reply)?;
    Ok(())
}

fn handle_sweep(stream: &mut TcpStream, req: &Request, state: &ServerState) -> Result<(), Reply> {
    let timer = Timer::start(&state.sweep);
    let parsed = SimRequest::parse(&req.body)?;
    let levels = parsed
        .levels
        .clone()
        .ok_or_else(|| ApiError::bad("`levels` (an array of numbers) is required for /sweep"))?;
    let (plan, hit) = state.cache.get_or_plan_traced(&parsed.sim, &parsed.opts)?;
    let p = parsed.sim.model().num_inputs();
    let results = plan.sweep(&levels, |&v| {
        opm_waveform::InputSet::new(vec![opm_waveform::Waveform::Dc(v); p])
    })?;
    let mut doc = plan_header(hit, &plan);
    doc.push(("levels".into(), Json::num_arr(&levels)));
    doc.push((
        "results".into(),
        Json::Arr(results.iter().map(api::result_json).collect()),
    ));
    let body = Json::Obj(doc).to_string();
    timer.record();
    http::write_response(stream, 200, "application/json", body.as_bytes()).map_err(io_reply)?;
    Ok(())
}

fn handle_stream(stream: &mut TcpStream, req: &Request, state: &ServerState) -> Result<(), Reply> {
    let timer = Timer::start(&state.stream);
    let parsed = SimRequest::parse(&req.body)?;
    let windows = parsed
        .windows
        .ok_or_else(|| ApiError::bad("`windows` (a positive integer) is required for /stream"))?;
    let stimuli = parsed.stimuli()?;
    let Some(inputs) = stimuli.first() else {
        return Err(ApiError::bad("/stream takes exactly one scenario").into());
    };
    if stimuli.len() > 1 {
        return Err(ApiError::bad("/stream takes exactly one scenario").into());
    }
    let (plan, hit) = state.cache.get_or_plan_traced(&parsed.sim, &parsed.opts)?;

    // Headers go out before the solve starts; each window block is
    // flushed as its chunk the moment it is solved.
    let mut writer = ChunkedWriter::start(stream, 200, "application/x-ndjson").map_err(io_reply)?;
    let mut sink_err: Option<std::io::Error> = None;
    let final_state = plan.solve_streaming(inputs, windows, |block| {
        if sink_err.is_some() {
            return;
        }
        let mut line = Json::Obj(vec![
            ("window".into(), Json::Int(block.window as i64)),
            ("result".into(), api::result_json(&block.result)),
            ("end_state".into(), Json::num_arr(&block.end_state)),
        ])
        .to_string();
        line.push('\n');
        if let Err(e) = writer.chunk(line.as_bytes()) {
            sink_err = Some(e);
        }
    })?;
    if sink_err.is_some() {
        return Ok(()); // peer hung up mid-stream; nothing left to say
    }
    let mut doc = plan_header(hit, &plan);
    doc.push(("done".into(), Json::Bool(true)));
    doc.push(("final_state".into(), Json::num_arr(&final_state)));
    let mut line = Json::Obj(doc).to_string();
    line.push('\n');
    writer.chunk(line.as_bytes()).map_err(io_reply)?;
    timer.record();
    writer.finish().map_err(io_reply)?;
    Ok(())
}

fn handle_metrics(stream: &mut TcpStream, state: &ServerState) -> Result<(), Reply> {
    let timer = Timer::start(&state.metrics);
    let plans = state
        .cache
        .plans()
        .into_iter()
        .map(|((k0, k1), plan)| {
            Json::Obj(vec![
                ("key".into(), Json::str(format!("{k0:016x}{k1:016x}"))),
                ("strategy".into(), Json::str(plan.strategy_name())),
                ("resolution".into(), Json::Int(plan.resolution() as i64)),
                ("order".into(), Json::Int(plan.order() as i64)),
                ("profile".into(), plan.factor_profile().to_json()),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("plan_cache".into(), state.cache.stats().to_json()),
        ("plans".into(), Json::Arr(plans)),
        (
            "requests".into(),
            Json::Obj(vec![
                ("solve".into(), state.solve.to_json()),
                ("sweep".into(), state.sweep.to_json()),
                ("stream".into(), state.stream.to_json()),
                ("metrics".into(), state.metrics.to_json()),
                (
                    "errors".into(),
                    Json::Int(state.errors.load(Ordering::Relaxed) as i64),
                ),
            ]),
        ),
    ]);
    timer.record();
    http::write_response(stream, 200, "application/json", doc.to_string().as_bytes())
        .map_err(io_reply)?;
    // Belt and braces: some clients half-close early; make sure the
    // payload is on the wire before the thread exits.
    let _ = stream.flush();
    Ok(())
}

fn io_reply(_: std::io::Error) -> Reply {
    // The socket is gone; the reply cannot be delivered anyway.
    Reply {
        status: 500,
        body: String::new(),
    }
}
