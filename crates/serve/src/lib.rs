//! **opm-serve** — a multi-tenant simulation daemon over the session
//! API, with a keyed [`PlanCache`] so repeated plan requests skip
//! symbolic *and* numeric factorization entirely.
//!
//! Hermetic and std-only: the HTTP/1.1 framing ([`http`]) and the JSON
//! dialect ([`api`], backed by [`opm_core::json`]) are in-tree, in the
//! spirit of the workspace's `opm-rng`/criterion shims. Endpoints:
//!
//! | Endpoint | Body | Response |
//! |---|---|---|
//! | `POST /solve` | model/netlist + scenario batch | results per scenario |
//! | `POST /sweep` | model/netlist + `levels` | one result per drive level |
//! | `POST /stream` | model/netlist + `windows` | chunked NDJSON, one line per window block |
//! | `GET /metrics` | — | cache counters, per-plan profiles, latencies, robustness counters |
//!
//! Every request that needs a plan goes through one shared
//! [`PlanCache`] keyed by [`opm_core::cache::plan_key`]; a repeated
//! identical request is a **hit** — pure solve work against the interned
//! `Arc<SimPlan>`, concurrently with every other connection (plans are
//! `Sync`; batch solves fan out over `opm-par` worker threads
//! internally). `/metrics` exposes the per-plan
//! [`opm_core::FactorProfile`], so N identical solve requests visibly
//! cost 1 symbolic + 1 numeric factorization total.
//!
//! # Fault tolerance
//!
//! The daemon assumes clients and solves will misbehave and degrades
//! per-request, never per-process:
//!
//! - **Deadlines.** Socket reads/writes carry OS timeouts
//!   ([`ServerConfig::read_timeout`] / [`ServerConfig::write_timeout`];
//!   a drip-feeding client gets 408), and
//!   [`ServerConfig::compute_deadline`] arms a cooperative
//!   [`CancelToken`] per request — windowed/streaming solves poll it at
//!   window boundaries and bail with 503 instead of pinning a thread.
//! - **Backpressure.** At most [`ServerConfig::max_connections`]
//!   requests run at once; beyond that the accept loop answers
//!   503 + `Retry-After` immediately instead of spawning an unbounded
//!   thread herd. [`Server::shutdown`] stops accepting, then drains
//!   in-flight requests up to a deadline and reports [`DrainStats`].
//! - **Panic isolation.** Each connection runs under `catch_unwind`: a
//!   panicking handler answers 500, bumps the `panics` counter, and
//!   the daemon keeps serving. The plan cache recovers from poisoned
//!   locks and per-key build latches keep one request's build panic
//!   from corrupting any other key.
//! - **Fault injection.** With [`ServerConfig::fault_injection`] on
//!   (tests only), the [`fault`] module turns `X-Fault` request
//!   headers into deterministic build panics, slow solves, and
//!   mid-stream socket drops — the chaos harness in
//!   `tests/chaos.rs` drives these against healthy traffic.
//!
//! ```no_run
//! let server = opm_serve::spawn(opm_serve::ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! // … point clients at it …
//! let drain = server.shutdown();
//! assert!(drain.drained);
//! ```

// No unsafe anywhere in this crate; the only unsafe in the workspace
// is the audited AVX panel dispatch in opm-{core,sparse,fracnum}.
#![forbid(unsafe_code)]

pub mod api;
pub mod client;
pub mod fault;
pub mod http;

use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use opm_core::cache::plan_key;
use opm_core::json::Json;
use opm_core::{CancelToken, NewtonOptions, OpmError, PlanCache, SimPlan, WindowedOptions};

use api::{error_json, ApiError, SimRequest};
use fault::{FaultSpec, FaultStats};
use http::{ChunkedWriter, Limits, Request};

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Plans interned at once (LRU beyond this).
    pub cache_capacity: usize,
    /// Request-body cap in bytes; beyond it the daemon answers 413.
    pub max_body: usize,
    /// Most header lines per request; beyond it the daemon answers 431.
    pub max_headers: usize,
    /// Byte budget for request line + headers; beyond it → 431.
    pub max_header_bytes: usize,
    /// OS-level socket read timeout; an expired read answers 408.
    /// `None` disables the timeout (not recommended outside tests).
    pub read_timeout: Option<Duration>,
    /// OS-level socket write timeout; an expired write drops the
    /// connection.
    pub write_timeout: Option<Duration>,
    /// Per-request compute budget, enforced cooperatively at window
    /// boundaries of windowed/streaming solves → 503 when exceeded.
    /// `None` means no compute deadline.
    pub compute_deadline: Option<Duration>,
    /// Concurrent-request cap; excess connections get an immediate
    /// 503 + `Retry-After` instead of a thread.
    pub max_connections: usize,
    /// How long [`Server::shutdown`] waits for in-flight requests.
    pub drain_timeout: Duration,
    /// Honor `X-Fault` request headers (see [`fault`]). Keep `false`
    /// outside chaos tests: when `false` the header is ignored and the
    /// injection hooks are never consulted.
    pub fault_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            cache_capacity: 32,
            max_body: 8 << 20,
            max_headers: 64,
            max_header_bytes: 16 << 10,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            compute_deadline: None,
            max_connections: 256,
            drain_timeout: Duration::from_secs(5),
            fault_injection: false,
        }
    }
}

/// Poison-recovering lock: a panic in one connection thread (isolated
/// by `catch_unwind`, but it may have held a lock) must not wedge the
/// daemon's shared counters.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Request-latency counters (microseconds), one instance per endpoint.
#[derive(Debug, Default)]
struct Latency {
    count: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Latency {
    fn record(&self, micros: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    fn to_json(&self) -> Json {
        let count = self.count.load(Ordering::Relaxed);
        let total = self.total_micros.load(Ordering::Relaxed);
        Json::Obj(vec![
            ("count".into(), Json::Int(count as i64)),
            ("total_micros".into(), Json::Int(total as i64)),
            (
                "max_micros".into(),
                Json::Int(self.max_micros.load(Ordering::Relaxed) as i64),
            ),
            (
                "mean_micros".into(),
                Json::Num(if count == 0 {
                    0.0
                } else {
                    total as f64 / count as f64
                }),
            ),
        ])
    }
}

/// State shared by every connection thread.
struct ServerState {
    cache: PlanCache,
    limits: Limits,
    compute_deadline: Option<Duration>,
    fault_injection: bool,
    max_connections: usize,
    solve: Latency,
    sweep: Latency,
    stream: Latency,
    metrics: Latency,
    errors: AtomicU64,
    panics: AtomicU64,
    timeouts: AtomicU64,
    rejected_overload: AtomicU64,
    faults: FaultStats,
    /// Admission-controlled concurrent-request gauge; the condvar
    /// signals `shutdown` when it returns to zero.
    in_flight: Mutex<usize>,
    idle: Condvar,
}

/// Holds one slot of the connection-count budget; releasing it on drop
/// (even on panic) is what keeps the gauge honest and lets `shutdown`
/// observe the drain.
struct ConnGuard {
    state: Arc<ServerState>,
}

impl ConnGuard {
    fn try_acquire(state: &Arc<ServerState>) -> Option<ConnGuard> {
        let mut n = lock(&state.in_flight);
        if *n >= state.max_connections {
            return None;
        }
        *n += 1;
        Some(ConnGuard {
            state: Arc::clone(state),
        })
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut n = lock(&self.state.in_flight);
        *n = n.saturating_sub(1);
        if *n == 0 {
            self.state.idle.notify_all();
        }
    }
}

/// What [`Server::shutdown`] observed while draining.
#[derive(Clone, Copy, Debug)]
pub struct DrainStats {
    /// Every in-flight request finished within the drain deadline.
    pub drained: bool,
    /// Worker threads still running when the deadline hit; they are
    /// detached, not killed (cooperative deadlines reclaim them).
    pub abandoned: usize,
}

/// A running daemon; dropping it (or calling [`Server::shutdown`])
/// stops the accept loop.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    state: Arc<ServerState>,
    workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    drain_timeout: Duration,
}

/// Binds and starts serving on a background accept loop,
/// thread-per-connection behind a connection-count admission gate.
///
/// # Errors
/// I/O errors from binding the listener.
pub fn spawn(config: ServerConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let state = Arc::new(ServerState {
        cache: PlanCache::new(config.cache_capacity),
        limits: Limits {
            max_body: config.max_body,
            max_headers: config.max_headers,
            max_header_bytes: config.max_header_bytes,
        },
        compute_deadline: config.compute_deadline,
        fault_injection: config.fault_injection,
        max_connections: config.max_connections,
        solve: Latency::default(),
        sweep: Latency::default(),
        stream: Latency::default(),
        metrics: Latency::default(),
        errors: AtomicU64::new(0),
        panics: AtomicU64::new(0),
        timeouts: AtomicU64::new(0),
        rejected_overload: AtomicU64::new(0),
        faults: FaultStats::default(),
        in_flight: Mutex::new(0),
        idle: Condvar::new(),
    });
    let workers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_stop = Arc::clone(&stop);
    let accept_state = Arc::clone(&state);
    let accept_workers = Arc::clone(&workers);
    let (read_timeout, write_timeout) = (config.read_timeout, config.write_timeout);
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = conn else { continue };
            let _ = stream.set_read_timeout(read_timeout);
            let _ = stream.set_write_timeout(write_timeout);
            let Some(guard) = ConnGuard::try_acquire(&accept_state) else {
                accept_state
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                // Rejections get a throwaway thread (never the accept
                // loop, never a gauge slot): its lifetime is hard-capped
                // by the drain timeout inside, so overload cannot grow
                // an unbounded herd out of it.
                std::thread::spawn(move || reject_overloaded(&mut stream));
                continue;
            };
            let state = Arc::clone(&accept_state);
            let handle = std::thread::spawn(move || {
                let _guard = guard; // released last, even on panic
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| handle_connection(&mut stream, &state)));
                if outcome.is_err() {
                    state.panics.fetch_add(1, Ordering::Relaxed);
                    state.errors.fetch_add(1, Ordering::Relaxed);
                    let _ = http::write_response(
                        &mut stream,
                        500,
                        "application/json",
                        error_json(
                            "internal panic while serving the request; the daemon is still up",
                        )
                        .as_bytes(),
                    );
                }
            });
            let mut workers = lock(&accept_workers);
            workers.retain(|h| !h.is_finished());
            workers.push(handle);
        }
    });

    Ok(Server {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        state,
        workers,
        drain_timeout: config.drain_timeout,
    })
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests currently being served (the admission gauge).
    pub fn in_flight(&self) -> usize {
        *lock(&self.state.in_flight)
    }

    /// Graceful shutdown: stops accepting, then waits up to the
    /// configured [`ServerConfig::drain_timeout`] for in-flight
    /// requests to finish. Finished worker threads are joined; any
    /// stragglers are detached and reported in [`DrainStats`].
    pub fn shutdown(self) -> DrainStats {
        let deadline = self.drain_timeout;
        self.shutdown_within(deadline)
    }

    /// [`Server::shutdown`] with an explicit drain deadline.
    pub fn shutdown_within(mut self, drain_timeout: Duration) -> DrainStats {
        self.stop_accepting();
        let deadline = Instant::now() + drain_timeout;
        let mut n = lock(&self.state.in_flight);
        while *n > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _) = self
                .state
                .idle
                .wait_timeout(n, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            n = g;
        }
        let drained = *n == 0;
        drop(n);
        let mut abandoned = 0usize;
        for h in lock(&self.workers).drain(..) {
            // After the gauge hit zero every worker is past its
            // response epilogue; join() only waits out thread teardown.
            if drained || h.is_finished() {
                let _ = h.join();
            } else {
                abandoned += 1;
            }
        }
        DrainStats { drained, abandoned }
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accepting();
        }
    }
}

/// Answers an over-cap connection with 503 + `Retry-After`, then
/// drains the socket briefly. The drain matters: closing with the
/// client's (unread) request still in the receive buffer makes TCP
/// reset the connection, destroying the 503 before the client reads
/// it. Reading until the client hangs up — bounded by a short timeout
/// and a byte budget — lets the reply land as a clean FIN instead.
fn reject_overloaded(stream: &mut TcpStream) {
    let _ = http::write_response_with(
        stream,
        503,
        "application/json",
        &[("Retry-After", "1".to_string())],
        error_json("server is at its connection limit; retry shortly").as_bytes(),
    );
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    let mut budget = 64 * 1024usize;
    while budget > 0 {
        match std::io::Read::read(stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Per-request context: which fault (if any) this request opted into,
/// and the compute-deadline token armed when the request was admitted.
struct RequestCtx<'s> {
    state: &'s ServerState,
    fault: Option<FaultSpec>,
    cancel: Option<CancelToken>,
}

impl RequestCtx<'_> {
    fn windowed_opts(&self, windows: usize) -> WindowedOptions {
        let mut opts = WindowedOptions::new(windows);
        if let Some(token) = &self.cancel {
            opts = opts.cancel_token(token.clone());
        }
        opts
    }

    /// Newton options for nonlinear solves: library defaults, wired to
    /// the request's compute-deadline token so a stuck iteration is
    /// interrupted mid-column rather than only between requests.
    fn newton_opts(&self) -> NewtonOptions {
        let mut opts = NewtonOptions::new();
        if let Some(token) = &self.cancel {
            opts = opts.cancel_token(token.clone());
        }
        opts
    }

    /// Non-windowed solves cannot be interrupted mid-flight; checking
    /// here (after plan build + injected sleeps) still bounds them.
    fn check_deadline(&self) -> Result<(), OpmError> {
        match &self.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    /// Cache lookup with the build-panic injection point: the panic
    /// fires *inside* the build closure, exactly where a real
    /// factorization bug would, so it exercises the cache's latch
    /// resolution and poison recovery — not a mock of them.
    fn plan(&self, parsed: &SimRequest) -> Result<(Arc<SimPlan>, bool), OpmError> {
        let key = plan_key(&parsed.sim, &parsed.opts);
        let inject = matches!(self.fault, Some(FaultSpec::BuildPanic));
        self.state.cache.get_or_intern(key, || {
            if inject {
                self.state
                    .faults
                    .build_panics
                    .fetch_add(1, Ordering::Relaxed);
                panic!("injected plan-build panic (X-Fault: build-panic)");
            }
            parsed.sim.plan(&parsed.opts)
        })
    }

    fn apply_slow_solve(&self) {
        if let Some(FaultSpec::SlowSolve(d)) = self.fault {
            self.state
                .faults
                .slow_solves
                .fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(d);
        }
    }
}

fn handle_connection(stream: &mut TcpStream, state: &ServerState) {
    let req = match http::read_request(stream, &state.limits) {
        Ok(req) => req,
        Err(e) => {
            let (status, msg) = if e.is_timeout() {
                state.timeouts.fetch_add(1, Ordering::Relaxed);
                (408, "timed out waiting for the request")
            } else {
                match e {
                    http::RecvError::Io(_) => return, // peer went away; nothing to answer
                    http::RecvError::Malformed(m) => (400, m),
                    http::RecvError::LengthRequired => (411, "Content-Length is required"),
                    http::RecvError::TooLarge => (413, "request body exceeds the server cap"),
                    http::RecvError::HeadersTooLarge => {
                        (431, "request headers exceed the server caps")
                    }
                }
            };
            state.errors.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(
                stream,
                status,
                "application/json",
                error_json(msg).as_bytes(),
            );
            return;
        }
    };

    let ctx = RequestCtx {
        state,
        fault: if state.fault_injection {
            req.fault.as_deref().and_then(FaultSpec::parse)
        } else {
            None
        },
        cancel: state.compute_deadline.map(CancelToken::with_deadline),
    };

    match route(stream, &req, &ctx) {
        Ok(()) => {}
        Err(reply) => {
            if reply.timed_out {
                state.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            state.errors.fetch_add(1, Ordering::Relaxed);
            let extra: Vec<(&str, String)> = match reply.retry_after_secs {
                Some(s) => vec![("Retry-After", s.to_string())],
                None => Vec::new(),
            };
            let _ = http::write_response_with(
                stream,
                reply.status,
                "application/json",
                &extra,
                reply.body.as_bytes(),
            );
        }
    }
}

/// An error reply yet to be written.
struct Reply {
    status: u16,
    body: String,
    retry_after_secs: Option<u32>,
    timed_out: bool,
}

impl Reply {
    fn new(status: u16, body: String) -> Self {
        Reply {
            status,
            body,
            retry_after_secs: None,
            timed_out: false,
        }
    }
}

impl From<ApiError> for Reply {
    fn from(e: ApiError) -> Self {
        Reply::new(e.status, error_json(&e.msg))
    }
}

impl From<OpmError> for Reply {
    fn from(e: OpmError) -> Self {
        match e {
            // The solve was sound but blew its compute budget: that is
            // the server's load problem, not the caller's model → 503,
            // and worth retrying later.
            OpmError::Cancelled(msg) => Reply {
                status: 503,
                body: error_json(&format!("compute deadline exceeded: {msg}")),
                retry_after_secs: Some(1),
                timed_out: true,
            },
            // The request was well-formed and the solver ran, but the
            // Newton iteration would not converge on this circuit at
            // these tolerances — a semantic problem with the submitted
            // model, not a malformed request and not a server fault
            // → 422, no retry hint (retrying the same model cannot
            // help).
            OpmError::Nonconvergence {
                iterations,
                residual,
                context,
            } => Reply::new(
                422,
                error_json(&format!(
                    "newton iteration did not converge after {iterations} iterations \
                     (residual {residual:.3e}, {context})"
                )),
            ),
            // Every other solver rejection is the caller's fault (bad
            // model, bad options) → 400.
            e => Reply::new(400, error_json(&e.to_string())),
        }
    }
}

fn route(stream: &mut TcpStream, req: &Request, ctx: &RequestCtx<'_>) -> Result<(), Reply> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/solve") => handle_solve(stream, req, ctx),
        ("POST", "/sweep") => handle_sweep(stream, req, ctx),
        ("POST", "/stream") => handle_stream(stream, req, ctx),
        ("GET", "/metrics") => handle_metrics(stream, ctx.state),
        (_, "/solve" | "/sweep" | "/stream" | "/metrics") => Err(Reply::new(
            405,
            error_json("method not allowed for this endpoint"),
        )),
        _ => Err(Reply::new(404, error_json("no such endpoint"))),
    }
}

/// Latency counters are recorded **before** the final bytes go out, so
/// a client that has read its response is guaranteed to see its own
/// request in a subsequent `/metrics` — only *successful* requests are
/// timed; failures land in the `errors` counter instead.
struct Timer<'l> {
    latency: &'l Latency,
    started: Instant,
}

impl Timer<'_> {
    fn start(latency: &Latency) -> Timer<'_> {
        Timer {
            latency,
            started: Instant::now(),
        }
    }

    fn record(self) {
        self.latency
            .record(self.started.elapsed().as_micros() as u64);
    }
}

fn plan_header(cache_hit: bool, plan: &SimPlan) -> Vec<(String, Json)> {
    vec![
        (
            "cache".into(),
            Json::str(if cache_hit { "hit" } else { "miss" }),
        ),
        ("profile".into(), plan.factor_profile().to_json()),
    ]
}

fn handle_solve(stream: &mut TcpStream, req: &Request, ctx: &RequestCtx<'_>) -> Result<(), Reply> {
    let timer = Timer::start(&ctx.state.solve);
    let parsed = SimRequest::parse(&req.body)?;
    let stimuli = parsed.stimuli()?;
    let (plan, hit) = ctx.plan(&parsed)?;
    ctx.apply_slow_solve();
    ctx.check_deadline()?;
    let results = if plan.has_nonlinear() {
        // Nonlinear netlists solve per-column Newton over the same plan;
        // the linear batch entry points reject them by design.
        let nopts = ctx.newton_opts();
        let windows = parsed.windows.unwrap_or(1);
        stimuli
            .iter()
            .map(|ws| plan.solve_newton_windowed(ws, windows, &nopts))
            .collect::<Result<Vec<_>, _>>()?
    } else {
        match parsed.windows {
            Some(w) => plan.solve_windowed_batch_opts(
                &stimuli,
                &ctx.windowed_opts(w),
                opm_par::default_threads(),
            )?,
            None => plan.solve_batch(&stimuli)?,
        }
    };
    let mut doc = plan_header(hit, &plan);
    doc.push((
        "results".into(),
        Json::Arr(results.iter().map(api::result_json).collect()),
    ));
    let body = Json::Obj(doc).to_string();
    timer.record();
    http::write_response(stream, 200, "application/json", body.as_bytes()).map_err(io_reply)?;
    Ok(())
}

fn handle_sweep(stream: &mut TcpStream, req: &Request, ctx: &RequestCtx<'_>) -> Result<(), Reply> {
    let timer = Timer::start(&ctx.state.sweep);
    let parsed = SimRequest::parse(&req.body)?;
    let levels = parsed
        .levels
        .clone()
        .ok_or_else(|| ApiError::bad("`levels` (an array of numbers) is required for /sweep"))?;
    let (plan, hit) = ctx.plan(&parsed)?;
    ctx.apply_slow_solve();
    ctx.check_deadline()?;
    let p = parsed.sim.model().num_inputs();
    let results = plan.sweep(&levels, |&v| {
        opm_waveform::InputSet::new(vec![opm_waveform::Waveform::Dc(v); p])
    })?;
    let mut doc = plan_header(hit, &plan);
    doc.push(("levels".into(), Json::num_arr(&levels)));
    doc.push((
        "results".into(),
        Json::Arr(results.iter().map(api::result_json).collect()),
    ));
    let body = Json::Obj(doc).to_string();
    timer.record();
    http::write_response(stream, 200, "application/json", body.as_bytes()).map_err(io_reply)?;
    Ok(())
}

fn handle_stream(stream: &mut TcpStream, req: &Request, ctx: &RequestCtx<'_>) -> Result<(), Reply> {
    let timer = Timer::start(&ctx.state.stream);
    let parsed = SimRequest::parse(&req.body)?;
    let windows = parsed
        .windows
        .ok_or_else(|| ApiError::bad("`windows` (a positive integer) is required for /stream"))?;
    let stimuli = parsed.stimuli()?;
    let Some(inputs) = stimuli.first() else {
        return Err(ApiError::bad("/stream takes exactly one scenario").into());
    };
    if stimuli.len() > 1 {
        return Err(ApiError::bad("/stream takes exactly one scenario").into());
    }
    let (plan, hit) = ctx.plan(&parsed)?;
    ctx.apply_slow_solve();
    // Check before headers commit the status line: a blown deadline
    // here still gets a clean 503.
    ctx.check_deadline()?;

    let drop_after = match ctx.fault {
        Some(FaultSpec::DropStream { after_chunks }) => Some(after_chunks),
        _ => None,
    };
    // A second handle to the same socket, so the injected mid-stream
    // drop can hard-close it while `ChunkedWriter` borrows `stream`.
    let raw = match drop_after {
        Some(_) => Some(stream.try_clone().map_err(io_reply)?),
        None => None,
    };

    // Headers go out before the solve starts; each window block is
    // flushed as its chunk the moment it is solved.
    let mut writer = ChunkedWriter::start(stream, 200, "application/x-ndjson").map_err(io_reply)?;
    let mut sink_err: Option<std::io::Error> = None;
    let mut chunks_sent = 0usize;
    let mut dropped = false;
    let streamed = plan.solve_streaming_opts(inputs, &ctx.windowed_opts(windows), |block| {
        if sink_err.is_some() || dropped {
            return;
        }
        if drop_after.is_some_and(|n| chunks_sent >= n) {
            ctx.state
                .faults
                .dropped_streams
                .fetch_add(1, Ordering::Relaxed);
            if let Some(raw) = &raw {
                let _ = raw.shutdown(Shutdown::Both);
            }
            dropped = true;
            return;
        }
        let mut line = Json::Obj(vec![
            ("window".into(), Json::Int(block.window as i64)),
            ("result".into(), api::result_json(&block.result)),
            ("end_state".into(), Json::num_arr(&block.end_state)),
        ])
        .to_string();
        line.push('\n');
        match writer.chunk(line.as_bytes()) {
            Ok(()) => chunks_sent += 1,
            Err(e) => sink_err = Some(e),
        }
    });
    let final_state = match streamed {
        Ok(s) => s,
        Err(OpmError::Cancelled(_)) => {
            // Deadline hit mid-stream: the 200 status line is already
            // on the wire, so the only honest signal is a truncated
            // chunked body. Count it and close.
            ctx.state.timeouts.fetch_add(1, Ordering::Relaxed);
            ctx.state.errors.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        Err(e) => return Err(e.into()),
    };
    if dropped || sink_err.is_some() {
        return Ok(()); // stream was cut (by fault or peer); nothing left to say
    }
    let mut doc = plan_header(hit, &plan);
    doc.push(("done".into(), Json::Bool(true)));
    doc.push(("final_state".into(), Json::num_arr(&final_state)));
    let mut line = Json::Obj(doc).to_string();
    line.push('\n');
    writer.chunk(line.as_bytes()).map_err(io_reply)?;
    timer.record();
    writer.finish().map_err(io_reply)?;
    Ok(())
}

fn handle_metrics(stream: &mut TcpStream, state: &ServerState) -> Result<(), Reply> {
    let timer = Timer::start(&state.metrics);
    let plans = state
        .cache
        .plans()
        .into_iter()
        .map(|((k0, k1), plan)| {
            Json::Obj(vec![
                ("key".into(), Json::str(format!("{k0:016x}{k1:016x}"))),
                ("strategy".into(), Json::str(plan.strategy_name())),
                ("resolution".into(), Json::Int(plan.resolution() as i64)),
                ("order".into(), Json::Int(plan.order() as i64)),
                ("profile".into(), plan.factor_profile().to_json()),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("plan_cache".into(), state.cache.stats().to_json()),
        ("plans".into(), Json::Arr(plans)),
        (
            "requests".into(),
            Json::Obj(vec![
                ("solve".into(), state.solve.to_json()),
                ("sweep".into(), state.sweep.to_json()),
                ("stream".into(), state.stream.to_json()),
                ("metrics".into(), state.metrics.to_json()),
                (
                    "errors".into(),
                    Json::Int(state.errors.load(Ordering::Relaxed) as i64),
                ),
            ]),
        ),
        (
            "robustness".into(),
            Json::Obj(vec![
                // Gauge includes the /metrics request reporting it, so
                // an otherwise-idle server reads 1 here.
                (
                    "in_flight".into(),
                    Json::Int(*lock(&state.in_flight) as i64),
                ),
                (
                    "panics".into(),
                    Json::Int(state.panics.load(Ordering::Relaxed) as i64),
                ),
                (
                    "timeouts".into(),
                    Json::Int(state.timeouts.load(Ordering::Relaxed) as i64),
                ),
                (
                    "rejected_overload".into(),
                    Json::Int(state.rejected_overload.load(Ordering::Relaxed) as i64),
                ),
                ("faults".into(), state.faults.to_json()),
            ]),
        ),
    ]);
    timer.record();
    http::write_response(stream, 200, "application/json", doc.to_string().as_bytes())
        .map_err(io_reply)?;
    // Belt and braces: some clients half-close early; make sure the
    // payload is on the wire before the thread exits.
    let _ = stream.flush();
    Ok(())
}

fn io_reply(_: std::io::Error) -> Reply {
    // The socket is gone; the reply cannot be delivered anyway.
    Reply::new(500, String::new())
}
