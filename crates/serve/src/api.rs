//! The daemon's JSON dialect: request bodies → sessions, results →
//! response documents.
//!
//! A request describes the *plan inputs* (model, horizon, options) and
//! the *stimuli* separately, mirroring the session API's split: the
//! plan inputs form the cache key, the stimuli are free to vary per
//! request without costing a factorization.
//!
//! ```json
//! {
//!   "netlist": "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1u\n.end",
//!   "probes": ["out"],
//!   "horizon": 5e-3,
//!   "options": {"resolution": 256},
//!   "scenarios": [[{"kind": "sine", "ampl": 1.0, "freq": 1e3}]]
//! }
//! ```
//!
//! Instead of a netlist, a raw descriptor model can be posted as
//! sparse triplets (`"model": {"n": …, "inputs": …, "e": [[i,j,v],…],
//! "a": …, "b": …, "c": …, "alpha": …}`); `"alpha"` makes it
//! fractional. Omitting `"scenarios"` for a netlist uses the netlist's
//! own sources.

use opm_core::json::Json;
use opm_core::{OpmResult, Simulation, SolveOptions};
use opm_sparse::{CooMatrix, CsrMatrix};
use opm_system::{DescriptorSystem, FractionalSystem};
use opm_waveform::{InputSet, Waveform};

/// A request failure, carrying the HTTP status it maps onto.
#[derive(Debug)]
pub struct ApiError {
    /// 400 for anything wrong with the document, 500 for solver bugs.
    pub status: u16,
    /// Human-readable cause, echoed in the JSON error body.
    pub msg: String,
}

impl ApiError {
    /// A 400 with the given cause.
    pub fn bad(msg: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            msg: msg.into(),
        }
    }
}

/// A parsed `/solve`, `/sweep` or `/stream` request.
pub struct SimRequest {
    /// The session the plan is (or was) built from.
    pub sim: Simulation,
    /// Plan options — part of the cache key.
    pub opts: SolveOptions,
    /// Explicit stimuli; empty means "use the netlist's sources".
    pub scenarios: Vec<InputSet>,
    /// Window count for `/stream` (and optionally windowed `/solve`).
    pub windows: Option<usize>,
    /// Drive levels for `/sweep`.
    pub levels: Option<Vec<f64>>,
}

impl SimRequest {
    /// Parses a request body.
    ///
    /// # Errors
    /// [`ApiError`] (status 400) naming the offending field.
    pub fn parse(body: &[u8]) -> Result<SimRequest, ApiError> {
        let text =
            std::str::from_utf8(body).map_err(|_| ApiError::bad("request body is not UTF-8"))?;
        let doc = Json::parse(text).map_err(|e| ApiError::bad(e.to_string()))?;

        let horizon = doc
            .get("horizon")
            .and_then(Json::as_f64)
            .ok_or_else(|| ApiError::bad("`horizon` (a number) is required"))?;

        let mut sim = match (doc.get("netlist"), doc.get("model")) {
            (Some(netlist), None) => {
                let text = netlist
                    .as_str()
                    .ok_or_else(|| ApiError::bad("`netlist` must be a string"))?;
                let probes: Vec<&str> = match doc.get("probes") {
                    Some(p) => p
                        .as_array()
                        .ok_or_else(|| ApiError::bad("`probes` must be an array"))?
                        .iter()
                        .map(|v| {
                            v.as_str()
                                .ok_or_else(|| ApiError::bad("`probes` entries must be strings"))
                        })
                        .collect::<Result<_, _>>()?,
                    None => Vec::new(),
                };
                Simulation::from_netlist(text, &probes).map_err(|e| ApiError::bad(e.to_string()))?
            }
            (None, Some(model)) => parse_model(model)?,
            _ => {
                return Err(ApiError::bad(
                    "exactly one of `netlist` or `model` is required",
                ))
            }
        };
        sim = sim.horizon(horizon);

        if let Some(x0) = doc.get("x0") {
            sim = sim.initial_state(parse_f64_array(x0, "x0")?);
        }

        let opts = match doc.get("options") {
            Some(o) => parse_options(o)?,
            None => SolveOptions::new(),
        };

        let scenarios = match doc.get("scenarios") {
            Some(s) => {
                let list = s
                    .as_array()
                    .ok_or_else(|| ApiError::bad("`scenarios` must be an array"))?;
                list.iter().map(parse_scenario).collect::<Result<_, _>>()?
            }
            None => Vec::new(),
        };

        let windows = match doc.get("windows") {
            Some(w) => Some(
                w.as_usize()
                    .filter(|&w| w > 0)
                    .ok_or_else(|| ApiError::bad("`windows` must be a positive integer"))?,
            ),
            None => None,
        };

        let levels = match doc.get("levels") {
            Some(l) => Some(parse_f64_array(l, "levels")?),
            None => None,
        };

        Ok(SimRequest {
            sim,
            opts,
            scenarios,
            windows,
            levels,
        })
    }

    /// The stimuli to run: explicit scenarios, or the netlist's own
    /// sources when none were posted.
    ///
    /// # Errors
    /// 400 when neither is available.
    pub fn stimuli(&self) -> Result<Vec<InputSet>, ApiError> {
        if !self.scenarios.is_empty() {
            return Ok(self.scenarios.clone());
        }
        match self.sim.inputs() {
            Some(u) => Ok(vec![u.clone()]),
            None => Err(ApiError::bad(
                "`scenarios` is required when the model is not a netlist",
            )),
        }
    }
}

fn parse_f64_array(v: &Json, field: &str) -> Result<Vec<f64>, ApiError> {
    v.as_array()
        .ok_or_else(|| ApiError::bad(format!("`{field}` must be an array of numbers")))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| ApiError::bad(format!("`{field}` entries must be numbers")))
        })
        .collect()
}

fn parse_triplets(
    v: &Json,
    nrows: usize,
    ncols: usize,
    field: &str,
) -> Result<CsrMatrix, ApiError> {
    let rows = v.as_array().ok_or_else(|| {
        ApiError::bad(format!("`{field}` must be an array of [i, j, v] triplets"))
    })?;
    let mut coo = CooMatrix::new(nrows, ncols);
    for t in rows {
        let t = t
            .as_array()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| ApiError::bad(format!("`{field}` entries must be [i, j, v]")))?;
        let i = t[0]
            .as_usize()
            .filter(|&i| i < nrows)
            .ok_or_else(|| ApiError::bad(format!("`{field}` row index out of range")))?;
        let j = t[1]
            .as_usize()
            .filter(|&j| j < ncols)
            .ok_or_else(|| ApiError::bad(format!("`{field}` column index out of range")))?;
        let val = t[2]
            .as_f64()
            .ok_or_else(|| ApiError::bad(format!("`{field}` value must be a number")))?;
        coo.push(i, j, val);
    }
    Ok(coo.to_csr())
}

fn parse_model(model: &Json) -> Result<Simulation, ApiError> {
    let n = model
        .get("n")
        .and_then(Json::as_usize)
        .filter(|&n| n > 0)
        .ok_or_else(|| ApiError::bad("`model.n` (state dimension) is required"))?;
    let p = model
        .get("inputs")
        .and_then(Json::as_usize)
        .filter(|&p| p > 0)
        .ok_or_else(|| ApiError::bad("`model.inputs` (input count) is required"))?;
    let e = parse_triplets(
        model
            .get("e")
            .ok_or_else(|| ApiError::bad("`model.e` is required"))?,
        n,
        n,
        "model.e",
    )?;
    let a = parse_triplets(
        model
            .get("a")
            .ok_or_else(|| ApiError::bad("`model.a` is required"))?,
        n,
        n,
        "model.a",
    )?;
    let b = parse_triplets(
        model
            .get("b")
            .ok_or_else(|| ApiError::bad("`model.b` is required"))?,
        n,
        p,
        "model.b",
    )?;
    let c = match model.get("c") {
        Some(c) => {
            let q = model
                .get("outputs")
                .and_then(Json::as_usize)
                .filter(|&q| q > 0)
                .ok_or_else(|| ApiError::bad("`model.outputs` is required alongside `model.c`"))?;
            Some(parse_triplets(c, q, n, "model.c")?)
        }
        None => None,
    };
    let sys = DescriptorSystem::new(e, a, b, c).map_err(|e| ApiError::bad(e.to_string()))?;
    match model.get("alpha") {
        Some(alpha) => {
            let alpha = alpha
                .as_f64()
                .ok_or_else(|| ApiError::bad("`model.alpha` must be a number"))?;
            let fsys =
                FractionalSystem::new(alpha, sys).map_err(|e| ApiError::bad(e.to_string()))?;
            Ok(Simulation::from_fractional(fsys))
        }
        None => Ok(Simulation::from_system(sys)),
    }
}

fn parse_options(o: &Json) -> Result<SolveOptions, ApiError> {
    let mut opts = SolveOptions::new();
    if let Some(m) = o.get("resolution") {
        opts = opts.resolution(
            m.as_usize()
                .filter(|&m| m > 0)
                .ok_or_else(|| ApiError::bad("`options.resolution` must be a positive integer"))?,
        );
    }
    if let Some(method) = o.get("method") {
        let name = method
            .as_str()
            .ok_or_else(|| ApiError::bad("`options.method` must be a string"))?;
        opts = opts.method(match name {
            "auto" => opm_core::Method::Auto,
            "recurrence" => opm_core::Method::Recurrence,
            "accumulator" => opm_core::Method::Accumulator,
            "convolution" => opm_core::Method::Convolution,
            "kronecker" => opm_core::Method::Kronecker,
            other => return Err(ApiError::bad(format!("unknown method `{other}`"))),
        });
    }
    if let Some(grid) = o.get("step_grid") {
        opts = opts.step_grid(parse_f64_array(grid, "options.step_grid")?);
    }
    Ok(opts)
}

fn field(w: &Json, name: &str) -> Result<f64, ApiError> {
    w.get(name)
        .and_then(Json::as_f64)
        .ok_or_else(|| ApiError::bad(format!("waveform field `{name}` must be a number")))
}

fn field_or(w: &Json, name: &str, default: f64) -> Result<f64, ApiError> {
    match w.get(name) {
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ApiError::bad(format!("waveform field `{name}` must be a number"))),
        None => Ok(default),
    }
}

fn parse_waveform(w: &Json) -> Result<Waveform, ApiError> {
    let kind = w
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad("each waveform needs a string `kind`"))?;
    match kind {
        "dc" => Ok(Waveform::Dc(field(w, "value")?)),
        "step" => Ok(Waveform::step(field_or(w, "t0", 0.0)?, field(w, "level")?)),
        "ramp" => Ok(Waveform::Ramp {
            slope: field(w, "slope")?,
        }),
        "pulse" => {
            let (rise, fall) = (field(w, "rise")?, field(w, "fall")?);
            let width = field(w, "width")?;
            let period = field_or(w, "period", 0.0)?;
            // The constructor asserts these; turn them into 400s.
            if rise <= 0.0 || fall <= 0.0 {
                return Err(ApiError::bad("pulse rise/fall must be positive"));
            }
            if period != 0.0 && period < rise + width + fall {
                return Err(ApiError::bad("pulse period must fit the pulse shape"));
            }
            Ok(Waveform::pulse(
                field(w, "v1")?,
                field(w, "v2")?,
                field_or(w, "delay", 0.0)?,
                rise,
                width,
                fall,
                period,
            ))
        }
        "sine" => Ok(Waveform::sine(
            field_or(w, "offset", 0.0)?,
            field(w, "ampl")?,
            field(w, "freq")?,
            field_or(w, "delay", 0.0)?,
            field_or(w, "damp", 0.0)?,
        )),
        "exp" => {
            let (tau1, tau2) = (field(w, "tau1")?, field(w, "tau2")?);
            let (td1, td2) = (field_or(w, "td1", 0.0)?, field(w, "td2")?);
            if tau1 <= 0.0 || tau2 <= 0.0 {
                return Err(ApiError::bad("exp time constants must be positive"));
            }
            if td2 < td1 {
                return Err(ApiError::bad("exp decay must start after the rise"));
            }
            Ok(Waveform::exp(
                field(w, "v1")?,
                field(w, "v2")?,
                td1,
                tau1,
                td2,
                tau2,
            ))
        }
        "pwl" => {
            let pts = w
                .get("points")
                .and_then(Json::as_array)
                .ok_or_else(|| ApiError::bad("`points` (an array of [t, v]) is required"))?;
            let points: Vec<(f64, f64)> = pts
                .iter()
                .map(|p| {
                    let p = p
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| ApiError::bad("pwl points must be [t, v] pairs"))?;
                    Ok((
                        p[0].as_f64()
                            .ok_or_else(|| ApiError::bad("pwl times must be numbers"))?,
                        p[1].as_f64()
                            .ok_or_else(|| ApiError::bad("pwl values must be numbers"))?,
                    ))
                })
                .collect::<Result<_, ApiError>>()?;
            Waveform::pwl(points).map_err(|e| ApiError::bad(e.to_string()))
        }
        other => Err(ApiError::bad(format!("unknown waveform kind `{other}`"))),
    }
}

fn parse_scenario(s: &Json) -> Result<InputSet, ApiError> {
    // A scenario is a waveform list, optionally wrapped in
    // `{"waveforms": […]}`.
    let list = match s.get("waveforms") {
        Some(w) => w,
        None => s,
    };
    let waveforms = list
        .as_array()
        .ok_or_else(|| ApiError::bad("each scenario must be an array of waveforms"))?;
    Ok(InputSet::new(
        waveforms
            .iter()
            .map(parse_waveform)
            .collect::<Result<_, _>>()?,
    ))
}

/// One solved result as a response document: interval bounds plus the
/// output rows (state rows when the model has no `C`).
pub fn result_json(r: &OpmResult) -> Json {
    Json::Obj(vec![
        ("bounds".into(), Json::num_arr(&r.bounds)),
        (
            "outputs".into(),
            Json::Arr(r.outputs.iter().map(|row| Json::num_arr(row)).collect()),
        ),
    ])
}

/// The uniform error body: `{"error": …}`.
pub fn error_json(msg: &str) -> String {
    Json::Obj(vec![("error".into(), Json::str(msg))]).to_string()
}
