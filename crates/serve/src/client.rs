//! A tiny blocking HTTP/1.1 client for the daemon — what the e2e
//! tests, the `serve_bench` load generator and `examples/serve_client`
//! speak. Understands exactly the server's dialect: `Content-Length`
//! bodies and `Transfer-Encoding: chunked` (decoded transparently, so
//! a streamed NDJSON response arrives as one body to split on
//! newlines).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A decoded response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body, chunked transfer already decoded.
    pub body: String,
}

impl Response {
    /// The body parsed as JSON.
    ///
    /// # Errors
    /// [`opm_core::json::JsonError`] when the body is not JSON.
    pub fn json(&self) -> Result<opm_core::json::Json, opm_core::json::JsonError> {
        opm_core::json::Json::parse(&self.body)
    }
}

/// Issues one request and reads the full response.
///
/// # Errors
/// I/O errors, or `InvalidData` when the response framing is broken.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(&mut stream)
}

/// `POST path` with a JSON body.
///
/// # Errors
/// As [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, Some(body))
}

/// `GET path`.
///
/// # Errors
/// As [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, None)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn read_response(stream: &mut TcpStream) -> std::io::Result<Response> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparsable status line"))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }

    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad("unparsable chunk size"))?;
            if size == 0 {
                let mut crlf = String::new();
                let _ = reader.read_line(&mut crlf); // trailing CRLF
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(n) = content_length {
        body = vec![0u8; n];
        reader.read_exact(&mut body)?;
    } else {
        // Connection: close framing — read until EOF.
        reader.read_to_end(&mut body)?;
    }

    String::from_utf8(body)
        .map(|body| Response { status, body })
        .map_err(|_| bad("response body is not UTF-8"))
}
