//! A tiny blocking HTTP/1.1 client for the daemon — what the e2e
//! tests, the `serve_bench` load generator and `examples/serve_client`
//! speak. Understands exactly the server's dialect: `Content-Length`
//! bodies and `Transfer-Encoding: chunked` (decoded transparently, so
//! a streamed NDJSON response arrives as one body to split on
//! newlines).
//!
//! Two tiers:
//!
//! - The free functions ([`request`] / [`post`] / [`get`]) issue
//!   exactly one attempt with connect/read/write timeouts. Tests use
//!   these when a raw status (e.g. an overload 503) must be observed,
//!   not papered over.
//! - [`Client`] adds bounded retry with exponential backoff and
//!   deterministic jitter drawn from `opm-rng` — it retries transport
//!   errors and 503s (honoring `Retry-After` up to a cap), which is
//!   what healthy traffic in the chaos harness rides on.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use opm_rng::StdRng;

/// Default connect timeout for every code path in this module.
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// Default socket read/write timeout for every code path here.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A decoded response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, chunked transfer already decoded.
    pub body: String,
}

impl Response {
    /// The body parsed as JSON.
    ///
    /// # Errors
    /// [`opm_core::json::JsonError`] when the body is not JSON.
    pub fn json(&self) -> Result<opm_core::json::Json, opm_core::json::JsonError> {
        opm_core::json::Json::parse(&self.body)
    }

    /// First header with this name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Issues one request (single attempt, default timeouts) and reads the
/// full response.
///
/// # Errors
/// I/O errors, or `InvalidData` when the response framing is broken.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    request_once(
        addr,
        method,
        path,
        body,
        &[],
        DEFAULT_CONNECT_TIMEOUT,
        Some(DEFAULT_IO_TIMEOUT),
    )
}

/// `POST path` with a JSON body.
///
/// # Errors
/// As [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, Some(body))
}

/// `GET path`.
///
/// # Errors
/// As [`request`].
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, None)
}

fn request_once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(&str, &str)],
    connect_timeout: Duration,
    io_timeout: Option<Duration>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
    stream.set_read_timeout(io_timeout)?;
    stream.set_write_timeout(io_timeout)?;
    let body = body.unwrap_or("");
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    read_response(&mut stream)
}

/// Retry policy for [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Socket read/write timeout per attempt (`None` = blocking).
    pub io_timeout: Option<Duration>,
    /// Retries after the first attempt (so `retries = 3` means at most
    /// four attempts).
    pub retries: u32,
    /// First backoff; doubles per retry.
    pub backoff_base: Duration,
    /// Ceiling for any single sleep, including an honored
    /// `Retry-After`.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter stream, so a test run
    /// sleeps the exact same schedule every time.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
            retries: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x5eed,
        }
    }
}

/// A retrying client: transport errors and 503 (overload / compute
/// deadline) responses are retried with exponential backoff plus
/// deterministic jitter; any other status is returned as-is on the
/// first attempt. The final outcome after exhausting retries is
/// whatever the last attempt produced — including a final 503.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    rng: Mutex<StdRng>,
}

impl Client {
    /// A client with the default [`ClientConfig`].
    pub fn new(addr: SocketAddr) -> Self {
        Client::with_config(addr, ClientConfig::default())
    }

    /// A client with an explicit retry policy.
    pub fn with_config(addr: SocketAddr, config: ClientConfig) -> Self {
        let rng = Mutex::new(StdRng::seed_from_u64(config.jitter_seed));
        Client { addr, config, rng }
    }

    /// `POST path` with a JSON body, retrying per the config.
    ///
    /// # Errors
    /// The last attempt's I/O error once retries are exhausted.
    pub fn post(&self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, Some(body), &[])
    }

    /// `GET path`, retrying per the config.
    ///
    /// # Errors
    /// As [`Client::post`].
    pub fn get(&self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None, &[])
    }

    /// One logical request with retry; `extra_headers` ride on every
    /// attempt (the chaos harness sends `X-Fault` through here).
    ///
    /// # Errors
    /// The last attempt's I/O error once retries are exhausted.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let outcome = request_once(
                self.addr,
                method,
                path,
                body,
                extra_headers,
                self.config.connect_timeout,
                self.config.io_timeout,
            );
            let retryable = match &outcome {
                Ok(resp) => resp.status == 503,
                Err(_) => true,
            };
            if !retryable || attempt >= self.config.retries {
                return outcome;
            }
            let retry_after = outcome
                .as_ref()
                .ok()
                .and_then(|r| r.header("retry-after"))
                .and_then(|v| v.trim().parse::<u64>().ok())
                .map(Duration::from_secs);
            std::thread::sleep(self.backoff(attempt, retry_after));
            attempt += 1;
        }
    }

    /// `base · 2^attempt` capped, floored by an honored `Retry-After`
    /// (also capped), plus uniform jitter in `[0, base)` to de-herd
    /// concurrent retriers.
    fn backoff(&self, attempt: u32, retry_after: Option<Duration>) -> Duration {
        let base = self.config.backoff_base;
        let cap = self.config.backoff_cap;
        let mut delay = base.saturating_mul(1u32 << attempt.min(16)).min(cap);
        if let Some(ra) = retry_after {
            delay = delay.max(ra.min(cap));
        }
        let jitter_ms = {
            let mut rng = self.rng.lock().unwrap_or_else(PoisonError::into_inner);
            let span = base.as_millis().max(1) as u64;
            rng.next_u64() % span
        };
        delay + Duration::from_millis(jitter_ms)
    }
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn read_response(stream: &mut TcpStream) -> std::io::Result<Response> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("unparsable status line"))?;

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            }
            headers.push((name, value));
        }
    }

    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader.read_line(&mut size_line)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad("unparsable chunk size"))?;
            if size == 0 {
                let mut crlf = String::new();
                let _ = reader.read_line(&mut crlf); // trailing CRLF
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            body.extend_from_slice(&chunk);
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
        }
    } else if let Some(n) = content_length {
        body = vec![0u8; n];
        reader.read_exact(&mut body)?;
    } else {
        // Connection: close framing — read until EOF.
        reader.read_to_end(&mut body)?;
    }

    String::from_utf8(body)
        .map(|body| Response {
            status,
            headers,
            body,
        })
        .map_err(|_| bad("response body is not UTF-8"))
}
