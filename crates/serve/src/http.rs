//! Minimal HTTP/1.1 on a `TcpStream` — exactly the slice the daemon
//! needs, in the spirit of the tree's other std-only shims.
//!
//! Supported on the way in: a request line, headers, and either a
//! `Content-Length` body (capped) or no body. On the way out: fixed
//! responses with `Content-Length`, or a [`ChunkedWriter`] for
//! streaming NDJSON. Every connection is `Connection: close` — one
//! request per connection keeps the framing trivial and is plenty for
//! a load generator that opens thousands of short connections.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component of the request target (query strings are not
    /// interpreted).
    pub path: String,
    /// The body, when `Content-Length` announced one.
    pub body: Vec<u8>,
}

/// Why a request could not be read. Each variant maps onto the HTTP
/// status the server answers with.
#[derive(Debug)]
pub enum RecvError {
    /// Socket closed or unreadable before a full request arrived.
    Io(std::io::Error),
    /// Request line / header syntax error → 400.
    Malformed(&'static str),
    /// A body-bearing method without `Content-Length` → 411.
    LengthRequired,
    /// Announced body exceeds the server's cap → 413.
    TooLarge,
}

impl From<std::io::Error> for RecvError {
    fn from(e: std::io::Error) -> Self {
        RecvError::Io(e)
    }
}

/// Reads one request, enforcing `max_body` on announced body sizes.
///
/// # Errors
/// [`RecvError`] describing which HTTP status to answer with.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RecvError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(RecvError::Io(std::io::ErrorKind::UnexpectedEof.into()));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(RecvError::Malformed("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(RecvError::Malformed("request line has no target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(RecvError::Malformed("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed("unsupported HTTP version"));
    }

    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(RecvError::Malformed("header without a colon"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| RecvError::Malformed("unparsable Content-Length"))?;
            content_length = Some(n);
        }
    }

    let body = match content_length {
        Some(n) if n > max_body => return Err(RecvError::TooLarge),
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        None if method == "POST" || method == "PUT" => return Err(RecvError::LengthRequired),
        None => Vec::new(),
    };

    Ok(Request { method, path, body })
}

/// The reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete (non-streaming) response and flushes.
///
/// # Errors
/// I/O errors from the socket.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response writer: each [`Self::chunk`]
/// is flushed to the wire immediately, which is what lets `/stream`
/// deliver window blocks as they are solved.
pub struct ChunkedWriter<'s> {
    stream: &'s mut TcpStream,
}

impl<'s> ChunkedWriter<'s> {
    /// Writes the status line + headers and returns the chunk writer.
    ///
    /// # Errors
    /// I/O errors from the socket.
    pub fn start(
        stream: &'s mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
            content_type,
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one chunk and flushes it.
    ///
    /// # Errors
    /// I/O errors from the socket.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    ///
    /// # Errors
    /// I/O errors from the socket.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
