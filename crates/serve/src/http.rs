//! Minimal HTTP/1.1 on a `TcpStream` — exactly the slice the daemon
//! needs, in the spirit of the tree's other std-only shims.
//!
//! Supported on the way in: a request line, headers, and either a
//! `Content-Length` body (capped) or no body. On the way out: fixed
//! responses with `Content-Length`, or a [`ChunkedWriter`] for
//! streaming NDJSON. Every connection is `Connection: close` — one
//! request per connection keeps the framing trivial and is plenty for
//! a load generator that opens thousands of short connections.
//!
//! Reads are *bounded*: [`Limits`] caps the header count, the total
//! header bytes, and the announced body size, so a drip-feeding or
//! header-flooding client cannot grow server memory without limit.
//! Each violated cap maps onto its own HTTP status (431 for headers,
//! 413 for the body), and socket read timeouts surface as
//! [`RecvError::Io`] with `WouldBlock`/`TimedOut` so the server can
//! answer 408 instead of hanging a thread forever.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Caps applied while reading one request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Largest announced `Content-Length` accepted (→ 413 beyond).
    pub max_body: usize,
    /// Most header lines accepted, request line excluded (→ 431).
    pub max_headers: usize,
    /// Total bytes budget for the request line + all header lines,
    /// terminators included (→ 431).
    pub max_header_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_body: 8 << 20,
            max_headers: 64,
            max_header_bytes: 16 << 10,
        }
    }
}

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component of the request target (query strings are not
    /// interpreted).
    pub path: String,
    /// The body, when `Content-Length` announced one.
    pub body: Vec<u8>,
    /// Value of the `X-Fault` header, when present. Captured here,
    /// *honored* only when the server was started with fault injection
    /// enabled — see `opm_serve::fault`.
    pub fault: Option<String>,
}

/// Why a request could not be read. Each variant maps onto the HTTP
/// status the server answers with.
#[derive(Debug)]
pub enum RecvError {
    /// Socket closed or unreadable before a full request arrived.
    /// `WouldBlock`/`TimedOut` kinds mean the socket read timeout
    /// expired → 408; everything else is answered with silence.
    Io(std::io::Error),
    /// Request line / header syntax error → 400.
    Malformed(&'static str),
    /// A body-bearing method without `Content-Length` → 411.
    LengthRequired,
    /// Announced body exceeds the server's cap → 413.
    TooLarge,
    /// Header count or total header bytes exceed the caps → 431.
    HeadersTooLarge,
}

impl From<std::io::Error> for RecvError {
    fn from(e: std::io::Error) -> Self {
        RecvError::Io(e)
    }
}

impl RecvError {
    /// Whether this failure is a socket read timeout (answer 408).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            RecvError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

/// Reads one `\n`-terminated line without letting the peer exceed
/// `budget` bytes. A line that hits the budget before its newline is a
/// header-cap violation, not an I/O error — that distinction is what
/// turns a slowloris-style drip feed into a clean 431/408 instead of
/// unbounded buffering.
fn read_line_capped(
    reader: &mut BufReader<&mut TcpStream>,
    budget: usize,
) -> Result<String, RecvError> {
    let mut raw = Vec::new();
    let n = reader
        .by_ref()
        .take(budget as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Err(RecvError::Io(std::io::ErrorKind::UnexpectedEof.into()));
    }
    if raw.last() != Some(&b'\n') {
        if raw.len() > budget {
            return Err(RecvError::HeadersTooLarge);
        }
        return Err(RecvError::Io(std::io::ErrorKind::UnexpectedEof.into()));
    }
    String::from_utf8(raw).map_err(|_| RecvError::Malformed("header line is not UTF-8"))
}

/// Reads one request under the given [`Limits`].
///
/// # Errors
/// [`RecvError`] describing which HTTP status to answer with.
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, RecvError> {
    let mut reader = BufReader::new(stream);
    let mut header_budget = limits.max_header_bytes;

    let line = read_line_capped(&mut reader, header_budget)?;
    header_budget = header_budget.saturating_sub(line.len());
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(RecvError::Malformed("empty request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(RecvError::Malformed("request line has no target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(RecvError::Malformed("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed("unsupported HTTP version"));
    }

    let mut content_length: Option<usize> = None;
    let mut fault: Option<String> = None;
    let mut header_count = 0usize;
    loop {
        let header = read_line_capped(&mut reader, header_budget)?;
        header_budget = header_budget.saturating_sub(header.len());
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > limits.max_headers {
            return Err(RecvError::HeadersTooLarge);
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(RecvError::Malformed("header without a colon"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .trim()
                .parse()
                .map_err(|_| RecvError::Malformed("unparsable Content-Length"))?;
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("x-fault") {
            fault = Some(value.trim().to_string());
        }
    }

    let body = match content_length {
        Some(n) if n > limits.max_body => return Err(RecvError::TooLarge),
        Some(n) => {
            let mut body = vec![0u8; n];
            reader.read_exact(&mut body)?;
            body
        }
        None if method == "POST" || method == "PUT" => return Err(RecvError::LengthRequired),
        None => Vec::new(),
    };

    Ok(Request {
        method,
        path,
        body,
        fault,
    })
}

/// The reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete (non-streaming) response and flushes.
///
/// # Errors
/// I/O errors from the socket.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`
/// on overload replies).
///
/// # Errors
/// I/O errors from the socket.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// A `Transfer-Encoding: chunked` response writer: each [`Self::chunk`]
/// is flushed to the wire immediately, which is what lets `/stream`
/// deliver window blocks as they are solved.
pub struct ChunkedWriter<'s> {
    stream: &'s mut TcpStream,
}

impl<'s> ChunkedWriter<'s> {
    /// Writes the status line + headers and returns the chunk writer.
    ///
    /// # Errors
    /// I/O errors from the socket.
    pub fn start(
        stream: &'s mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<Self> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
            content_type,
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one chunk and flushes it.
    ///
    /// # Errors
    /// I/O errors from the socket.
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    ///
    /// # Errors
    /// I/O errors from the socket.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
