//! Deterministic fault injection for chaos-testing the daemon.
//!
//! A request opts into a fault by sending an `X-Fault` header; the
//! server *honors* the header only when it was spawned with
//! `ServerConfig::fault_injection = true`, so release deployments pay
//! nothing and cannot be tripped by hostile clients. Keeping the
//! trigger on the request (rather than a random server-side
//! probability) makes chaos runs deterministic: the test knows exactly
//! which requests fault, so it can assert *exact* injected-fault
//! counts in `/metrics` and bit-identical results on every healthy
//! request interleaved with the faults.
//!
//! Recognized header values:
//!
//! | `X-Fault`         | Effect                                                  |
//! |-------------------|---------------------------------------------------------|
//! | `build-panic`     | panics inside the plan-build closure (cache miss only)  |
//! | `slow-solve=MS`   | sleeps `MS` ms before solving (trips compute deadlines) |
//! | `drop-stream=N`   | hard-closes the socket after `N` streamed chunks        |

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use opm_core::json::Json;

/// One parsed `X-Fault` directive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Panic inside the plan-build closure. Only fires on a cache
    /// miss — a plan already interned serves from cache without ever
    /// entering the build path — so chaos tests vary the netlist (or
    /// solve options) to guarantee a fresh key.
    BuildPanic,
    /// Sleep this long before solving, simulating a solve that blows
    /// its compute budget.
    SlowSolve(Duration),
    /// Hard-close the client socket after this many streamed chunks,
    /// simulating a mid-stream network partition.
    DropStream {
        /// Chunks delivered before the socket is shut down.
        after_chunks: usize,
    },
}

impl FaultSpec {
    /// Parses an `X-Fault` header value; unknown directives are
    /// ignored (`None`) rather than rejected, so typos in a chaos
    /// driver degrade to healthy traffic instead of 400s.
    pub fn parse(header: &str) -> Option<FaultSpec> {
        let h = header.trim();
        if h == "build-panic" {
            return Some(FaultSpec::BuildPanic);
        }
        if let Some(ms) = h.strip_prefix("slow-solve=") {
            return ms
                .parse()
                .ok()
                .map(|ms| FaultSpec::SlowSolve(Duration::from_millis(ms)));
        }
        if let Some(n) = h.strip_prefix("drop-stream=") {
            return n
                .parse()
                .ok()
                .map(|n| FaultSpec::DropStream { after_chunks: n });
        }
        None
    }
}

/// Counters for faults actually fired, reported under
/// `robustness.faults` in `/metrics` so a chaos run can assert the
/// exact number it injected.
#[derive(Debug, Default)]
pub struct FaultStats {
    /// Injected plan-build panics that actually fired.
    pub build_panics: AtomicU64,
    /// Injected pre-solve sleeps that actually fired.
    pub slow_solves: AtomicU64,
    /// Streams hard-closed mid-flight by injection.
    pub dropped_streams: AtomicU64,
}

impl FaultStats {
    /// JSON object for the `/metrics` report.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "build_panics".into(),
                Json::Int(self.build_panics.load(Ordering::Relaxed) as i64),
            ),
            (
                "slow_solves".into(),
                Json::Int(self.slow_solves.load(Ordering::Relaxed) as i64),
            ),
            (
                "dropped_streams".into(),
                Json::Int(self.dropped_streams.load(Ordering::Relaxed) as i64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_directives() {
        assert_eq!(FaultSpec::parse("build-panic"), Some(FaultSpec::BuildPanic));
        assert_eq!(
            FaultSpec::parse(" slow-solve=250 "),
            Some(FaultSpec::SlowSolve(Duration::from_millis(250)))
        );
        assert_eq!(
            FaultSpec::parse("drop-stream=3"),
            Some(FaultSpec::DropStream { after_chunks: 3 })
        );
    }

    #[test]
    fn unknown_directives_degrade_to_none() {
        assert_eq!(FaultSpec::parse("drop-stream"), None);
        assert_eq!(FaultSpec::parse("slow-solve=abc"), None);
        assert_eq!(FaultSpec::parse("explode"), None);
        assert_eq!(FaultSpec::parse(""), None);
    }
}
