//! Chaos harness: drives the fault-injection layer (`X-Fault` headers,
//! honored because the server is spawned with `fault_injection: true`)
//! *interleaved with healthy traffic*, and asserts the two invariants
//! that make the daemon fault-tolerant rather than merely lucky:
//!
//! 1. **Zero healthy-request failures.** Every healthy request — racing
//!    against injected build panics, deadline-busting solves, and
//!    mid-stream socket drops — answers 200 with results bit-identical
//!    to an in-process reference solve.
//! 2. **Exact accounting.** `/metrics` reports *exactly* the injected
//!    fault counts (nothing detected that wasn't injected, nothing
//!    injected that went undetected), and `shutdown()` drains with no
//!    thread leak.

use std::time::Duration;

use opm_core::json::Json;
use opm_core::{Simulation, SolveOptions};
use opm_serve::client::{Client, ClientConfig};
use opm_serve::{client, spawn, ServerConfig};

const NETLIST: &str = "* RC low-pass\nV1 in 0 DC 5\nR1 in out 1k\nC1 out 0 1u\n.end";

/// Injected faults per kind; `/metrics` must report these exactly.
const PANICS: usize = 3;
const SLOW: usize = 3;
const DROPS: usize = 3;

fn healthy_body() -> String {
    format!(
        r#"{{"netlist": {NETLIST:?}, "probes": ["out"], "horizon": 5e-3,
            "options": {{"resolution": 128}}, "windows": 4,
            "scenarios": [[{{"kind": "step", "level": 5.0}}]]}}"#
    )
}

/// A body with a horizon no other request uses, so its plan key is
/// fresh and the injected build panic actually reaches the build
/// closure (a cached plan would serve from the cache without building).
fn unique_key_body(i: usize) -> String {
    let horizon = 1e-3 * (i + 11) as f64;
    format!(
        r#"{{"netlist": {NETLIST:?}, "probes": ["out"], "horizon": {horizon},
            "options": {{"resolution": 128}}, "windows": 4,
            "scenarios": [[{{"kind": "step", "level": 5.0}}]]}}"#
    )
}

fn outputs_of(result: &Json) -> Vec<f64> {
    result.get("outputs").unwrap().as_array().unwrap()[0]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect()
}

fn one_shot(addr: std::net::SocketAddr) -> Client {
    Client::with_config(
        addr,
        ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        },
    )
}

#[test]
fn chaos_faults_never_touch_healthy_traffic() {
    let server = spawn(ServerConfig {
        fault_injection: true,
        compute_deadline: Some(Duration::from_secs(2)),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let body = healthy_body();

    // In-process reference for the bit-identity check.
    let sim = Simulation::from_netlist(NETLIST, &["out"])
        .unwrap()
        .horizon(5e-3);
    let plan = sim.plan(&SolveOptions::new().resolution(128)).unwrap();
    let want: Vec<f64> = plan
        .solve_windowed(
            &opm_waveform::InputSet::new(vec![opm_waveform::Waveform::step(0.0, 5.0)]),
            4,
        )
        .unwrap()
        .output_row(0)
        .to_vec();

    // Healthy traffic retries transport noise and 503s; fault traffic
    // is one-shot so every injected fault fires exactly once.
    let healthy = Client::with_config(
        addr,
        ClientConfig {
            retries: 3,
            backoff_base: Duration::from_millis(20),
            ..ClientConfig::default()
        },
    );

    std::thread::scope(|s| {
        let mut healthy_handles = Vec::new();
        for _ in 0..4 {
            let healthy = &healthy;
            let body = &body;
            healthy_handles.push(s.spawn(move || {
                (0..6)
                    .map(|_| healthy.post("/solve", body).unwrap())
                    .collect::<Vec<_>>()
            }));
        }

        let mut panic_handles = Vec::new();
        for i in 0..PANICS {
            panic_handles.push(s.spawn(move || {
                one_shot(addr)
                    .request(
                        "POST",
                        "/solve",
                        Some(&unique_key_body(i)),
                        &[("X-Fault", "build-panic")],
                    )
                    .unwrap()
            }));
        }

        let mut slow_handles = Vec::new();
        for _ in 0..SLOW {
            let body = &body;
            slow_handles.push(s.spawn(move || {
                one_shot(addr)
                    .request(
                        "POST",
                        "/solve",
                        Some(body),
                        &[("X-Fault", "slow-solve=3000")],
                    )
                    .unwrap()
            }));
        }

        let mut drop_handles = Vec::new();
        for _ in 0..DROPS {
            let body = &body;
            drop_handles.push(s.spawn(move || {
                one_shot(addr).request(
                    "POST",
                    "/stream",
                    Some(body),
                    &[("X-Fault", "drop-stream=1")],
                )
            }));
        }

        // Invariant 1: every healthy request succeeded, bit-identically.
        for h in healthy_handles {
            for r in h.join().unwrap() {
                assert_eq!(r.status, 200, "healthy request failed: {}", r.body);
                let doc = r.json().unwrap();
                let got = outputs_of(&doc.get("results").unwrap().as_array().unwrap()[0]);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "healthy result drifted under chaos"
                    );
                }
            }
        }

        // Injected build panics answer 500 (isolated, not fatal).
        for h in panic_handles {
            let r = h.join().unwrap();
            assert_eq!(r.status, 500, "{}", r.body);
        }

        // Deadline-busting solves answer 503 naming the deadline.
        for h in slow_handles {
            let r = h.join().unwrap();
            assert_eq!(r.status, 503, "{}", r.body);
            assert!(r.body.contains("deadline"), "{}", r.body);
            assert_eq!(r.header("retry-after"), Some("1"));
        }

        // Dropped streams truncate: the client sees broken framing,
        // never a clean end-of-stream.
        for h in drop_handles {
            let r = h.join().unwrap();
            assert!(r.is_err(), "dropped stream decoded cleanly: {r:?}");
        }
    });

    // Invariant 2: exact accounting in /metrics.
    let doc = client::get(addr, "/metrics").unwrap().json().unwrap();
    let robustness = doc.get("robustness").unwrap();
    let faults = robustness.get("faults").unwrap();
    assert_eq!(faults.get("build_panics").unwrap().as_usize(), Some(PANICS));
    assert_eq!(faults.get("slow_solves").unwrap().as_usize(), Some(SLOW));
    assert_eq!(
        faults.get("dropped_streams").unwrap().as_usize(),
        Some(DROPS)
    );
    assert_eq!(robustness.get("panics").unwrap().as_usize(), Some(PANICS));
    assert_eq!(robustness.get("timeouts").unwrap().as_usize(), Some(SLOW));
    assert_eq!(
        robustness.get("rejected_overload").unwrap().as_usize(),
        Some(0)
    );
    // The gauge counts the /metrics request reporting it.
    assert_eq!(robustness.get("in_flight").unwrap().as_usize(), Some(1));

    // Healthy traffic still cost one factorization total: 1 miss for
    // the shared healthy key (panicked builds cache nothing).
    let solve = doc.get("requests").unwrap().get("solve").unwrap();
    assert_eq!(solve.get("count").unwrap().as_usize(), Some(24));

    // No thread leak: the drain completes with nothing abandoned.
    let drain = server.shutdown();
    assert!(drain.drained, "shutdown failed to drain in-flight requests");
    assert_eq!(drain.abandoned, 0, "worker threads leaked past drain");
}
