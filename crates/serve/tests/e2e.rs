//! End-to-end daemon tests over real sockets: round-trips against a
//! pinned netlist, cache-hit semantics visible in `/metrics`, streaming
//! ≡ whole-solve identity, and the HTTP error paths.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use opm_core::json::Json;
use opm_core::{Simulation, SolveOptions};
use opm_serve::client::{Client, ClientConfig};
use opm_serve::{client, spawn, ServerConfig};

/// The pinned circuit every test speaks: the facade's 1 kΩ / 1 µF
/// low-pass.
const NETLIST: &str = "* RC low-pass\nV1 in 0 DC 5\nR1 in out 1k\nC1 out 0 1u\n.end";

fn solve_body() -> String {
    format!(
        r#"{{"netlist": {netlist:?}, "probes": ["out"], "horizon": 5e-3,
            "options": {{"resolution": 128}},
            "scenarios": [[{{"kind": "step", "level": 5.0}}]]}}"#,
        netlist = NETLIST
    )
}

fn outputs_of(result: &Json) -> Vec<f64> {
    result.get("outputs").unwrap().as_array().unwrap()[0]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect()
}

/// `/solve` round-trips: the wire result equals an in-process solve
/// bit-for-bit ({:e} floats are shortest-round-trip), and the second
/// identical request is a hit.
#[test]
fn solve_round_trip_and_cache_hit() {
    let server = spawn(ServerConfig::default()).unwrap();
    let body = solve_body();

    let cold = client::post(server.addr(), "/solve", &body).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    let cold_doc = cold.json().unwrap();
    assert_eq!(cold_doc.get("cache").unwrap().as_str(), Some("miss"));

    let warm = client::post(server.addr(), "/solve", &body).unwrap();
    let warm_doc = warm.json().unwrap();
    assert_eq!(warm_doc.get("cache").unwrap().as_str(), Some("hit"));

    // Reference solve in-process.
    let sim = Simulation::from_netlist(NETLIST, &["out"])
        .unwrap()
        .horizon(5e-3);
    let plan = sim.plan(&SolveOptions::new().resolution(128)).unwrap();
    let want = plan
        .solve(&opm_waveform::InputSet::new(vec![
            opm_waveform::Waveform::step(0.0, 5.0),
        ]))
        .unwrap();

    for doc in [&cold_doc, &warm_doc] {
        let got = outputs_of(&doc.get("results").unwrap().as_array().unwrap()[0]);
        assert_eq!(got.len(), 128);
        for (g, w) in got.iter().zip(want.output_row(0)) {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "wire result must be bit-identical"
            );
        }
    }
    server.shutdown();
}

/// N identical requests cost one factorization total, visible in
/// `/metrics` — even when the N requests race from 4 threads.
#[test]
fn n_requests_one_factorization() {
    let server = spawn(ServerConfig::default()).unwrap();
    let body = format!(
        r#"{{"netlist": {NETLIST:?}, "probes": ["out"], "horizon": 5e-3,
            "options": {{"resolution": 128}}, "windows": 4,
            "scenarios": [[{{"kind": "step", "level": 5.0}}]]}}"#
    );

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..2 {
                    let r = client::post(server.addr(), "/solve", &body).unwrap();
                    assert_eq!(r.status, 200, "{}", r.body);
                }
            });
        }
    });

    let metrics = client::get(server.addr(), "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = metrics.json().unwrap();
    let cache = doc.get("plan_cache").unwrap();
    assert_eq!(cache.get("misses").unwrap().as_usize(), Some(1));
    assert_eq!(cache.get("hits").unwrap().as_usize(), Some(7));

    // 8 windowed solve requests, 1 symbolic + 1 numeric factorization.
    let plans = doc.get("plans").unwrap().as_array().unwrap();
    assert_eq!(plans.len(), 1);
    let profile = plans[0].get("profile").unwrap();
    assert_eq!(profile.get("num_symbolic").unwrap().as_usize(), Some(1));
    assert_eq!(profile.get("num_numeric").unwrap().as_usize(), Some(1));

    let solve = doc.get("requests").unwrap().get("solve").unwrap();
    assert_eq!(solve.get("count").unwrap().as_usize(), Some(8));
    server.shutdown();
}

/// `/sweep` solves one scenario per drive level against one plan.
#[test]
fn sweep_round_trip() {
    let server = spawn(ServerConfig::default()).unwrap();
    let body = format!(
        r#"{{"netlist": {NETLIST:?}, "probes": ["out"], "horizon": 5e-3,
            "options": {{"resolution": 128}}, "levels": [1.0, 2.0, 4.0]}}"#
    );
    let r = client::post(server.addr(), "/sweep", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = r.json().unwrap();
    let results = doc.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    // DC drives settle monotonically with the level.
    let finals: Vec<f64> = results
        .iter()
        .map(|r| *outputs_of(r).last().unwrap())
        .collect();
    assert!(finals[0] < finals[1] && finals[1] < finals[2]);
    server.shutdown();
}

/// Streaming NDJSON: concatenating the window blocks reproduces the
/// whole windowed solve bit-for-bit, and the final line carries the
/// plan profile.
#[test]
fn streaming_concat_equals_whole_solve() {
    let server = spawn(ServerConfig::default()).unwrap();
    let windows = 4;
    let stream_body = format!(
        r#"{{"netlist": {NETLIST:?}, "probes": ["out"], "horizon": 5e-3,
            "options": {{"resolution": 128}}, "windows": {windows},
            "scenarios": [[{{"kind": "step", "level": 5.0}}]]}}"#
    );
    let r = client::post(server.addr(), "/stream", &stream_body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    let lines: Vec<Json> = r.body.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), windows + 1, "one line per window + done");

    let mut concat: Vec<f64> = Vec::new();
    for (w, line) in lines[..windows].iter().enumerate() {
        assert_eq!(line.get("window").unwrap().as_usize(), Some(w));
        concat.extend(outputs_of(line.get("result").unwrap()));
    }
    let done = &lines[windows];
    assert_eq!(done.get("done").unwrap().as_bool(), Some(true));
    assert!(done.get("final_state").is_some());

    // The same request through /solve (windowed batch path).
    let whole = client::post(server.addr(), "/solve", &stream_body).unwrap();
    let whole_doc = whole.json().unwrap();
    let whole_out = outputs_of(&whole_doc.get("results").unwrap().as_array().unwrap()[0]);
    assert_eq!(concat.len(), whole_out.len());
    for (c, w) in concat.iter().zip(&whole_out) {
        assert_eq!(c.to_bits(), w.to_bits(), "stream concat ≡ whole solve");
    }
    server.shutdown();
}

/// The HTTP error paths answer with proper status codes and a JSON
/// `error` body.
#[test]
fn error_paths() {
    let server = spawn(ServerConfig {
        max_body: 512,
        ..ServerConfig::default()
    })
    .unwrap();

    // Malformed JSON → 400.
    let r = client::post(server.addr(), "/solve", "{not json").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.json().unwrap().get("error").is_some());

    // Valid JSON, bad request → 400 naming the field.
    let r = client::post(server.addr(), "/solve", r#"{"horizon": 1.0}"#).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("netlist"), "{}", r.body);

    // Unknown endpoint → 404; wrong method → 405.
    let r = client::post(server.addr(), "/nope", "{}").unwrap();
    assert_eq!(r.status, 404);
    let r = client::get(server.addr(), "/solve").unwrap();
    assert_eq!(r.status, 405);

    // Oversized body → 413.
    let big = format!(r#"{{"pad": "{}"}}"#, "x".repeat(1024));
    let r = client::post(server.addr(), "/solve", &big).unwrap();
    assert_eq!(r.status, 413);

    // POST without Content-Length → 411 (raw socket; the client helper
    // always sends one).
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"POST /solve HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 411"), "{reply}");

    server.shutdown();
}

/// A slowloris client — drip-feeds a partial request line and stalls —
/// hits the socket read timeout and gets a 408, counted in `/metrics`.
#[test]
fn slowloris_times_out_with_408() {
    let server = spawn(ServerConfig {
        read_timeout: Some(Duration::from_millis(200)),
        ..ServerConfig::default()
    })
    .unwrap();

    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"POST /sol").unwrap(); // …and never finish the line
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");

    let doc = client::get(server.addr(), "/metrics")
        .unwrap()
        .json()
        .unwrap();
    let robustness = doc.get("robustness").unwrap();
    assert_eq!(robustness.get("timeouts").unwrap().as_usize(), Some(1));
    server.shutdown();
}

/// Header floods — too many header lines, or one line that blows the
/// byte budget — are rejected with 431 instead of buffered without
/// bound.
#[test]
fn header_floods_are_rejected_with_431() {
    let server = spawn(ServerConfig::default()).unwrap();

    // More header lines than the cap (default 64).
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let mut req = String::from("GET /metrics HTTP/1.1\r\nHost: x\r\n");
    for i in 0..80 {
        req.push_str(&format!("X-Pad-{i}: x\r\n"));
    }
    req.push_str("\r\n");
    raw.write_all(req.as_bytes()).unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");

    // One header line larger than the total byte budget (default
    // 16 KiB); the server stops reading at the budget, not at the
    // attacker's pleasure.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let giant = format!(
        "GET /metrics HTTP/1.1\r\nHost: x\r\nX-Big: {}\r\n\r\n",
        "x".repeat(17 << 10)
    );
    let _ = raw.write_all(giant.as_bytes()); // server may close mid-write
    let mut reply = String::new();
    raw.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");

    server.shutdown();
}

/// A client that vanishes mid-`/stream` must not take the daemon with
/// it: the next request succeeds and no panic is recorded.
#[test]
fn midstream_disconnect_leaves_server_healthy() {
    let server = spawn(ServerConfig::default()).unwrap();
    let body = format!(
        r#"{{"netlist": {NETLIST:?}, "probes": ["out"], "horizon": 5e-3,
            "options": {{"resolution": 128}}, "windows": 4,
            "scenarios": [[{{"kind": "step", "level": 5.0}}]]}}"#
    );

    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let head = format!(
        "POST /stream HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    raw.write_all(head.as_bytes()).unwrap();
    raw.write_all(body.as_bytes()).unwrap();
    // Read just the start of the status line, then slam the door while
    // the server is still streaming chunks.
    let mut first = [0u8; 16];
    raw.read_exact(&mut first).unwrap();
    assert_eq!(&first[..8], b"HTTP/1.1");
    drop(raw);

    // The daemon keeps serving, and the disconnect was not a panic.
    let r = client::post(server.addr(), "/solve", &body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = client::get(server.addr(), "/metrics")
        .unwrap()
        .json()
        .unwrap();
    let robustness = doc.get("robustness").unwrap();
    assert_eq!(robustness.get("panics").unwrap().as_usize(), Some(0));
    let drain = server.shutdown();
    assert!(drain.drained);
}

/// A burst past the connection cap is answered 503 + `Retry-After`
/// while the admitted requests run to successful completion.
#[test]
fn burst_past_connection_cap_gets_503() {
    let server = spawn(ServerConfig {
        max_connections: 2,
        fault_injection: true,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let body = solve_body();

    std::thread::scope(|s| {
        // Two slow requests occupy both slots…
        let occupants: Vec<_> = (0..2)
            .map(|_| {
                let body = &body;
                s.spawn(move || {
                    let one_shot = Client::with_config(
                        addr,
                        ClientConfig {
                            retries: 0,
                            ..ClientConfig::default()
                        },
                    );
                    one_shot
                        .request(
                            "POST",
                            "/solve",
                            Some(body),
                            &[("X-Fault", "slow-solve=1500")],
                        )
                        .unwrap()
                })
            })
            .collect();

        // …wait until both are admitted, then burst past the cap.
        let started = std::time::Instant::now();
        while server.in_flight() < 2 {
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "slow occupants were never admitted"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        for _ in 0..3 {
            let r = client::post(addr, "/solve", &body).unwrap();
            assert_eq!(r.status, 503, "{}", r.body);
            assert_eq!(r.header("retry-after"), Some("1"));
        }

        // The admitted requests were not harmed by the burst.
        for h in occupants {
            let r = h.join().unwrap();
            assert_eq!(r.status, 200, "{}", r.body);
        }
    });

    let doc = client::get(addr, "/metrics").unwrap().json().unwrap();
    let robustness = doc.get("robustness").unwrap();
    assert_eq!(
        robustness.get("rejected_overload").unwrap().as_usize(),
        Some(3)
    );
    let drain = server.shutdown();
    assert!(drain.drained && drain.abandoned == 0);
}

/// A raw-triplet model request (no netlist) solves and hits like any
/// other.
#[test]
fn raw_model_entry() {
    let server = spawn(ServerConfig::default()).unwrap();
    // ẋ = −x + u, y = x.
    let body = r#"{
        "model": {"n": 1, "inputs": 1, "outputs": 1,
                  "e": [[0, 0, 1.0]], "a": [[0, 0, -1.0]],
                  "b": [[0, 0, 1.0]], "c": [[0, 0, 1.0]]},
        "horizon": 1.0, "options": {"resolution": 256},
        "scenarios": [[{"kind": "dc", "value": 1.0}]]
    }"#;
    let r = client::post(server.addr(), "/solve", body).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = r.json().unwrap();
    let out = outputs_of(&doc.get("results").unwrap().as_array().unwrap()[0]);
    // Step response of a unit lag: 1 − e^{−t} at the last midpoint.
    let t = 1.0 - 0.5 / out.len() as f64;
    let want = 1.0 - (-t).exp();
    assert!((out.last().unwrap() - want).abs() < 1e-2);

    // A model request without scenarios has no fallback stimulus → 400.
    let r = client::post(
        server.addr(),
        "/solve",
        r#"{"model": {"n": 1, "inputs": 1, "e": [[0,0,1.0]], "a": [[0,0,-1.0]],
             "b": [[0,0,1.0]]}, "horizon": 1.0, "options": {"resolution": 64}}"#,
    )
    .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("scenarios"), "{}", r.body);
    server.shutdown();
}
