//! Property-based tests for operational-matrix bases.
//!
//! Randomized cases are drawn from a fixed-seed [`StdRng`] so every CI
//! run exercises the identical sample set — failures reproduce exactly.

use opm_basis::adaptive::AdaptiveBpf;
use opm_basis::bpf::BpfBasis;
use opm_basis::series::{series_mul, tustin_frac_coeffs};
use opm_basis::walsh::fwht;
use opm_basis::{Basis, WalshBasis};
use opm_linalg::DMatrix;
use opm_rng::StdRng;

const CASES: usize = 32;

/// D·H = I for every m and span.
#[test]
fn bpf_diff_inverts_integration() {
    let mut rng = StdRng::seed_from_u64(0xBA5_0001);
    for _ in 0..CASES {
        let m = rng.random_range(1usize..24);
        let t_end = rng.random_range(0.1..10.0);
        let b = BpfBasis::new(m, t_end);
        let prod = b.differentiation_matrix().mul_mat(&b.integration_matrix());
        assert!(
            prod.sub(&DMatrix::identity(m)).norm_max() < 1e-8,
            "m={m}, t_end={t_end}"
        );
    }
}

/// The fractional Tustin series satisfies the semigroup property.
#[test]
fn tustin_semigroup() {
    let mut rng = StdRng::seed_from_u64(0xBA5_0002);
    for _ in 0..CASES {
        let a = rng.random_range(0.05..1.95);
        let bb = rng.random_range(0.05..1.95);
        let m = 16;
        let lhs = series_mul(&tustin_frac_coeffs(a, m), &tustin_frac_coeffs(bb, m));
        let rhs = tustin_frac_coeffs(a + bb, m);
        for (x, y) in lhs.iter().zip(&rhs) {
            assert!((x - y).abs() < 1e-9 * y.abs().max(1.0), "a={a}, b={bb}");
        }
    }
}

/// D^α·D^{−α} = I as matrices (fractional differentiation inverts
/// fractional integration).
#[test]
fn fractional_power_inverse() {
    let mut rng = StdRng::seed_from_u64(0xBA5_0003);
    for _ in 0..CASES {
        let alpha = rng.random_range(0.1..1.9);
        let m = rng.random_range(1usize..12);
        let b = BpfBasis::new(m, 1.0);
        let d = b.frac_diff_matrix(alpha);
        let di = b.frac_diff_matrix(-alpha);
        let prod = d.mul_upper_triangular(&di);
        assert!(
            prod.sub(&DMatrix::identity(m)).norm_max() < 1e-7,
            "alpha={alpha}, m={m}"
        );
    }
}

/// Adaptive D̃·H̃ = I for random positive steps.
#[test]
fn adaptive_diff_inverts_integration() {
    let mut rng = StdRng::seed_from_u64(0xBA5_0004);
    for _ in 0..CASES {
        let len = rng.random_range(1usize..12);
        let steps = rng.vec_in(0.01..2.0, len);
        let b = AdaptiveBpf::new(steps);
        let m = b.dim();
        let prod = b.differentiation_matrix().mul_mat(&b.integration_matrix());
        assert!(prod.sub(&DMatrix::identity(m)).norm_max() < 1e-7, "m={m}");
    }
}

/// FWHT is an involution up to the length factor.
#[test]
fn fwht_involution() {
    let mut rng = StdRng::seed_from_u64(0xBA5_0005);
    for _ in 0..CASES {
        let v = rng.vec_in(-10.0..10.0, 8);
        let mut w = v.clone();
        fwht(&mut w);
        fwht(&mut w);
        for (a, b) in w.iter().zip(&v) {
            assert!((a - 8.0 * b).abs() < 1e-10);
        }
    }
}

/// Walsh coefficient conversion is a bijection on the BPF span.
#[test]
fn walsh_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xBA5_0006);
    for _ in 0..CASES {
        let v = rng.vec_in(-5.0..5.0, 16);
        let b = WalshBasis::new(16, 1.0);
        let back = b.to_bpf_coeffs(&b.from_bpf_coeffs(&v));
        for (x, y) in back.iter().zip(&v) {
            assert!((x - y).abs() < 1e-10);
        }
    }
}

/// Projecting a constant returns that constant in every basis.
#[test]
fn constants_project_exactly() {
    let mut rng = StdRng::seed_from_u64(0xBA5_0007);
    for _ in 0..CASES {
        let c = rng.random_range(-10.0..10.0);
        let m = 1usize << rng.random_range(1usize..5);
        let bases: Vec<Box<dyn Basis>> = vec![
            Box::new(BpfBasis::new(m, 1.0)),
            Box::new(WalshBasis::new(m, 1.0)),
        ];
        for basis in &bases {
            let coeffs = basis.project(&|_| c);
            for i in 0..40 {
                let t = (i as f64 + 0.5) / 40.0;
                assert!(
                    (basis.reconstruct(&coeffs, t) - c).abs() < 1e-8,
                    "c={c}, m={m}, t={t}"
                );
            }
        }
    }
}

/// Integration through Hᵀ matches analytic integrals of ramps.
#[test]
fn integration_matrix_integrates_ramps() {
    let mut rng = StdRng::seed_from_u64(0xBA5_0008);
    for _ in 0..CASES {
        let slope = rng.random_range(-3.0..3.0);
        let m = 64;
        let b = BpfBasis::new(m, 1.0);
        let cf: Vec<f64> = b.project(&|t| slope * t);
        let h = b.integration_matrix();
        // coeffs(∫f) = Hᵀ·coeffs(f)
        for j in (0..m).step_by(13) {
            let mut s = 0.0;
            for i in 0..m {
                s += h.get(i, j) * cf[i];
            }
            let t_mid = (j as f64 + 0.5) / m as f64;
            let want = 0.5 * slope * t_mid * t_mid;
            assert!(
                (s - want).abs() < 3.0 * slope.abs().max(1.0) / (m as f64 * m as f64) + 1e-9,
                "slope={slope}, j={j}"
            );
        }
    }
}
