//! Property-based tests for operational-matrix bases.

use opm_basis::adaptive::AdaptiveBpf;
use opm_basis::bpf::BpfBasis;
use opm_basis::series::{series_mul, tustin_frac_coeffs};
use opm_basis::walsh::fwht;
use opm_basis::{Basis, WalshBasis};
use opm_linalg::DMatrix;
use proptest::prelude::*;

proptest! {
    /// D·H = I for every m and span.
    #[test]
    fn bpf_diff_inverts_integration(m in 1usize..24, t_end in 0.1..10.0f64) {
        let b = BpfBasis::new(m, t_end);
        let prod = b.differentiation_matrix().mul_mat(&b.integration_matrix());
        prop_assert!(prod.sub(&DMatrix::identity(m)).norm_max() < 1e-8);
    }

    /// The fractional Tustin series satisfies the semigroup property.
    #[test]
    fn tustin_semigroup(a in 0.05..1.95f64, bb in 0.05..1.95f64) {
        let m = 16;
        let lhs = series_mul(&tustin_frac_coeffs(a, m), &tustin_frac_coeffs(bb, m));
        let rhs = tustin_frac_coeffs(a + bb, m);
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!((x - y).abs() < 1e-9 * y.abs().max(1.0));
        }
    }

    /// D^α·D^{−α} = I as matrices (fractional differentiation inverts
    /// fractional integration).
    #[test]
    fn fractional_power_inverse(alpha in 0.1..1.9f64, m in 1usize..12) {
        let b = BpfBasis::new(m, 1.0);
        let d = b.frac_diff_matrix(alpha);
        let di = b.frac_diff_matrix(-alpha);
        let prod = d.mul_upper_triangular(&di);
        prop_assert!(prod.sub(&DMatrix::identity(m)).norm_max() < 1e-7);
    }

    /// Adaptive D̃·H̃ = I for random positive steps.
    #[test]
    fn adaptive_diff_inverts_integration(steps in prop::collection::vec(0.01..2.0f64, 1..12)) {
        let b = AdaptiveBpf::new(steps);
        let m = b.dim();
        let prod = b.differentiation_matrix().mul_mat(&b.integration_matrix());
        prop_assert!(prod.sub(&DMatrix::identity(m)).norm_max() < 1e-7);
    }

    /// FWHT is an involution up to the length factor.
    #[test]
    fn fwht_involution(v in prop::collection::vec(-10.0..10.0f64, 8)) {
        let mut w = v.clone();
        fwht(&mut w);
        fwht(&mut w);
        for (a, b) in w.iter().zip(&v) {
            prop_assert!((a - 8.0 * b).abs() < 1e-10);
        }
    }

    /// Walsh coefficient conversion is a bijection on the BPF span.
    #[test]
    fn walsh_roundtrip(v in prop::collection::vec(-5.0..5.0f64, 16)) {
        let b = WalshBasis::new(16, 1.0);
        let back = b.to_bpf_coeffs(&b.from_bpf_coeffs(&v));
        for (x, y) in back.iter().zip(&v) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    /// Projecting a constant returns that constant in every basis.
    #[test]
    fn constants_project_exactly(c in -10.0..10.0f64, m_pow in 1u32..5) {
        let m = 1usize << m_pow;
        let bases: Vec<Box<dyn Basis>> = vec![
            Box::new(BpfBasis::new(m, 1.0)),
            Box::new(WalshBasis::new(m, 1.0)),
        ];
        for basis in &bases {
            let coeffs = basis.project(&|_| c);
            for i in 0..40 {
                let t = (i as f64 + 0.5) / 40.0;
                prop_assert!((basis.reconstruct(&coeffs, t) - c).abs() < 1e-8);
            }
        }
    }

    /// Integration through Hᵀ matches analytic integrals of ramps.
    #[test]
    fn integration_matrix_integrates_ramps(slope in -3.0..3.0f64) {
        let m = 64;
        let b = BpfBasis::new(m, 1.0);
        let cf: Vec<f64> = b.project(&|t| slope * t);
        let h = b.integration_matrix();
        // coeffs(∫f) = Hᵀ·coeffs(f)
        for j in (0..m).step_by(13) {
            let mut s = 0.0;
            for i in 0..m {
                s += h.get(i, j) * cf[i];
            }
            let t_mid = (j as f64 + 0.5) / m as f64;
            let want = 0.5 * slope * t_mid * t_mid;
            prop_assert!((s - want).abs() < 3.0 * slope.abs().max(1.0) / (m as f64 * m as f64) + 1e-9);
        }
    }
}
