//! Shifted Legendre polynomial basis with operational matrices.
//!
//! Polynomial bases trade the locality of BPFs for spectral accuracy on
//! smooth responses. On `[0, T)` we use `P̃_n(t) = P_n(2t/T − 1)`; the
//! classical integration operational matrix follows from
//!
//! ```text
//! ∫₀ᵗ P̃_0 = (T/2)(P̃_1 + P̃_0)
//! ∫₀ᵗ P̃_n = (T/2)·(P̃_{n+1} − P̃_{n−1})/(2n+1),   n ≥ 1
//! ```
//!
//! and differentiation from `P'_n = Σ_{k=n−1, n−3, …} (2k+1)·P_k`.

use crate::quadrature::gauss_legendre;
use crate::traits::Basis;
use opm_linalg::DMatrix;

/// The shifted Legendre basis `{P̃_0, …, P̃_{m−1}}` on `[0, T)`.
#[derive(Clone, Debug)]
pub struct LegendreBasis {
    m: usize,
    t_end: f64,
}

impl LegendreBasis {
    /// Creates the basis.
    ///
    /// # Panics
    /// Panics when `m == 0` or `t_end <= 0`.
    pub fn new(m: usize, t_end: f64) -> Self {
        assert!(m > 0, "need at least one polynomial");
        assert!(t_end > 0.0, "time span must be positive");
        LegendreBasis { m, t_end }
    }

    /// Evaluates the (unshifted) Legendre polynomial `P_n(x)`.
    fn legendre(n: usize, x: f64) -> f64 {
        match n {
            0 => 1.0,
            1 => x,
            _ => {
                let mut p0 = 1.0;
                let mut p1 = x;
                for k in 1..n {
                    let p2 = ((2 * k + 1) as f64 * x * p1 - k as f64 * p0) / (k + 1) as f64;
                    p0 = p1;
                    p1 = p2;
                }
                p1
            }
        }
    }

    /// The differentiation operational matrix `D_L` with
    /// `fʹ ≈ (D_Lᵀ c)ᵀ φ` for `f ≈ cᵀφ`.
    ///
    /// Exact on the polynomial span (degree ≤ m−1): differentiating drops
    /// the degree, so no truncation error occurs — unlike integration,
    /// which spills into degree `m`.
    pub fn differentiation_matrix(&self) -> DMatrix {
        // ∂ coefficient flow: P̃'_n = (2/T)·Σ_{k=n−1,n−3,...} (2k+1) P̃_k.
        // As an operational matrix acting like ∫φ = Hφ, we need D with
        // φ' = D φ: row n of D holds the expansion of P̃'_n.
        let mut d = DMatrix::zeros(self.m, self.m);
        for n in 1..self.m {
            let mut k = n as isize - 1;
            while k >= 0 {
                d.set(n, k as usize, (2.0 * k as f64 + 1.0) * 2.0 / self.t_end);
                k -= 2;
            }
        }
        d
    }
}

impl Basis for LegendreBasis {
    fn dim(&self) -> usize {
        self.m
    }

    fn t_end(&self) -> f64 {
        self.t_end
    }

    fn eval(&self, i: usize, t: f64) -> f64 {
        assert!(i < self.m, "basis index out of range");
        if !(0.0..self.t_end).contains(&t) {
            return 0.0;
        }
        Self::legendre(i, 2.0 * t / self.t_end - 1.0)
    }

    fn project(&self, f: &dyn Fn(f64) -> f64) -> Vec<f64> {
        // c_n = (2n+1)/T · ∫₀ᵀ f·P̃_n, by Gauss–Legendre with enough nodes
        // to integrate f·P̃_{m−1} accurately for smooth f.
        let nq = (2 * self.m + 8).min(200);
        let (x, w) = gauss_legendre(nq);
        let half = 0.5 * self.t_end;
        let mut coeffs = vec![0.0; self.m];
        for (xi, wi) in x.iter().zip(&w) {
            let t = half * (xi + 1.0);
            let ft = f(t);
            for (n, c) in coeffs.iter_mut().enumerate() {
                *c += wi * ft * Self::legendre(n, *xi);
            }
        }
        for (n, c) in coeffs.iter_mut().enumerate() {
            // ∫ over t = half·∫ over x; normalization (2n+1)/T.
            *c *= half * (2.0 * n as f64 + 1.0) / self.t_end;
        }
        coeffs
    }

    fn integration_matrix(&self) -> DMatrix {
        let mut p = DMatrix::zeros(self.m, self.m);
        let half = 0.5 * self.t_end;
        // Row 0: ∫P̃_0 = half·(P̃_0 + P̃_1)   (truncate P̃_1 when m = 1).
        p.set(0, 0, half);
        if self.m > 1 {
            p.set(0, 1, half);
        }
        for n in 1..self.m {
            let denom = 2.0 * n as f64 + 1.0;
            if n + 1 < self.m {
                p.set(n, n + 1, half / denom);
            }
            p.set(n, n - 1, -half / denom);
        }
        p
    }

    fn differentiation_matrix_opt(&self) -> Option<DMatrix> {
        Some(self.differentiation_matrix())
    }

    fn one_coeffs(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.m];
        c[0] = 1.0;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_linalg::DVector;

    #[test]
    fn orthogonality_via_projection() {
        // Projecting P̃_k returns e_k.
        let b = LegendreBasis::new(6, 2.0);
        for k in 0..6 {
            let c = b.project(&|t| b.eval(k, t.min(1.999_999)));
            for (i, &ci) in c.iter().enumerate() {
                let want = if i == k { 1.0 } else { 0.0 };
                assert!((ci - want).abs() < 1e-9, "k={k}, i={i}: {ci}");
            }
        }
    }

    #[test]
    fn projection_reconstructs_polynomials_exactly() {
        let b = LegendreBasis::new(5, 1.5);
        let f = |t: f64| 2.0 * t * t * t - t + 0.25;
        let c = b.project(&f);
        for i in 0..20 {
            let t = 1.5 * (i as f64 + 0.5) / 20.0;
            assert!((b.reconstruct(&c, t) - f(t)).abs() < 1e-10);
        }
    }

    #[test]
    fn integration_matrix_integrates_polynomials() {
        // coeffs(∫f) = Pᵀ·coeffs(f) for f of degree < m−1.
        let b = LegendreBasis::new(6, 1.0);
        let cf = DVector::from(b.project(&|t| 3.0 * t * t));
        let ci = b.integration_matrix().transpose().mul_vec(&cf);
        let want = DVector::from(b.project(&|t| t * t * t));
        assert!(ci.sub(&want).norm_inf() < 1e-10);
    }

    #[test]
    fn differentiation_matrix_differentiates_polynomials() {
        let b = LegendreBasis::new(6, 2.0);
        let cf = DVector::from(b.project(&|t| t * t * t - 0.5 * t));
        let cd = b.differentiation_matrix().transpose().mul_vec(&cf);
        let want = DVector::from(b.project(&|t| 3.0 * t * t - 0.5));
        assert!(cd.sub(&want).norm_inf() < 1e-9);
    }

    #[test]
    fn diff_after_int_is_identity_on_low_degrees() {
        // D·(integration of f) = f for polynomials of degree < m−1.
        let b = LegendreBasis::new(7, 1.0);
        let cf = DVector::from(b.project(&|t| 1.0 - 2.0 * t + t * t));
        let ci = b.integration_matrix().transpose().mul_vec(&cf);
        let back = b.differentiation_matrix().transpose().mul_vec(&ci);
        assert!(back.sub(&cf).norm_inf() < 1e-9);
    }

    #[test]
    fn spectral_accuracy_beats_bpf_on_smooth_function() {
        use crate::bpf::BpfBasis;
        let m = 12;
        let f = |t: f64| (3.0 * t).sin();
        let leg = LegendreBasis::new(m, 1.0);
        let bpf = BpfBasis::new(m, 1.0);
        let cl = leg.project(&f);
        let cb = bpf.project(&f);
        let mut err_l = 0.0f64;
        let mut err_b = 0.0f64;
        for i in 0..200 {
            let t = (i as f64 + 0.5) / 200.0;
            err_l = err_l.max((leg.reconstruct(&cl, t) - f(t)).abs());
            err_b = err_b.max((bpf.reconstruct(&cb, t) - f(t)).abs());
        }
        assert!(
            err_l < 1e-8 && err_b > 1e-3,
            "legendre {err_l} vs bpf {err_b}"
        );
    }
}
