//! Adaptive-step block-pulse functions (paper §III-B, Eqs. 16–17, 25).
//!
//! With steps `h_0, …, h_{m−1}` summing to `T`, the operational matrices
//! become
//!
//! ```text
//! H̃ = diag(h_i) · (½I + N)            (N = strictly-upper all-ones)
//! D̃ = H̃^{-1} = 2·A·diag(1/h_j)        (A = alternating Toeplitz pattern)
//! ```
//!
//! with `A[i][i] = 1`, `A[i][j] = 2·(−1)^{j−i}` for `j > i` — the same
//! alternating pattern as the uniform case, column-scaled by `1/h_j`
//! (Eq. 17 / the matrix inside Eq. 25).
//!
//! Fractional powers `D̃^α` exist via eigendecomposition when all steps are
//! distinct (paper's observation); we compute them with the numerically
//! preferable Parlett recurrence, including an *incremental* form that
//! appends one step at a time for on-the-fly adaptive simulation.

use crate::traits::Basis;
use opm_linalg::triangular::{fn_of_upper_triangular, IncrementalTriangularFn, TriangularFnError};
use opm_linalg::DMatrix;

/// Block-pulse basis on a non-uniform grid.
#[derive(Clone, Debug)]
pub struct AdaptiveBpf {
    steps: Vec<f64>,
    /// Cumulative boundaries: `bounds[i]` = start of interval `i`;
    /// `bounds[m]` = `T`.
    bounds: Vec<f64>,
}

impl AdaptiveBpf {
    /// Creates the basis from explicit steps.
    ///
    /// # Panics
    /// Panics when `steps` is empty or any step is non-positive.
    pub fn new(steps: Vec<f64>) -> Self {
        assert!(!steps.is_empty(), "need at least one step");
        assert!(
            steps.iter().all(|&h| h > 0.0 && h.is_finite()),
            "steps must be positive and finite"
        );
        let mut bounds = Vec::with_capacity(steps.len() + 1);
        let mut acc = 0.0;
        bounds.push(0.0);
        for &h in &steps {
            acc += h;
            bounds.push(acc);
        }
        AdaptiveBpf { steps, bounds }
    }

    /// The step sequence.
    pub fn steps(&self) -> &[f64] {
        &self.steps
    }

    /// Interval boundaries (length `m + 1`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Midpoints of the intervals.
    pub fn midpoints(&self) -> Vec<f64> {
        (0..self.steps.len())
            .map(|i| 0.5 * (self.bounds[i] + self.bounds[i + 1]))
            .collect()
    }

    /// Column `j` of `D̃` above and including the diagonal
    /// (`len = j + 1`), cheap enough to generate on the fly.
    pub fn diff_column(&self, j: usize) -> Vec<f64> {
        let hj = self.steps[j];
        (0..=j)
            .map(|i| {
                if i == j {
                    2.0 / hj
                } else if (j - i) % 2 == 1 {
                    -4.0 / hj
                } else {
                    4.0 / hj
                }
            })
            .collect()
    }

    /// Dense `D̃` (Eq. 17).
    pub fn differentiation_matrix(&self) -> DMatrix {
        let m = self.steps.len();
        let mut d = DMatrix::zeros(m, m);
        for j in 0..m {
            for (i, v) in self.diff_column(j).into_iter().enumerate() {
                d.set(i, j, v);
            }
        }
        d
    }

    /// Dense `D̃^α` by the Parlett recurrence (Eq. 25 prescribes
    /// eigendecomposition; Parlett is its stable equivalent).
    ///
    /// # Errors
    /// [`TriangularFnError::ConfluentDiagonal`] when two steps coincide to
    /// within `1e-10` relative — perturb the offending step (the paper
    /// makes the same "no two steps exactly equal" assumption).
    pub fn frac_diff_matrix(&self, alpha: f64) -> Result<DMatrix, TriangularFnError> {
        fn_of_upper_triangular(&self.differentiation_matrix(), |x| x.powf(alpha))
    }

    /// Incremental evaluator for `D̃^α` that grows with the step sequence;
    /// used by on-the-fly adaptive fractional OPM.
    pub fn incremental_frac_diff(
        alpha: f64,
        capacity: usize,
    ) -> IncrementalTriangularFn<impl Fn(f64) -> f64> {
        IncrementalTriangularFn::new(move |x: f64| x.powf(alpha), capacity)
    }
}

impl Basis for AdaptiveBpf {
    fn dim(&self) -> usize {
        self.steps.len()
    }

    fn t_end(&self) -> f64 {
        *self.bounds.last().unwrap()
    }

    fn eval(&self, i: usize, t: f64) -> f64 {
        assert!(i < self.steps.len(), "basis index out of range");
        if t >= self.bounds[i] && t < self.bounds[i + 1] {
            1.0
        } else {
            0.0
        }
    }

    fn project(&self, f: &dyn Fn(f64) -> f64) -> Vec<f64> {
        (0..self.steps.len())
            .map(|i| {
                let (a, b) = (self.bounds[i], self.bounds[i + 1]);
                crate::quadrature::integrate_adaptive(f, a, b, 1e-13 * (b - a)) / (b - a)
            })
            .collect()
    }

    fn integration_matrix(&self) -> DMatrix {
        // H̃[i][j] = h_i/2 on the diagonal, h_i for j > i (Eq. 16).
        let m = self.steps.len();
        DMatrix::from_fn(m, m, |i, j| {
            if j == i {
                self.steps[i] / 2.0
            } else if j > i {
                self.steps[i]
            } else {
                0.0
            }
        })
    }

    fn differentiation_matrix_opt(&self) -> Option<DMatrix> {
        Some(self.differentiation_matrix())
    }

    fn one_coeffs(&self) -> Vec<f64> {
        vec![1.0; self.steps.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpf::BpfBasis;

    fn sample() -> AdaptiveBpf {
        AdaptiveBpf::new(vec![0.1, 0.25, 0.05, 0.4])
    }

    #[test]
    fn bounds_accumulate() {
        let b = sample();
        let want = [0.0, 0.1, 0.35, 0.4, 0.8];
        for (x, y) in b.bounds().iter().zip(&want) {
            assert!((x - y).abs() < 1e-14);
        }
        assert!((b.t_end() - 0.8).abs() < 1e-14);
    }

    #[test]
    fn d_tilde_is_inverse_of_h_tilde() {
        let b = sample();
        let prod = b.differentiation_matrix().mul_mat(&b.integration_matrix());
        assert!(prod.sub(&DMatrix::identity(4)).norm_max() < 1e-11);
        let prod2 = b.integration_matrix().mul_mat(&b.differentiation_matrix());
        assert!(prod2.sub(&DMatrix::identity(4)).norm_max() < 1e-11);
    }

    #[test]
    fn uniform_steps_reduce_to_bpf_matrices() {
        let ada = AdaptiveBpf::new(vec![0.25; 8]);
        let uni = BpfBasis::new(8, 2.0);
        assert!(
            ada.differentiation_matrix()
                .sub(&uni.differentiation_matrix())
                .norm_max()
                < 1e-12
        );
        assert!(
            ada.integration_matrix()
                .sub(&uni.integration_matrix())
                .norm_max()
                < 1e-12
        );
    }

    #[test]
    fn diff_column_matches_dense() {
        let b = sample();
        let d = b.differentiation_matrix();
        for j in 0..4 {
            let col = b.diff_column(j);
            for (i, &v) in col.iter().enumerate() {
                assert!((d.get(i, j) - v).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn fractional_power_squares_to_order_one() {
        let b = sample();
        let half = b.frac_diff_matrix(0.5).unwrap();
        let d = b.differentiation_matrix();
        let err = half.mul_mat(&half).sub(&d).norm_max();
        assert!(err < 1e-8 * d.norm_max(), "err={err}");
    }

    #[test]
    fn fractional_semigroup_adaptive() {
        let b = AdaptiveBpf::new(vec![0.2, 0.33, 0.11, 0.47, 0.29]);
        let a = b.frac_diff_matrix(0.3).unwrap();
        let c = b.frac_diff_matrix(0.7).unwrap();
        let d = b.differentiation_matrix();
        assert!(a.mul_mat(&c).sub(&d).norm_max() < 1e-8 * d.norm_max());
    }

    #[test]
    fn equal_steps_rejected_for_fractional() {
        let b = AdaptiveBpf::new(vec![0.1, 0.2, 0.1]);
        assert!(b.frac_diff_matrix(0.5).is_err());
    }

    #[test]
    fn incremental_matches_batch_fractional() {
        let b = AdaptiveBpf::new(vec![0.13, 0.29, 0.07, 0.41]);
        let batch = b.frac_diff_matrix(0.5).unwrap();
        let mut inc = AdaptiveBpf::incremental_frac_diff(0.5, 4);
        for j in 0..4 {
            inc.append_column(&b.diff_column(j)).unwrap();
        }
        assert!(inc.to_matrix().sub(&batch).norm_max() < 1e-10);
    }

    #[test]
    fn projection_on_nonuniform_grid() {
        let b = sample();
        let c = b.project(&|t| t);
        let mids = b.midpoints();
        for (ci, mi) in c.iter().zip(&mids) {
            assert!((ci - mi).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_step_rejected() {
        AdaptiveBpf::new(vec![0.1, 0.0]);
    }
}
