//! Quadrature helpers for basis projections.
//!
//! BPF coefficients are interval averages (paper Eq. 2); polynomial bases
//! project through weighted inner products. Both need solid quadrature:
//! Gauss–Legendre for smooth integrands and adaptive Simpson as a fallback
//! oracle.

/// Gauss–Legendre nodes and weights on `[-1, 1]` for `n` points.
///
/// Newton iteration on the Legendre polynomial from the Chebyshev initial
/// guess; accurate to machine precision for `n ≤ 200`.
///
/// ```
/// use opm_basis::quadrature::gauss_legendre;
/// let (x, w) = gauss_legendre(3);
/// assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-14);
/// assert!((x[1]).abs() < 1e-15); // middle node at 0
/// ```
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1, "need at least one node");
    let mut x = vec![0.0; n];
    let mut w = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-based initial guess for the i-th root.
        let mut z = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut pp = 0.0;
        for _ in 0..100 {
            // Evaluate P_n(z) and its derivative by upward recurrence.
            let mut p1 = 1.0;
            let mut p2 = 0.0;
            for j in 0..n {
                let p3 = p2;
                p2 = p1;
                p1 = ((2.0 * j as f64 + 1.0) * z * p2 - j as f64 * p3) / (j as f64 + 1.0);
            }
            pp = n as f64 * (z * p1 - p2) / (z * z - 1.0);
            let dz = p1 / pp;
            z -= dz;
            if dz.abs() < 1e-15 {
                break;
            }
        }
        x[i] = -z;
        x[n - 1 - i] = z;
        let wi = 2.0 / ((1.0 - z * z) * pp * pp);
        w[i] = wi;
        w[n - 1 - i] = wi;
    }
    (x, w)
}

/// Integrates `f` over `[a, b]` with `n`-point Gauss–Legendre.
pub fn integrate_gl(f: &dyn Fn(f64) -> f64, a: f64, b: f64, n: usize) -> f64 {
    let (x, w) = gauss_legendre(n);
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    let mut s = 0.0;
    for (xi, wi) in x.iter().zip(&w) {
        s += wi * f(mid + half * xi);
    }
    s * half
}

/// Adaptive Simpson quadrature with absolute tolerance `tol`.
///
/// Robust for integrands with kinks (pulse edges, PWL corners) where a
/// fixed Gauss rule would lose accuracy.
pub fn integrate_adaptive(f: &dyn Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> f64 {
    fn simpson(fa: f64, fm: f64, fb: f64, a: f64, b: f64) -> f64 {
        (b - a) / 6.0 * (fa + 4.0 * fm + fb)
    }
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        f: &dyn Fn(f64) -> f64,
        a: f64,
        b: f64,
        fa: f64,
        fm: f64,
        fb: f64,
        whole: f64,
        tol: f64,
        depth: u32,
    ) -> f64 {
        let m = 0.5 * (a + b);
        let lm = 0.5 * (a + m);
        let rm = 0.5 * (m + b);
        let flm = f(lm);
        let frm = f(rm);
        let left = simpson(fa, flm, fm, a, m);
        let right = simpson(fm, frm, fb, m, b);
        let delta = left + right - whole;
        if depth == 0 || delta.abs() <= 15.0 * tol {
            left + right + delta / 15.0
        } else {
            recurse(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
                + recurse(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
        }
    }
    if a == b {
        return 0.0;
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(fa, fm, fb, a, b);
    recurse(f, a, b, fa, fm, fb, whole, tol, 40)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gl_exact_for_polynomials() {
        // n-point GL is exact for degree 2n−1.
        let f = |x: f64| 3.0 * x.powi(5) - x.powi(4) + 2.0 * x - 7.0;
        let exact = -2.0 / 5.0 - 14.0; // ∫_{-1}^{1}: odd terms vanish; −2/5 from x⁴; −14 from const
        let got = integrate_gl(&f, -1.0, 1.0, 3);
        assert!((got - exact).abs() < 1e-13, "{got} vs {exact}");
    }

    #[test]
    fn gl_weights_positive_and_sum_to_interval() {
        for n in [1, 2, 5, 16, 33, 64] {
            let (x, w) = gauss_legendre(n);
            assert!(w.iter().all(|&wi| wi > 0.0));
            assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-12, "n={n}");
            // Nodes sorted and inside (−1, 1).
            for p in x.windows(2) {
                assert!(p[0] < p[1]);
            }
            assert!(x[0] > -1.0 && x[n - 1] < 1.0);
        }
    }

    #[test]
    fn gl_transcendental_accuracy() {
        let got = integrate_gl(&|x: f64| x.exp(), 0.0, 1.0, 12);
        assert!((got - (std::f64::consts::E - 1.0)).abs() < 1e-14);
    }

    #[test]
    fn adaptive_handles_kink() {
        // |x − 1/3| has a kink; adaptive Simpson nails it anyway.
        let f = |x: f64| (x - 1.0 / 3.0).abs();
        let exact = (1.0f64 / 3.0).powi(2) / 2.0 + (2.0f64 / 3.0).powi(2) / 2.0;
        let got = integrate_adaptive(&f, 0.0, 1.0, 1e-12);
        assert!((got - exact).abs() < 1e-9, "{got} vs {exact}");
    }

    #[test]
    fn adaptive_zero_width() {
        assert_eq!(integrate_adaptive(&|x: f64| x, 2.0, 2.0, 1e-10), 0.0);
    }

    #[test]
    fn adaptive_matches_gl_on_smooth() {
        let f = |x: f64| (3.0 * x).sin() * (-x).exp();
        let a = integrate_adaptive(&f, 0.0, 2.0, 1e-12);
        let g = integrate_gl(&f, 0.0, 2.0, 40);
        assert!((a - g).abs() < 1e-10);
    }
}
