//! Truncated power series in the nilpotent shift `Q_m`.
//!
//! The paper evaluates `D^α = ((2/h)(1−q)/(1+q))^α |_{q=Q_m}` by expanding
//! the scalar function as a polynomial of degree `m−1` (Eq. 21–22): since
//! `Q_m^m = 0`, the truncation is *exact* as a matrix identity. This module
//! generates those coefficients and provides the series algebra the tests
//! use to verify semigroup identities like `D^α·D^β = D^{α+β}`.

/// Coefficients `c_0..c_{m−1}` of `((1−q)/(1+q))^α` — the "fractional
/// Tustin" generating function.
///
/// Derived from the ODE `(1−q²)·f′(q) = −2α·f(q)` satisfied by
/// `f = ((1−q)/(1+q))^α`, which yields the stable three-term recurrence
///
/// ```text
/// c₀ = 1,  c₁ = −2α,  c_{k+1} = ((k−1)·c_{k−1} − 2α·c_k)/(k+1).
/// ```
///
/// For `α = 3/2` the first four coefficients are `(1, −3, 4.5, −5.5)` —
/// paper Eq. (23).
///
/// ```
/// use opm_basis::series::tustin_frac_coeffs;
/// assert_eq!(tustin_frac_coeffs(1.0, 4), vec![1.0, -2.0, 2.0, -2.0]);
/// assert_eq!(tustin_frac_coeffs(1.5, 4), vec![1.0, -3.0, 4.5, -5.5]);
/// ```
pub fn tustin_frac_coeffs(alpha: f64, m: usize) -> Vec<f64> {
    let mut c = Vec::with_capacity(m);
    if m == 0 {
        return c;
    }
    c.push(1.0);
    if m == 1 {
        return c;
    }
    c.push(-2.0 * alpha);
    for k in 1..m - 1 {
        let next = ((k as f64 - 1.0) * c[k - 1] - 2.0 * alpha * c[k]) / (k as f64 + 1.0);
        c.push(next);
    }
    c
}

/// Truncated Cauchy product of two coefficient sequences
/// (`len = min(a.len, b.len)` kept — enough for nilpotent algebra).
pub fn series_mul(a: &[f64], b: &[f64]) -> Vec<f64> {
    let m = a.len().min(b.len());
    let mut out = vec![0.0; m];
    for (k, o) in out.iter_mut().enumerate() {
        let mut s = 0.0;
        for i in 0..=k {
            s += a[i] * b[k - i];
        }
        *o = s;
    }
    out
}

/// Truncated reciprocal of a power series with `a[0] != 0`.
///
/// # Panics
/// Panics when `a` is empty or `a[0] == 0`.
pub fn series_inv(a: &[f64]) -> Vec<f64> {
    assert!(!a.is_empty() && a[0] != 0.0, "series_inv needs a[0] != 0");
    let m = a.len();
    let mut out = vec![0.0; m];
    out[0] = 1.0 / a[0];
    for k in 1..m {
        let mut s = 0.0;
        for i in 1..=k {
            s += a[i] * out[k - i];
        }
        out[k] = -s / a[0];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0),
                "index {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn alpha_one_is_tustin() {
        assert_eq!(
            tustin_frac_coeffs(1.0, 6),
            vec![1.0, -2.0, 2.0, -2.0, 2.0, -2.0]
        );
    }

    #[test]
    fn alpha_two_matches_squared() {
        let direct = tustin_frac_coeffs(2.0, 8);
        let squared = series_mul(&tustin_frac_coeffs(1.0, 8), &tustin_frac_coeffs(1.0, 8));
        assert_close(&direct, &squared, 1e-13);
    }

    #[test]
    fn paper_equation_23() {
        assert_eq!(tustin_frac_coeffs(1.5, 4), vec![1.0, -3.0, 4.5, -5.5]);
    }

    #[test]
    fn paper_remark_d32_squared_is_d_cubed() {
        // The paper notes (D^{3/2})² equals the integer-order operator of
        // twice the order; verify at the coefficient level.
        let half3 = tustin_frac_coeffs(1.5, 4);
        let sq = series_mul(&half3, &half3);
        assert_close(&sq, &tustin_frac_coeffs(3.0, 4), 1e-13);
    }

    #[test]
    fn semigroup_property() {
        for &(a, b) in &[(0.5, 0.5), (0.3, 1.2), (-0.5, 0.5), (0.25, 0.75)] {
            let lhs = series_mul(&tustin_frac_coeffs(a, 12), &tustin_frac_coeffs(b, 12));
            let rhs = tustin_frac_coeffs(a + b, 12);
            assert_close(&lhs, &rhs, 1e-12);
        }
    }

    #[test]
    fn negative_alpha_is_series_inverse() {
        let pos = tustin_frac_coeffs(0.7, 10);
        let neg = tustin_frac_coeffs(-0.7, 10);
        let inv = series_inv(&pos);
        assert_close(&neg, &inv, 1e-12);
    }

    #[test]
    fn alpha_zero_is_identity() {
        let c = tustin_frac_coeffs(0.0, 5);
        assert_eq!(c, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn series_inv_roundtrip() {
        let a = [2.0, -1.0, 0.5, 0.25];
        let prod = series_mul(&a, &series_inv(&a));
        assert_close(&prod, &[1.0, 0.0, 0.0, 0.0], 1e-14);
    }

    #[test]
    fn edge_lengths() {
        assert!(tustin_frac_coeffs(0.5, 0).is_empty());
        assert_eq!(tustin_frac_coeffs(0.5, 1), vec![1.0]);
        assert_eq!(tustin_frac_coeffs(0.5, 2), vec![1.0, -1.0]);
    }
}
