//! Operational-matrix bases for OPM time-domain simulation.
//!
//! The paper builds its simulator on block-pulse functions (BPFs) and notes
//! that "there exist various other basis functions, such as the Walsh
//! functions, the Laguerre functions, the Legendre functions, the Haar
//! functions" (§I). This crate implements the machinery:
//!
//! - [`series`] — power-series-in-nilpotent utilities; the fractional
//!   Tustin coefficients of `((1−q)/(1+q))^α` (paper Eq. 21–23).
//! - [`bpf`] — uniform block-pulse basis: integration matrix `H` (Eq. 4),
//!   differentiation matrix `D` (Eq. 7), fractional `D^α` (Eq. 22),
//!   projection/reconstruction.
//! - [`adaptive`] — adaptive-step BPFs: `H̃`, `D̃` (Eqs. 16–17) and `D̃^α`
//!   (Eq. 25) via incremental Parlett recurrences.
//! - [`walsh`], [`haar`], [`legendre`] — alternative bases with their own
//!   operational matrices, demonstrating the generality claim.
//! - [`quadrature`] — Gauss–Legendre and adaptive Simpson projection
//!   helpers.
//! - [`traits::Basis`] — the common interface consumed by the
//!   general-basis OPM solver in `opm-core`.
//!
//! # Example: the differentiation matrix is the inverse of integration
//!
//! ```
//! use opm_basis::{bpf::BpfBasis, Basis};
//! let basis = BpfBasis::new(8, 1.0);
//! let product = basis.differentiation_matrix().mul_mat(&basis.integration_matrix());
//! let err = product.sub(&opm_linalg::DMatrix::identity(8)).norm_max();
//! assert!(err < 1e-12);
//! ```

// No unsafe anywhere in this crate; the only unsafe in the workspace
// is the audited AVX panel dispatch in opm-{core,sparse,fracnum}.
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod bpf;
pub mod haar;
pub mod legendre;
pub mod quadrature;
pub mod series;
pub mod traits;
pub mod walsh;

pub use adaptive::AdaptiveBpf;
pub use bpf::BpfBasis;
pub use haar::HaarBasis;
pub use legendre::LegendreBasis;
pub use traits::Basis;
pub use walsh::WalshBasis;
