//! Walsh functions in sequency order with their operational matrix.
//!
//! The paper singles Walsh functions out: "a set of low- to high-frequency
//! basis functions", useful when only the overall trend of the response is
//! of interest (§I). On `m = 2^k` subintervals every Walsh function is a
//! `±1` combination of BPFs, so the Walsh value matrix `W` conjugates the
//! BPF operational matrices into the Walsh domain:
//!
//! ```text
//! P_W = W · H_bpf · Wᵀ / m           (W·Wᵀ = m·I)
//! ```
//!
//! Transforms run in `O(m log m)` via the fast Walsh–Hadamard transform;
//! the sequency (Walsh) ordering is obtained by sorting Hadamard rows by
//! their sign-change count.

use crate::bpf::BpfBasis;
use crate::traits::Basis;
use opm_linalg::DMatrix;

/// In-place fast Walsh–Hadamard transform in natural (Hadamard) order.
///
/// Unnormalized: applying it twice multiplies by `len`.
///
/// # Panics
/// Panics when the length is not a power of two.
pub fn fwht(data: &mut [f64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FWHT length must be a power of two");
    let mut half = 1;
    while half < n {
        for block in (0..n).step_by(half * 2) {
            for i in block..block + half {
                let (a, b) = (data[i], data[i + half]);
                data[i] = a + b;
                data[i + half] = a - b;
            }
        }
        half *= 2;
    }
}

/// The Walsh basis on `[0, T)` with `m = 2^k` functions, sequency-ordered
/// (function `i` has exactly `i` sign changes).
#[derive(Clone, Debug)]
pub struct WalshBasis {
    bpf: BpfBasis,
    /// `seq_to_nat[s]` = Hadamard row index realizing sequency `s`.
    seq_to_nat: Vec<usize>,
}

impl WalshBasis {
    /// Creates the basis.
    ///
    /// # Panics
    /// Panics when `m` is not a power of two or `t_end <= 0`.
    pub fn new(m: usize, t_end: f64) -> Self {
        assert!(m.is_power_of_two(), "Walsh basis needs m = 2^k");
        let bpf = BpfBasis::new(m, t_end);
        // Row i of the natural Hadamard matrix: H[i][j] = (−1)^{popcount(i&j)}.
        // Sequency of a row = number of adjacent sign flips.
        let mut with_seq: Vec<(usize, usize)> = (0..m)
            .map(|i| {
                let mut changes = 0usize;
                let mut prev = hadamard_entry(i, 0);
                for j in 1..m {
                    let cur = hadamard_entry(i, j);
                    if cur != prev {
                        changes += 1;
                    }
                    prev = cur;
                }
                (changes, i)
            })
            .collect();
        with_seq.sort_unstable();
        let seq_to_nat = with_seq.into_iter().map(|(_, i)| i).collect();
        WalshBasis { bpf, seq_to_nat }
    }

    /// The Walsh value matrix `W` (row `s` = sequency-`s` function's values
    /// on the `m` subintervals).
    pub fn value_matrix(&self) -> DMatrix {
        let m = self.dim();
        DMatrix::from_fn(m, m, |s, j| {
            if hadamard_entry(self.seq_to_nat[s], j) {
                -1.0
            } else {
                1.0
            }
        })
    }

    /// Converts BPF (interval-average) coefficients to Walsh coefficients:
    /// `c_W = W·c_B / m` (fast transform + reorder).
    pub fn from_bpf_coeffs(&self, bpf_coeffs: &[f64]) -> Vec<f64> {
        let m = self.dim();
        assert_eq!(bpf_coeffs.len(), m, "coefficient length mismatch");
        let mut work = bpf_coeffs.to_vec();
        fwht(&mut work);
        // FWHT computes natural-order sums Σ_j (−1)^{popcount(i&j)} c_j = (W_nat c)_i.
        (0..m)
            .map(|s| work[self.seq_to_nat[s]] / m as f64)
            .collect()
    }

    /// Converts Walsh coefficients back to BPF coefficients: `c_B = Wᵀ·c_W`.
    pub fn to_bpf_coeffs(&self, walsh_coeffs: &[f64]) -> Vec<f64> {
        let m = self.dim();
        assert_eq!(walsh_coeffs.len(), m, "coefficient length mismatch");
        let mut natural = vec![0.0; m];
        for (s, &c) in walsh_coeffs.iter().enumerate() {
            natural[self.seq_to_nat[s]] = c;
        }
        // Wᵀ = W in natural order (symmetric), so one more FWHT suffices.
        fwht(&mut natural);
        natural
    }
}

#[inline]
fn hadamard_entry(i: usize, j: usize) -> bool {
    // true ⇔ entry is −1.
    (i & j).count_ones() % 2 == 1
}

impl Basis for WalshBasis {
    fn dim(&self) -> usize {
        self.bpf.dim()
    }

    fn t_end(&self) -> f64 {
        self.bpf.t_end()
    }

    fn eval(&self, i: usize, t: f64) -> f64 {
        let m = self.dim();
        assert!(i < m, "basis index out of range");
        if !(0.0..self.t_end()).contains(&t) {
            return 0.0;
        }
        let j = ((t / self.t_end() * m as f64) as usize).min(m - 1);
        if hadamard_entry(self.seq_to_nat[i], j) {
            -1.0
        } else {
            1.0
        }
    }

    fn project(&self, f: &dyn Fn(f64) -> f64) -> Vec<f64> {
        self.from_bpf_coeffs(&self.bpf.project(f))
    }

    fn integration_matrix(&self) -> DMatrix {
        // P_W = W·H_B·Wᵀ/m.
        let w = self.value_matrix();
        let m = self.dim() as f64;
        w.mul_mat(&self.bpf.integration_matrix())
            .mul_mat(&w.transpose())
            .scale(1.0 / m)
    }

    fn one_coeffs(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.dim()];
        c[0] = 1.0; // sequency-0 Walsh function is the constant 1
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrature::integrate_adaptive;

    #[test]
    fn rows_are_orthogonal() {
        let b = WalshBasis::new(8, 1.0);
        let w = b.value_matrix();
        let g = w.mul_mat(&w.transpose());
        assert!(g.sub(&DMatrix::identity(8).scale(8.0)).norm_max() < 1e-12);
    }

    #[test]
    fn sequency_ordering_counts_sign_changes() {
        let b = WalshBasis::new(16, 1.0);
        let w = b.value_matrix();
        for s in 0..16 {
            let mut changes = 0;
            for j in 1..16 {
                if w.get(s, j) != w.get(s, j - 1) {
                    changes += 1;
                }
            }
            assert_eq!(changes, s, "row {s} has wrong sequency");
        }
    }

    #[test]
    fn fwht_involution_up_to_scale() {
        let mut v = vec![3.0, -1.0, 0.5, 2.0, -4.0, 1.0, 0.0, 7.0];
        let orig = v.clone();
        fwht(&mut v);
        fwht(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - 8.0 * b).abs() < 1e-12);
        }
    }

    #[test]
    fn coefficient_roundtrip() {
        let b = WalshBasis::new(16, 2.0);
        let bpf: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let back = b.to_bpf_coeffs(&b.from_bpf_coeffs(&bpf));
        for (x, y) in back.iter().zip(&bpf) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_of_constant_is_e0() {
        let b = WalshBasis::new(8, 1.0);
        let c = b.project(&|_| 3.5);
        assert!((c[0] - 3.5).abs() < 1e-10);
        for &ci in &c[1..] {
            assert!(ci.abs() < 1e-10);
        }
    }

    #[test]
    fn integration_matrix_integrates_walsh_functions() {
        // For each basis function, coefficients of its running integral
        // must match a direct projection of ∫₀ᵗ w_s.
        let m = 8;
        let b = WalshBasis::new(m, 1.0);
        let p = b.integration_matrix();
        for s in 0..m {
            // Direct: project t ↦ ∫₀ᵗ w_s numerically.
            let ints: Vec<f64> =
                b.project(&|t| integrate_adaptive(&|tau| b.eval(s, tau), 0.0, t, 1e-12));
            // Operational: row s of P (since ∫φ = Pφ ⇒ coefficients of
            // ∫w_s in the Walsh basis are P[s, :]).
            for j in 0..m {
                assert!(
                    (p.get(s, j) - ints[j]).abs() < 1e-8,
                    "s={s}, j={j}: {} vs {}",
                    p.get(s, j),
                    ints[j]
                );
            }
        }
    }

    #[test]
    fn low_sequency_reconstruction_captures_trend() {
        // Truncating to the lowest 4 of 16 sequencies approximates a slow
        // ramp far better than it approximates its high-frequency ripple.
        let b = WalshBasis::new(16, 1.0);
        let slow = |t: f64| t;
        let mut c = b.project(&slow);
        for ci in c.iter_mut().skip(4) {
            *ci = 0.0;
        }
        let err_slow: f64 = (0..16)
            .map(|i| {
                let t = (i as f64 + 0.5) / 16.0;
                (b.reconstruct(&c, t) - slow(t)).abs()
            })
            .fold(0.0, f64::max);
        assert!(err_slow < 0.2, "trend error {err_slow}");
    }

    #[test]
    #[should_panic(expected = "m = 2^k")]
    fn non_power_of_two_rejected() {
        WalshBasis::new(6, 1.0);
    }
}
