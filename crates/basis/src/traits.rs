//! The common interface of operational-matrix bases.

use opm_linalg::DMatrix;

/// An `m`-dimensional function basis on `[0, T)` equipped with an
/// integration operational matrix.
///
/// The defining property (paper Eq. 3 for BPFs) is
///
/// ```text
/// ∫₀ᵗ φ(τ) dτ ≈ H·φ(t)     (componentwise, inside the span)
/// ```
///
/// so that if `f ≈ cᵀφ` then `∫f ≈ (Hᵀc)ᵀφ`. Bases whose members are
/// differentiable (or whose integration matrix is invertible, like BPFs)
/// also expose a differentiation matrix `D` with `fʹ ≈ (Dᵀc)ᵀφ`.
pub trait Basis {
    /// Number of basis functions `m`.
    fn dim(&self) -> usize;

    /// End of the time span `[0, T)`.
    fn t_end(&self) -> f64;

    /// Value of basis function `i` at time `t` (zero outside `[0, T)`).
    fn eval(&self, i: usize, t: f64) -> f64;

    /// Projects a function onto the basis, returning its coefficient
    /// vector of length [`dim`](Self::dim).
    fn project(&self, f: &dyn Fn(f64) -> f64) -> Vec<f64>;

    /// Reconstructs `Σ c_i·φ_i(t)`.
    ///
    /// # Panics
    /// Panics when `coeffs.len() != self.dim()`.
    fn reconstruct(&self, coeffs: &[f64], t: f64) -> f64 {
        assert_eq!(coeffs.len(), self.dim(), "coefficient length mismatch");
        coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| c * self.eval(i, t))
            .sum()
    }

    /// The integration operational matrix `H`.
    fn integration_matrix(&self) -> DMatrix;

    /// The differentiation operational matrix `D`, when the basis admits
    /// one (`None` for bases of discontinuous functions without an
    /// invertible `H`-based surrogate).
    fn differentiation_matrix_opt(&self) -> Option<DMatrix> {
        None
    }

    /// Coefficient vector of the constant function `1` in this basis —
    /// needed by the integral-form OPM solver to inject initial conditions.
    fn one_coeffs(&self) -> Vec<f64>;
}
