//! Haar wavelet basis with its operational matrix (Chen–Hsiao style).
//!
//! Haar functions are the localized counterpart to Walsh functions: the
//! first function is constant, and function `(j, k)` is supported on the
//! dyadic interval `[k·2^{1−j}, (k+1)·2^{1−j})·T`, positive on its first
//! half and negative on the second, scaled by `2^{(j−1)/2}` so that every
//! basis vector has the same energy as a BPF row (`‖row‖² = m`).
//!
//! Like Walsh functions, Haar functions on `m = 2^k` subintervals are
//! exact BPF combinations, so operational matrices conjugate over:
//! `P_H = Ha·H_bpf·Haᵀ/m`.

use crate::bpf::BpfBasis;
use crate::traits::Basis;
use opm_linalg::DMatrix;

/// The Haar basis on `[0, T)` with `m = 2^k` functions.
#[derive(Clone, Debug)]
pub struct HaarBasis {
    bpf: BpfBasis,
}

impl HaarBasis {
    /// Creates the basis.
    ///
    /// # Panics
    /// Panics when `m` is not a power of two or `t_end <= 0`.
    pub fn new(m: usize, t_end: f64) -> Self {
        assert!(m.is_power_of_two(), "Haar basis needs m = 2^k");
        HaarBasis {
            bpf: BpfBasis::new(m, t_end),
        }
    }

    /// Value of Haar function `i` on subinterval `j` (constant there).
    fn value_on_subinterval(&self, i: usize, j: usize) -> f64 {
        let m = self.dim();
        debug_assert!(i < m && j < m);
        if i == 0 {
            return 1.0;
        }
        // Decompose i = 2^{level−1} + pos  (level ≥ 1, pos ∈ [0, 2^{level−1})).
        let level = usize::BITS - i.leading_zeros(); // floor(log2(i)) + 1
        let half_count = 1usize << (level - 1);
        let pos = i - half_count;
        // Support covers m / half_count subintervals starting at
        // pos * (m / half_count).
        let width = m / half_count;
        let start = pos * width;
        if j < start || j >= start + width {
            return 0.0;
        }
        let scale = (half_count as f64).sqrt();
        if j < start + width / 2 {
            scale
        } else {
            -scale
        }
    }

    /// The Haar value matrix `Ha` (row `i` = values on subintervals).
    pub fn value_matrix(&self) -> DMatrix {
        let m = self.dim();
        DMatrix::from_fn(m, m, |i, j| self.value_on_subinterval(i, j))
    }

    /// Converts BPF coefficients to Haar coefficients (`c_H = Ha·c_B/m`).
    pub fn from_bpf_coeffs(&self, bpf_coeffs: &[f64]) -> Vec<f64> {
        let m = self.dim();
        assert_eq!(bpf_coeffs.len(), m, "coefficient length mismatch");
        let ha = self.value_matrix();
        (0..m)
            .map(|i| {
                let mut s = 0.0;
                for j in 0..m {
                    s += ha.get(i, j) * bpf_coeffs[j];
                }
                s / m as f64
            })
            .collect()
    }

    /// Converts Haar coefficients back to BPF coefficients (`c_B = Haᵀ·c_H`).
    pub fn to_bpf_coeffs(&self, haar_coeffs: &[f64]) -> Vec<f64> {
        let m = self.dim();
        assert_eq!(haar_coeffs.len(), m, "coefficient length mismatch");
        let ha = self.value_matrix();
        (0..m)
            .map(|j| {
                let mut s = 0.0;
                for i in 0..m {
                    s += ha.get(i, j) * haar_coeffs[i];
                }
                s
            })
            .collect()
    }
}

impl Basis for HaarBasis {
    fn dim(&self) -> usize {
        self.bpf.dim()
    }

    fn t_end(&self) -> f64 {
        self.bpf.t_end()
    }

    fn eval(&self, i: usize, t: f64) -> f64 {
        let m = self.dim();
        assert!(i < m, "basis index out of range");
        if !(0.0..self.t_end()).contains(&t) {
            return 0.0;
        }
        let j = ((t / self.t_end() * m as f64) as usize).min(m - 1);
        self.value_on_subinterval(i, j)
    }

    fn project(&self, f: &dyn Fn(f64) -> f64) -> Vec<f64> {
        self.from_bpf_coeffs(&self.bpf.project(f))
    }

    fn integration_matrix(&self) -> DMatrix {
        let ha = self.value_matrix();
        let m = self.dim() as f64;
        ha.mul_mat(&self.bpf.integration_matrix())
            .mul_mat(&ha.transpose())
            .scale(1.0 / m)
    }

    fn one_coeffs(&self) -> Vec<f64> {
        let mut c = vec![0.0; self.dim()];
        c[0] = 1.0;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_have_uniform_energy() {
        let b = HaarBasis::new(8, 1.0);
        let ha = b.value_matrix();
        let g = ha.mul_mat(&ha.transpose());
        assert!(g.sub(&DMatrix::identity(8).scale(8.0)).norm_max() < 1e-12);
    }

    #[test]
    fn first_rows_match_known_haar_4() {
        let b = HaarBasis::new(4, 1.0);
        let ha = b.value_matrix();
        let s2 = 2.0f64.sqrt();
        let want = DMatrix::from_rows(&[
            &[1.0, 1.0, 1.0, 1.0],
            &[1.0, 1.0, -1.0, -1.0],
            &[s2, -s2, 0.0, 0.0],
            &[0.0, 0.0, s2, -s2],
        ]);
        assert!(ha.sub(&want).norm_max() < 1e-14);
    }

    #[test]
    fn coefficient_roundtrip() {
        let b = HaarBasis::new(16, 3.0);
        let c: Vec<f64> = (0..16).map(|i| ((i * i) as f64 * 0.11).cos()).collect();
        let back = b.to_bpf_coeffs(&b.from_bpf_coeffs(&c));
        for (x, y) in back.iter().zip(&c) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_localizes_spikes() {
        // A spike in the last quarter excites only wavelets supported there
        // (plus the global rows 0 and 1).
        let b = HaarBasis::new(8, 1.0);
        let c = b.project(&|t| if t >= 0.875 { 1.0 } else { 0.0 });
        // Wavelet (level 2, pos 0) covers [0, 0.25): must be silent.
        assert!(c[2].abs() < 1e-10);
        // The finest wavelet over [0.75, 1.0) is row 7 and must fire.
        assert!(c[7].abs() > 1e-3);
    }

    #[test]
    fn integration_matrix_integrates_ramp() {
        // Project f = 1, integrate via Pᵀ, compare against projection of t.
        let m = 32;
        let b = HaarBasis::new(m, 1.0);
        let one = b.project(&|_| 1.0);
        let p = b.integration_matrix();
        let ramp_coeffs: Vec<f64> = {
            let pt = p.transpose();
            (0..m)
                .map(|i| (0..m).map(|j| pt.get(i, j) * one[j]).sum())
                .collect()
        };
        let want = b.project(&|t| t);
        for (x, y) in ramp_coeffs.iter().zip(&want) {
            assert!((x - y).abs() < 2e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn walsh_and_haar_integrate_identically_in_bpf_domain() {
        // Both conjugate the same H_bpf, so mapping back to BPF must agree.
        use crate::walsh::WalshBasis;
        let m = 8;
        let hb = HaarBasis::new(m, 1.0);
        let wb = WalshBasis::new(m, 1.0);
        let f = |t: f64| (2.0 * t).sin() + 0.3;
        let via_haar = {
            let c = hb.project(&f);
            let p = hb.integration_matrix().transpose();
            let ic: Vec<f64> = (0..m)
                .map(|i| (0..m).map(|j| p.get(i, j) * c[j]).sum())
                .collect();
            hb.to_bpf_coeffs(&ic)
        };
        let via_walsh = {
            let c = wb.project(&f);
            let p = wb.integration_matrix().transpose();
            let ic: Vec<f64> = (0..m)
                .map(|i| (0..m).map(|j| p.get(i, j) * c[j]).sum())
                .collect();
            wb.to_bpf_coeffs(&ic)
        };
        for (x, y) in via_haar.iter().zip(&via_walsh) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "m = 2^k")]
    fn non_power_of_two_rejected() {
        HaarBasis::new(12, 1.0);
    }
}
