//! Second-order systems `M₂·ẍ + M₁·ẋ + M₀·x = B·u` (nodal-analysis form).
//!
//! RLC power grids produce this shape under nodal analysis (the paper's
//! Table II: "a second-order differential model can be generated using
//! nodal analysis due to the existence of inductors"). OPM simulates it
//! directly through the multi-term column solve; the classical baselines
//! require the larger first-order MNA companion form instead.

use crate::multiterm::{MultiTermSystem, Term};
use crate::{DescriptorSystem, SystemError};
use opm_sparse::{CooMatrix, CsrMatrix};

/// A second-order differential system.
#[derive(Clone, Debug)]
pub struct SecondOrderSystem {
    m2: CsrMatrix,
    m1: CsrMatrix,
    m0: CsrMatrix,
    b: CsrMatrix,
    c: Option<CsrMatrix>,
}

impl SecondOrderSystem {
    /// Builds and validates a second-order system.
    ///
    /// # Errors
    /// [`SystemError::DimensionMismatch`] for inconsistent shapes.
    pub fn new(
        m2: CsrMatrix,
        m1: CsrMatrix,
        m0: CsrMatrix,
        b: CsrMatrix,
        c: Option<CsrMatrix>,
    ) -> Result<Self, SystemError> {
        let n = m2.nrows();
        for (name, m) in [("M2", &m2), ("M1", &m1), ("M0", &m0)] {
            if m.nrows() != n || m.ncols() != n {
                return Err(SystemError::DimensionMismatch(format!(
                    "{name} must be {n}x{n}, got {}x{}",
                    m.nrows(),
                    m.ncols()
                )));
            }
        }
        if b.nrows() != n {
            return Err(SystemError::DimensionMismatch(format!(
                "B must have {n} rows, got {}",
                b.nrows()
            )));
        }
        if let Some(ref c) = c {
            if c.ncols() != n {
                return Err(SystemError::DimensionMismatch(format!(
                    "C must have {n} columns, got {}",
                    c.ncols()
                )));
            }
        }
        Ok(SecondOrderSystem { m2, m1, m0, b, c })
    }

    /// Number of (second-order) state variables.
    pub fn order(&self) -> usize {
        self.m2.nrows()
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.b.ncols()
    }

    /// Mass/capacitance matrix `M₂`.
    pub fn m2(&self) -> &CsrMatrix {
        &self.m2
    }

    /// Damping/conductance matrix `M₁`.
    pub fn m1(&self) -> &CsrMatrix {
        &self.m1
    }

    /// Stiffness matrix `M₀`.
    pub fn m0(&self) -> &CsrMatrix {
        &self.m0
    }

    /// Input matrix `B`.
    pub fn b(&self) -> &CsrMatrix {
        &self.b
    }

    /// Output matrix, if any.
    pub fn c(&self) -> Option<&CsrMatrix> {
        self.c.as_ref()
    }

    /// Views the system as a three-term [`MultiTermSystem`] for the OPM
    /// solver.
    pub fn to_multiterm(&self) -> MultiTermSystem {
        MultiTermSystem::new(
            vec![
                Term {
                    alpha: 2.0,
                    matrix: self.m2.clone(),
                },
                Term {
                    alpha: 1.0,
                    matrix: self.m1.clone(),
                },
                Term {
                    alpha: 0.0,
                    matrix: self.m0.clone(),
                },
            ],
            self.b.clone(),
            self.c.clone(),
        )
        .expect("validated at construction")
    }

    /// Companion first-order form with state `z = [x; ẋ]`:
    ///
    /// ```text
    /// [I  0 ] d [x]   [ 0    I ] [x]   [0]
    /// [0  M₂]---[ẋ] = [−M₀  −M₁] [ẋ] + [B]·u
    /// ```
    ///
    /// Used to cross-check the multi-term OPM path against first-order
    /// integrators on the *same* physics (at twice the state count).
    pub fn to_companion(&self) -> DescriptorSystem {
        let n = self.order();
        let p = self.num_inputs();
        let mut e = CooMatrix::new(2 * n, 2 * n);
        let mut a = CooMatrix::new(2 * n, 2 * n);
        let mut b = CooMatrix::new(2 * n, p);
        for i in 0..n {
            e.push(i, i, 1.0);
            a.push(i, n + i, 1.0);
        }
        for i in 0..n {
            for (j, v) in self.m2.row(i) {
                e.push(n + i, n + j, v);
            }
            for (j, v) in self.m1.row(i) {
                a.push(n + i, n + j, -v);
            }
            for (j, v) in self.m0.row(i) {
                a.push(n + i, j, -v);
            }
            for (j, v) in self.b.row(i) {
                b.push(n + i, j, v);
            }
        }
        let c = self.c.as_ref().map(|c| {
            let mut cc = CooMatrix::new(c.nrows(), 2 * n);
            for i in 0..c.nrows() {
                for (j, v) in c.row(i) {
                    cc.push(i, j, v);
                }
            }
            cc.to_csr()
        });
        DescriptorSystem::new(e.to_csr(), a.to_csr(), b.to_csr(), c)
            .expect("companion dimensions are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eye(n: usize) -> CsrMatrix {
        CsrMatrix::identity(n)
    }

    #[test]
    fn construction_and_multiterm_view() {
        let s = SecondOrderSystem::new(eye(3), eye(3).scale(0.5), eye(3).scale(2.0), eye(3), None)
            .unwrap();
        let mt = s.to_multiterm();
        assert_eq!(mt.terms().len(), 3);
        assert_eq!(mt.max_order(), 2.0);
        assert_eq!(mt.order(), 3);
    }

    #[test]
    fn companion_structure() {
        // ẍ + 3ẋ + 2x = u  (scalar)
        let s = SecondOrderSystem::new(eye(1), eye(1).scale(3.0), eye(1).scale(2.0), eye(1), None)
            .unwrap();
        let comp = s.to_companion();
        assert_eq!(comp.order(), 2);
        let (e, a, b) = comp.to_dense();
        // E = I₂ here since M₂ = I.
        assert!(e.sub(&opm_linalg::DMatrix::identity(2)).norm_max() < 1e-15);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), -2.0);
        assert_eq!(a.get(1, 1), -3.0);
        assert_eq!(b.get(1, 0), 1.0);
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    fn dimension_validation() {
        assert!(SecondOrderSystem::new(eye(2), eye(3), eye(2), eye(2), None).is_err());
        assert!(SecondOrderSystem::new(eye(2), eye(2), eye(2), eye(3), None).is_err());
    }
}
