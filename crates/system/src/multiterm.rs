//! Multi-term (incommensurate) fractional/integer systems
//! `Σ_k M_k · d^{α_k} x / dt^{α_k} = B·u`.
//!
//! This is the natural generalization of the paper's high-order case: the
//! OPM column solve only needs every `D^{α_k}` to be upper triangular,
//! which holds for any set of orders. The second-order power-grid model
//! `C ẍ + G ẋ + Γ x = B u` is the three-term instance
//! `[(2, C), (1, G), (0, Γ)]`.

use crate::{DescriptorSystem, SystemError};
use opm_sparse::CsrMatrix;

/// One differential term `M·d^α x`.
#[derive(Clone, Debug)]
pub struct Term {
    /// Differentiation order `α ≥ 0` (0 = algebraic term).
    pub alpha: f64,
    /// Coefficient matrix `M` (n×n).
    pub matrix: CsrMatrix,
}

/// A multi-term differential system.
#[derive(Clone, Debug)]
pub struct MultiTermSystem {
    terms: Vec<Term>,
    b: CsrMatrix,
    c: Option<CsrMatrix>,
}

impl MultiTermSystem {
    /// Builds and validates a multi-term system.
    ///
    /// Terms are sorted by descending order; duplicate orders are allowed
    /// (their matrices act additively).
    ///
    /// # Errors
    /// - [`SystemError::Empty`] when no terms are supplied.
    /// - [`SystemError::InvalidOrder`] for negative/non-finite orders.
    /// - [`SystemError::DimensionMismatch`] for inconsistent shapes.
    pub fn new(
        mut terms: Vec<Term>,
        b: CsrMatrix,
        c: Option<CsrMatrix>,
    ) -> Result<Self, SystemError> {
        if terms.is_empty() {
            return Err(SystemError::Empty);
        }
        let n = terms[0].matrix.nrows();
        for t in &terms {
            if !(t.alpha >= 0.0 && t.alpha.is_finite()) {
                return Err(SystemError::InvalidOrder(t.alpha));
            }
            if t.matrix.nrows() != n || t.matrix.ncols() != n {
                return Err(SystemError::DimensionMismatch(format!(
                    "term matrices must be {n}x{n}, got {}x{}",
                    t.matrix.nrows(),
                    t.matrix.ncols()
                )));
            }
        }
        if b.nrows() != n {
            return Err(SystemError::DimensionMismatch(format!(
                "B must have {n} rows, got {}",
                b.nrows()
            )));
        }
        if let Some(ref c) = c {
            if c.ncols() != n {
                return Err(SystemError::DimensionMismatch(format!(
                    "C must have {n} columns, got {}",
                    c.ncols()
                )));
            }
        }
        terms.sort_by(|x, y| y.alpha.partial_cmp(&x.alpha).unwrap());
        Ok(MultiTermSystem { terms, b, c })
    }

    /// Number of state variables.
    pub fn order(&self) -> usize {
        self.terms[0].matrix.nrows()
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.b.ncols()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.c.as_ref().map_or(self.order(), CsrMatrix::nrows)
    }

    /// The terms, sorted by descending order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// The highest differentiation order.
    pub fn max_order(&self) -> f64 {
        self.terms[0].alpha
    }

    /// The input matrix.
    pub fn b(&self) -> &CsrMatrix {
        &self.b
    }

    /// The output matrix, if any.
    pub fn c(&self) -> Option<&CsrMatrix> {
        self.c.as_ref()
    }

    /// Applies the output map.
    pub fn output(&self, x: &[f64]) -> Vec<f64> {
        match &self.c {
            Some(c) => c.mul_vec(x),
            None => x.to_vec(),
        }
    }

    /// Converts a descriptor system `E ẋ = A x + B u` into the two-term
    /// form `E·d¹x + (−A)·d⁰x = B·u`.
    pub fn from_descriptor(sys: &DescriptorSystem) -> Self {
        let terms = vec![
            Term {
                alpha: 1.0,
                matrix: sys.e().clone(),
            },
            Term {
                alpha: 0.0,
                matrix: sys.a().scale(-1.0),
            },
        ];
        MultiTermSystem {
            terms,
            b: sys.b().clone(),
            c: sys.c().cloned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_sparse::CooMatrix;

    fn eye(n: usize) -> CsrMatrix {
        CsrMatrix::identity(n)
    }

    #[test]
    fn terms_sorted_descending() {
        let sys = MultiTermSystem::new(
            vec![
                Term {
                    alpha: 0.0,
                    matrix: eye(2),
                },
                Term {
                    alpha: 2.0,
                    matrix: eye(2),
                },
                Term {
                    alpha: 1.0,
                    matrix: eye(2),
                },
            ],
            eye(2),
            None,
        )
        .unwrap();
        let orders: Vec<f64> = sys.terms().iter().map(|t| t.alpha).collect();
        assert_eq!(orders, vec![2.0, 1.0, 0.0]);
        assert_eq!(sys.max_order(), 2.0);
    }

    #[test]
    fn from_descriptor_roundtrip_semantics() {
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, -3.0);
        a.push(1, 0, 1.0);
        let d = DescriptorSystem::new(eye(2), a.to_csr(), eye(2), None).unwrap();
        let mt = MultiTermSystem::from_descriptor(&d);
        assert_eq!(mt.terms().len(), 2);
        assert_eq!(mt.terms()[0].alpha, 1.0);
        // −A stored for the algebraic term.
        assert_eq!(mt.terms()[1].matrix.get(0, 0), 3.0);
        assert_eq!(mt.terms()[1].matrix.get(1, 0), -1.0);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            MultiTermSystem::new(vec![], eye(1), None),
            Err(SystemError::Empty)
        ));
        assert!(MultiTermSystem::new(
            vec![Term {
                alpha: -1.0,
                matrix: eye(1)
            }],
            eye(1),
            None
        )
        .is_err());
        assert!(MultiTermSystem::new(
            vec![Term {
                alpha: 1.0,
                matrix: eye(2)
            }],
            eye(3),
            None
        )
        .is_err());
    }
}
