//! System-model types shared across the OPM workspace.
//!
//! Producers (`opm-circuits` assembly) and consumers (`opm-core` OPM
//! solvers, `opm-transient` baselines, `opm-fft` frequency-domain baseline)
//! meet at these types:
//!
//! - [`DescriptorSystem`] — `E·ẋ = A·x + B·u`, `y = C·x` (paper Eq. 9),
//!   the DAE/ODE form of MNA.
//! - [`FractionalSystem`] — `E·d^α x/dt^α = A·x + B·u` (paper Eq. 19).
//! - [`MultiTermSystem`] — `Σ_k M_k·d^{α_k} x = B·u`, the generalization
//!   covering high-order systems (paper §IV) *with* lower-order damping
//!   terms, e.g. the second-order power-grid model `C ẍ + G ẋ + Γ x = B u`.
//! - [`SecondOrderSystem`] — the named second-order special case.
//!
//! All matrices are sparse ([`opm_sparse::CsrMatrix`]); dense views exist
//! for small-system oracles.

// No unsafe anywhere in this crate; the only unsafe in the workspace
// is the audited AVX panel dispatch in opm-{core,sparse,fracnum}.
#![forbid(unsafe_code)]

pub mod descriptor;
pub mod fractional;
pub mod multiterm;
pub mod second_order;

pub use descriptor::DescriptorSystem;
pub use fractional::FractionalSystem;
pub use multiterm::{MultiTermSystem, Term};
pub use second_order::SecondOrderSystem;

/// Errors for system construction and validation.
#[derive(Clone, Debug, PartialEq)]
pub enum SystemError {
    /// A matrix has dimensions inconsistent with the state/input/output
    /// counts.
    DimensionMismatch(String),
    /// A differentiation order is invalid (negative, NaN).
    InvalidOrder(f64),
    /// The system has no terms.
    Empty,
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::DimensionMismatch(what) => write!(f, "dimension mismatch: {what}"),
            SystemError::InvalidOrder(a) => write!(f, "invalid differentiation order {a}"),
            SystemError::Empty => write!(f, "system has no terms"),
        }
    }
}

impl std::error::Error for SystemError {}
