//! Fractional descriptor systems `E·d^α x/dt^α = A·x + B·u` (paper Eq. 19).

use crate::{DescriptorSystem, SystemError};

/// A commensurate fractional-order descriptor system.
///
/// The single order `α > 0` applies to every state (the paper's Eq. 19);
/// incommensurate mixtures are expressed as [`MultiTermSystem`]s.
///
/// Initial conditions are zero in the Caputo sense, matching the paper's
/// assumption ("for ease of notation a zero initial condition is assumed").
///
/// [`MultiTermSystem`]: crate::MultiTermSystem
#[derive(Clone, Debug)]
pub struct FractionalSystem {
    alpha: f64,
    sys: DescriptorSystem,
}

impl FractionalSystem {
    /// Wraps a descriptor system with a fractional order.
    ///
    /// # Errors
    /// [`SystemError::InvalidOrder`] unless `0 < α` and `α` is finite.
    pub fn new(alpha: f64, sys: DescriptorSystem) -> Result<Self, SystemError> {
        if !(alpha > 0.0 && alpha.is_finite()) {
            return Err(SystemError::InvalidOrder(alpha));
        }
        Ok(FractionalSystem { alpha, sys })
    }

    /// The differentiation order `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The underlying matrices.
    pub fn system(&self) -> &DescriptorSystem {
        &self.sys
    }

    /// Number of state variables.
    pub fn order(&self) -> usize {
        self.sys.order()
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> usize {
        self.sys.num_inputs()
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.sys.num_outputs()
    }

    /// True when `α` is a positive integer — the "high-order differential
    /// system" special case of paper §IV.
    pub fn is_integer_order(&self) -> bool {
        self.alpha.fract() == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_sparse::{CooMatrix, CsrMatrix};

    fn trivial() -> DescriptorSystem {
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        DescriptorSystem::new(
            CsrMatrix::identity(1),
            CsrMatrix::identity(1).scale(-1.0),
            b.to_csr(),
            None,
        )
        .unwrap()
    }

    #[test]
    fn accepts_valid_orders() {
        for &a in &[0.5, 1.0, 1.5, 2.0, 3.0] {
            let f = FractionalSystem::new(a, trivial()).unwrap();
            assert_eq!(f.alpha(), a);
            assert_eq!(f.is_integer_order(), a.fract() == 0.0);
        }
    }

    #[test]
    fn rejects_invalid_orders() {
        for &a in &[0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert!(FractionalSystem::new(a, trivial()).is_err(), "α={a}");
        }
    }

    #[test]
    fn delegating_accessors() {
        let f = FractionalSystem::new(0.5, trivial()).unwrap();
        assert_eq!(f.order(), 1);
        assert_eq!(f.num_inputs(), 1);
        assert_eq!(f.num_outputs(), 1);
    }
}
