//! Descriptor state-space systems `E·ẋ = A·x + B·u`, `y = C·x`.

use crate::SystemError;
use opm_linalg::DMatrix;
use opm_sparse::CsrMatrix;

/// A linear time-invariant descriptor system (paper Eq. 9).
///
/// `E` may be singular (a DAE); the only solvability requirement OPM and
/// the implicit baselines place on it is that the pencil `σE − A` is
/// regular for the shifts σ they use.
///
/// ```
/// use opm_sparse::CooMatrix;
/// use opm_system::DescriptorSystem;
/// // ẋ = −x + u
/// let mut e = CooMatrix::new(1, 1); e.push(0, 0, 1.0);
/// let mut a = CooMatrix::new(1, 1); a.push(0, 0, -1.0);
/// let mut b = CooMatrix::new(1, 1); b.push(0, 0, 1.0);
/// let sys = DescriptorSystem::new(e.to_csr(), a.to_csr(), b.to_csr(), None).unwrap();
/// assert_eq!(sys.order(), 1);
/// assert_eq!(sys.num_inputs(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DescriptorSystem {
    e: CsrMatrix,
    a: CsrMatrix,
    b: CsrMatrix,
    /// Output selector; `None` means `y = x` (full state observed).
    c: Option<CsrMatrix>,
}

impl DescriptorSystem {
    /// Builds and validates a descriptor system.
    ///
    /// # Errors
    /// [`SystemError::DimensionMismatch`] when shapes are inconsistent.
    pub fn new(
        e: CsrMatrix,
        a: CsrMatrix,
        b: CsrMatrix,
        c: Option<CsrMatrix>,
    ) -> Result<Self, SystemError> {
        let n = e.nrows();
        if e.ncols() != n {
            return Err(SystemError::DimensionMismatch(format!(
                "E must be square, got {}x{}",
                e.nrows(),
                e.ncols()
            )));
        }
        if a.nrows() != n || a.ncols() != n {
            return Err(SystemError::DimensionMismatch(format!(
                "A must be {n}x{n}, got {}x{}",
                a.nrows(),
                a.ncols()
            )));
        }
        if b.nrows() != n {
            return Err(SystemError::DimensionMismatch(format!(
                "B must have {n} rows, got {}",
                b.nrows()
            )));
        }
        if let Some(ref c) = c {
            if c.ncols() != n {
                return Err(SystemError::DimensionMismatch(format!(
                    "C must have {n} columns, got {}",
                    c.ncols()
                )));
            }
        }
        Ok(DescriptorSystem { e, a, b, c })
    }

    /// Number of state variables `n`.
    pub fn order(&self) -> usize {
        self.e.nrows()
    }

    /// Number of inputs `p`.
    pub fn num_inputs(&self) -> usize {
        self.b.ncols()
    }

    /// Number of outputs `q` (equals `n` when no `C` is attached).
    pub fn num_outputs(&self) -> usize {
        self.c.as_ref().map_or(self.order(), CsrMatrix::nrows)
    }

    /// The descriptor matrix `E`.
    pub fn e(&self) -> &CsrMatrix {
        &self.e
    }

    /// The state matrix `A`.
    pub fn a(&self) -> &CsrMatrix {
        &self.a
    }

    /// The input matrix `B`.
    pub fn b(&self) -> &CsrMatrix {
        &self.b
    }

    /// The output matrix `C`, if any.
    pub fn c(&self) -> Option<&CsrMatrix> {
        self.c.as_ref()
    }

    /// Applies the output map: `y = C·x` (or a copy of `x`).
    pub fn output(&self, x: &[f64]) -> Vec<f64> {
        match &self.c {
            Some(c) => c.mul_vec(x),
            None => x.to_vec(),
        }
    }

    /// Dense `(E, A, B)` views for small-system oracles.
    ///
    /// # Panics
    /// Panics when `order() > 2048` (guard against accidental
    /// densification of grid-scale systems).
    pub fn to_dense(&self) -> (DMatrix, DMatrix, DMatrix) {
        assert!(
            self.order() <= 2048,
            "refusing to densify a system of order {}",
            self.order()
        );
        (self.e.to_dense(), self.a.to_dense(), self.b.to_dense())
    }

    /// True when `E` is the identity (a plain ODE system).
    pub fn is_ode(&self) -> bool {
        let n = self.order();
        if self.e.nnz() != n {
            return false;
        }
        (0..n).all(|i| {
            let mut it = self.e.row(i);
            matches!(it.next(), Some((j, v)) if j == i && v == 1.0) && it.next().is_none()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_sparse::CooMatrix;

    fn eye(n: usize) -> CsrMatrix {
        CsrMatrix::identity(n)
    }

    fn mat(n: usize, m: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut c = CooMatrix::new(n, m);
        for &(i, j, v) in entries {
            c.push(i, j, v);
        }
        c.to_csr()
    }

    #[test]
    fn construction_and_accessors() {
        let sys = DescriptorSystem::new(
            eye(2),
            mat(2, 2, &[(0, 0, -1.0), (1, 1, -2.0)]),
            mat(2, 1, &[(0, 0, 1.0)]),
            Some(mat(1, 2, &[(0, 1, 1.0)])),
        )
        .unwrap();
        assert_eq!(sys.order(), 2);
        assert_eq!(sys.num_inputs(), 1);
        assert_eq!(sys.num_outputs(), 1);
        assert!(sys.is_ode());
        assert_eq!(sys.output(&[3.0, 4.0]), vec![4.0]);
    }

    #[test]
    fn output_defaults_to_state() {
        let sys = DescriptorSystem::new(eye(2), eye(2), mat(2, 1, &[(0, 0, 1.0)]), None).unwrap();
        assert_eq!(sys.num_outputs(), 2);
        assert_eq!(sys.output(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn dae_is_not_ode() {
        // Singular E.
        let sys = DescriptorSystem::new(
            mat(2, 2, &[(0, 0, 1.0)]),
            eye(2),
            mat(2, 1, &[(1, 0, 1.0)]),
            None,
        )
        .unwrap();
        assert!(!sys.is_ode());
    }

    #[test]
    fn dimension_validation() {
        assert!(DescriptorSystem::new(mat(2, 3, &[]), eye(2), mat(2, 1, &[]), None).is_err());
        assert!(DescriptorSystem::new(eye(2), eye(3), mat(2, 1, &[]), None).is_err());
        assert!(DescriptorSystem::new(eye(2), eye(2), mat(3, 1, &[]), None).is_err());
        assert!(
            DescriptorSystem::new(eye(2), eye(2), mat(2, 1, &[]), Some(mat(1, 3, &[]))).is_err()
        );
    }
}
