//! Hermetic scoped-thread parallelism for the OPM workspace.
//!
//! The workspace builds in environments with no access to crates.io, so
//! this crate stands in for the tiny slice of `rayon` the tree actually
//! needs — in the same spirit as `opm-rng` (a `rand` stand-in) and the
//! offline `criterion` shim in `opm-bench`. It is `std`-only: workers
//! are [`std::thread::scope`] threads pulling indices from an atomic
//! counter, so borrowed inputs work without `'static` bounds and there
//! is no global pool to configure or poison.
//!
//! Two entry points:
//!
//! - [`par_map`] — map a slice through a `Sync` closure on `threads`
//!   workers; the output vector is in input order regardless of
//!   scheduling, so callers stay deterministic.
//! - [`default_threads`] — the worker count the batch runtime sizes
//!   itself by: `OPM_THREADS` when set to a positive integer, otherwise
//!   [`std::thread::available_parallelism`] capped at
//!   [`MAX_DEFAULT_THREADS`].
//!
//! Determinism contract: `par_map` only distributes *which worker*
//! computes each element; per-element computation and output placement
//! are unaffected by the thread count. Callers whose per-element work is
//! deterministic therefore get bit-identical results for every
//! `threads` value — the property the engine's batch solver and the
//! `OPM_THREADS={1,4}` CI matrix pin down.
//!
//! ```
//! let squares = opm_par::par_map(4, &[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

// No unsafe anywhere in this crate; the only unsafe in the workspace
// is the audited AVX panel dispatch in opm-{core,sparse,fracnum}.
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The one primitive the dynamic work distribution needs: an atomic
/// claim counter handing out strictly increasing indices.
///
/// Extracted as a trait so the claim loop ([`claim_indices`]) is
/// generic over the primitive: production uses [`AtomicUsize`],
/// `opm-verify` substitutes its deterministic-scheduler shim and
/// exhaustively checks that every index in `0..len` is claimed exactly
/// once and every worker's loop terminates, for any interleaving.
pub trait ClaimCounter: Sync {
    /// Atomically returns the current value and increments it — each
    /// call observes a distinct value, across all threads.
    fn claim_next(&self) -> usize;
}

impl ClaimCounter for AtomicUsize {
    fn claim_next(&self) -> usize {
        // Relaxed is enough: the counter is the only shared state in the
        // claim protocol, and `fetch_add`'s read-modify-write atomicity
        // alone guarantees uniqueness of the returned indices. The
        // results each worker writes are published to the caller by the
        // thread join, not by this counter.
        self.fetch_add(1, Ordering::Relaxed)
    }
}

/// The work-claiming loop every `par_map` worker runs: pull indices
/// from the shared counter until it runs past `len`, visiting each
/// claimed index. The counter hands out each index at most once, so
/// across all workers every index in `0..len` is visited exactly once;
/// a worker that draws `>= len` stops — the loop always terminates
/// after at most one overdraw per worker.
pub fn claim_indices<C: ClaimCounter>(next: &C, len: usize, mut visit: impl FnMut(usize)) {
    loop {
        let i = next.claim_next();
        if i >= len {
            break;
        }
        visit(i);
    }
}

/// Cap on the *default* worker count (explicit `OPM_THREADS` values may
/// exceed it): beyond a handful of cores the sparse sweeps here are
/// memory-bound, and a modest cap keeps shared CI runners polite.
pub const MAX_DEFAULT_THREADS: usize = 8;

/// Worker count for the calling environment: the `OPM_THREADS`
/// environment variable when it parses as a positive integer, otherwise
/// [`std::thread::available_parallelism`] capped at
/// [`MAX_DEFAULT_THREADS`].
///
/// `OPM_THREADS` is re-read on every call so tests and long-lived
/// processes can retune without restarting; the core count is probed
/// once per process — `available_parallelism` walks cgroup files on
/// Linux (microseconds per call), far too slow for a function sitting
/// on the per-solve path.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("OPM_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(MAX_DEFAULT_THREADS)
    })
}

/// Maps `items` through `f` on up to `threads` scoped workers, returning
/// the results **in input order**.
///
/// Work is distributed dynamically (an atomic index; cheap elements do
/// not stall behind expensive ones), but the mapping from input index to
/// output slot is fixed, so the result is independent of scheduling and
/// thread count. `threads <= 1` (or a single-element input) runs inline
/// on the caller's thread with no spawning at all.
///
/// # Panics
/// Propagates the first worker panic to the caller (the remaining
/// workers finish their in-flight elements first).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let t = threads.max(1).min(items.len());
    if t <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let worker = || {
        let mut local: Vec<(usize, R)> = Vec::new();
        claim_indices(&next, items.len(), |i| local.push((i, f(&items[i]))));
        local
    };
    let gathered: Vec<Result<Vec<(usize, R)>, _>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..t).map(|_| s.spawn(worker)).collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for res in gathered {
        match res {
            Ok(pairs) => {
                for (i, r) in pairs {
                    slots[i] = Some(r);
                }
            }
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_every_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 31 + 7).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            assert_eq!(par_map(threads, &items, |&x| x * 31 + 7), serial);
        }
    }

    #[test]
    fn borrows_without_static_bounds() {
        let words = ["alpha".to_string(), "beta".to_string()];
        let lens = par_map(2, &words, |w| w.len());
        assert_eq!(lens, vec![5, 4]);
        drop(words); // still owned by the caller
    }

    #[test]
    fn empty_and_oversubscribed_inputs() {
        let none: Vec<i32> = par_map(8, &[], |&x: &i32| x);
        assert!(none.is_empty());
        assert_eq!(par_map(16, &[42], |&x| x + 1), vec![43]);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            par_map(4, &[1, 2, 3, 4, 5, 6, 7, 8], |&x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
