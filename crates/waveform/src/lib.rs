//! Input stimuli with exact antiderivatives.
//!
//! BPF projection coefficients are *interval averages* (paper Eq. 2):
//! `u_i = (1/h)∫ u(t) dt` over interval `i`. Every waveform here knows its
//! antiderivative in closed form, so projections are exact to roundoff —
//! no quadrature error enters the OPM pipeline through the inputs.
//!
//! The SPICE-flavoured shapes (`PULSE`, `SIN`, `EXP`, `PWL`) cover the
//! experiments; [`Waveform::derivative`] exists because the second-order
//! nodal form differentiates its current excitation.

// No unsafe anywhere in this crate; the only unsafe in the workspace
// is the audited AVX panel dispatch in opm-{core,sparse,fracnum}.
#![forbid(unsafe_code)]

pub mod waveform;

pub use waveform::{InputSet, Waveform, WaveformError};
