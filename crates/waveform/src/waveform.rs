//! The [`Waveform`] enum and its exact calculus.

use std::f64::consts::TAU;

/// Construction errors for waveforms whose validity depends on their
/// data (currently PWL point lists).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaveformError {
    /// A PWL waveform needs at least one `(t, v)` breakpoint.
    EmptyPwl,
    /// A PWL breakpoint has a NaN/infinite time or value (index given).
    NonFinitePwl(usize),
}

impl std::fmt::Display for WaveformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaveformError::EmptyPwl => {
                write!(f, "PWL waveform needs at least one (t, v) breakpoint")
            }
            WaveformError::NonFinitePwl(i) => {
                write!(f, "PWL breakpoint {i} has a non-finite time or value")
            }
        }
    }
}

impl std::error::Error for WaveformError {}

/// A scalar input waveform `u(t)` on `t ≥ 0` with closed-form
/// antiderivative and piecewise derivative.
///
/// ```
/// use opm_waveform::Waveform;
/// let w = Waveform::step(1.0, 2.5);
/// assert_eq!(w.eval(0.5), 0.0);
/// assert_eq!(w.eval(1.5), 2.5);
/// // Exact average over [0, 2): half the interval is on.
/// assert!((w.average(0.0, 2.0) - 1.25).abs() < 1e-15);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Waveform {
    /// Constant level.
    Dc(f64),
    /// `0` before `t0`, `level` after.
    Step {
        /// Switch-on time.
        t0: f64,
        /// Level after `t0`.
        level: f64,
    },
    /// `slope·t` for `t ≥ 0`.
    Ramp {
        /// Slope.
        slope: f64,
    },
    /// SPICE `PULSE(v1 v2 delay rise width fall period)`.
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge.
        delay: f64,
        /// Rise time (> 0).
        rise: f64,
        /// Time at `v2`.
        width: f64,
        /// Fall time (> 0).
        fall: f64,
        /// Repetition period (`0` = single pulse).
        period: f64,
    },
    /// SPICE `SIN(offset ampl freq delay damp)`:
    /// `offset` for `t < delay`, then
    /// `offset + ampl·e^{−damp(t−delay)}·sin(2πf(t−delay))`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Start delay.
        delay: f64,
        /// Damping factor (1/s).
        damp: f64,
    },
    /// SPICE `EXP(v1 v2 td1 tau1 td2 tau2)`: rises from `v1` toward `v2`
    /// with time constant `tau1` after `td1`, then decays back toward `v1`
    /// with `tau2` after `td2`.
    Exp {
        /// Initial value.
        v1: f64,
        /// Target value of the rising phase.
        v2: f64,
        /// Rise delay.
        td1: f64,
        /// Rise time constant (> 0).
        tau1: f64,
        /// Decay delay (≥ td1).
        td2: f64,
        /// Decay time constant (> 0).
        tau2: f64,
    },
    /// Piecewise-linear through `(t, v)` breakpoints (sorted by `t`);
    /// clamps to the first/last value outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Unit step at `t0` scaled to `level`.
    pub fn step(t0: f64, level: f64) -> Self {
        Waveform::Step { t0, level }
    }

    /// Convenience constructor for a periodic trapezoidal pulse.
    pub fn pulse(
        v1: f64,
        v2: f64,
        delay: f64,
        rise: f64,
        width: f64,
        fall: f64,
        period: f64,
    ) -> Self {
        assert!(rise > 0.0 && fall > 0.0, "rise/fall must be positive");
        assert!(
            period == 0.0 || period >= rise + width + fall,
            "period must fit the pulse shape"
        );
        Waveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            width,
            fall,
            period,
        }
    }

    /// Sine wave `ampl·sin(2πft)` with optional offset/delay/damping.
    pub fn sine(offset: f64, ampl: f64, freq: f64, delay: f64, damp: f64) -> Self {
        Waveform::Sine {
            offset,
            ampl,
            freq,
            delay,
            damp,
        }
    }

    /// SPICE EXP source.
    ///
    /// # Panics
    /// Panics when a time constant is non-positive or `td2 < td1`.
    pub fn exp(v1: f64, v2: f64, td1: f64, tau1: f64, td2: f64, tau2: f64) -> Self {
        assert!(tau1 > 0.0 && tau2 > 0.0, "time constants must be positive");
        assert!(td2 >= td1, "decay must start after the rise");
        Waveform::Exp {
            v1,
            v2,
            td1,
            tau1,
            td2,
            tau2,
        }
    }

    /// Builds a PWL waveform; points are sorted by time (a stable sort,
    /// so coincident-time breakpoints keep their relative order and model
    /// an instantaneous jump).
    ///
    /// # Errors
    /// [`WaveformError::EmptyPwl`] on an empty point list,
    /// [`WaveformError::NonFinitePwl`] when any breakpoint time or value
    /// is NaN or infinite.
    pub fn pwl(mut points: Vec<(f64, f64)>) -> Result<Self, WaveformError> {
        if points.is_empty() {
            return Err(WaveformError::EmptyPwl);
        }
        if let Some(i) = points
            .iter()
            .position(|&(t, v)| !t.is_finite() || !v.is_finite())
        {
            return Err(WaveformError::NonFinitePwl(i));
        }
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(Waveform::Pwl(points))
    }

    /// Evaluates `u(t)`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Step { t0, level } => {
                if t >= *t0 {
                    *level
                } else {
                    0.0
                }
            }
            Waveform::Ramp { slope } => {
                if t >= 0.0 {
                    slope * t
                } else {
                    0.0
                }
            }
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                width,
                fall,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tau = t - delay;
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            Waveform::Sine {
                offset,
                ampl,
                freq,
                delay,
                damp,
            } => {
                if t < *delay {
                    *offset
                } else {
                    let tau = t - delay;
                    offset + ampl * (-damp * tau).exp() * (TAU * freq * tau).sin()
                }
            }
            Waveform::Exp {
                v1,
                v2,
                td1,
                tau1,
                td2,
                tau2,
            } => {
                let mut v = *v1;
                if t >= *td1 {
                    v += (v2 - v1) * (1.0 - (-(t - td1) / tau1).exp());
                }
                if t >= *td2 {
                    v += (v1 - v2) * (1.0 - (-(t - td2) / tau2).exp());
                }
                v
            }
            Waveform::Pwl(points) => {
                // Directly-constructed `Pwl(vec![])` bypasses the
                // validating constructor; treat it as the zero waveform
                // rather than indexing out of bounds.
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                let idx = points.partition_point(|&(tp, _)| tp <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                }
            }
        }
    }

    /// The antiderivative `F(t) = ∫₀ᵗ u(τ) dτ` in closed form (`t ≥ 0`).
    pub fn integral(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        match self {
            Waveform::Dc(v) => v * t,
            Waveform::Step { t0, level } => {
                if t <= *t0 {
                    0.0
                } else {
                    level * (t - t0.max(0.0))
                }
            }
            Waveform::Ramp { slope } => 0.5 * slope * t * t,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                width,
                fall,
                period,
            } => {
                let mut acc = v1 * t.min(*delay);
                if t <= *delay {
                    return acc;
                }
                let tau = t - delay;
                let shape_len = rise + width + fall;
                let one_period = |tl: f64| -> f64 {
                    // ∫ of one pulse shape from 0 to tl (tl within period).
                    let mut s = 0.0;
                    // Rising edge.
                    let tr = tl.min(*rise);
                    if tr > 0.0 {
                        s += v1 * tr + 0.5 * (v2 - v1) * tr * tr / rise;
                    }
                    // Flat top.
                    let tw = (tl - rise).clamp(0.0, *width);
                    if tw > 0.0 {
                        s += v2 * tw;
                    }
                    // Falling edge.
                    let tf = (tl - rise - width).clamp(0.0, *fall);
                    if tf > 0.0 {
                        s += v2 * tf + 0.5 * (v1 - v2) * tf * tf / fall;
                    }
                    // Off (back at v1).
                    let toff = tl - shape_len;
                    if toff > 0.0 {
                        s += v1 * toff;
                    }
                    s
                };
                if *period > 0.0 {
                    let full = (tau / period).floor();
                    acc += full * one_period(*period);
                    acc += one_period(tau - full * period);
                } else {
                    acc += one_period(tau);
                }
                acc
            }
            Waveform::Sine {
                offset,
                ampl,
                freq,
                delay,
                damp,
            } => {
                let mut acc = offset * t.min(*delay);
                if t <= *delay {
                    return acc;
                }
                let tau = t - delay;
                acc += offset * tau;
                let w = TAU * freq;
                let a = -damp;
                // ∫₀^τ e^{aσ} sin(wσ) dσ = [e^{aσ}(a sin wσ − w cos wσ)]₀^τ/(a²+w²)
                let denom = a * a + w * w;
                if denom == 0.0 {
                    return acc; // freq = damp = 0: sin term vanishes
                }
                let at = (a * tau).exp();
                let val = (at * (a * (w * tau).sin() - w * (w * tau).cos()) + w) / denom;
                acc + ampl * val
            }
            Waveform::Exp {
                v1,
                v2,
                td1,
                tau1,
                td2,
                tau2,
            } => {
                // ∫(1 − e^{−(t−td)/τ}) from td to t = (t − td) − τ(1 − e^{−(t−td)/τ})
                let ramp = |t: f64, td: f64, tau: f64| -> f64 {
                    if t <= td {
                        0.0
                    } else {
                        (t - td) - tau * (1.0 - (-(t - td) / tau).exp())
                    }
                };
                v1 * t + (v2 - v1) * ramp(t, *td1, *tau1) + (v1 - v2) * ramp(t, *td2, *tau2)
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                let mut acc = 0.0;
                let mut prev_t = 0.0f64;
                // Leading clamp before the first breakpoint.
                if points[0].0 > 0.0 {
                    let seg_end = points[0].0.min(t);
                    acc += points[0].1 * (seg_end - 0.0).max(0.0);
                    prev_t = seg_end;
                    if t <= points[0].0 {
                        return acc;
                    }
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t0 {
                        break;
                    }
                    let lo = t0.max(prev_t).max(0.0);
                    let hi = t1.min(t);
                    if hi > lo && t1 > t0 {
                        // Linear segment value at σ: v0 + (v1−v0)(σ−t0)/(t1−t0).
                        let slope = (v1 - v0) / (t1 - t0);
                        let va = v0 + slope * (lo - t0);
                        let vb = v0 + slope * (hi - t0);
                        acc += 0.5 * (va + vb) * (hi - lo);
                    }
                    prev_t = prev_t.max(hi);
                }
                // Trailing clamp.
                let last = points[points.len() - 1];
                if t > last.0 {
                    acc += last.1 * (t - last.0.max(0.0));
                }
                acc
            }
        }
    }

    /// Exact interval average `(1/(b−a))·∫_a^b u` — the BPF projection
    /// kernel.
    ///
    /// # Panics
    /// Panics when `b <= a`.
    pub fn average(&self, a: f64, b: f64) -> f64 {
        assert!(b > a, "average needs b > a");
        (self.integral(b) - self.integral(a)) / (b - a)
    }

    /// Piecewise derivative `u̇(t)` (one-sided at corners; Dirac masses of
    /// ideal steps are *not* represented — use finite rise times when the
    /// derivative feeds a model).
    pub fn derivative(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(_) | Waveform::Step { .. } => 0.0,
            Waveform::Ramp { slope } => {
                if t >= 0.0 {
                    *slope
                } else {
                    0.0
                }
            }
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                width,
                fall,
                period,
            } => {
                if t < *delay {
                    return 0.0;
                }
                let mut tau = t - delay;
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    (v2 - v1) / rise
                } else if tau < rise + width {
                    0.0
                } else if tau < rise + width + fall {
                    (v1 - v2) / fall
                } else {
                    0.0
                }
            }
            Waveform::Sine {
                ampl,
                freq,
                delay,
                damp,
                ..
            } => {
                if t < *delay {
                    0.0
                } else {
                    let tau = t - delay;
                    let w = TAU * freq;
                    ampl * (-damp * tau).exp() * (w * (w * tau).cos() - damp * (w * tau).sin())
                }
            }
            Waveform::Exp {
                v1,
                v2,
                td1,
                tau1,
                td2,
                tau2,
            } => {
                let mut d = 0.0;
                if t >= *td1 {
                    d += (v2 - v1) / tau1 * (-(t - td1) / tau1).exp();
                }
                if t >= *td2 {
                    d += (v1 - v2) / tau2 * (-(t - td2) / tau2).exp();
                }
                d
            }
            Waveform::Pwl(points) => {
                if points.is_empty() || t < points[0].0 || t >= points[points.len() - 1].0 {
                    return 0.0;
                }
                let idx = points.partition_point(|&(tp, _)| tp <= t);
                let (t0, v0) = points[idx - 1];
                let (t1, v1) = points[idx];
                if t1 == t0 {
                    0.0
                } else {
                    (v1 - v0) / (t1 - t0)
                }
            }
        }
    }

    /// BPF projection: the `m` interval averages on `[0, t_end)`.
    pub fn bpf_coeffs(&self, m: usize, t_end: f64) -> Vec<f64> {
        let h = t_end / m as f64;
        (0..m)
            .map(|i| self.average(i as f64 * h, (i + 1) as f64 * h))
            .collect()
    }

    /// Offset BPF projection: the `m` interval averages on the window
    /// `[t_start, t_start + t_len)`, sampled at **global** time — the
    /// per-window projection of a windowed/streaming solve, which shifts
    /// the sampling grid instead of mutating the waveform.
    ///
    /// `bpf_coeffs_window(m, 0.0, t_end)` equals
    /// [`bpf_coeffs`](Self::bpf_coeffs)`(m, t_end)`.
    pub fn bpf_coeffs_window(&self, m: usize, t_start: f64, t_len: f64) -> Vec<f64> {
        let h = t_len / m as f64;
        (0..m)
            .map(|i| self.average(t_start + i as f64 * h, t_start + (i + 1) as f64 * h))
            .collect()
    }

    /// Samples at the `m` interval *endpoints* `t_k = k·h` for
    /// `k = 1..=m` (what the classical steppers consume).
    pub fn samples_at_ends(&self, m: usize, t_end: f64) -> Vec<f64> {
        let h = t_end / m as f64;
        (1..=m).map(|k| self.eval(k as f64 * h)).collect()
    }
}

/// A vector input `u(t) ∈ R^p`: one waveform per channel.
#[derive(Clone, Debug, Default)]
pub struct InputSet {
    channels: Vec<Waveform>,
}

impl InputSet {
    /// Creates an input set from waveforms.
    pub fn new(channels: Vec<Waveform>) -> Self {
        InputSet { channels }
    }

    /// Number of channels `p`.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True when there are no channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The waveforms.
    pub fn channels(&self) -> &[Waveform] {
        &self.channels
    }

    /// Evaluates the input vector at `t`.
    pub fn eval(&self, t: f64) -> Vec<f64> {
        self.channels.iter().map(|w| w.eval(t)).collect()
    }

    /// Evaluates the derivative vector at `t`.
    pub fn derivative(&self, t: f64) -> Vec<f64> {
        self.channels.iter().map(|w| w.derivative(t)).collect()
    }

    /// The `p × m` BPF coefficient matrix `U` (row per channel), flattened
    /// row-major.
    pub fn bpf_matrix(&self, m: usize, t_end: f64) -> Vec<Vec<f64>> {
        self.channels
            .iter()
            .map(|w| w.bpf_coeffs(m, t_end))
            .collect()
    }

    /// Offset form of [`InputSet::bpf_matrix`]: the `p × m` coefficient
    /// matrix of the window `[t_start, t_start + t_len)`, each channel
    /// sampled at global time (see [`Waveform::bpf_coeffs_window`]).
    pub fn bpf_matrix_window(&self, m: usize, t_start: f64, t_len: f64) -> Vec<Vec<f64>> {
        self.channels
            .iter()
            .map(|w| w.bpf_coeffs_window(m, t_start, t_len))
            .collect()
    }

    /// Interval averages on an arbitrary (adaptive) grid given by
    /// boundaries `bounds[0..=m]`.
    pub fn averages_on_grid(&self, bounds: &[f64]) -> Vec<Vec<f64>> {
        self.channels
            .iter()
            .map(|w| {
                bounds
                    .windows(2)
                    .map(|ab| w.average(ab[0], ab[1]))
                    .collect()
            })
            .collect()
    }

    /// Interval averages of the *derivative* `u̇` on a grid — exact via the
    /// fundamental theorem: `avg(u̇) = (u(b) − u(a))/(b − a)`. The
    /// second-order nodal power-grid model consumes `u̇` as its input.
    pub fn derivative_averages_on_grid(&self, bounds: &[f64]) -> Vec<Vec<f64>> {
        self.channels
            .iter()
            .map(|w| {
                bounds
                    .windows(2)
                    .map(|ab| (w.eval(ab[1]) - w.eval(ab[0])) / (ab[1] - ab[0]))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numeric quadrature oracle (composite Simpson, fine grid).
    fn quad(w: &Waveform, a: f64, b: f64) -> f64 {
        let n = 20_000;
        let h = (b - a) / n as f64;
        let mut s = 0.0;
        for i in 0..n {
            let x0 = a + i as f64 * h;
            s += h / 6.0 * (w.eval(x0) + 4.0 * w.eval(x0 + 0.5 * h) + w.eval(x0 + h));
        }
        s
    }

    fn check_integral(w: &Waveform, t: f64, tol: f64) {
        let exact = w.integral(t);
        let numeric = quad(w, 0.0, t);
        assert!(
            (exact - numeric).abs() < tol * numeric.abs().max(1.0),
            "{w:?} at t={t}: exact {exact} vs numeric {numeric}"
        );
    }

    #[test]
    fn dc_and_step_and_ramp_integrals() {
        check_integral(&Waveform::Dc(2.5), 3.0, 1e-12);
        // Tolerance limited by the Simpson oracle at the jump, not by the
        // closed form (which is exact).
        check_integral(&Waveform::step(1.0, 4.0), 3.0, 1e-4);
        check_integral(&Waveform::Ramp { slope: 2.0 }, 2.0, 1e-12);
    }

    #[test]
    fn pulse_integral_single_and_periodic() {
        let single = Waveform::pulse(0.0, 1.0, 0.5, 0.1, 0.3, 0.1, 0.0);
        for &t in &[0.3, 0.55, 0.7, 0.95, 1.05, 3.0] {
            check_integral(&single, t, 1e-7);
        }
        let periodic = Waveform::pulse(0.2, 1.0, 0.0, 0.05, 0.2, 0.05, 0.5);
        for &t in &[0.1, 0.31, 0.5, 1.23, 4.9] {
            check_integral(&periodic, t, 1e-7);
        }
    }

    #[test]
    fn sine_integral_damped_and_undamped() {
        let u = Waveform::sine(0.5, 2.0, 3.0, 0.0, 0.0);
        for &t in &[0.2, 1.0, 2.7] {
            check_integral(&u, t, 1e-9);
        }
        let d = Waveform::sine(0.0, 1.0, 2.0, 0.25, 1.5);
        for &t in &[0.2, 0.5, 2.0] {
            check_integral(&d, t, 1e-9);
        }
    }

    #[test]
    fn exp_eval_integral_derivative() {
        let w = Waveform::exp(0.2, 1.0, 0.1, 0.05, 0.4, 0.1);
        assert_eq!(w.eval(0.0), 0.2);
        // Far past both phases the waveform returns to v1.
        assert!((w.eval(5.0) - 0.2).abs() < 1e-6);
        // Peak near td2 approaches v2.
        assert!(w.eval(0.4) > 0.9);
        for &t in &[0.05, 0.2, 0.5, 1.5] {
            check_integral(&w, t, 1e-8);
            let eps = 1e-7;
            let fd = (w.eval(t + eps) - w.eval(t - eps)) / (2.0 * eps);
            assert!(
                (fd - w.derivative(t)).abs() < 1e-4 * fd.abs().max(1.0),
                "t={t}"
            );
        }
    }

    #[test]
    fn exp_validation() {
        assert!(std::panic::catch_unwind(|| Waveform::exp(0.0, 1.0, 0.0, 0.0, 0.1, 0.1)).is_err());
        assert!(std::panic::catch_unwind(|| Waveform::exp(0.0, 1.0, 0.2, 0.1, 0.1, 0.1)).is_err());
    }

    #[test]
    fn pwl_integral_with_clamps() {
        let w = Waveform::pwl(vec![(0.5, 1.0), (1.0, 3.0), (2.0, -1.0)]).unwrap();
        for &t in &[0.25, 0.75, 1.5, 2.5] {
            check_integral(&w, t, 1e-9);
        }
    }

    #[test]
    fn averages_match_integral_differences() {
        let w = Waveform::pulse(0.0, 1.0, 0.1, 0.05, 0.2, 0.05, 0.0);
        let avg = w.average(0.0, 0.4);
        assert!((avg - w.integral(0.4) / 0.4).abs() < 1e-15);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let cases = [
            Waveform::sine(0.1, 1.5, 2.0, 0.1, 0.7),
            Waveform::pulse(0.0, 2.0, 0.2, 0.1, 0.3, 0.1, 1.0),
            Waveform::pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]).unwrap(),
            Waveform::Ramp { slope: -3.0 },
        ];
        // Sample away from corners.
        for w in &cases {
            for &t in &[0.35, 0.72, 1.4] {
                let eps = 1e-7;
                let fd = (w.eval(t + eps) - w.eval(t - eps)) / (2.0 * eps);
                let an = w.derivative(t);
                assert!(
                    (fd - an).abs() < 1e-4 * an.abs().max(1.0),
                    "{w:?} at t={t}: fd {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn bpf_coeffs_of_ramp_are_midpoints() {
        let w = Waveform::Ramp { slope: 1.0 };
        let c = w.bpf_coeffs(4, 1.0);
        assert_eq!(c, vec![0.125, 0.375, 0.625, 0.875]);
    }

    #[test]
    fn input_set_plumbing() {
        let set = InputSet::new(vec![Waveform::Dc(1.0), Waveform::step(0.5, 2.0)]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.eval(0.75), vec![1.0, 2.0]);
        let u = set.bpf_matrix(2, 1.0);
        assert_eq!(u[0], vec![1.0, 1.0]);
        assert_eq!(u[1], vec![0.0, 2.0]);
        let grid = set.averages_on_grid(&[0.0, 0.5, 1.0]);
        assert_eq!(grid[1], vec![0.0, 2.0]);
    }

    #[test]
    fn pulse_validation() {
        let r = std::panic::catch_unwind(|| Waveform::pulse(0.0, 1.0, 0.0, 0.0, 0.1, 0.1, 0.0));
        assert!(r.is_err(), "zero rise must be rejected");
        let r = std::panic::catch_unwind(|| Waveform::pulse(0.0, 1.0, 0.0, 0.1, 0.5, 0.1, 0.2));
        assert!(r.is_err(), "period shorter than shape must be rejected");
    }

    #[test]
    fn samples_at_ends_align_with_steppers() {
        let w = Waveform::Ramp { slope: 2.0 };
        assert_eq!(w.samples_at_ends(4, 2.0), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_pwl_is_an_error_not_a_panic() {
        assert_eq!(Waveform::pwl(vec![]), Err(WaveformError::EmptyPwl));
        // Even a Pwl built around the constructor stays panic-free.
        let raw = Waveform::Pwl(vec![]);
        assert_eq!(raw.eval(0.5), 0.0);
        assert_eq!(raw.integral(2.0), 0.0);
        assert_eq!(raw.derivative(0.5), 0.0);
    }

    #[test]
    fn unsorted_pwl_is_sorted_at_construction() {
        let w = Waveform::pwl(vec![(2.0, 4.0), (0.0, 0.0), (1.0, 2.0)]).unwrap();
        let sorted = Waveform::pwl(vec![(0.0, 0.0), (1.0, 2.0), (2.0, 4.0)]).unwrap();
        assert_eq!(w, sorted);
        // Interpolation is the ramp the sorted points describe.
        assert!((w.eval(0.5) - 1.0).abs() < 1e-15);
        assert!((w.eval(1.5) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn non_finite_pwl_points_are_rejected() {
        assert_eq!(
            Waveform::pwl(vec![(0.0, 0.0), (f64::NAN, 1.0)]),
            Err(WaveformError::NonFinitePwl(1))
        );
        assert_eq!(
            Waveform::pwl(vec![(0.0, f64::INFINITY)]),
            Err(WaveformError::NonFinitePwl(0))
        );
    }

    #[test]
    fn window_coeffs_sample_global_time() {
        let w = Waveform::step(1.0, 2.0);
        // Window [1, 2) sits entirely past the step: every average is 2.
        assert_eq!(w.bpf_coeffs_window(4, 1.0, 1.0), vec![2.0; 4]);
        // The zero-offset window reproduces the plain projection.
        assert_eq!(w.bpf_coeffs_window(8, 0.0, 2.0), w.bpf_coeffs(8, 2.0));
        // Concatenated half-windows cover the full-span projection.
        let full = w.bpf_coeffs(8, 2.0);
        let mut halves = w.bpf_coeffs_window(4, 0.0, 1.0);
        halves.extend(w.bpf_coeffs_window(4, 1.0, 1.0));
        for (a, b) in full.iter().zip(&halves) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn input_set_window_matrix_matches_per_channel() {
        let set = InputSet::new(vec![Waveform::Ramp { slope: 1.0 }, Waveform::Dc(3.0)]);
        let u = set.bpf_matrix_window(4, 0.5, 1.0);
        assert_eq!(
            u[0],
            Waveform::Ramp { slope: 1.0 }.bpf_coeffs_window(4, 0.5, 1.0)
        );
        assert_eq!(u[1], vec![3.0; 4]);
    }
}
