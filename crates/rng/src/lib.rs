//! Minimal deterministic PRNG for the OPM workspace.
//!
//! The workspace builds in hermetic environments with no access to
//! crates.io, so this crate stands in for the tiny slice of `rand` the
//! tree actually uses: a seedable generator ([`StdRng`]), uniform
//! sampling over ranges ([`StdRng::random_range`]), and Fisher–Yates
//! shuffling ([`SliceRandom::shuffle`]). The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic across platforms, which is
//! exactly what the seeded property tests and the power-grid load
//! placement need.

// No unsafe anywhere in this crate; the only unsafe in the workspace
// is the audited AVX panel dispatch in opm-{core,sparse,fracnum}.
#![forbid(unsafe_code)]

use std::ops::Range;

/// xoshiro256++ generator, seedable from a single `u64`.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the full 256-bit state from `seed` via SplitMix64, so
    /// nearby seeds still yield uncorrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` (53-bit resolution).
    pub fn random(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a half-open range; see [`SampleRange`] for the
    /// supported range types.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `len` i.i.d. uniform samples from `range` — the workhorse of the
    /// seeded property tests.
    pub fn vec_in(&mut self, range: Range<f64>, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.random_range(range.clone())).collect()
    }
}

/// Range types [`StdRng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.random()
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut StdRng) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        // Rejection sampling to stay exactly uniform.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return self.start + (v % span) as usize;
            }
        }
    }
}

/// In-place shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// One-stop import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{SampleRange, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let v = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!(
            (sum / 2000.0 - 0.5).abs() < 0.05,
            "mean off: {}",
            sum / 2000.0
        );
        for _ in 0..1000 {
            let v = rng.random_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&v));
            let k = rng.random_range(2usize..9);
            assert!((2..9).contains(&k));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left order intact");
    }
}
