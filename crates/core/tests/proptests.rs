//! Property-based tests for the OPM solvers: the fast paths must agree
//! with the brute-force Kronecker oracle on randomized systems, and
//! physical invariants must hold for randomized circuits.
//!
//! Randomized cases are drawn from a fixed-seed [`StdRng`] so every CI
//! run exercises the identical sample set — failures reproduce exactly.

use opm_core::kron_solve::{kron_solve_fractional, kron_solve_linear};
use opm_core::{Method, OpmResult, Problem, SolveOptions};
use opm_rng::StdRng;
use opm_sparse::{CooMatrix, CsrMatrix};
use opm_system::{DescriptorSystem, FractionalSystem};

const CASES: usize = 24;

/// One-shot linear solve through the engine front door (the randomized
/// properties below target the strategy the plan layer dispatches to).
fn solve_linear(sys: &DescriptorSystem, u: &[Vec<f64>], t_end: f64, x0: &[f64]) -> OpmResult {
    Problem::linear(sys)
        .coeffs(u)
        .horizon(t_end)
        .initial_state(x0)
        .solve(&SolveOptions::new())
        .unwrap()
}

/// As [`solve_linear`], forced onto the paper's literal accumulator path.
fn solve_linear_accumulator(
    sys: &DescriptorSystem,
    u: &[Vec<f64>],
    t_end: f64,
    x0: &[f64],
) -> OpmResult {
    Problem::linear(sys)
        .coeffs(u)
        .horizon(t_end)
        .initial_state(x0)
        .solve(&SolveOptions::new().method(Method::Accumulator))
        .unwrap()
}

/// One-shot fractional solve through the engine front door.
fn solve_fractional(fsys: &FractionalSystem, u: &[Vec<f64>], t_end: f64) -> OpmResult {
    Problem::fractional(fsys)
        .coeffs(u)
        .horizon(t_end)
        .solve(&SolveOptions::new())
        .unwrap()
}

/// Random stable-ish small descriptor system with one input: diagonally
/// dominant negative diagonal, mild coupling.
fn small_system(rng: &mut StdRng, n: usize) -> DescriptorSystem {
    let mut a = CooMatrix::new(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                a.push(i, j, 0.3 * rng.random_range(-1.0..1.0));
            }
        }
        a.push(i, i, -(rng.random_range(0.2..2.0) + 1.0));
    }
    let mut b = CooMatrix::new(n, 1);
    b.push(0, 0, 1.0);
    DescriptorSystem::new(CsrMatrix::identity(n), a.to_csr(), b.to_csr(), None).unwrap()
}

fn inputs(rng: &mut StdRng, m: usize) -> Vec<Vec<f64>> {
    vec![rng.vec_in(-2.0..2.0, m)]
}

/// The linear fast path equals the Kronecker oracle to roundoff.
#[test]
fn linear_matches_kron_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC03E_0001);
    for _ in 0..CASES {
        let sys = small_system(&mut rng, 3);
        let u = inputs(&mut rng, 10);
        let fast = solve_linear(&sys, &u, 1.0, &[0.0, 0.0, 0.0]);
        let oracle = kron_solve_linear(&sys, &u, 1.0).unwrap();
        for j in 0..10 {
            for i in 0..3 {
                assert!(
                    (fast.state_coeff(i, j) - oracle.state_coeff(i, j)).abs() < 1e-8,
                    "state {i}, column {j}"
                );
            }
        }
    }
}

/// The accumulator form (paper's literal algorithm) equals the stable
/// two-term recurrence.
#[test]
fn accumulator_equals_recurrence() {
    let mut rng = StdRng::seed_from_u64(0xC03E_0002);
    for _ in 0..CASES {
        let sys = small_system(&mut rng, 4);
        let u = inputs(&mut rng, 16);
        let a = solve_linear(&sys, &u, 2.0, &[0.0; 4]);
        let b = solve_linear_accumulator(&sys, &u, 2.0, &[0.0; 4]);
        for j in 0..16 {
            for i in 0..4 {
                assert!((a.state_coeff(i, j) - b.state_coeff(i, j)).abs() < 1e-8);
            }
        }
    }
}

/// Fractional fast path equals the Kronecker oracle.
#[test]
fn fractional_matches_kron_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC03E_0003);
    for _ in 0..CASES {
        let sys = small_system(&mut rng, 2);
        let u = inputs(&mut rng, 12);
        let alpha = rng.random_range(0.2..1.8);
        let fsys = FractionalSystem::new(alpha, sys).unwrap();
        let fast = solve_fractional(&fsys, &u, 1.0);
        let oracle = kron_solve_fractional(&fsys, &u, 1.0).unwrap();
        for j in 0..12 {
            for i in 0..2 {
                assert!(
                    (fast.state_coeff(i, j) - oracle.state_coeff(i, j)).abs() < 1e-7,
                    "α={alpha}, state {i}, column {j}"
                );
            }
        }
    }
}

/// Linearity of the solution map: solve(u1 + u2) = solve(u1) + solve(u2).
#[test]
fn superposition() {
    let mut rng = StdRng::seed_from_u64(0xC03E_0004);
    for _ in 0..CASES {
        let sys = small_system(&mut rng, 3);
        let u1 = inputs(&mut rng, 8);
        let u2 = inputs(&mut rng, 8);
        let sum: Vec<Vec<f64>> = vec![u1[0].iter().zip(&u2[0]).map(|(a, b)| a + b).collect()];
        let r1 = solve_linear(&sys, &u1, 1.0, &[0.0; 3]);
        let r2 = solve_linear(&sys, &u2, 1.0, &[0.0; 3]);
        let rs = solve_linear(&sys, &sum, 1.0, &[0.0; 3]);
        for j in 0..8 {
            for i in 0..3 {
                let lin = r1.state_coeff(i, j) + r2.state_coeff(i, j);
                assert!((rs.state_coeff(i, j) - lin).abs() < 1e-9);
            }
        }
    }
}

/// Stability: zero input and zero IC keep the state at zero exactly.
#[test]
fn zero_in_zero_out() {
    let mut rng = StdRng::seed_from_u64(0xC03E_0005);
    for _ in 0..CASES {
        let sys = small_system(&mut rng, 3);
        let m = rng.random_range(1usize..20);
        let u = vec![vec![0.0; m]];
        let r = solve_linear(&sys, &u, 1.0, &[0.0; 3]);
        for j in 0..m {
            for i in 0..3 {
                assert_eq!(r.state_coeff(i, j), 0.0);
            }
        }
    }
}

/// DC gain: for stable A and constant input, the final state
/// approaches −A⁻¹·B·u.
#[test]
fn dc_gain_reached() {
    let mut rng = StdRng::seed_from_u64(0xC03E_0006);
    for _ in 0..CASES {
        let sys = small_system(&mut rng, 2);
        let level = rng.random_range(0.5..2.0);
        let m = 600;
        let u = vec![vec![level; m]];
        let r = solve_linear(&sys, &u, 40.0, &[0.0, 0.0]);
        let (_, a, b) = sys.to_dense();
        let rhs = b
            .mul_vec(&opm_linalg::DVector::from_slice(&[level]))
            .scale(-1.0);
        let xdc = a.solve(&rhs).unwrap();
        for i in 0..2 {
            assert!(
                (r.state_coeff(i, m - 1) - xdc[i]).abs() < 1e-3 * xdc[i].abs().max(1.0),
                "state {i}: {} vs {}",
                r.state_coeff(i, m - 1),
                xdc[i]
            );
        }
    }
}

/// Panel stimulus application is bit-identical to the scalar reference
/// across ragged lane counts on random sparse `B` patterns — same
/// contract as the `opm-sparse` block-kernel proptests.
#[test]
fn panel_apply_b_block_bit_identical_to_scalar() {
    use opm_core::engine::{apply_b_block, apply_b_block_scalar};
    let mut rng = StdRng::seed_from_u64(0x5AA_0012);
    for case in 0..CASES {
        let n = rng.random_range(2..20usize);
        let ch = rng.random_range(1..6usize);
        let mut b = CooMatrix::new(n, ch);
        for _ in 0..rng.random_range(1..4 * n) {
            b.push(
                rng.random_range(0..n),
                rng.random_range(0..ch),
                rng.random_range(-2.0..2.0),
            );
        }
        let b = b.to_csr();
        for lanes in [1usize, 3, 8, 14, 16, 27, 40] {
            let u = rng.vec_in(-2.0..2.0, ch * lanes);
            let base = rng.vec_in(-1.0..1.0, n * lanes);
            let scale = rng.random_range(-2.0..2.0);
            let mut scalar = base.clone();
            let mut panels = base;
            apply_b_block_scalar(&b, &u, lanes, scale, &mut scalar);
            apply_b_block(&b, &u, lanes, scale, &mut panels);
            assert_eq!(scalar, panels, "case {case}, n = {n}, lanes = {lanes}");
        }
    }
}
