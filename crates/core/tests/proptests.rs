//! Property-based tests for the OPM solvers: the fast paths must agree
//! with the brute-force Kronecker oracle on randomized systems, and
//! physical invariants must hold for randomized circuits.

use opm_core::fractional::solve_fractional;
use opm_core::kron_solve::{kron_solve_fractional, kron_solve_linear};
use opm_core::linear::{solve_linear, solve_linear_accumulator};
use opm_sparse::{CooMatrix, CsrMatrix};
use opm_system::{DescriptorSystem, FractionalSystem};
use proptest::prelude::*;

/// Random stable-ish scalar/small descriptor system with one input.
fn small_system(n: usize) -> impl Strategy<Value = DescriptorSystem> {
    (
        prop::collection::vec(-1.0..1.0f64, n * n),
        prop::collection::vec(0.2..2.0f64, n),
    )
        .prop_map(move |(offdiag, diag)| {
            let mut a = CooMatrix::new(n, n);
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        a.push(i, j, 0.3 * offdiag[i * n + j]);
                    }
                }
                // Diagonally dominant negative diagonal: stable.
                a.push(i, i, -(diag[i] + 1.0));
            }
            let mut b = CooMatrix::new(n, 1);
            b.push(0, 0, 1.0);
            DescriptorSystem::new(CsrMatrix::identity(n), a.to_csr(), b.to_csr(), None)
                .unwrap()
        })
}

fn inputs(m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(-2.0..2.0f64, m).prop_map(|v| vec![v])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The linear fast path equals the Kronecker oracle to roundoff.
    #[test]
    fn linear_matches_kron_oracle(sys in small_system(3), u in inputs(10)) {
        let fast = solve_linear(&sys, &u, 1.0, &[0.0, 0.0, 0.0]).unwrap();
        let oracle = kron_solve_linear(&sys, &u, 1.0).unwrap();
        for j in 0..10 {
            for i in 0..3 {
                prop_assert!(
                    (fast.state_coeff(i, j) - oracle.state_coeff(i, j)).abs() < 1e-8,
                    "state {}, column {}", i, j
                );
            }
        }
    }

    /// The accumulator form (paper's literal algorithm) equals the stable
    /// two-term recurrence.
    #[test]
    fn accumulator_equals_recurrence(sys in small_system(4), u in inputs(16)) {
        let a = solve_linear(&sys, &u, 2.0, &[0.0; 4]).unwrap();
        let b = solve_linear_accumulator(&sys, &u, 2.0, &[0.0; 4]).unwrap();
        for j in 0..16 {
            for i in 0..4 {
                prop_assert!((a.state_coeff(i, j) - b.state_coeff(i, j)).abs() < 1e-8);
            }
        }
    }

    /// Fractional fast path equals the Kronecker oracle.
    #[test]
    fn fractional_matches_kron_oracle(sys in small_system(2), u in inputs(12), alpha in 0.2..1.8f64) {
        let fsys = FractionalSystem::new(alpha, sys).unwrap();
        let fast = solve_fractional(&fsys, &u, 1.0).unwrap();
        let oracle = kron_solve_fractional(&fsys, &u, 1.0).unwrap();
        for j in 0..12 {
            for i in 0..2 {
                prop_assert!(
                    (fast.state_coeff(i, j) - oracle.state_coeff(i, j)).abs() < 1e-7,
                    "α={}, state {}, column {}", alpha, i, j
                );
            }
        }
    }

    /// Linearity of the solution map: solve(u1 + u2) = solve(u1) + solve(u2).
    #[test]
    fn superposition(sys in small_system(3), u1 in inputs(8), u2 in inputs(8)) {
        let sum: Vec<Vec<f64>> = vec![u1[0].iter().zip(&u2[0]).map(|(a, b)| a + b).collect()];
        let r1 = solve_linear(&sys, &u1, 1.0, &[0.0; 3]).unwrap();
        let r2 = solve_linear(&sys, &u2, 1.0, &[0.0; 3]).unwrap();
        let rs = solve_linear(&sys, &sum, 1.0, &[0.0; 3]).unwrap();
        for j in 0..8 {
            for i in 0..3 {
                let lin = r1.state_coeff(i, j) + r2.state_coeff(i, j);
                prop_assert!((rs.state_coeff(i, j) - lin).abs() < 1e-9);
            }
        }
    }

    /// Stability: zero input and zero IC keep the state at zero exactly.
    #[test]
    fn zero_in_zero_out(sys in small_system(3), m in 1usize..20) {
        let u = vec![vec![0.0; m]];
        let r = solve_linear(&sys, &u, 1.0, &[0.0; 3]).unwrap();
        for j in 0..m {
            for i in 0..3 {
                prop_assert_eq!(r.state_coeff(i, j), 0.0);
            }
        }
    }

    /// DC gain: for stable A and constant input, the final state
    /// approaches −A⁻¹·B·u.
    #[test]
    fn dc_gain_reached(sys in small_system(2), level in 0.5..2.0f64) {
        let m = 600;
        let u = vec![vec![level; m]];
        let r = solve_linear(&sys, &u, 40.0, &[0.0, 0.0]).unwrap();
        let (_, a, b) = sys.to_dense();
        let rhs = b.mul_vec(&opm_linalg::DVector::from_slice(&[level])).scale(-1.0);
        let xdc = a.solve(&rhs).unwrap();
        for i in 0..2 {
            prop_assert!(
                (r.state_coeff(i, m - 1) - xdc[i]).abs() < 1e-3 * xdc[i].abs().max(1.0),
                "state {}: {} vs {}", i, r.state_coeff(i, m - 1), xdc[i]
            );
        }
    }
}
