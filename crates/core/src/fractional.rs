//! OPM for fractional systems `E·d^α x/dt^α = A·x + B·u` (paper §IV).
//!
//! The fractional operational matrix `D^α` is the upper-triangular
//! Toeplitz matrix with first row `(2/h)^α·(ρ₀, ρ₁, …, ρ_{m−1})`, the
//! nilpotent-series coefficients of `((1−q)/(1+q))^α` (paper Eq. 22).
//! Column `j` of `E X D^α = A X + B U` reads
//!
//! ```text
//! (ρ₀·E − A)·x_j = B·u_j − E·Σ_{k=1}^{j} ρ_k·x_{j−k}
//! ```
//!
//! — one sparse LU, but an `O(m)` history convolution per column:
//! `O(n^β m + n m²)` total, the paper's §IV complexity. Initial
//! conditions are zero (Caputo sense), as the paper assumes.

use crate::engine::validate_coeff_inputs;
use crate::result::OpmResult;
use crate::session::SimPlan;
use crate::OpmError;
use opm_system::FractionalSystem;

/// Solves the fractional system by OPM over `[0, t_end)` with `m`
/// uniform intervals (`m` = columns of `u_coeffs`). A thin one-shot
/// wrapper over the plan layer ([`crate::session`]): the per-column
/// right-hand side is `B·u_j − E·Σ_{k=1}^{j} ρ_k·x_{j−k}`. For repeated
/// solves, build a [`crate::Simulation`] plan and reuse its
/// factorization.
///
/// # Errors
/// [`OpmError::SingularPencil`] when `ρ₀E − A` is singular;
/// [`OpmError::BadArguments`] for shape mismatches.
#[deprecated(note = "use Simulation::plan")]
pub fn solve_fractional(
    fsys: &FractionalSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let m = validate_coeff_inputs(fsys.num_inputs(), u_coeffs)?;
    SimPlan::for_fractional(fsys, m, t_end)?.solve_coeffs(u_coeffs)
}

#[cfg(test)]
mod tests {
    // The strategy's own unit tests exercise the deprecated one-shot
    // wrappers on purpose: they pin the wrapper-to-plan delegation.
    #![allow(deprecated)]
    use super::*;
    use crate::metrics::max_abs_diff;
    use opm_fracnum::mittag_leffler::ml_kernel;
    use opm_sparse::{CooMatrix, CsrMatrix};
    use opm_system::DescriptorSystem;
    use opm_waveform::{InputSet, Waveform};

    fn scalar_fractional(alpha: f64, lambda: f64) -> FractionalSystem {
        let mut a = CooMatrix::new(1, 1);
        a.push(0, 0, lambda);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        FractionalSystem::new(
            alpha,
            DescriptorSystem::new(CsrMatrix::identity(1), a.to_csr(), b.to_csr(), None).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn alpha_one_reduces_to_linear_solver() {
        let fsys = scalar_fractional(1.0, -2.0);
        let m = 64;
        let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, 2.0);
        let frac = solve_fractional(&fsys, &u, 2.0).unwrap();
        let lin = crate::linear::solve_linear(fsys.system(), &u, 2.0, &[0.0]).unwrap();
        for j in 0..m {
            assert!(
                (frac.state_coeff(0, j) - lin.state_coeff(0, j)).abs() < 1e-11,
                "column {j}"
            );
        }
    }

    #[test]
    fn half_order_step_response_matches_mittag_leffler() {
        // d^½x = −x + 1 ⇒ x(t) = t^½·E_{½,3/2}(−t^½).
        let fsys = scalar_fractional(0.5, -1.0);
        let m = 512;
        let t_end = 2.0;
        let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, t_end);
        let r = solve_fractional(&fsys, &u, t_end).unwrap();
        for (j, &t) in r.midpoints().iter().enumerate().skip(8).step_by(61) {
            let want = ml_kernel(0.5, 1.5, -1.0, t);
            let got = r.state_coeff(0, j);
            assert!(
                (got - want).abs() < 6e-3 * want.abs().max(0.1),
                "t={t}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn agrees_with_grunwald_letnikov_baseline() {
        let fsys = scalar_fractional(0.7, -1.5);
        let m = 256;
        let t_end = 1.5;
        let u_set = InputSet::new(vec![Waveform::sine(0.5, 0.5, 1.0, 0.0, 0.0)]);
        let u = u_set.bpf_matrix(m, t_end);
        let opm = solve_fractional(&fsys, &u, t_end).unwrap();
        let gl = opm_transient::gl_fractional(&fsys, &u_set, t_end, m, false).unwrap();
        // GL samples endpoints, OPM gives interval averages: compare OPM
        // midpoint reconstruction against GL linear interpolation.
        let mut worst = 0.0f64;
        for (j, &t) in opm.midpoints().iter().enumerate().skip(4) {
            // GL endpoint k covers t_k = (k+1)·h.
            let h = t_end / m as f64;
            let k = (t / h).floor() as usize;
            let gl_mid = if k == 0 {
                0.5 * gl.outputs[0][0]
            } else {
                0.5 * (gl.outputs[0][k - 1] + gl.outputs[0][k.min(m - 1)])
            };
            worst = worst.max((opm.state_coeff(0, j) - gl_mid).abs());
        }
        assert!(worst < 2e-2, "OPM vs GL deviation {worst}");
    }

    #[test]
    fn dae_fractional_line_is_solvable_and_stable() {
        // The Table I system: bounded response to a bounded pulse.
        let model = opm_circuits::tline::FractionalLineSpec::default().assemble();
        let t_end = 2.7e-9;
        let m = 64;
        let u = model.inputs.bpf_matrix(m, t_end);
        let r = solve_fractional(&model.system, &u, t_end).unwrap();
        assert_eq!(r.num_intervals(), m);
        for o in 0..2 {
            for &v in r.output_row(o) {
                assert!(v.is_finite() && v.abs() < 1.0, "port current {v}");
            }
        }
        // Port 1 must actually react to the pulse.
        let peak = r
            .output_row(0)
            .iter()
            .fold(0.0f64, |mx, &v| mx.max(v.abs()));
        assert!(peak > 1e-4, "no response: peak {peak}");
    }

    #[test]
    fn convergence_under_refinement() {
        let fsys = scalar_fractional(0.5, -1.0);
        let t_end = 1.0;
        // Exact *cell averages* of the ML kernel (compare like with like:
        // BPF coefficients are averages, and average ≠ midpoint at this
        // coarse cell width).
        let exact: Vec<f64> = (0..16)
            .map(|j| {
                let (a, b) = (j as f64 / 16.0, (j as f64 + 1.0) / 16.0);
                let samples = 64;
                (0..samples)
                    .map(|s| {
                        let t = a + (b - a) * (s as f64 + 0.5) / samples as f64;
                        ml_kernel(0.5, 1.5, -1.0, t)
                    })
                    .sum::<f64>()
                    / samples as f64
            })
            .collect();
        let err = |m: usize| {
            let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, t_end);
            let r = solve_fractional(&fsys, &u, t_end).unwrap();
            let stride = m / 16;
            let coarse: Vec<f64> = (0..16)
                .map(|j| {
                    // Average the fine coefficients inside each coarse cell.
                    let lo = j * stride;
                    (lo..lo + stride).map(|k| r.state_coeff(0, k)).sum::<f64>() / stride as f64
                })
                .collect();
            // Skip the first coarse cell: the √t derivative singularity at
            // t = 0 caps pointwise convergence there for any method that
            // does not build the singularity into its basis.
            max_abs_diff(&coarse[1..], &exact[1..])
        };
        let e1 = err(64);
        let e2 = err(256);
        assert!(
            e2 < 0.6 * e1,
            "no convergence: {e1} → {e2} (fractional kernels limit the rate)"
        );
    }
}
