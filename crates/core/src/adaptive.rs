//! Adaptive-step OPM (paper §III-B and Eq. 25).
//!
//! **Linear systems** adapt on the fly: the accumulator column solve
//! `(2/h_j·E − A)·z_j = B·ū_j + c − (4/h_j)·E·g_j` only involves the
//! *current* step `h_j` (the alternating accumulator
//! `g_{j+1} = −(g_j + z_j)` is step-free), so a rejected column is simply
//! re-solved with a smaller `h_j` — the paper's "time step determined on
//! the fly by some error control mechanism". Steps live on a power-of-two
//! lattice to bound the number of LU factorizations.
//!
//! **Fractional systems** couple all steps through `D̃^α` (Eq. 25), so
//! adaptivity uses a caller-chosen *distinct-step grid* (e.g.
//! [`geometric_grid`]) and the incremental Parlett recurrence from
//! `opm-basis` to grow `D̃^α` column by column. Each column has its own
//! diagonal `(2/h_j)^α`, hence its own factorization — the
//! eigendecomposition route of the paper has the same property.

use crate::engine::{apply_b, apply_b_column, reconstruct_outputs, FactorCache, PencilFamily};
use crate::metrics::FactorProfile;
use crate::result::OpmResult;
use crate::OpmError;
use opm_basis::adaptive::AdaptiveBpf;
use opm_basis::traits::Basis;
use opm_sparse::SparseLu;
use opm_system::{DescriptorSystem, FractionalSystem};
use opm_waveform::InputSet;

/// Options for [`solve_linear_adaptive`].
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveOpmOptions {
    /// Predictor–corrector LTE tolerance (per column, ∞-norm).
    pub tol: f64,
    /// Initial step.
    pub h0: f64,
    /// Smallest step.
    pub h_min: f64,
    /// Largest step.
    pub h_max: f64,
}

impl Default for AdaptiveOpmOptions {
    fn default() -> Self {
        AdaptiveOpmOptions {
            tol: 1e-6,
            h0: 1e-3,
            h_min: 1e-12,
            h_max: 0.25,
        }
    }
}

fn quantize(h: f64) -> f64 {
    2.0f64.powi(h.log2().round() as i32)
}

/// Adaptive-step OPM for linear descriptor systems.
///
/// # Errors
/// [`OpmError`] on invalid options, singular pencils, or channel
/// mismatches.
#[deprecated(note = "use Simulation::plan")]
pub fn solve_linear_adaptive(
    sys: &DescriptorSystem,
    inputs: &InputSet,
    t_end: f64,
    x0: &[f64],
    opts: AdaptiveOpmOptions,
) -> Result<OpmResult, OpmError> {
    let mut factors = FactorCache::new(sys.e(), sys.a());
    linear_adaptive_with(sys, inputs, t_end, x0, opts, &mut factors)
}

/// [`solve_linear_adaptive`] with a caller-owned [`FactorCache`]: the
/// power-of-two step-lattice factorizations persist in `factors`, so a
/// batch of scenarios solved against the same system (the plan layer's
/// [`crate::SimPlan`]) reuses every pencil the earlier scenarios already
/// factored. The returned result counts only the factorizations *this*
/// call added.
///
/// # Errors
/// As [`solve_linear_adaptive`].
#[deprecated(note = "use Simulation::plan")]
pub fn solve_linear_adaptive_with(
    sys: &DescriptorSystem,
    inputs: &InputSet,
    t_end: f64,
    x0: &[f64],
    opts: AdaptiveOpmOptions,
    factors: &mut FactorCache,
) -> Result<OpmResult, OpmError> {
    linear_adaptive_with(sys, inputs, t_end, x0, opts, factors)
}

/// The adaptive-step implementation the session layer's
/// [`crate::SimPlan`] adaptive kind drives (the deprecated one-shot
/// wrappers above delegate here).
pub(crate) fn linear_adaptive_with(
    sys: &DescriptorSystem,
    inputs: &InputSet,
    t_end: f64,
    x0: &[f64],
    opts: AdaptiveOpmOptions,
    factors: &mut FactorCache,
) -> Result<OpmResult, OpmError> {
    let n = sys.order();
    let factorizations_before = factors.num_factorizations();
    if inputs.len() != sys.num_inputs() {
        return Err(OpmError::BadArguments("input channel mismatch".into()));
    }
    if x0.len() != n {
        return Err(OpmError::BadArguments("x0 length mismatch".into()));
    }
    if !(opts.h0 > 0.0 && opts.h_min > 0.0 && opts.h_max >= opts.h0 && t_end > 0.0) {
        return Err(OpmError::BadArguments("inconsistent step options".into()));
    }

    let mut num_solves = 0usize;
    let shift = x0.iter().any(|&v| v != 0.0);
    let c_force = if shift {
        sys.a().mul_vec(x0)
    } else {
        vec![0.0; n]
    };

    let solve_column = |h: f64,
                        t0: f64,
                        g: &[f64],
                        factors: &mut FactorCache,
                        num_solves: &mut usize|
     -> Result<Vec<f64>, OpmError> {
        let exp = h.log2().round() as i32;
        let lu = factors.get(exp)?;
        let hq = 2.0f64.powi(exp);
        let mut rhs = vec![0.0; n];
        // B·ū over [t0, t0+h] + c − (4/h)·E·g.
        let u_avg: Vec<f64> = inputs
            .channels()
            .iter()
            .map(|w| w.average(t0, t0 + hq))
            .collect();
        apply_b_column(sys.b(), &u_avg, 1.0, &mut rhs);
        if shift {
            for (r, c) in rhs.iter_mut().zip(&c_force) {
                *r += c;
            }
        }
        let mut eg = vec![0.0; n];
        sys.e().mul_vec_into(g, &mut eg);
        for (r, w) in rhs.iter_mut().zip(&eg) {
            *r -= 4.0 / hq * w;
        }
        *num_solves += 1;
        Ok(lu.solve(&rhs))
    };

    let mut t = 0.0;
    let mut h = quantize(opts.h0);
    let mut g = vec![0.0; n];
    let mut bounds = vec![0.0];
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut prev: Option<(Vec<f64>, f64)> = None; // (z_{j−1}, h_{j−1})
    let mut accepted_run = 0usize;

    while t < t_end - 1e-12 * t_end {
        h = h.min(quantize(opts.h_max)).max(quantize(opts.h_min));
        while t + h > t_end * (1.0 + 1e-12) && h > opts.h_min {
            h *= 0.5;
        }
        let z = solve_column(h, t, &g, factors, &mut num_solves)?;
        // Predictor: linear extrapolation of the last column pair.
        let est = match (&prev, columns.len()) {
            (Some((z1, h1)), len) if len >= 2 => {
                let z2 = &columns[len - 2];
                let x1: Vec<f64> = if shift {
                    z1.iter().zip(x0).map(|(a, b)| a - b).collect()
                } else {
                    z1.clone()
                };
                let x2: Vec<f64> = if shift {
                    z2.iter().zip(x0).map(|(a, b)| a - b).collect()
                } else {
                    z2.clone()
                };
                let factor = (h + h1) / (2.0 * h1.max(1e-300));
                z.iter()
                    .zip(&x1)
                    .zip(&x2)
                    .map(|((zj, a), b)| (zj - (a + (a - b) * factor)).abs())
                    .fold(0.0, f64::max)
            }
            _ => 0.0, // accept the first two columns unconditionally
        };

        if est <= opts.tol || h * 0.5 < opts.h_min {
            t += h;
            bounds.push(t);
            // Update accumulator and store the *unshifted* state x = z+x0.
            for (gi, zi) in g.iter_mut().zip(&z) {
                *gi = -(*gi + zi);
            }
            let x: Vec<f64> = if shift {
                z.iter().zip(x0).map(|(a, b)| a + b).collect()
            } else {
                z.clone()
            };
            prev = Some((x.clone(), h));
            columns.push(x);
            accepted_run += 1;
            if est < 0.25 * opts.tol && accepted_run >= 3 && h * 2.0 <= opts.h_max {
                h *= 2.0;
                accepted_run = 0;
            }
        } else {
            h *= 0.5;
            accepted_run = 0;
        }
    }

    let outputs = reconstruct_outputs(sys, &columns);
    Ok(OpmResult {
        bounds,
        columns,
        outputs,
        num_solves,
        num_factorizations: factors.num_factorizations() - factorizations_before,
    })
}

/// A strictly geometric step profile: `h_{j+1} = ratio·h_j`, scaled so the
/// steps sum to `t_end`. All steps are pairwise distinct for `ratio ≠ 1`,
/// satisfying the Parlett/eigendecomposition requirement.
///
/// # Panics
/// Panics when `m == 0`, `ratio <= 0` or `ratio == 1`.
pub fn geometric_grid(t_end: f64, m: usize, ratio: f64) -> Vec<f64> {
    assert!(m > 0 && ratio > 0.0 && ratio != 1.0);
    let total: f64 = (0..m).map(|j| ratio.powi(j as i32)).sum();
    (0..m)
        .map(|j| t_end * ratio.powi(j as i32) / total)
        .collect()
}

/// Adaptive-grid OPM for fractional systems: solves
/// `E X D̃^α = A X + B U` on the caller's distinct-step grid using the
/// incremental Parlett recurrence.
///
/// # Errors
/// [`OpmError::ConfluentSteps`] when two steps coincide;
/// [`OpmError::SingularPencil`] when some column's pencil is singular.
#[deprecated(note = "use Simulation::plan")]
pub fn solve_fractional_adaptive(
    fsys: &FractionalSystem,
    grid: &AdaptiveBpf,
    inputs: &InputSet,
) -> Result<OpmResult, OpmError> {
    let factors = prepare_step_grid(fsys, grid)?;
    sweep_step_grid(fsys, grid, &factors, inputs)
}

/// Stimulus-independent data of a distinct-step fractional solve: the
/// upper-triangular columns of `D̃^α` plus one pencil factorization per
/// column. Built once by [`prepare_step_grid`] (the plan layer caches it
/// across scenarios), consumed by [`sweep_step_grid`].
pub(crate) struct StepGridFactors {
    /// `f_cols[j][i] = D̃^α[i, j]` for `i ≤ j`.
    f_cols: Vec<Vec<f64>>,
    /// Factorization of `(D̃^α[j,j]·E − A)` per column.
    lus: Vec<SparseLu>,
    /// Symbolic/numeric split of the factorization work above.
    profile: FactorProfile,
}

impl StepGridFactors {
    pub(crate) fn num_factorizations(&self) -> usize {
        self.lus.len()
    }

    pub(crate) fn profile(&self) -> FactorProfile {
        self.profile
    }
}

/// Builds and factors every per-column pencil of a distinct-step grid —
/// the expensive half of [`solve_fractional_adaptive`], independent of
/// the stimulus. All columns share one [`PencilFamily`] (pattern,
/// ordering and symbolic analysis paid once), and the per-column numeric
/// refactorizations — independent of each other — run in parallel on the
/// [`opm_par::default_threads`] workers. Note this *prepare-time*
/// parallelism is governed solely by `OPM_THREADS` (it happens inside
/// `Simulation::plan`, before any solve-time thread count is known);
/// set `OPM_THREADS=1` to keep plan construction serial.
///
/// # Errors
/// As [`solve_fractional_adaptive`].
pub(crate) fn prepare_step_grid(
    fsys: &FractionalSystem,
    grid: &AdaptiveBpf,
) -> Result<StepGridFactors, OpmError> {
    let sys = fsys.system();
    let m = grid.dim();

    // The scalar Parlett recurrence (like the paper's eigendecomposition)
    // loses accuracy when many steps are nearly equal: divided differences
    // compound by factors ~1/(d_i − d_j). Entries of D̃^α should stay
    // comparable to the diagonal scale; growth beyond this ratio marks a
    // numerically meaningless result and is rejected loudly.
    const CONDITION_LIMIT: f64 = 1e8;

    let mut inc = AdaptiveBpf::incremental_frac_diff(fsys.alpha(), m);
    let mut f_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut diags: Vec<f64> = Vec::with_capacity(m);
    for j in 0..m {
        inc.append_column(&grid.diff_column(j))
            .map_err(|e| OpmError::ConfluentSteps(format!("{e}")))?;
        let diag_scale = inc.value(j, j).abs().max(inc.value(0, 0).abs());
        for i in 0..j {
            if inc.value(i, j).abs() > CONDITION_LIMIT * diag_scale {
                return Err(OpmError::ConfluentSteps(format!(
                    "D̃^α entry ({i},{j}) grew to {:.2e} (diagonal scale {:.2e}); \
                     steps too close for a stable fractional power — use fewer \
                     columns or a larger step ratio",
                    inc.value(i, j).abs(),
                    diag_scale
                )));
            }
        }
        f_cols.push((0..=j).map(|i| inc.value(i, j)).collect());
        diags.push(inc.value(j, j));
    }

    // (F[j,j]·E − A)·x_j = B·u_j − E·Σ_{i<j} F[i,j]·x_i — one pencil per
    // column, all on one pattern: analyze once, refactor the rest.
    let mut family = PencilFamily::new(sys.e(), sys.a());
    let lus = family
        .factor_all(&diags, opm_par::default_threads())
        .map_err(|(j, e)| match e {
            OpmError::SingularPencil(s) => OpmError::SingularPencil(format!("column {j}: {s}")),
            other => other,
        })?;
    Ok(StepGridFactors {
        f_cols,
        lus,
        profile: family.profile(),
    })
}

/// Runs the distinct-step column sweep against prefactored pencils — the
/// cheap, per-stimulus half of [`solve_fractional_adaptive`].
///
/// # Errors
/// [`OpmError::BadArguments`] on channel mismatches.
pub(crate) fn sweep_step_grid(
    fsys: &FractionalSystem,
    grid: &AdaptiveBpf,
    factors: &StepGridFactors,
    inputs: &InputSet,
) -> Result<OpmResult, OpmError> {
    let sys = fsys.system();
    let n = sys.order();
    if inputs.len() != sys.num_inputs() {
        return Err(OpmError::BadArguments("input channel mismatch".into()));
    }
    let m = grid.dim();
    let u = inputs.averages_on_grid(grid.bounds());

    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(m);
    for j in 0..m {
        let fc = &factors.f_cols[j];
        let mut acc = vec![0.0; n];
        for (i, xi) in columns.iter().enumerate() {
            let f = fc[i];
            if f != 0.0 {
                for (a, x) in acc.iter_mut().zip(xi) {
                    *a += f * x;
                }
            }
        }
        let mut rhs = vec![0.0; n];
        apply_b(sys.b(), &u, j, 1.0, &mut rhs);
        let mut ea = vec![0.0; n];
        sys.e().mul_vec_into(&acc, &mut ea);
        for (r, w) in rhs.iter_mut().zip(&ea) {
            *r -= w;
        }
        columns.push(factors.lus[j].solve(&rhs));
    }

    let outputs = reconstruct_outputs(sys, &columns);
    Ok(OpmResult {
        bounds: grid.bounds().to_vec(),
        columns,
        outputs,
        num_solves: m,
        num_factorizations: factors.num_factorizations(),
    })
}

#[cfg(test)]
mod tests {
    // The strategy's own unit tests exercise the deprecated one-shot
    // wrappers on purpose: they pin the wrapper-to-plan delegation.
    #![allow(deprecated)]
    use super::*;
    use opm_fracnum::mittag_leffler::ml_kernel;
    use opm_sparse::{CooMatrix, CsrMatrix};
    use opm_waveform::Waveform;

    fn scalar(a: f64) -> DescriptorSystem {
        let mut am = CooMatrix::new(1, 1);
        am.push(0, 0, a);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        DescriptorSystem::new(CsrMatrix::identity(1), am.to_csr(), b.to_csr(), None).unwrap()
    }

    #[test]
    fn adaptive_linear_tracks_analytic_solution() {
        let sys = scalar(-1.0);
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let r = solve_linear_adaptive(
            &sys,
            &inputs,
            2.0,
            &[0.0],
            AdaptiveOpmOptions {
                tol: 1e-7,
                h0: 1.0 / 64.0,
                ..Default::default()
            },
        )
        .unwrap();
        // Check interval averages against the analytic averages.
        for (j, w) in r.bounds.windows(2).enumerate().step_by(5) {
            let (a, b) = (w[0], w[1]);
            let want = 1.0 - ((-a).exp() - (-b).exp()) / (b - a);
            let got = r.state_coeff(0, j);
            assert!((got - want).abs() < 1e-4, "[{a},{b}]: {got} vs {want}");
        }
        assert!((r.bounds.last().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_spends_columns_where_the_action_is() {
        // Fast pulse at t < 0.1, then quiet until t = 4.
        let sys = scalar(-30.0);
        let inputs = InputSet::new(vec![Waveform::pulse(
            0.0, 1.0, 0.01, 0.005, 0.05, 0.005, 0.0,
        )]);
        let r = solve_linear_adaptive(
            &sys,
            &inputs,
            4.0,
            &[0.0],
            AdaptiveOpmOptions {
                tol: 1e-5,
                h0: 1.0 / 256.0,
                h_min: 1e-9,
                h_max: 0.5,
            },
        )
        .unwrap();
        let early = r.bounds.iter().filter(|&&t| t <= 0.4).count();
        let late = r.bounds.iter().filter(|&&t| t > 2.0).count();
        assert!(
            early > 3 * late,
            "early {early} vs late {late}: no adaptation"
        );
        // And fewer factorizations than columns (lattice reuse).
        assert!(r.num_factorizations < r.num_intervals() / 2);
    }

    #[test]
    fn geometric_grid_sums_and_is_distinct() {
        let g = geometric_grid(1.0, 10, 1.3);
        let total: f64 = g.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn fractional_adaptive_matches_mittag_leffler() {
        use opm_system::FractionalSystem;
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let grid = AdaptiveBpf::new(geometric_grid(2.0, 32, 1.15));
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let r = solve_fractional_adaptive(&fsys, &grid, &inputs).unwrap();
        for (j, &t) in grid.midpoints().iter().enumerate().skip(5).step_by(4) {
            let want = ml_kernel(0.5, 1.5, -1.0, t);
            let got = r.state_coeff(0, j);
            assert!(
                (got - want).abs() < 3e-2 * want.abs().max(0.1),
                "t={t}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn fractional_adaptive_matches_dense_oracle() {
        use opm_linalg::kron::{kron, unvec, vec_of};
        use opm_linalg::DMatrix;
        use opm_system::FractionalSystem;
        let fsys = FractionalSystem::new(0.5, scalar(-2.0)).unwrap();
        let steps = geometric_grid(1.0, 12, 1.15);
        let grid = AdaptiveBpf::new(steps);
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let fast = solve_fractional_adaptive(&fsys, &grid, &inputs).unwrap();

        // Dense oracle: (D̃^αᵀ ⊗ E − I ⊗ A)·vec X = vec(B U).
        let d_alpha = grid.frac_diff_matrix(0.5).unwrap();
        let (e, a, b) = fsys.system().to_dense();
        let m = grid.dim();
        let big = kron(&d_alpha.transpose(), &e).sub(&kron(&DMatrix::identity(m), &a));
        let u = inputs.averages_on_grid(grid.bounds());
        let bu = b.mul_mat(&DMatrix::from_fn(1, m, |_, j| u[0][j]));
        let x = big.factor_lu().unwrap().solve(&vec_of(&bu));
        let xm = unvec(&x, 1, m);
        for j in 0..m {
            assert!(
                (fast.state_coeff(0, j) - xm.get(0, j)).abs() < 1e-9,
                "column {j}: {} vs {}",
                fast.state_coeff(0, j),
                xm.get(0, j)
            );
        }
    }

    #[test]
    fn fractional_adaptive_rejects_equal_steps() {
        use opm_system::FractionalSystem;
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let grid = AdaptiveBpf::new(vec![0.1, 0.2, 0.1]);
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        assert!(matches!(
            solve_fractional_adaptive(&fsys, &grid, &inputs),
            Err(OpmError::ConfluentSteps(_))
        ));
    }
}
