//! OPM for linear ODE/DAE systems (paper §III).
//!
//! The matrix equation `E X D = A X + B U` with the uniform-step BPF
//! operator `D` is solved column by column. Eliminating the running
//! accumulator between consecutive columns yields the *stable two-term
//! recurrence*
//!
//! ```text
//! (2/h·E − A)·x_j = (2/h·E + A)·x_{j−1} + B·(u_j + u_{j−1})
//! ```
//!
//! — one sparse LU factorization, one solve per column, `O(n^β m)` total:
//! the paper's claim that OPM matches trapezoidal-class methods is an
//! algebraic identity, which the test suite verifies against the paper's
//! literal accumulator form [`solve_linear_accumulator`] and the
//! Kronecker oracle.
//!
//! Nonzero initial conditions use the state shift `z = x − x₀` (the
//! constant `A·x₀` joins the input), since the BPF derivative expansion
//! assumes `x(0⁻) = 0`.

use crate::result::OpmResult;
use crate::OpmError;
use opm_sparse::ordering::rcm;
use opm_sparse::SparseLu;
use opm_system::DescriptorSystem;

/// Validates coefficient-input shape against the system.
pub(crate) fn validate_inputs(
    sys: &DescriptorSystem,
    u_coeffs: &[Vec<f64>],
) -> Result<usize, OpmError> {
    if u_coeffs.len() != sys.num_inputs() {
        return Err(OpmError::BadArguments(format!(
            "{} input rows for {} B columns",
            u_coeffs.len(),
            sys.num_inputs()
        )));
    }
    let m = u_coeffs.first().map_or(0, Vec::len);
    if m == 0 {
        return Err(OpmError::BadArguments("zero intervals".into()));
    }
    if u_coeffs.iter().any(|r| r.len() != m) {
        return Err(OpmError::BadArguments("ragged input rows".into()));
    }
    Ok(m)
}

pub(crate) fn add_b_times(
    sys: &DescriptorSystem,
    u_coeffs: &[Vec<f64>],
    j: usize,
    scale: f64,
    out: &mut [f64],
) {
    let b = sys.b();
    for i in 0..b.nrows() {
        let mut s = 0.0;
        for (ch, v) in b.row(i) {
            s += v * u_coeffs[ch][j];
        }
        out[i] += scale * s;
    }
}

pub(crate) fn make_outputs(sys: &DescriptorSystem, columns: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let q = sys.num_outputs();
    let mut outputs = vec![Vec::with_capacity(columns.len()); q];
    for col in columns {
        for (o, val) in sys.output(col).into_iter().enumerate() {
            outputs[o].push(val);
        }
    }
    outputs
}

/// Solves `E ẋ = A x + B u` by OPM over `[0, t_end)` with `m` uniform
/// intervals (`m` = number of columns of `u_coeffs`).
///
/// `u_coeffs[ch][j]` is the BPF coefficient (interval average) of input
/// channel `ch` on interval `j` — produce it with
/// [`opm_waveform::InputSet::bpf_matrix`].
///
/// # Errors
/// [`OpmError::SingularPencil`] when `(2/h)E − A` is singular;
/// [`OpmError::BadArguments`] for shape mismatches.
pub fn solve_linear(
    sys: &DescriptorSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
    x0: &[f64],
) -> Result<OpmResult, OpmError> {
    let m = validate_inputs(sys, u_coeffs)?;
    let n = sys.order();
    if x0.len() != n {
        return Err(OpmError::BadArguments(format!(
            "x0 length {} for order {n}",
            x0.len()
        )));
    }
    if !(t_end > 0.0) {
        return Err(OpmError::BadArguments(format!("t_end = {t_end}")));
    }
    let h = t_end / m as f64;
    let sigma = 2.0 / h;

    let pencil = sys.e().lin_comb(sigma, -1.0, sys.a());
    let order = rcm(&pencil);
    let lu = SparseLu::factor(&pencil.to_csc(), Some(&order))
        .map_err(|e| OpmError::SingularPencil(format!("{e}")))?;

    // Shift: z = x − x₀; constant forcing c = A·x₀.
    let shift = x0.iter().any(|&v| v != 0.0);
    let c_force = if shift { sys.a().mul_vec(x0) } else { vec![0.0; n] };

    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs = vec![0.0; n];
    let mut work = vec![0.0; n];
    let mut z_prev = vec![0.0; n];
    for j in 0..m {
        rhs.iter_mut().for_each(|v| *v = 0.0);
        if j == 0 {
            // Column 0: (σE − A)·z₀ = B·u₀ + c.
            add_b_times(sys, u_coeffs, 0, 1.0, &mut rhs);
            if shift {
                for (r, c) in rhs.iter_mut().zip(&c_force) {
                    *r += c;
                }
            }
        } else {
            // (σE − A)·z_j = (σE + A)·z_{j−1} + B(u_j + u_{j−1}) + 2c.
            sys.e().mul_vec_into(&z_prev, &mut work);
            for (r, w) in rhs.iter_mut().zip(&work) {
                *r += sigma * w;
            }
            sys.a().mul_vec_into(&z_prev, &mut work);
            for (r, w) in rhs.iter_mut().zip(&work) {
                *r += w;
            }
            add_b_times(sys, u_coeffs, j, 1.0, &mut rhs);
            add_b_times(sys, u_coeffs, j - 1, 1.0, &mut rhs);
            if shift {
                for (r, c) in rhs.iter_mut().zip(&c_force) {
                    *r += 2.0 * c;
                }
            }
        }
        let mut z = vec![0.0; n];
        lu.solve_into(&rhs, &mut z);
        z_prev.copy_from_slice(&z);
        if shift {
            for (zi, x0i) in z.iter_mut().zip(x0) {
                *zi += x0i;
            }
        }
        columns.push(z);
    }

    let outputs = make_outputs(sys, &columns);
    Ok(OpmResult {
        bounds: (0..=m).map(|k| k as f64 * h).collect(),
        columns,
        outputs,
        num_solves: m,
        num_factorizations: 1,
    })
}

/// The paper's literal column algorithm: keep the alternating accumulator
/// `g_j = Σ_{i<j} (−1)^{j−i}·z_i` and solve
/// `(2/h·E − A)·z_j = B·u_j + c − (4/h)·E·g_j`.
///
/// Algebraically identical to [`solve_linear`]; retained as an
/// independent implementation for cross-validation and for exposition.
///
/// # Errors
/// As [`solve_linear`].
pub fn solve_linear_accumulator(
    sys: &DescriptorSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
    x0: &[f64],
) -> Result<OpmResult, OpmError> {
    let m = validate_inputs(sys, u_coeffs)?;
    let n = sys.order();
    if x0.len() != n {
        return Err(OpmError::BadArguments(format!(
            "x0 length {} for order {n}",
            x0.len()
        )));
    }
    let h = t_end / m as f64;
    let sigma = 2.0 / h;
    let pencil = sys.e().lin_comb(sigma, -1.0, sys.a());
    let order = rcm(&pencil);
    let lu = SparseLu::factor(&pencil.to_csc(), Some(&order))
        .map_err(|e| OpmError::SingularPencil(format!("{e}")))?;

    let shift = x0.iter().any(|&v| v != 0.0);
    let c_force = if shift { sys.a().mul_vec(x0) } else { vec![0.0; n] };

    let mut g = vec![0.0; n];
    let mut columns: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs = vec![0.0; n];
    let mut work = vec![0.0; n];
    for j in 0..m {
        rhs.iter_mut().for_each(|v| *v = 0.0);
        add_b_times(sys, u_coeffs, j, 1.0, &mut rhs);
        if shift {
            for (r, c) in rhs.iter_mut().zip(&c_force) {
                *r += c;
            }
        }
        if j > 0 {
            sys.e().mul_vec_into(&g, &mut work);
            for (r, w) in rhs.iter_mut().zip(&work) {
                *r -= 2.0 * sigma * w;
            }
        }
        let mut z = vec![0.0; n];
        lu.solve_into(&rhs, &mut z);
        // g_{j+1} = −(g_j + z_j)
        for (gi, zi) in g.iter_mut().zip(&z) {
            *gi = -(*gi + zi);
        }
        if shift {
            for (zi, x0i) in z.iter_mut().zip(x0) {
                *zi += x0i;
            }
        }
        columns.push(z);
    }
    let outputs = make_outputs(sys, &columns);
    Ok(OpmResult {
        bounds: (0..=m).map(|k| k as f64 * h).collect(),
        columns,
        outputs,
        num_solves: m,
        num_factorizations: 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_sparse::{CooMatrix, CsrMatrix};
    use opm_waveform::{InputSet, Waveform};

    fn scalar(a: f64) -> DescriptorSystem {
        let mut am = CooMatrix::new(1, 1);
        am.push(0, 0, a);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        DescriptorSystem::new(CsrMatrix::identity(1), am.to_csr(), b.to_csr(), None).unwrap()
    }

    #[test]
    fn step_response_matches_analytic_midpoints() {
        // ẋ = −x + 1 ⇒ x(t) = 1 − e^{−t}; coefficients ≈ midpoint values.
        let sys = scalar(-1.0);
        let m = 512;
        let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, 2.0);
        let r = solve_linear(&sys, &u, 2.0, &[0.0]).unwrap();
        for (j, &t) in r.midpoints().iter().enumerate().step_by(37) {
            let want = 1.0 - (-t).exp();
            assert!(
                (r.state_coeff(0, j) - want).abs() < 2e-5,
                "t={t}: {} vs {want}",
                r.state_coeff(0, j)
            );
        }
    }

    #[test]
    fn accumulator_form_is_identical() {
        let sys = scalar(-2.5);
        let m = 64;
        let u = InputSet::new(vec![Waveform::sine(0.0, 1.0, 1.5, 0.0, 0.3)]).bpf_matrix(m, 3.0);
        let fast = solve_linear(&sys, &u, 3.0, &[0.4]).unwrap();
        let acc = solve_linear_accumulator(&sys, &u, 3.0, &[0.4]).unwrap();
        for j in 0..m {
            assert!(
                (fast.state_coeff(0, j) - acc.state_coeff(0, j)).abs() < 1e-10,
                "column {j}"
            );
        }
    }

    #[test]
    fn second_order_convergence_of_coefficients() {
        let sys = scalar(-1.0);
        let exact_avg = |a: f64, b: f64| {
            // average of 1 − e^{−t} over [a, b]
            1.0 - ((-a as f64).exp() - (-b as f64).exp()) / (b - a)
        };
        let err = |m: usize| {
            let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, 1.0);
            let r = solve_linear(&sys, &u, 1.0, &[0.0]).unwrap();
            let h = 1.0 / m as f64;
            (0..m)
                .map(|j| {
                    (r.state_coeff(0, j) - exact_avg(j as f64 * h, (j + 1) as f64 * h)).abs()
                })
                .fold(0.0, f64::max)
        };
        let e1 = err(64);
        let e2 = err(128);
        let rate = (e1 / e2).log2();
        assert!((rate - 2.0).abs() < 0.2, "OPM order ≈ {rate}");
    }

    #[test]
    fn nonzero_initial_condition() {
        // ẋ = −x, x(0) = 3 ⇒ averages of 3e^{−t}.
        let sys = scalar(-1.0);
        let m = 256;
        let u = InputSet::new(vec![Waveform::Dc(0.0)]).bpf_matrix(m, 2.0);
        let r = solve_linear(&sys, &u, 2.0, &[3.0]).unwrap();
        for (j, &t) in r.midpoints().iter().enumerate().step_by(41) {
            let want = 3.0 * (-t).exp();
            assert!(
                (r.state_coeff(0, j) - want).abs() < 5e-5,
                "t={t}: {}",
                r.state_coeff(0, j)
            );
        }
    }

    #[test]
    fn dae_algebraic_constraint_satisfied() {
        // [1 0; 0 0]·ẋ = [−1 0; 1 −1]x + [1; 0]u: x₂ = x₁ always.
        let mut e = CooMatrix::new(2, 2);
        e.push(0, 0, 1.0);
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, -1.0);
        a.push(1, 0, 1.0);
        a.push(1, 1, -1.0);
        let mut b = CooMatrix::new(2, 1);
        b.push(0, 0, 1.0);
        let sys = DescriptorSystem::new(e.to_csr(), a.to_csr(), b.to_csr(), None).unwrap();
        let m = 64;
        let u = InputSet::new(vec![Waveform::step(0.1, 1.0)]).bpf_matrix(m, 1.0);
        let r = solve_linear(&sys, &u, 1.0, &[0.0, 0.0]).unwrap();
        for j in 0..m {
            assert!(
                (r.state_coeff(0, j) - r.state_coeff(1, j)).abs() < 1e-12,
                "constraint violated at column {j}"
            );
        }
    }

    #[test]
    fn argument_validation() {
        let sys = scalar(-1.0);
        assert!(solve_linear(&sys, &[], 1.0, &[0.0]).is_err());
        assert!(solve_linear(&sys, &[vec![]], 1.0, &[0.0]).is_err());
        assert!(solve_linear(&sys, &[vec![1.0]], 1.0, &[0.0, 1.0]).is_err());
        assert!(solve_linear(&sys, &[vec![1.0]], -1.0, &[0.0]).is_err());
        let two_rows = vec![vec![1.0, 2.0], vec![1.0]];
        let sys2 = {
            let mut b = CooMatrix::new(1, 2);
            b.push(0, 0, 1.0);
            b.push(0, 1, 1.0);
            DescriptorSystem::new(
                CsrMatrix::identity(1),
                CsrMatrix::identity(1).scale(-1.0),
                b.to_csr(),
                None,
            )
            .unwrap()
        };
        assert!(solve_linear(&sys2, &two_rows, 1.0, &[0.0]).is_err());
    }

    #[test]
    fn singular_pencil_detected() {
        // E = 0, A singular ⇒ pencil σE − A singular.
        let e = CooMatrix::new(2, 2);
        let a = CooMatrix::new(2, 2);
        let mut b = CooMatrix::new(2, 1);
        b.push(0, 0, 1.0);
        let sys = DescriptorSystem::new(e.to_csr(), a.to_csr(), b.to_csr(), None).unwrap();
        let u = vec![vec![1.0, 1.0]];
        assert!(matches!(
            solve_linear(&sys, &u, 1.0, &[0.0, 0.0]),
            Err(OpmError::SingularPencil(_))
        ));
    }
}
