//! OPM for linear ODE/DAE systems (paper §III).
//!
//! The matrix equation `E X D = A X + B U` with the uniform-step BPF
//! operator `D` is solved column by column. Eliminating the running
//! accumulator between consecutive columns yields the *stable two-term
//! recurrence*
//!
//! ```text
//! (2/h·E − A)·x_j = (2/h·E + A)·x_{j−1} + B·(u_j + u_{j−1})
//! ```
//!
//! — one sparse LU factorization, one solve per column, `O(n^β m)` total:
//! the paper's claim that OPM matches trapezoidal-class methods is an
//! algebraic identity, which the test suite verifies against the paper's
//! literal accumulator form [`solve_linear_accumulator`] and the
//! Kronecker oracle.
//!
//! Nonzero initial conditions use the state shift `z = x − x₀` (the
//! constant `A·x₀` joins the input), since the BPF derivative expansion
//! assumes `x(0⁻) = 0`.
//!
//! Both entry points are thin one-shot wrappers over the plan layer
//! ([`crate::session`]): a [`crate::SimPlan`] validates, factors the
//! pencil once and runs the (block) column sweep; for repeated solves
//! against the same system, build the plan yourself via
//! [`crate::Simulation`] and amortize the factorization across every
//! scenario.

use crate::engine::validate_coeff_inputs;
use crate::result::OpmResult;
use crate::session::SimPlan;
use crate::OpmError;
use opm_system::DescriptorSystem;

/// Solves `E ẋ = A x + B u` by OPM over `[0, t_end)` with `m` uniform
/// intervals (`m` = number of columns of `u_coeffs`).
///
/// `u_coeffs[ch][j]` is the BPF coefficient (interval average) of input
/// channel `ch` on interval `j` — produce it with
/// [`opm_waveform::InputSet::bpf_matrix`].
///
/// # Errors
/// [`OpmError::SingularPencil`] when `(2/h)E − A` is singular;
/// [`OpmError::BadArguments`] for shape mismatches.
#[deprecated(note = "use Simulation::plan")]
pub fn solve_linear(
    sys: &DescriptorSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
    x0: &[f64],
) -> Result<OpmResult, OpmError> {
    let m = validate_coeff_inputs(sys.num_inputs(), u_coeffs)?;
    SimPlan::for_linear(sys, m, t_end, x0, false)?.solve_coeffs(u_coeffs)
}

/// The paper's literal column algorithm: keep the alternating accumulator
/// `g_j = Σ_{i<j} (−1)^{j−i}·z_i` and solve
/// `(2/h·E − A)·z_j = B·u_j + c − (4/h)·E·g_j`.
///
/// Algebraically identical to [`solve_linear`]; retained as an
/// independent implementation for cross-validation and for exposition.
///
/// # Errors
/// As [`solve_linear`].
#[deprecated(note = "use Simulation::plan")]
pub fn solve_linear_accumulator(
    sys: &DescriptorSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
    x0: &[f64],
) -> Result<OpmResult, OpmError> {
    let m = validate_coeff_inputs(sys.num_inputs(), u_coeffs)?;
    SimPlan::for_linear(sys, m, t_end, x0, true)?.solve_coeffs(u_coeffs)
}

#[cfg(test)]
mod tests {
    // The strategy's own unit tests exercise the deprecated one-shot
    // wrappers on purpose: they pin the wrapper-to-plan delegation.
    #![allow(deprecated)]
    use super::*;
    use opm_sparse::{CooMatrix, CsrMatrix};
    use opm_waveform::{InputSet, Waveform};

    fn scalar(a: f64) -> DescriptorSystem {
        let mut am = CooMatrix::new(1, 1);
        am.push(0, 0, a);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        DescriptorSystem::new(CsrMatrix::identity(1), am.to_csr(), b.to_csr(), None).unwrap()
    }

    #[test]
    fn step_response_matches_analytic_midpoints() {
        // ẋ = −x + 1 ⇒ x(t) = 1 − e^{−t}; coefficients ≈ midpoint values.
        let sys = scalar(-1.0);
        let m = 512;
        let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, 2.0);
        let r = solve_linear(&sys, &u, 2.0, &[0.0]).unwrap();
        for (j, &t) in r.midpoints().iter().enumerate().step_by(37) {
            let want = 1.0 - (-t).exp();
            assert!(
                (r.state_coeff(0, j) - want).abs() < 2e-5,
                "t={t}: {} vs {want}",
                r.state_coeff(0, j)
            );
        }
    }

    #[test]
    fn accumulator_form_is_identical() {
        let sys = scalar(-2.5);
        let m = 64;
        let u = InputSet::new(vec![Waveform::sine(0.0, 1.0, 1.5, 0.0, 0.3)]).bpf_matrix(m, 3.0);
        let fast = solve_linear(&sys, &u, 3.0, &[0.4]).unwrap();
        let acc = solve_linear_accumulator(&sys, &u, 3.0, &[0.4]).unwrap();
        for j in 0..m {
            assert!(
                (fast.state_coeff(0, j) - acc.state_coeff(0, j)).abs() < 1e-10,
                "column {j}"
            );
        }
    }

    #[test]
    fn second_order_convergence_of_coefficients() {
        let sys = scalar(-1.0);
        let exact_avg = |a: f64, b: f64| {
            // average of 1 − e^{−t} over [a, b]
            1.0 - ((-a).exp() - (-b).exp()) / (b - a)
        };
        let err = |m: usize| {
            let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, 1.0);
            let r = solve_linear(&sys, &u, 1.0, &[0.0]).unwrap();
            let h = 1.0 / m as f64;
            (0..m)
                .map(|j| (r.state_coeff(0, j) - exact_avg(j as f64 * h, (j + 1) as f64 * h)).abs())
                .fold(0.0, f64::max)
        };
        let e1 = err(64);
        let e2 = err(128);
        let rate = (e1 / e2).log2();
        assert!((rate - 2.0).abs() < 0.2, "OPM order ≈ {rate}");
    }

    #[test]
    fn nonzero_initial_condition() {
        // ẋ = −x, x(0) = 3 ⇒ averages of 3e^{−t}.
        let sys = scalar(-1.0);
        let m = 256;
        let u = InputSet::new(vec![Waveform::Dc(0.0)]).bpf_matrix(m, 2.0);
        let r = solve_linear(&sys, &u, 2.0, &[3.0]).unwrap();
        for (j, &t) in r.midpoints().iter().enumerate().step_by(41) {
            let want = 3.0 * (-t).exp();
            assert!(
                (r.state_coeff(0, j) - want).abs() < 5e-5,
                "t={t}: {}",
                r.state_coeff(0, j)
            );
        }
    }

    #[test]
    fn dae_algebraic_constraint_satisfied() {
        // [1 0; 0 0]·ẋ = [−1 0; 1 −1]x + [1; 0]u: x₂ = x₁ always.
        let mut e = CooMatrix::new(2, 2);
        e.push(0, 0, 1.0);
        let mut a = CooMatrix::new(2, 2);
        a.push(0, 0, -1.0);
        a.push(1, 0, 1.0);
        a.push(1, 1, -1.0);
        let mut b = CooMatrix::new(2, 1);
        b.push(0, 0, 1.0);
        let sys = DescriptorSystem::new(e.to_csr(), a.to_csr(), b.to_csr(), None).unwrap();
        let m = 64;
        let u = InputSet::new(vec![Waveform::step(0.1, 1.0)]).bpf_matrix(m, 1.0);
        let r = solve_linear(&sys, &u, 1.0, &[0.0, 0.0]).unwrap();
        for j in 0..m {
            assert!(
                (r.state_coeff(0, j) - r.state_coeff(1, j)).abs() < 1e-12,
                "constraint violated at column {j}"
            );
        }
    }

    #[test]
    fn argument_validation() {
        let sys = scalar(-1.0);
        assert!(solve_linear(&sys, &[], 1.0, &[0.0]).is_err());
        assert!(solve_linear(&sys, &[vec![]], 1.0, &[0.0]).is_err());
        assert!(solve_linear(&sys, &[vec![1.0]], 1.0, &[0.0, 1.0]).is_err());
        assert!(solve_linear(&sys, &[vec![1.0]], -1.0, &[0.0]).is_err());
        let two_rows = vec![vec![1.0, 2.0], vec![1.0]];
        let sys2 = {
            let mut b = CooMatrix::new(1, 2);
            b.push(0, 0, 1.0);
            b.push(0, 1, 1.0);
            DescriptorSystem::new(
                CsrMatrix::identity(1),
                CsrMatrix::identity(1).scale(-1.0),
                b.to_csr(),
                None,
            )
            .unwrap()
        };
        assert!(solve_linear(&sys2, &two_rows, 1.0, &[0.0]).is_err());
    }

    #[test]
    fn singular_pencil_detected() {
        // E = 0, A singular ⇒ pencil σE − A singular.
        let e = CooMatrix::new(2, 2);
        let a = CooMatrix::new(2, 2);
        let mut b = CooMatrix::new(2, 1);
        b.push(0, 0, 1.0);
        let sys = DescriptorSystem::new(e.to_csr(), a.to_csr(), b.to_csr(), None).unwrap();
        let u = vec![vec![1.0, 1.0]];
        assert!(matches!(
            solve_linear(&sys, &u, 1.0, &[0.0, 0.0]),
            Err(OpmError::SingularPencil(_))
        ));
    }
}
