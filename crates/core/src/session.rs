//! The two-phase session API: **one factorization, many scenarios**.
//!
//! The paper's core economy is that the OPM pencil is factored *once* and
//! amortized over every BPF column. This module extends that economy
//! across solves: a [`Simulation`] owns a model (hand-built or assembled
//! straight from a netlist), [`Simulation::plan`] validates it against a
//! [`SolveOptions`] and performs every stimulus-independent step — shape
//! checks, RCM ordering, pencil factorization, fractional series /
//! finite-recurrence polynomials — and the resulting [`SimPlan`] replays
//! only the cheap part for each scenario:
//!
//! - [`SimPlan::solve`] — one stimulus through the cached factorization;
//! - [`SimPlan::solve_batch`] — K stimuli swept through the factorization
//!   in a **single pass**: the engine's [`BlockColumnSweep`] interleaves
//!   the scenarios so every sparse traversal (pencil solve, `E`/`A`
//!   products, `B` application) is amortized K-fold;
//! - [`SimPlan::sweep`] — parameter studies: build a stimulus per
//!   parameter, then batch-solve.
//!
//! ```
//! use opm_core::{SolveOptions, Simulation};
//! use opm_waveform::{InputSet, Waveform};
//!
//! let sim = Simulation::from_netlist(
//!     "V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1u\n.end",
//!     &["out"],
//! )
//! .unwrap()
//! .horizon(5e-3);
//! let plan = sim.plan(&SolveOptions::new().resolution(256)).unwrap();
//!
//! // Sweep the drive level with ONE factorization.
//! let levels = [1.0, 2.0, 5.0];
//! let runs = plan
//!     .sweep(&levels, |&v| InputSet::new(vec![Waveform::Dc(v)]))
//!     .unwrap();
//! assert_eq!(plan.num_factorizations(), 1);
//! assert!(runs[2].output_row(0)[255] > runs[0].output_row(0)[255]);
//! ```
//!
//! [`Problem::solve`](crate::Problem::solve) and the per-strategy entry
//! points (`solve_linear`, `solve_fractional`, …) are thin one-shot
//! wrappers over this layer.

use crate::adaptive::{self, AdaptiveOpmOptions, StepGridFactors};
use crate::cancel::CancelToken;
use crate::engine::{
    apply_b_block, factor_pencil_symbolic, validate_coeff_inputs, validate_horizon, validate_x0,
    BlockColumnSweep, BlockOutcome, FactorCache, Method, OutputMap, PencilFamily, SolveOptions,
    SweepOutcome,
};
use crate::kron_solve::{fractional_as_multiterm, kron_prepare, kron_solve_prepared, KronFactors};
use crate::metrics::FactorProfile;
use crate::newton::{NewtonSweep, NewtonWindow};
use crate::result::OpmResult;
use crate::OpmError;
use opm_basis::adaptive::AdaptiveBpf;
use opm_basis::bpf::{endpoint_state, BpfBasis};
use opm_basis::haar::HaarBasis;
use opm_basis::series::tustin_frac_coeffs;
use opm_basis::traits::Basis;
use opm_circuits::mna::{
    assemble_fractional_mna, assemble_mna, assemble_nonlinear_mna, Output, Unknown,
};
use opm_circuits::netlist::{Circuit, Element};
use opm_circuits::nonlinear::DeviceModel;
use opm_circuits::parser::parse_netlist;
use opm_fracnum::binomial::binomial_series;
use opm_fracnum::history::{history_convolution_into, HistoryTail};
use opm_sparse::{SparseError, SparseLu, SymbolicLu};
use opm_system::{DescriptorSystem, FractionalSystem, MultiTermSystem, SecondOrderSystem};
use opm_waveform::InputSet;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Simulation: the owning session front door
// ---------------------------------------------------------------------------

/// The model class a [`Simulation`] owns (and a [`SimPlan`] `Arc`-shares
/// with it).
#[derive(Clone, Debug)]
pub enum SimModel {
    /// Linear descriptor system `E ẋ = A x + B u`.
    Linear(DescriptorSystem),
    /// Fractional system `E d^α x = A x + B u`.
    Fractional(FractionalSystem),
    /// Multi-term system `Σ_k A_k d^{α_k} x = B u`.
    MultiTerm(MultiTermSystem),
    /// Second-order nodal system `M₂ ẍ + M₁ ẋ + M₀ x = B u̇`.
    SecondOrder(SecondOrderSystem),
}

impl SimModel {
    /// State dimension of the model.
    pub fn order(&self) -> usize {
        match self {
            SimModel::Linear(s) => s.order(),
            SimModel::Fractional(f) => f.order(),
            SimModel::MultiTerm(mt) => mt.order(),
            SimModel::SecondOrder(so) => so.order(),
        }
    }

    /// Number of input channels (columns of `B`).
    pub fn num_inputs(&self) -> usize {
        match self {
            SimModel::Linear(s) => s.num_inputs(),
            SimModel::Fractional(f) => f.num_inputs(),
            SimModel::MultiTerm(mt) => mt.num_inputs(),
            SimModel::SecondOrder(so) => so.num_inputs(),
        }
    }

    /// The strategy family this model solves through (used in
    /// diagnostics).
    pub fn strategy_name(&self) -> &'static str {
        match self {
            SimModel::Linear(_) => "linear",
            SimModel::Fractional(_) => "fractional",
            SimModel::MultiTerm(_) => "multi-term",
            SimModel::SecondOrder(_) => "second-order",
        }
    }
}

/// An owning simulation session: model + horizon + initial state.
///
/// Construct from an assembled system ([`Simulation::from_system`] and
/// siblings) or straight from a circuit description
/// ([`Simulation::from_netlist`] / [`Simulation::from_circuit`] — no
/// hand-run MNA required), then call [`Simulation::plan`] to factor once
/// and solve many scenarios.
#[derive(Clone, Debug)]
pub struct Simulation {
    /// Shared with every plan built from this session: a [`SimPlan`]
    /// `Arc`-clones the model, so plans are self-contained (`'static`),
    /// outlive the session, and can be interned in a
    /// [`crate::cache::PlanCache`].
    model: Arc<SimModel>,
    t_end: f64,
    x0: Option<Vec<f64>>,
    inputs: Option<InputSet>,
    unknowns: Vec<Unknown>,
    /// Nonlinear companion devices riding on a linear model (populated
    /// by [`Simulation::from_circuit`] when the netlist carries diodes
    /// or MOSFETs); plans built from this session solve through
    /// [`SimPlan::solve_newton`].
    devices: Vec<DeviceModel>,
}

impl Simulation {
    fn new(model: SimModel) -> Self {
        Simulation {
            model: Arc::new(model),
            t_end: 0.0,
            x0: None,
            inputs: None,
            unknowns: Vec::new(),
            devices: Vec::new(),
        }
    }

    /// A session over a linear descriptor system.
    pub fn from_system(sys: DescriptorSystem) -> Self {
        Simulation::new(SimModel::Linear(sys))
    }

    /// A session over a fractional system.
    pub fn from_fractional(fsys: FractionalSystem) -> Self {
        Simulation::new(SimModel::Fractional(fsys))
    }

    /// A session over a multi-term system.
    pub fn from_multiterm(mt: MultiTermSystem) -> Self {
        Simulation::new(SimModel::MultiTerm(mt))
    }

    /// A session over a second-order nodal system.
    pub fn from_second_order(so: SecondOrderSystem) -> Self {
        Simulation::new(SimModel::SecondOrder(so))
    }

    /// A session straight from SPICE-flavoured netlist text: parses,
    /// picks the formulation (fractional MNA when the circuit contains
    /// CPEs, integer MNA otherwise), assembles, and remembers the
    /// netlist's own sources as the default stimulus
    /// ([`Simulation::inputs`]).
    ///
    /// `probes` lists node *names* to observe as output channels.
    ///
    /// # Errors
    /// [`OpmError::Circuit`] for parse/assembly failures,
    /// [`OpmError::BadArguments`] for unknown probe names.
    pub fn from_netlist(text: &str, probes: &[&str]) -> Result<Self, OpmError> {
        let parsed = parse_netlist(text)?;
        let outputs = probes
            .iter()
            .map(|p| {
                let node = parsed.node(p).ok_or_else(|| {
                    OpmError::BadArguments(format!("unknown probe node `{p}` in netlist"))
                })?;
                if node == 0 {
                    return Err(OpmError::BadArguments(
                        "probing ground is a tautology: its voltage is 0".into(),
                    ));
                }
                Ok(Output::NodeVoltage(node))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_circuit(&parsed.circuit, &outputs)
    }

    /// A session from a programmatically built [`Circuit`] (same
    /// formulation auto-detection as [`Simulation::from_netlist`], but
    /// with explicit [`Output`] selectors).
    ///
    /// # Errors
    /// [`OpmError::Circuit`] for assembly failures.
    pub fn from_circuit(ckt: &Circuit, outputs: &[Output]) -> Result<Self, OpmError> {
        if ckt.has_nonlinear() {
            // Diodes/MOSFETs: linear part + re-stampable device list.
            // (Mixing CPEs with nonlinear devices is rejected by the
            // assembler.)
            let nl = assemble_nonlinear_mna(ckt, outputs)?;
            let mut s = Simulation::new(SimModel::Linear(nl.model.system));
            s.inputs = Some(nl.model.inputs);
            s.unknowns = nl.model.unknowns;
            s.devices = nl.devices;
            return Ok(s);
        }
        let cpe_alpha = ckt.elements().iter().find_map(|e| match e {
            Element::Cpe { alpha, .. } => Some(*alpha),
            _ => None,
        });
        let sim = match cpe_alpha {
            Some(alpha) => {
                let model = assemble_fractional_mna(ckt, alpha, outputs)?;
                let mut s = Simulation::new(SimModel::Fractional(model.system));
                s.inputs = Some(model.inputs);
                s.unknowns = model.unknowns;
                s
            }
            None => {
                let model = assemble_mna(ckt, outputs)?;
                let mut s = Simulation::new(SimModel::Linear(model.system));
                s.inputs = Some(model.inputs);
                s.unknowns = model.unknowns;
                s
            }
        };
        Ok(sim)
    }

    /// Sets the simulation horizon `[0, t_end)`.
    #[must_use]
    pub fn horizon(mut self, t_end: f64) -> Self {
        self.t_end = t_end;
        self
    }

    /// Sets a nonzero initial state (linear models only; fractional and
    /// multi-term OPM assume zero Caputo initial conditions).
    #[must_use]
    pub fn initial_state(mut self, x0: Vec<f64>) -> Self {
        self.x0 = Some(x0);
        self
    }

    /// The owned model.
    pub fn model(&self) -> &SimModel {
        &self.model
    }

    /// The shared handle to the model — what plans built from this
    /// session hold.
    pub fn model_arc(&self) -> Arc<SimModel> {
        Arc::clone(&self.model)
    }

    /// The simulation horizon.
    pub fn t_end(&self) -> f64 {
        self.t_end
    }

    /// The initial state, when one was set.
    pub fn x0(&self) -> Option<&[f64]> {
        self.x0.as_deref()
    }

    /// State dimension of the model.
    pub fn order(&self) -> usize {
        self.model.order()
    }

    /// The netlist's own sources, when this session was assembled from a
    /// circuit — ready to pass to [`SimPlan::solve`].
    pub fn inputs(&self) -> Option<&InputSet> {
        self.inputs.as_ref()
    }

    /// Meaning of each state entry (netlist-assembled sessions only).
    pub fn unknowns(&self) -> &[Unknown] {
        &self.unknowns
    }

    /// The nonlinear companion devices (empty unless the session was
    /// assembled from a circuit with diodes/MOSFETs).
    pub fn devices(&self) -> &[DeviceModel] {
        &self.devices
    }

    /// Whether plans built from this session need the Newton path
    /// ([`SimPlan::solve_newton`]).
    pub fn has_nonlinear(&self) -> bool {
        !self.devices.is_empty()
    }

    /// Validates the session against `opts` and performs every
    /// stimulus-independent step once: shape checks, pencil assembly, RCM
    /// ordering, sparse LU factorization, fractional series, recurrence
    /// polynomials. The returned [`SimPlan`] replays scenarios against
    /// the cached factorization.
    ///
    /// The plan `Arc`-shares the session's model: it is self-contained
    /// (`'static`), `Send + Sync`, free to outlive this session, and
    /// cacheable behind an `Arc` (see [`crate::cache::PlanCache`]).
    /// Before this release a plan *borrowed* the session
    /// (`SimPlan<'_>`); code that spelled the lifetime should simply
    /// drop it.
    ///
    /// # Errors
    /// [`OpmError::BadArguments`] for option/model mismatches (the
    /// message names both the offending option and the chosen strategy),
    /// [`OpmError::SingularPencil`] when the pencil cannot be factored.
    pub fn plan(&self, opts: &SolveOptions) -> Result<SimPlan, OpmError> {
        let m = plan_resolution(&self.model, opts)?;
        SimPlan::prepare(
            Arc::clone(&self.model),
            opts,
            m,
            self.t_end,
            self.x0.as_deref(),
            self.devices.clone(),
        )
    }
}

/// Resolves the column count a plan is built for.
pub(crate) fn plan_resolution(model: &SimModel, opts: &SolveOptions) -> Result<usize, OpmError> {
    if opts.adaptive.is_some() {
        return Ok(0); // the step controller determines the column count
    }
    if let Some(steps) = &opts.step_grid {
        return Ok(steps.len());
    }
    opts.resolution.ok_or_else(|| {
        OpmError::BadArguments(format!(
            "the `{}` plan needs SolveOptions::resolution: the column count is \
             fixed when the pencil is factored",
            model.strategy_name()
        ))
    })
}

/// Rejects option combinations that no strategy honors — silently
/// ignoring them would hand back a result the caller did not ask for.
/// Every rejection names **both** the offending option and the strategy
/// it clashed with.
pub(crate) fn validate_options(
    model: &SimModel,
    t_end: f64,
    opts: &SolveOptions,
) -> Result<(), OpmError> {
    let strategy = model.strategy_name();
    let bad = |msg: String| Err(OpmError::BadArguments(msg));
    let conflict = |opt: &str, hint: &str| {
        Err(OpmError::BadArguments(format!(
            "option `{opt}` does not apply to the `{strategy}` strategy: {hint}"
        )))
    };
    let grid_like = opts.adaptive.is_some() || opts.step_grid.is_some();
    let grid_opt = if opts.adaptive.is_some() {
        "adaptive"
    } else {
        "step_grid"
    };
    if opts.adaptive.is_some() && opts.step_grid.is_some() {
        return bad(format!(
            "options `adaptive` and `step_grid` conflict on the `{strategy}` strategy: \
             choose on-the-fly error control (adaptive) or explicit steps (step_grid), not both"
        ));
    }
    if grid_like && opts.method != Method::Auto {
        return bad(format!(
            "option `method` ({:?}) does not combine with `{grid_opt}` on the `{strategy}` \
             strategy: adaptive/step-grid solves choose their own path",
            opts.method
        ));
    }
    if grid_like && opts.resolution.is_some() {
        return bad(format!(
            "option `resolution` does not combine with `{grid_opt}` on the `{strategy}` \
             strategy: the step controller or the grid determines the column count"
        ));
    }
    if let Some(steps) = &opts.step_grid {
        let total: f64 = steps.iter().sum();
        let spans_horizon = total > 0.0 && (total - t_end).abs() <= 1e-9 * t_end.abs();
        if !spans_horizon {
            return bad(format!(
                "option `step_grid` sums to {total:e} but the `{strategy}` strategy's \
                 declared horizon is {t_end:e}"
            ));
        }
    }
    match model {
        SimModel::Linear(_) => {
            if opts.step_grid.is_some() {
                return conflict(
                    "step_grid",
                    "linear problems adapt on the fly via SolveOptions::adaptive",
                );
            }
        }
        SimModel::Fractional(_) => {
            if opts.adaptive.is_some() {
                return conflict(
                    "adaptive",
                    "fractional problems take an explicit SolveOptions::step_grid",
                );
            }
            if opts.method == Method::Accumulator {
                return bad(format!(
                    "method `Accumulator` does not apply to the `{strategy}` strategy: \
                     the accumulator form exists only for linear problems"
                ));
            }
        }
        SimModel::MultiTerm(_) => {
            if grid_like {
                return conflict(
                    grid_opt,
                    "adaptive/step-grid solving is not available for multi-term problems",
                );
            }
            if opts.method == Method::Accumulator {
                return bad(format!(
                    "method `Accumulator` does not apply to the `{strategy}` strategy: \
                     the accumulator form exists only for linear problems"
                ));
            }
        }
        SimModel::SecondOrder(_) => {
            if grid_like {
                return conflict(
                    grid_opt,
                    "adaptive/step-grid solving is not available for second-order problems",
                );
            }
            if opts.method != Method::Auto {
                return bad(format!(
                    "method `{:?}` does not apply to the `{strategy}` strategy: \
                     second-order problems always run the multi-term conversion",
                    opts.method
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// SimPlan: validated shape + cached factorization
// ---------------------------------------------------------------------------

/// Multi-term execution path selector (internal).
pub(crate) enum MtSelect {
    Auto,
    Recurrence,
    Convolution,
}

struct MtPlan {
    lu: SparseLu,
    /// Analysis of the pencil's union pattern — replayed numerically per
    /// window width by windowed second-order solving.
    symbolic: SymbolicLu,
    path: MtPath,
}

enum MtPath {
    /// Integer orders: finite `(1+q)^K` recurrence, depth `K`.
    Recurrence { polys: Vec<Vec<f64>>, bw: Vec<f64> },
    /// Fractional mixtures: per-term nilpotent-series convolution.
    Convolution { series: Vec<Vec<f64>> },
}

struct StepGridPlan {
    grid: AdaptiveBpf,
    factors: StepGridFactors,
}

enum PlanKind {
    /// Linear recurrence / accumulator against `(2/h)E − A`.
    Linear {
        sigma: f64,
        lu: SparseLu,
        accumulator: bool,
        /// The `σ·E − A` family behind `lu`: its pattern, ordering and
        /// symbolic analysis are shared with every *window* pencil the
        /// plan factors later, so a windowed solve costs one numeric
        /// refactorization, never a second analysis.
        family: Mutex<PencilFamily>,
    },
    /// Fractional series convolution against `ρ₀E − A`.
    Fractional {
        rho: Vec<f64>,
        lu: SparseLu,
        /// The `σ·E − A` family behind `lu` (`σ = ρ₀`): windowed solving
        /// refactors the window pencil `ρ₀(h_w)·E − A` numerically
        /// against the same recorded analysis.
        family: Mutex<PencilFamily>,
    },
    /// Multi-term sweep over the model's own terms.
    MultiTerm(MtPlan),
    /// Multi-term sweep over a conversion the plan owns (linear
    /// convolution method, second-order nodal form).
    OwnedMultiTerm {
        mt: MultiTermSystem,
        plan: MtPlan,
        /// Second-order: differentiate the stimulus exactly before the
        /// sweep (`u̇` interval averages).
        differentiate: bool,
    },
    /// Dense Kronecker oracle with the big LU cached.
    Kron {
        factors: KronFactors,
        /// Owned conversion when the model is not already multi-term.
        mt: Option<MultiTermSystem>,
    },
    /// On-the-fly adaptive linear stepping; the power-of-two lattice
    /// cache persists across every scenario solved through this plan
    /// (one symbolic analysis, numeric refactorization per new lattice
    /// exponent).
    AdaptiveLinear {
        aopts: AdaptiveOpmOptions,
        cache: Mutex<FactorCache>,
    },
    /// Fractional distinct-step grid with all per-column factorizations
    /// and the `D̃^α` columns precomputed.
    StepGrid(StepGridPlan),
}

/// A reusable solving session: the validated problem shape, orderings
/// and factorizations of one [`Simulation::plan`] (or one
/// [`crate::Problem`]), amortized over every
/// [`solve`](SimPlan::solve) / [`solve_batch`](SimPlan::solve_batch) /
/// [`sweep`](SimPlan::sweep) call.
///
/// A plan **owns** its model state (`Arc`-shared with the
/// [`Simulation`] that built it): it is `'static` and `Send + Sync`, so
/// it can move across threads, outlive the session, and be interned
/// behind an `Arc` in a [`crate::cache::PlanCache`] where one
/// factorization serves any number of concurrent callers.
pub struct SimPlan {
    model: Arc<SimModel>,
    t_end: f64,
    m: usize,
    x0: Vec<f64>,
    kind: PlanKind,
    /// Nonlinear companion devices (empty for purely linear plans).
    /// Plans carrying devices solve through [`SimPlan::solve_newton`];
    /// the linear entry points reject them so a caller can never
    /// silently drop the nonlinearities.
    devices: Arc<Vec<DeviceModel>>,
    /// Factorization work done at prepare time (live adaptive plans
    /// report from their lattice cache, linear plans from their pencil
    /// family, instead).
    profile: FactorProfile,
    /// Lazily-built windowed-solve state: the window kernels keyed by
    /// window count (one factorization serves all `W` windows and every
    /// scenario) plus the window counters.
    windowed: Mutex<WindowState>,
}

/// Shared windowed-solve state of one plan.
#[derive(Default)]
struct WindowState {
    /// Window kernels keyed by window count `W`.
    kernels: HashMap<usize, Arc<WindowKernel>>,
    /// Fresh analyses forced by window factorization (multi-term pivot
    /// fallbacks only — linear window factors count inside the family).
    num_symbolic: usize,
    /// Numeric-only window refactorizations (multi-term path).
    num_numeric: usize,
    /// Windows swept so far, across every windowed/streaming call.
    windows_solved: usize,
}

/// The per-window solving kernel: everything that depends on the window
/// width `T/W` and resolution `m`, factored **once** and reused by all
/// `W` windows and all batched scenarios.
enum WindowKernel {
    /// Linear strategy: the window pencil `σ_w·E − A` with
    /// `σ_w = 2·m·W/T`, numerically refactored against the plan's own
    /// symbolic analysis.
    Linear { lu: SparseLu, sigma: f64 },
    /// Integer multi-term recurrence (second-order nodal plans and plain
    /// integer multi-term plans): the window pencil plus the
    /// `h_w`-scaled recurrence polynomials. The carried state is the
    /// trailing `depth` solved columns (and the matching stimulus
    /// columns), which makes the restarted recurrence column-for-column
    /// identical to the unbroken sweep.
    Recurrence {
        lu: SparseLu,
        polys: Vec<Vec<f64>>,
        bw: Vec<f64>,
        depth: usize,
    },
    /// Fractional strategy: the window pencil `ρ₀(h_w)·E − A`
    /// (numerically refactored against the plan's pencil family) plus
    /// the full-horizon weight vector `ρ` at the window step — entries
    /// past the window resolution are the weights of the carried
    /// Caputo/GL history tail.
    Fractional { lu: SparseLu, rho: Vec<f64> },
    /// Multi-term nilpotent-series convolution (fractional mixtures):
    /// per-term full-horizon weight vectors at the window step, history
    /// carried exactly like the fractional kernel, term by term.
    MtConvolution { lu: SparseLu, series: Vec<Vec<f64>> },
}

/// Windowed-solve configuration beyond the window count — today the
/// short-memory truncation knob of fractional/multi-term windowed
/// solves.
///
/// ```
/// use opm_core::WindowedOptions;
/// let opts = WindowedOptions::new(32).history_len(256);
/// assert_eq!(opts.windows(), 32);
/// ```
///
/// # The short-memory truncation bound
///
/// A fractional window carries the Caputo/GL memory of all previous
/// windows as a weighted sum over their solved columns. With
/// [`history_len`](WindowedOptions::history_len)` = L`, only the `L`
/// most recent columns are retained (the Grünwald–Letnikov
/// *short-memory principle*); since the series weights decay like
/// `|ρ_k| = O(k^{−1−α})`, the dropped forcing is bounded by
/// `‖E‖·sup‖x‖·Σ_{k>L}|ρ_k| = O(L^{−α})` — halving the error of a
/// half-order (`α = ½`) element takes 4× the tail, and the error
/// vanishes (the solve becomes bit-identical to full history) once `L`
/// covers the whole horizon. Unset (the default) means full history:
/// exact, with `O(total columns)` retained state.
#[derive(Clone, Debug)]
pub struct WindowedOptions {
    windows: usize,
    history_len: Option<usize>,
    cancel: Option<CancelToken>,
}

impl WindowedOptions {
    /// Options for a `windows`-window solve with full (exact) history.
    pub fn new(windows: usize) -> Self {
        WindowedOptions {
            windows,
            history_len: None,
            cancel: None,
        }
    }

    /// Retains at most `columns` history columns across window
    /// boundaries (the short-memory truncation; see the type-level
    /// docs for the error bound). Ignored by plan kinds whose carried
    /// state is already finite and exact — linear plans (polyline
    /// endpoint) and integer recurrences (trailing `K` columns).
    #[must_use]
    pub fn history_len(mut self, columns: usize) -> Self {
        self.history_len = Some(columns);
        self
    }

    /// The window count `W`.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// The short-memory cap, if set.
    pub fn history_cap(&self) -> Option<usize> {
        self.history_len
    }

    /// Attaches a cooperative [`CancelToken`]: the window loop polls it
    /// **between windows** and aborts with [`OpmError::Cancelled`] —
    /// partial work is discarded, the plan and its cached kernels stay
    /// fully usable. This is how a server enforces per-request compute
    /// deadlines without preempting solver threads.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancel token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Polls the attached token (no token ⇒ never cancelled).
    ///
    /// # Errors
    /// [`OpmError::Cancelled`] once the token is cancelled or past its
    /// deadline.
    pub fn check_cancelled(&self) -> Result<(), OpmError> {
        match &self.cancel {
            Some(t) => t.check(),
            None => Ok(()),
        }
    }
}

/// Newton-iteration configuration for [`SimPlan::solve_newton`] /
/// [`SimPlan::solve_newton_windowed`].
///
/// ```
/// use opm_core::session::NewtonOptions;
/// let opts = NewtonOptions::new().max_iters(30).tolerances(1e-10, 1e-10);
/// assert_eq!(opts.iteration_budget(), 30);
/// ```
#[derive(Clone, Debug)]
pub struct NewtonOptions {
    max_iters: usize,
    abs_tol: f64,
    rel_tol: f64,
    max_step: f64,
    refine: Option<f64>,
    cancel: Option<CancelToken>,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions::new()
    }
}

impl NewtonOptions {
    /// Defaults: 50 iterations, `abs_tol = 1e-9`, `rel_tol = 1e-9`, no
    /// step limit, no refinement, no cancel token.
    pub fn new() -> Self {
        NewtonOptions {
            max_iters: 50,
            abs_tol: 1e-9,
            rel_tol: 1e-9,
            max_step: f64::INFINITY,
            refine: None,
            cancel: None,
        }
    }

    /// Iteration budget per column before
    /// [`OpmError::Nonconvergence`].
    #[must_use]
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters.max(1);
        self
    }

    /// Residual tolerances: a column converges when
    /// `‖F(x)‖_∞ ≤ abs_tol + rel_tol·‖rhs‖_∞` with the *exact* device
    /// currents in `F`.
    #[must_use]
    pub fn tolerances(mut self, abs_tol: f64, rel_tol: f64) -> Self {
        self.abs_tol = abs_tol;
        self.rel_tol = rel_tol;
        self
    }

    /// Damping / step-limit knob: clamps each unknown's per-iteration
    /// move to `±volts` (junction limiting already tames the diode
    /// exponential; this bounds everything else). Default: unlimited.
    #[must_use]
    pub fn max_step(mut self, volts: f64) -> Self {
        self.max_step = volts;
        self
    }

    /// Opt-in per-window refinement: when a window's Newton iteration
    /// history spikes (≥ 3 iterations on some column) *and* the Haar
    /// detail fraction of its solved columns exceeds `threshold`
    /// (finest-scale energy over total detail energy, requires a
    /// power-of-two resolution), the window is re-solved at double
    /// resolution — a numeric-only refactorization, the pattern is
    /// unchanged — and coarsened back onto the plan's grid. Default:
    /// off, keeping factorization counts deterministic.
    #[must_use]
    pub fn refine_threshold(mut self, threshold: f64) -> Self {
        self.refine = Some(threshold);
        self
    }

    /// Attaches a cooperative [`CancelToken`], polled every Newton
    /// iteration.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Read-side accessors (what the Newton driver consumes).
impl NewtonOptions {
    /// The per-column iteration budget.
    pub fn iteration_budget(&self) -> usize {
        self.max_iters
    }

    /// The absolute residual tolerance.
    pub fn abs_tol(&self) -> f64 {
        self.abs_tol
    }

    /// The relative residual tolerance.
    pub fn rel_tol(&self) -> f64 {
        self.rel_tol
    }

    /// The per-iteration step clamp (infinite when unset).
    pub fn step_limit(&self) -> f64 {
        self.max_step
    }

    /// The refinement detail threshold, if refinement is enabled.
    pub fn refinement(&self) -> Option<f64> {
        self.refine
    }

    /// The attached cancel token, if any.
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Polls the attached token (no token ⇒ never cancelled).
    ///
    /// # Errors
    /// [`OpmError::Cancelled`] once the token is cancelled or past its
    /// deadline.
    pub fn check_cancelled(&self) -> Result<(), OpmError> {
        match &self.cancel {
            Some(t) => t.check(),
            None => Ok(()),
        }
    }
}

/// One window's worth of a streaming solve
/// ([`SimPlan::solve_streaming`]).
#[derive(Clone, Debug)]
pub struct WindowBlock {
    /// Window index `w ∈ 0..W`.
    pub window: usize,
    /// This window's solution, with **global-time** interval bounds
    /// (`bounds[0] = w·T/W`).
    pub result: OpmResult,
    /// End-of-window state `x(T·(w+1)/W)` under the BPF polyline
    /// interpretation — what the next window restarts from.
    pub end_state: Vec<f64>,
}

impl std::fmt::Debug for SimPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPlan")
            .field("strategy", &self.model.strategy_name())
            .field("resolution", &self.m)
            .field("horizon", &self.t_end)
            .field("num_factorizations", &self.num_factorizations())
            .finish_non_exhaustive()
    }
}

/// Profile of a plan whose preparation performed exactly one full
/// factorization — every uniform-grid kind.
const ONE_SYMBOLIC: FactorProfile = FactorProfile {
    num_symbolic: 1,
    num_numeric: 0,
    cache_hits: 0,
    cache_misses: 0,
    num_windows: 0,
    num_supernodes: 0,
    supernode_cols: 0,
    dense_tail_cols: 0,
    factor_cols: 0,
    newton_iters: 0,
    newton_refactors: 0,
    newton_fresh_fallbacks: 0,
};

/// Lanes per worker for a `lanes`-wide batch on `threads` workers,
/// rounded up to the panel width so chunk boundaries coincide with
/// panel boundaries: every worker then runs full
/// [`opm_linalg::panel::LANE_PANEL_WIDTH`]-wide panels except for the
/// final chunk's remainder, instead of every worker paying a ragged
/// remainder chain. Chunking never changes results — lanes are
/// arithmetically independent.
fn worker_lane_chunk(lanes: usize, threads: usize) -> usize {
    lanes
        .div_ceil(threads.max(1))
        .next_multiple_of(opm_linalg::panel::LANE_PANEL_WIDTH)
}

/// Pair-averages a `2m`-column fine window back onto the plan's
/// `m`-column grid, keeping the fine endpoint. BPF coefficients are
/// interval means, so the mean over a merged interval is the mean of its
/// halves — the coarsened columns are exactly the projection of the fine
/// solve onto the coarse basis.
fn coarsen_pairs(fine: NewtonWindow, m: usize) -> NewtonWindow {
    let mut columns = Vec::with_capacity(m);
    for j in 0..m {
        let a = &fine.columns[2 * j];
        let b = &fine.columns[2 * j + 1];
        columns.push(a.iter().zip(b).map(|(x, y)| 0.5 * (x + y)).collect());
    }
    NewtonWindow {
        columns,
        end: fine.end,
        worst_iters: fine.worst_iters,
    }
}

/// Fraction of a window's non-DC Haar energy concentrated in the finest
/// detail level, maximized over states — the sharp-transient signal the
/// Newton refinement hook reads. Requires `m = 2^k` (callers gate on
/// `m.is_power_of_two()`).
fn haar_detail_fraction(columns: &[Vec<f64>], m: usize, width: f64) -> f64 {
    let n = columns.first().map_or(0, Vec::len);
    let basis = HaarBasis::new(m, width);
    let mut worst = 0.0f64;
    let mut series = vec![0.0; m];
    for i in 0..n {
        for (j, col) in columns.iter().enumerate() {
            series[j] = col[i];
        }
        let haar = basis.from_bpf_coeffs(&series);
        let total: f64 = haar[1..].iter().map(|c| c * c).sum();
        if total <= 0.0 {
            continue;
        }
        let detail: f64 = haar[m / 2..].iter().map(|c| c * c).sum();
        worst = worst.max(detail / total);
    }
    worst
}

/// Output projection dispatch without cloning the selector.
enum OutRef<'o> {
    Sys(&'o DescriptorSystem),
    Mt(&'o MultiTermSystem),
}

impl OutputMap for OutRef<'_> {
    fn num_outputs(&self) -> usize {
        match self {
            OutRef::Sys(s) => s.num_outputs(),
            OutRef::Mt(mt) => mt.num_outputs(),
        }
    }
    fn output(&self, x: &[f64]) -> Vec<f64> {
        match self {
            OutRef::Sys(s) => s.output(x),
            OutRef::Mt(mt) => mt.output(x),
        }
    }
}

impl SimPlan {
    // -- construction -------------------------------------------------------

    pub(crate) fn prepare(
        model: Arc<SimModel>,
        opts: &SolveOptions,
        m: usize,
        t_end: f64,
        x0: Option<&[f64]>,
        devices: Vec<DeviceModel>,
    ) -> Result<Self, OpmError> {
        validate_options(&model, t_end, opts)?;
        let devices = Arc::new(devices);
        let require_linear_kind = |kind: &str| -> Result<(), OpmError> {
            if devices.is_empty() {
                Ok(())
            } else {
                Err(OpmError::BadArguments(format!(
                    "nonlinear devices solve through the linear-recurrence Newton path; \
                     the `{kind}` plan kind cannot restamp the pencil per iteration"
                )))
            }
        };
        let n = model.order();
        let x0 = match x0 {
            Some(v) => {
                validate_x0(n, v)?;
                v.to_vec()
            }
            None => vec![0.0; n],
        };
        let nonzero_x0 = x0.iter().any(|&v| v != 0.0);
        if nonzero_x0 && !matches!(model.as_ref(), SimModel::Linear(_)) {
            return Err(OpmError::BadArguments(format!(
                "nonzero initial conditions are only supported for linear problems \
                 (the `{}` strategy assumes zero Caputo initial conditions)",
                model.strategy_name()
            )));
        }

        if let Some(aopts) = opts.adaptive {
            require_linear_kind("adaptive")?;
            let SimModel::Linear(sys) = model.as_ref() else {
                unreachable!("validate_options admits `adaptive` only on linear models");
            };
            let kind = PlanKind::AdaptiveLinear {
                aopts,
                cache: Mutex::new(FactorCache::new(sys.e(), sys.a())),
            };
            return Ok(SimPlan {
                model,
                t_end,
                m: 0,
                x0,
                kind,
                devices,
                profile: FactorProfile::default(),
                windowed: Mutex::new(WindowState::default()),
            });
        }
        if opts.step_grid.is_some() {
            require_linear_kind("step-grid")?;
            let SimModel::Fractional(fsys) = model.as_ref() else {
                unreachable!("validate_options admits `step_grid` only on fractional models");
            };
            let steps = opts.step_grid.clone().expect("checked above");
            let grid = AdaptiveBpf::new(steps);
            let factors = adaptive::prepare_step_grid(fsys, &grid)?;
            let profile = factors.profile();
            let m = grid.dim();
            let kind = PlanKind::StepGrid(StepGridPlan { grid, factors });
            return Ok(SimPlan {
                model,
                t_end,
                m,
                x0,
                kind,
                devices,
                profile,
                windowed: Mutex::new(WindowState::default()),
            });
        }

        if m == 0 {
            return Err(OpmError::BadArguments("zero intervals".into()));
        }
        validate_horizon(t_end)?;
        let require_zero_x0 = |method: &str| -> Result<(), OpmError> {
            if nonzero_x0 {
                Err(OpmError::BadArguments(format!(
                    "nonzero initial conditions require the Recurrence or Accumulator \
                     method on the `linear` strategy ({method} assumes x(0) = 0)"
                )))
            } else {
                Ok(())
            }
        };

        let kind = match model.as_ref() {
            SimModel::Linear(sys) => match opts.method {
                Method::Auto | Method::Recurrence | Method::Accumulator => {
                    linear_plan_kind(sys, m, t_end, opts.method == Method::Accumulator)?
                }
                Method::Convolution => {
                    require_zero_x0("Convolution")?;
                    let mt = MultiTermSystem::from_descriptor(sys);
                    let plan = mt_plan(&mt, m, t_end, &MtSelect::Auto)?;
                    PlanKind::OwnedMultiTerm {
                        mt,
                        plan,
                        differentiate: false,
                    }
                }
                Method::Kronecker => {
                    require_zero_x0("Kronecker")?;
                    let mt = MultiTermSystem::from_descriptor(sys);
                    let factors = kron_prepare(&mt, m, t_end)?;
                    PlanKind::Kron {
                        factors,
                        mt: Some(mt),
                    }
                }
            },
            SimModel::Fractional(fsys) => match opts.method {
                Method::Kronecker => {
                    let mt = fractional_as_multiterm(fsys);
                    let factors = kron_prepare(&mt, m, t_end)?;
                    PlanKind::Kron {
                        factors,
                        mt: Some(mt),
                    }
                }
                _ => fractional_plan_kind(fsys, m, t_end)?,
            },
            SimModel::MultiTerm(mt) => match opts.method {
                Method::Auto => PlanKind::MultiTerm(mt_plan(mt, m, t_end, &MtSelect::Auto)?),
                Method::Recurrence => {
                    PlanKind::MultiTerm(mt_plan(mt, m, t_end, &MtSelect::Recurrence)?)
                }
                Method::Convolution => {
                    PlanKind::MultiTerm(mt_plan(mt, m, t_end, &MtSelect::Convolution)?)
                }
                Method::Kronecker => PlanKind::Kron {
                    factors: kron_prepare(mt, m, t_end)?,
                    mt: None,
                },
                Method::Accumulator => {
                    unreachable!("validate_options rejects Accumulator on multi-term models")
                }
            },
            SimModel::SecondOrder(so) => {
                let mt = so.to_multiterm();
                let plan = mt_plan(&mt, m, t_end, &MtSelect::Auto)?;
                PlanKind::OwnedMultiTerm {
                    mt,
                    plan,
                    differentiate: true,
                }
            }
        };
        if !matches!(kind, PlanKind::Linear { .. }) {
            require_linear_kind(model.strategy_name())?;
        }
        Ok(SimPlan {
            model,
            t_end,
            m,
            x0,
            kind,
            devices,
            profile: ONE_SYMBOLIC,
            windowed: Mutex::new(WindowState::default()),
        })
    }

    /// One-shot linear plan for the strategy wrappers (clones the
    /// borrowed system into the plan's own shared model — the copy is
    /// O(nnz), dwarfed by the factorization these one-shot paths pay
    /// anyway).
    pub(crate) fn for_linear(
        sys: &DescriptorSystem,
        m: usize,
        t_end: f64,
        x0: &[f64],
        accumulator: bool,
    ) -> Result<Self, OpmError> {
        validate_x0(sys.order(), x0)?;
        validate_horizon(t_end)?;
        Ok(SimPlan {
            model: Arc::new(SimModel::Linear(sys.clone())),
            t_end,
            m,
            x0: x0.to_vec(),
            kind: linear_plan_kind(sys, m, t_end, accumulator)?,
            devices: Arc::new(Vec::new()),
            profile: ONE_SYMBOLIC,
            windowed: Mutex::new(WindowState::default()),
        })
    }

    /// One-shot fractional plan for the strategy wrappers.
    pub(crate) fn for_fractional(
        fsys: &FractionalSystem,
        m: usize,
        t_end: f64,
    ) -> Result<Self, OpmError> {
        validate_horizon(t_end)?;
        Ok(SimPlan {
            model: Arc::new(SimModel::Fractional(fsys.clone())),
            t_end,
            m,
            x0: vec![0.0; fsys.order()],
            kind: fractional_plan_kind(fsys, m, t_end)?,
            devices: Arc::new(Vec::new()),
            profile: ONE_SYMBOLIC,
            windowed: Mutex::new(WindowState::default()),
        })
    }

    /// One-shot multi-term plan for the strategy wrappers.
    pub(crate) fn for_multiterm(
        mt: &MultiTermSystem,
        m: usize,
        t_end: f64,
        select: &MtSelect,
    ) -> Result<Self, OpmError> {
        validate_horizon(t_end)?;
        Ok(SimPlan {
            model: Arc::new(SimModel::MultiTerm(mt.clone())),
            t_end,
            m,
            x0: vec![0.0; mt.order()],
            kind: PlanKind::MultiTerm(mt_plan(mt, m, t_end, select)?),
            devices: Arc::new(Vec::new()),
            profile: ONE_SYMBOLIC,
            windowed: Mutex::new(WindowState::default()),
        })
    }

    /// One-shot second-order plan for the strategy wrappers.
    pub(crate) fn for_second_order(
        so: &SecondOrderSystem,
        m: usize,
        t_end: f64,
    ) -> Result<Self, OpmError> {
        validate_horizon(t_end)?;
        let mt = so.to_multiterm();
        let plan = mt_plan(&mt, m, t_end, &MtSelect::Auto)?;
        Ok(SimPlan {
            model: Arc::new(SimModel::SecondOrder(so.clone())),
            t_end,
            m,
            x0: vec![0.0; so.order()],
            kind: PlanKind::OwnedMultiTerm {
                mt,
                plan,
                differentiate: true,
            },
            devices: Arc::new(Vec::new()),
            profile: ONE_SYMBOLIC,
            windowed: Mutex::new(WindowState::default()),
        })
    }

    // -- observability ------------------------------------------------------

    /// Sparse (or dense-oracle) factorizations performed on behalf of
    /// this plan so far — the reuse observable: a 100-scenario batch on a
    /// uniform plan reports **1**. Equals
    /// [`num_symbolic`](SimPlan::num_symbolic) `+`
    /// [`num_numeric`](SimPlan::num_numeric).
    pub fn num_factorizations(&self) -> usize {
        self.factor_profile().num_factorizations()
    }

    /// Full symbolic analyses (pattern DFS, pivot search) performed on
    /// behalf of this plan — the expensive kind. Step-grid and adaptive
    /// plans report **1** here no matter how many pencils they factor:
    /// every pencil after the first shares the analysis and shows up in
    /// [`num_numeric`](SimPlan::num_numeric) instead.
    pub fn num_symbolic(&self) -> usize {
        self.factor_profile().num_symbolic
    }

    /// Numeric-only refactorizations (fixed pivots and fill, no reach
    /// discovery) performed on behalf of this plan — the cheap kind the
    /// symbolic/numeric split buys.
    pub fn num_numeric(&self) -> usize {
        self.factor_profile().num_numeric
    }

    /// The full factorization-cost profile, including the step-lattice
    /// cache hit/miss readout for adaptive plans (both counters are 0
    /// for plan kinds that do not run the lattice cache) and the window
    /// counters of windowed/streaming solves: a windowed linear solve
    /// over any number of windows reports **1 symbolic + 1 numeric**
    /// factorization — the plan's own analysis plus one numeric
    /// refactorization at the window width.
    pub fn factor_profile(&self) -> FactorProfile {
        let win = self.windowed.lock().expect("window state poisoned");
        let mut p = match &self.kind {
            PlanKind::AdaptiveLinear { cache, .. } => {
                cache.lock().expect("lattice cache poisoned").profile()
            }
            PlanKind::Linear { family, .. } | PlanKind::Fractional { family, .. } => {
                family.lock().expect("pencil family poisoned").profile()
            }
            _ => self.profile,
        };
        p.num_symbolic += win.num_symbolic;
        p.num_numeric += win.num_numeric;
        p.num_windows = win.windows_solved;
        p
    }

    /// Column count the plan was built for (0 for on-the-fly adaptive
    /// plans, whose step controller decides).
    pub fn resolution(&self) -> usize {
        self.m
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> f64 {
        self.t_end
    }

    /// State dimension of the underlying model.
    pub fn order(&self) -> usize {
        self.model.order()
    }

    /// The strategy the plan was validated for (same names as
    /// [`SimModel::strategy_name`]).
    pub fn strategy_name(&self) -> &'static str {
        self.model.strategy_name()
    }

    /// The nonlinear device models the plan carries (empty for linear
    /// netlists).
    pub fn devices(&self) -> &[DeviceModel] {
        &self.devices
    }

    /// Whether the plan carries nonlinear devices. Such plans solve only
    /// through [`SimPlan::solve_newton`] /
    /// [`SimPlan::solve_newton_windowed`]; every linear entry point
    /// rejects them.
    pub fn has_nonlinear(&self) -> bool {
        !self.devices.is_empty()
    }

    /// Linear entry points refuse plans carrying nonlinear devices —
    /// solving the linear recurrence would silently drop the device
    /// currents.
    fn reject_nonlinear(&self, entry: &str) -> Result<(), OpmError> {
        if self.devices.is_empty() {
            Ok(())
        } else {
            Err(OpmError::BadArguments(format!(
                "this plan carries {} nonlinear device(s) and `{entry}` would drop them; \
                 use SimPlan::solve_newton / SimPlan::solve_newton_windowed",
                self.devices.len()
            )))
        }
    }

    // -- solving ------------------------------------------------------------

    /// Solves one stimulus against the cached factorization.
    ///
    /// # Errors
    /// [`OpmError::BadArguments`] on channel mismatches.
    pub fn solve(&self, inputs: &InputSet) -> Result<OpmResult, OpmError> {
        let mut out = self.solve_batch(std::slice::from_ref(inputs))?;
        Ok(out.pop().expect("one lane in, one result out"))
    }

    /// Solves `K` stimuli through **one** factorization, the scenarios
    /// split across the [`opm_par::default_threads`] worker threads
    /// (`OPM_THREADS` to override) and, within each worker, advanced
    /// column-by-column together through the engine's interleaved block
    /// sweep — so the sparse solves and matrix products are amortized
    /// across the batch *and* the cores. Results are in input order and
    /// bit-identical to `K` independent [`SimPlan::solve`] calls, for
    /// every thread count.
    ///
    /// # Errors
    /// [`OpmError::BadArguments`] on channel mismatches.
    pub fn solve_batch(&self, inputs: &[InputSet]) -> Result<Vec<OpmResult>, OpmError> {
        self.solve_batch_with_threads(inputs, opm_par::default_threads())
    }

    /// [`SimPlan::solve_batch`] with an explicit worker count — for
    /// servers that manage their own concurrency budget, and for pinning
    /// down the thread-count-invariance guarantee in tests. `threads`
    /// only sets how lanes are distributed; the per-lane arithmetic is
    /// identical for every value, so so is every result bit.
    ///
    /// # Errors
    /// As [`SimPlan::solve_batch`].
    pub fn solve_batch_with_threads(
        &self,
        inputs: &[InputSet],
        threads: usize,
    ) -> Result<Vec<OpmResult>, OpmError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        self.reject_nonlinear("solve")?;
        self.check_channels(inputs)?;
        match &self.kind {
            PlanKind::AdaptiveLinear { aopts, cache } => {
                let SimModel::Linear(sys) = self.model.as_ref() else {
                    unreachable!("adaptive plans are linear by construction");
                };
                // Serial by design: the lattice cache fills on the fly,
                // and every scenario should see (and extend) it.
                inputs
                    .iter()
                    .map(|ws| {
                        adaptive::linear_adaptive_with(
                            sys,
                            ws,
                            self.t_end,
                            &self.x0,
                            *aopts,
                            &mut cache.lock().expect("lattice cache poisoned"),
                        )
                    })
                    .collect()
            }
            PlanKind::StepGrid(sg) => {
                let SimModel::Fractional(fsys) = self.model.as_ref() else {
                    unreachable!("step-grid plans are fractional by construction");
                };
                // Scenarios are independent sweeps over the shared
                // prefactored columns — run them on the workers.
                opm_par::par_map(threads, inputs, |ws| {
                    adaptive::sweep_step_grid(fsys, &sg.grid, &sg.factors, ws)
                })
                .into_iter()
                .collect()
            }
            _ => {
                validate_horizon(self.t_end)?;
                let us: Vec<Vec<Vec<f64>>> = inputs
                    .iter()
                    .map(|ws| self.project(ws))
                    .collect::<Result<_, _>>()?;
                let refs: Vec<&[Vec<f64>]> = us.iter().map(Vec::as_slice).collect();
                self.run_block(&refs, threads)
            }
        }
    }

    /// Parameter study: builds one stimulus per parameter with
    /// `stimulus`, then [`SimPlan::solve_batch`]es them all through the
    /// cached factorization. Results are in parameter order.
    ///
    /// # Errors
    /// As [`SimPlan::solve_batch`].
    pub fn sweep<P>(
        &self,
        params: &[P],
        mut stimulus: impl FnMut(&P) -> InputSet,
    ) -> Result<Vec<OpmResult>, OpmError> {
        let sets: Vec<InputSet> = params.iter().map(&mut stimulus).collect();
        self.solve_batch(&sets)
    }

    /// Solves a precomputed BPF coefficient stimulus (`u[ch][j]`).
    ///
    /// # Errors
    /// [`OpmError::BadArguments`] when the coefficient shape disagrees
    /// with the planned resolution, or the plan kind needs waveforms
    /// (second-order, adaptive, step-grid).
    pub fn solve_coeffs(&self, u: &[Vec<f64>]) -> Result<OpmResult, OpmError> {
        let mut out = self.solve_coeffs_batch(&[u])?;
        Ok(out.pop().expect("one lane in, one result out"))
    }

    /// Batch form of [`SimPlan::solve_coeffs`]: `K` coefficient matrices
    /// through one factorization in a single interleaved pass.
    ///
    /// # Errors
    /// As [`SimPlan::solve_coeffs`].
    pub fn solve_coeffs_batch(&self, us: &[&[Vec<f64>]]) -> Result<Vec<OpmResult>, OpmError> {
        if us.is_empty() {
            return Ok(Vec::new());
        }
        self.reject_nonlinear("solve_coeffs")?;
        match &self.kind {
            PlanKind::AdaptiveLinear { .. } => Err(OpmError::BadArguments(
                "adaptive stepping needs waveform inputs (exact interval averages)".into(),
            )),
            PlanKind::StepGrid(_) => Err(OpmError::BadArguments(
                "step-grid solving needs waveform inputs".into(),
            )),
            PlanKind::OwnedMultiTerm {
                differentiate: true,
                ..
            } => Err(OpmError::BadArguments(
                "second-order problems need waveform inputs (the engine \
                 differentiates them exactly)"
                    .into(),
            )),
            _ => {
                let p = self.model.num_inputs();
                for &u in us {
                    let mu = validate_coeff_inputs(p, u)?;
                    if mu != self.m {
                        return Err(OpmError::BadArguments(format!(
                            "coefficient stimulus has {mu} columns but the `{}` plan \
                             was built for resolution {}",
                            self.model.strategy_name(),
                            self.m
                        )));
                    }
                }
                self.run_block(us, opm_par::default_threads())
            }
        }
    }

    // -- windowed / streaming solving ----------------------------------------

    /// Long-horizon windowed solve: splits `[0, T)` into `windows` equal
    /// windows of width `T/W`, expands **each window** in block-pulse
    /// functions at the plan's resolution `m` (so the whole horizon gets
    /// `W·m` columns), and carries the end-of-window state into the next
    /// window as its initial condition. Because the window pencil
    /// depends only on the window width and resolution, **one**
    /// factorization — a numeric-only refactorization against the plan's
    /// own symbolic analysis — serves all `W` windows (and every batched
    /// scenario): [`SimPlan::factor_profile`] reports 1 symbolic + 1
    /// numeric no matter how large `W` grows.
    ///
    /// On a horizon that splits evenly, the result matches a single
    /// whole-horizon plan at resolution `W·m` to roundoff (the BPF
    /// recurrence is the trapezoidal rule in disguise, and the polyline
    /// endpoint handoff is its exact restart).
    ///
    /// Supported for linear/descriptor (Recurrence/Accumulator),
    /// second-order, fractional and multi-term plans. Linear and
    /// integer-recurrence plans carry *exact* finite state (polyline
    /// endpoint / trailing recurrence columns); fractional and
    /// fractional-mixture multi-term plans carry the Caputo/GL memory
    /// of all previous windows as an extra per-lane forcing built from
    /// the history convolution over their solved columns — exact with
    /// full history, truncatable via
    /// [`WindowedOptions::history_len`] (see
    /// [`SimPlan::solve_windowed_opts`]). Adaptive, step-grid and
    /// Kronecker plans are whole-horizon by construction and are
    /// rejected with an error naming the plan kind.
    ///
    /// ```
    /// use opm_core::{Simulation, SolveOptions};
    ///
    /// let sim = Simulation::from_netlist(
    ///     "V1 in 0 DC 5\nR1 in out 1k\nC1 out 0 1u\n.end",
    ///     &["out"],
    /// )
    /// .unwrap()
    /// .horizon(8e-3);
    /// let plan = sim.plan(&SolveOptions::new().resolution(64)).unwrap();
    ///
    /// // 8 windows × 64 columns — 512 columns through ONE factorization.
    /// let r = plan.solve_windowed(sim.inputs().unwrap(), 8).unwrap();
    /// assert_eq!(r.num_intervals(), 512);
    /// assert!((r.output_row(0)[511] - 5.0).abs() < 0.05);
    /// let p = plan.factor_profile();
    /// assert_eq!((p.num_symbolic, p.num_numeric, p.num_windows), (1, 1, 8));
    /// ```
    ///
    /// # Errors
    /// [`OpmError::BadArguments`] on channel mismatches, zero windows,
    /// or an unsupported strategy/method (the message names both).
    pub fn solve_windowed(&self, inputs: &InputSet, windows: usize) -> Result<OpmResult, OpmError> {
        self.solve_windowed_opts(inputs, &WindowedOptions::new(windows))
    }

    /// [`SimPlan::solve_windowed`] with explicit [`WindowedOptions`] —
    /// in particular the fractional short-memory truncation
    /// [`WindowedOptions::history_len`].
    ///
    /// Note on memory: with *full* history (the default), a fractional
    /// windowed solve retains a working copy of every past column
    /// alongside the accumulating result — the exactness costs up to 2×
    /// the whole-horizon solve's peak. Cap the tail with
    /// [`WindowedOptions::history_len`] (or stream via
    /// [`SimPlan::solve_streaming_opts`], where the tail is the *only*
    /// retained copy) for bounded memory.
    ///
    /// ```
    /// use opm_core::{Simulation, SolveOptions, WindowedOptions};
    ///
    /// // RC + constant-phase element: a fractional MNA model.
    /// let sim = Simulation::from_netlist(
    ///     "V1 in 0 DC 1\nR1 in top 100\nP1 top 0 CPE 1u 0.5\n.end",
    ///     &["top"],
    /// )
    /// .unwrap()
    /// .horizon(1e-6);
    /// let plan = sim.plan(&SolveOptions::new().resolution(64)).unwrap();
    ///
    /// // 8 windows × 64 columns, keeping a 256-column memory tail.
    /// let opts = WindowedOptions::new(8).history_len(256);
    /// let r = plan.solve_windowed_opts(sim.inputs().unwrap(), &opts).unwrap();
    /// assert_eq!(r.num_intervals(), 512);
    /// let p = plan.factor_profile();
    /// assert_eq!((p.num_symbolic, p.num_numeric), (1, 1));
    /// ```
    ///
    /// # Errors
    /// As [`SimPlan::solve_windowed`].
    pub fn solve_windowed_opts(
        &self,
        inputs: &InputSet,
        opts: &WindowedOptions,
    ) -> Result<OpmResult, OpmError> {
        let mut out = self.solve_windowed_batch_opts(
            std::slice::from_ref(inputs),
            opts,
            opm_par::default_threads(),
        )?;
        Ok(out.pop().expect("one lane in, one result out"))
    }

    /// Batch form of [`SimPlan::solve_windowed`]: `K` scenarios swept
    /// through the same single window factorization, window by window,
    /// with the scenario lanes split across the worker threads exactly
    /// like [`SimPlan::solve_batch`] (results are in input order and
    /// bit-identical to a per-scenario [`SimPlan::solve_windowed`]
    /// loop, for every thread count).
    ///
    /// # Errors
    /// As [`SimPlan::solve_windowed`].
    pub fn solve_windowed_batch(
        &self,
        inputs: &[InputSet],
        windows: usize,
    ) -> Result<Vec<OpmResult>, OpmError> {
        self.solve_windowed_batch_with_threads(inputs, windows, opm_par::default_threads())
    }

    /// [`SimPlan::solve_windowed_batch`] with an explicit worker count.
    ///
    /// # Errors
    /// As [`SimPlan::solve_windowed`].
    pub fn solve_windowed_batch_with_threads(
        &self,
        inputs: &[InputSet],
        windows: usize,
        threads: usize,
    ) -> Result<Vec<OpmResult>, OpmError> {
        self.solve_windowed_batch_opts(inputs, &WindowedOptions::new(windows), threads)
    }

    /// [`SimPlan::solve_windowed_batch_with_threads`] with explicit
    /// [`WindowedOptions`].
    ///
    /// # Errors
    /// As [`SimPlan::solve_windowed`].
    pub fn solve_windowed_batch_opts(
        &self,
        inputs: &[InputSet],
        opts: &WindowedOptions,
        threads: usize,
    ) -> Result<Vec<OpmResult>, OpmError> {
        let windows = opts.windows();
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        self.reject_nonlinear("solve_windowed")?;
        self.check_channels(inputs)?;
        let kernel = self.window_kernel(windows)?;
        let lanes_per_worker = worker_lane_chunk(inputs.len(), threads);
        let results = if lanes_per_worker < inputs.len() {
            let chunks: Vec<&[InputSet]> = inputs.chunks(lanes_per_worker).collect();
            let per_chunk = opm_par::par_map(threads, &chunks, |chunk| {
                self.windowed_chunk(&kernel, chunk, opts)
            });
            let mut out = Vec::with_capacity(inputs.len());
            for res in per_chunk {
                out.extend(res?);
            }
            out
        } else {
            self.windowed_chunk(&kernel, inputs, opts)?
        };
        self.windowed
            .lock()
            .expect("window state poisoned")
            .windows_solved += windows;
        Ok(results)
    }

    /// Streaming windowed solve: like [`SimPlan::solve_windowed`], but
    /// each window's block is handed to `sink` as soon as it is solved
    /// and then **dropped** — peak coefficient storage is `O(n·m)`, one
    /// window, independent of how many windows the horizon spans (plus,
    /// on fractional/multi-term plans, the retained Caputo history tail:
    /// all past columns with full history, at most
    /// [`WindowedOptions::history_len`] columns when truncated). The
    /// [`WindowBlock`]s carry global-time bounds, so concatenating their
    /// results reproduces [`SimPlan::solve_windowed`] exactly.
    ///
    /// Returns the final state `x(T)` (the last window's
    /// [`WindowBlock::end_state`]).
    ///
    /// # Errors
    /// As [`SimPlan::solve_windowed`].
    pub fn solve_streaming(
        &self,
        inputs: &InputSet,
        windows: usize,
        sink: impl FnMut(WindowBlock),
    ) -> Result<Vec<f64>, OpmError> {
        self.solve_streaming_opts(inputs, &WindowedOptions::new(windows), sink)
    }

    /// [`SimPlan::solve_streaming`] with explicit [`WindowedOptions`] —
    /// with [`WindowedOptions::history_len`] set, a fractional streaming
    /// solve runs at truly bounded memory: one window of columns plus
    /// the capped history tail.
    ///
    /// # Errors
    /// As [`SimPlan::solve_windowed`].
    pub fn solve_streaming_opts(
        &self,
        inputs: &InputSet,
        opts: &WindowedOptions,
        mut sink: impl FnMut(WindowBlock),
    ) -> Result<Vec<f64>, OpmError> {
        let windows = opts.windows();
        self.reject_nonlinear("solve_streaming")?;
        self.check_channels(std::slice::from_ref(inputs))?;
        let kernel = self.window_kernel(windows)?;
        let out = self.output_map();
        let mut final_state = self.x0.clone();
        self.windowed_drive(&kernel, &[inputs], opts, |w, outcome, end| {
            let bounds = self.window_bounds(windows, w, 0);
            let mut lanes = outcome.into_lane_outcomes();
            let one = lanes.pop().expect("one lane in, one result out");
            sink(WindowBlock {
                window: w,
                result: one.grid_result(&out, bounds),
                end_state: end.to_vec(),
            });
            final_state.clear();
            final_state.extend_from_slice(end);
        })?;
        self.windowed
            .lock()
            .expect("window state poisoned")
            .windows_solved += windows;
        Ok(final_state)
    }

    /// Newton solve of a (possibly nonlinear) plan over the whole
    /// horizon as one window: [`SimPlan::solve_newton_windowed`] with
    /// `windows = 1`.
    ///
    /// On a **linear** netlist (no devices) this is *bit-identical* to
    /// [`SimPlan::solve`] — the full-value Newton iterate of the
    /// endpoint recurrence reproduces the linear recurrence exactly, so
    /// the call delegates to the linear sweep and merely books one
    /// Newton iteration per column into the
    /// [`FactorProfile`].
    ///
    /// # Errors
    /// As [`SimPlan::solve_newton_windowed`].
    pub fn solve_newton(
        &self,
        inputs: &InputSet,
        opts: &NewtonOptions,
    ) -> Result<OpmResult, OpmError> {
        self.solve_newton_windowed(inputs, 1, opts)
    }

    /// Windowed Newton solve: the horizon split into `windows` windows
    /// of `m` columns each, every column solved by SPICE-style
    /// full-value Newton iteration over the endpoint recurrence
    /// `(σE − A)·x_j − f(x_j) = σE·e_j + B·u_j`, `e_{j+1} = 2x_j − e_j`.
    ///
    /// Cost shape: **one** symbolic analysis for the whole solve (the
    /// plan's recorded [`opm_sparse::SymbolicLu`]); every Newton
    /// iteration re-stamps the pencil values and replays the analysis as
    /// a numeric-only [`opm_sparse::SparseLu::refactor`]. Only a pivot
    /// degradation falls back to a fresh pivoted factorization — both
    /// paths are counted in the plan's
    /// [`factor_profile`](SimPlan::factor_profile) (`newton_iters`,
    /// `newton_refactors`, `newton_fresh_fallbacks`).
    ///
    /// With [`NewtonOptions::refine_threshold`] set, a window whose
    /// iteration history indicates a sharp transient (some column needed
    /// ≥ 3 iterations **and** the finest-level Haar detail energy of the
    /// solved window exceeds the threshold) is re-swept at twice the
    /// column resolution — still numeric-only refactors, at the doubled
    /// shift `2σ` — and pair-averaged back onto the plan's grid, keeping
    /// the fine endpoint.
    ///
    /// ```
    /// use opm_core::{NewtonOptions, Simulation, SolveOptions};
    ///
    /// // Half-wave rectifier: source, series resistor, diode to ground.
    /// let sim = Simulation::from_netlist(
    ///     "V1 in 0 SIN 0 1 50\nR1 in out 1k\nD1 out 0 1e-14\n.end",
    ///     &["out"],
    /// )
    /// .unwrap()
    /// .horizon(0.04);
    /// let plan = sim.plan(&SolveOptions::new().resolution(64)).unwrap();
    /// let r = plan
    ///     .solve_newton_windowed(sim.inputs().unwrap(), 4, &NewtonOptions::new())
    ///     .unwrap();
    /// assert_eq!(r.num_intervals(), 256);
    /// // One symbolic analysis total; every iteration numeric-only.
    /// let p = plan.factor_profile();
    /// assert_eq!(p.num_symbolic, 1);
    /// assert_eq!(p.newton_fresh_fallbacks, 0);
    /// assert_eq!(p.newton_refactors, p.newton_iters);
    /// ```
    ///
    /// # Errors
    /// [`OpmError::Nonconvergence`] when a column exhausts the iteration
    /// budget; [`OpmError::Cancelled`] on a tripped
    /// [`NewtonOptions::cancel_token`]; [`OpmError::BadArguments`] when
    /// a nonlinear plan is not linear-recurrence-backed, on channel
    /// mismatches, or for `windows == 0`.
    pub fn solve_newton_windowed(
        &self,
        inputs: &InputSet,
        windows: usize,
        opts: &NewtonOptions,
    ) -> Result<OpmResult, OpmError> {
        if windows == 0 {
            return Err(OpmError::BadArguments(
                "windowed solving needs at least one window".into(),
            ));
        }
        self.check_channels(std::slice::from_ref(inputs))?;
        if self.devices.is_empty() {
            // Linear netlist: one full-value iterate of the endpoint
            // recurrence *is* the linear recurrence, so Newton converges
            // in exactly one iteration per column — delegate to the
            // linear sweep (bit-identical, zero added factorizations)
            // and book the per-column iterations.
            let result = if windows == 1 {
                opts.check_cancelled()?;
                self.solve(inputs)?
            } else {
                let mut wopts = WindowedOptions::new(windows);
                if let Some(tok) = opts.cancel() {
                    wopts = wopts.cancel_token(tok.clone());
                }
                self.solve_windowed_opts(inputs, &wopts)?
            };
            if let PlanKind::Linear { family, .. } = &self.kind {
                family
                    .lock()
                    .expect("pencil family poisoned")
                    .note_newton_iters(result.num_intervals());
            }
            return Ok(result);
        }
        let PlanKind::Linear { family, .. } = &self.kind else {
            return Err(OpmError::BadArguments(format!(
                "nonlinear Newton solving needs a linear-recurrence plan, not `{}`",
                self.strategy_name()
            )));
        };
        let SimModel::Linear(sys) = self.model.as_ref() else {
            unreachable!("nonlinear device plans are linear-model-backed by construction");
        };
        validate_horizon(self.t_end)?;
        let m = self.m;
        // Window width T/W at resolution m ⇒ σ_w = 2·m·W/T.
        let sigma = 2.0 * (m * windows) as f64 / self.t_end;
        let width = self.t_end / windows as f64;
        let mut fam = family.lock().expect("pencil family poisoned");
        let mut sweep = NewtonSweep::new(sys, &self.devices, &fam)?;
        let mut e = self.x0.clone();
        let mut columns = Vec::with_capacity(m * windows);
        for w in 0..windows {
            let u = inputs.bpf_matrix_window(m, w as f64 * width, width);
            let mut win = sweep.window(&mut fam, sigma, m, &u, &e, opts, w)?;
            if let Some(threshold) = opts.refinement() {
                if win.worst_iters >= 3 && m >= 2 && m.is_power_of_two() {
                    let frac = haar_detail_fraction(&win.columns, m, width);
                    if frac > threshold {
                        // Sharp transient: re-sweep the window at twice
                        // the resolution (numeric-only refactors at the
                        // doubled shift) and pair-average back onto the
                        // plan's grid, keeping the fine endpoint.
                        let u2 = inputs.bpf_matrix_window(2 * m, w as f64 * width, width);
                        let fine = sweep.window(&mut fam, 2.0 * sigma, 2 * m, &u2, &e, opts, w)?;
                        win = coarsen_pairs(fine, m);
                    }
                }
            }
            e = win.end;
            columns.extend(win.columns);
        }
        fam.note_newton_iters(sweep.newton_iters);
        // One factorization per Newton iteration (stamped values change
        // every iterate), all numeric-only against the one analysis.
        let num_factorizations = sweep.newton_iters;
        let num_solves = sweep.num_solves;
        drop(fam);
        let result = SweepOutcome {
            columns,
            num_solves,
            num_factorizations,
        }
        .uniform_result(&self.output_map(), self.t_end);
        self.windowed
            .lock()
            .expect("window state poisoned")
            .windows_solved += windows;
        Ok(result)
    }

    /// Resolves (and caches) the window kernel for `windows` windows:
    /// the one factorization all windows and scenarios share.
    fn window_kernel(&self, windows: usize) -> Result<Arc<WindowKernel>, OpmError> {
        if windows == 0 {
            return Err(OpmError::BadArguments(
                "windowed solving needs at least one window".into(),
            ));
        }
        validate_horizon(self.t_end)?;
        let unsupported = |strategy: &str, why: &str| {
            Err(OpmError::BadArguments(format!(
                "windowed solving is not available for the `{strategy}` strategy: {why}"
            )))
        };
        match &self.kind {
            PlanKind::Linear { family, .. } => {
                let mut st = self.windowed.lock().expect("window state poisoned");
                if let Some(kern) = st.kernels.get(&windows) {
                    return Ok(Arc::clone(kern));
                }
                // Window width T/W at resolution m ⇒ σ_w = 2·m·W/T; the
                // family replays its recorded analysis numerically.
                let sigma = 2.0 * (self.m * windows) as f64 / self.t_end;
                let lu = family
                    .lock()
                    .expect("pencil family poisoned")
                    .factor(sigma)?;
                let kern = Arc::new(WindowKernel::Linear { lu, sigma });
                st.kernels.insert(windows, Arc::clone(&kern));
                Ok(kern)
            }
            PlanKind::Fractional { family, .. } => {
                let SimModel::Fractional(fsys) = self.model.as_ref() else {
                    unreachable!("fractional plans are built on fractional models");
                };
                let mut st = self.windowed.lock().expect("window state poisoned");
                if let Some(kern) = st.kernels.get(&windows) {
                    return Ok(Arc::clone(kern));
                }
                // Window step h_w = T/(W·m): the window pencil is
                // ρ₀(h_w)·E − A — same pattern family as the plan's own
                // pencil, so it refactors numerically. The weight vector
                // spans the WHOLE horizon (W·m entries): entries past
                // the window resolution are exactly the history-tail
                // weights of the carried Caputo/GL memory.
                let wbasis = BpfBasis::new(self.m, self.t_end / windows as f64);
                let rho = wbasis.frac_diff_coeffs_n(fsys.alpha(), self.m * windows);
                let lu = family
                    .lock()
                    .expect("pencil family poisoned")
                    .factor(rho[0])?;
                let kern = Arc::new(WindowKernel::Fractional { lu, rho });
                st.kernels.insert(windows, Arc::clone(&kern));
                Ok(kern)
            }
            PlanKind::MultiTerm(plan) | PlanKind::OwnedMultiTerm { plan, .. } => {
                let mt = self.mt_ref();
                let mut st = self.windowed.lock().expect("window state poisoned");
                if let Some(kern) = st.kernels.get(&windows) {
                    return Ok(Arc::clone(kern));
                }
                let h = self.t_end / (self.m * windows) as f64;
                let kern = match &plan.path {
                    MtPath::Recurrence { .. } => {
                        let (polys, bw) = mt_recurrence_data(mt, h);
                        let pencil = crate::engine::weighted_pencil(mt.terms(), |k| polys[k][0])?;
                        let lu = refactor_window_pencil(&plan.symbolic, &pencil, &mut st)?;
                        WindowKernel::Recurrence {
                            lu,
                            polys,
                            bw,
                            depth: mt.max_order() as usize,
                        }
                    }
                    MtPath::Convolution { .. } => {
                        // Per-term ρ^{(k)} over the whole W·m-column
                        // horizon at the window step (α = 0 ⇒ e₀) — the
                        // same generator the plan and the fractional
                        // kernel use, so the formulas cannot drift.
                        let wbasis = BpfBasis::new(self.m, self.t_end / windows as f64);
                        let series: Vec<Vec<f64>> = mt
                            .terms()
                            .iter()
                            .map(|term| wbasis.frac_diff_coeffs_n(term.alpha, self.m * windows))
                            .collect();
                        let pencil = crate::engine::weighted_pencil(mt.terms(), |k| series[k][0])?;
                        let lu = refactor_window_pencil(&plan.symbolic, &pencil, &mut st)?;
                        WindowKernel::MtConvolution { lu, series }
                    }
                };
                let kern = Arc::new(kern);
                st.kernels.insert(windows, Arc::clone(&kern));
                Ok(kern)
            }
            PlanKind::Kron { .. } => unsupported(
                &format!("{} (Kronecker plan)", self.model.strategy_name()),
                "the Kronecker oracle materializes the whole horizon as one dense system",
            ),
            PlanKind::AdaptiveLinear { .. } => unsupported(
                "linear (adaptive plan)",
                "`adaptive` plans let the step controller pace the horizon; \
                 windowed solving applies to fixed-resolution plans",
            ),
            PlanKind::StepGrid(_) => unsupported(
                "fractional (step-grid plan)",
                "step-grid plans resolve the whole horizon on their explicit grid",
            ),
        }
    }

    /// The multi-term system a multi-term-backed plan sweeps — the
    /// model's own for [`PlanKind::MultiTerm`], the owned conversion for
    /// [`PlanKind::OwnedMultiTerm`].
    fn mt_ref(&self) -> &MultiTermSystem {
        match (&self.kind, self.model.as_ref()) {
            (PlanKind::OwnedMultiTerm { mt, .. }, _) => mt,
            (_, SimModel::MultiTerm(mt)) => mt,
            _ => unreachable!("mt_ref on a non-multi-term plan kind"),
        }
    }

    /// Global-time interval bounds of window `w` (of `windows`),
    /// extended `seed` columns to the left for carried history.
    fn window_bounds(&self, windows: usize, w: usize, seed: usize) -> Vec<f64> {
        let mtot = (self.m * windows) as f64;
        let start = w * self.m - seed;
        let end = (w + 1) * self.m;
        (start..=end)
            .map(|g| g as f64 * self.t_end / mtot)
            .collect()
    }

    /// One worker's share of a windowed batch: runs the full window loop
    /// over a contiguous chunk of scenario lanes and assembles whole-
    /// horizon results. Lanes never mix arithmetically, so chunked
    /// parallel runs are bit-identical to the serial run.
    fn windowed_chunk(
        &self,
        kernel: &WindowKernel,
        chunk: &[InputSet],
        opts: &WindowedOptions,
    ) -> Result<Vec<OpmResult>, OpmError> {
        let refs: Vec<&InputSet> = chunk.iter().collect();
        let mut columns = Vec::with_capacity(opts.windows() * self.m);
        let mut solves = 0;
        self.windowed_drive(kernel, &refs, opts, |_, outcome, _| {
            solves += outcome.num_solves;
            columns.extend(outcome.columns);
        })?;
        let out = self.output_map();
        Ok(BlockOutcome {
            columns,
            lanes: chunk.len(),
            num_solves: solves,
            num_factorizations: 1,
        }
        .into_lane_outcomes()
        .into_iter()
        .map(|o| o.uniform_result(&out, self.t_end))
        .collect())
    }

    /// The window loop: sweeps `ws` through the configured windows
    /// against the shared kernel, handing each window's solved block
    /// (columns in global state coordinates, lane-interleaved) plus the
    /// end-of-window state block to `on_window`, then carrying that
    /// state — polyline endpoint, recurrence tail or Caputo history
    /// tail, per kernel — forward.
    ///
    /// Polls the [`WindowedOptions`] cancel token at every window
    /// boundary — the cooperative cancellation point that bounds how
    /// long past a deadline a windowed solve can run to one window.
    fn windowed_drive(
        &self,
        kernel: &WindowKernel,
        ws: &[&InputSet],
        opts: &WindowedOptions,
        mut on_window: impl FnMut(usize, BlockOutcome, &[f64]),
    ) -> Result<(), OpmError> {
        let windows = opts.windows();
        let n = self.model.order();
        let k = ws.len();
        let m = self.m;
        let p = self.model.num_inputs();
        match kernel {
            WindowKernel::Linear { lu, sigma } => {
                let SimModel::Linear(sys) = self.model.as_ref() else {
                    unreachable!("linear window kernels are built on linear models");
                };
                let PlanKind::Linear { accumulator, .. } = &self.kind else {
                    unreachable!("linear window kernels are built on linear plans");
                };
                // The plan's x0 interleaved across the lanes; thereafter
                // each lane carries its own end-of-window state.
                let mut x0 = vec![0.0; n * k];
                for (i, &v) in self.x0.iter().enumerate() {
                    x0[i * k..(i + 1) * k].iter_mut().for_each(|x| *x = v);
                }
                let mut c_force = vec![0.0; n * k];
                let width = self.t_end / windows as f64;
                for w in 0..windows {
                    opts.check_cancelled()?;
                    // Offset projection: the window grid is shifted, the
                    // waveforms are sampled at global time.
                    let us: Vec<Vec<Vec<f64>>> = ws
                        .iter()
                        .map(|set| set.bpf_matrix_window(m, w as f64 * width, width))
                        .collect();
                    let refs: Vec<&[Vec<f64>]> = us.iter().map(Vec::as_slice).collect();
                    let lc = LaneCoeffs::interleave(&refs, p, m);
                    // Window-local shift z = x − x(T_w): constant forcing
                    // c = A·x(T_w), per lane.
                    sys.a().mul_block_into(&x0, &mut c_force, k);
                    let mut outcome =
                        sweep_linear_block(sys, lu, *sigma, &c_force, *accumulator, &lc);
                    // z → x: add the window's start state back.
                    for col in &mut outcome.columns {
                        for (c, &v) in col.iter_mut().zip(&x0) {
                            *c += v;
                        }
                    }
                    let end = endpoint_state(&outcome.columns, &x0);
                    on_window(w, outcome, &end);
                    x0 = end;
                }
            }
            WindowKernel::Recurrence {
                lu,
                polys,
                bw,
                depth,
            } => {
                let mt = self.mt_ref();
                let differentiate = matches!(
                    self.kind,
                    PlanKind::OwnedMultiTerm {
                        differentiate: true,
                        ..
                    }
                );
                // Carried state: the trailing `depth` solved columns (the
                // recurrence's full memory) — the restarted sweep is
                // column-for-column the unbroken one.
                let mut tail: Vec<Vec<f64>> = Vec::new();
                let mut endv = vec![0.0; n * k];
                for w in 0..windows {
                    opts.check_cancelled()?;
                    let s = tail.len();
                    let bounds = self.window_bounds(windows, w, s);
                    // The stimulus columns matching the carried history
                    // are re-projected from global time alongside the
                    // window's own (`u̇` averages for second-order
                    // input, plain interval averages otherwise).
                    let us: Vec<Vec<Vec<f64>>> = ws
                        .iter()
                        .map(|set| {
                            if differentiate {
                                set.derivative_averages_on_grid(&bounds)
                            } else {
                                set.averages_on_grid(&bounds)
                            }
                        })
                        .collect();
                    let refs: Vec<&[Vec<f64>]> = us.iter().map(Vec::as_slice).collect();
                    let lc = LaneCoeffs::interleave(&refs, p, s + m);
                    let outcome = sweep_mt_recurrence_window(mt, lu, polys, bw, &lc, tail.clone());
                    let keep_old = depth.saturating_sub(outcome.columns.len());
                    let mut new_tail: Vec<Vec<f64>> = Vec::with_capacity(*depth);
                    new_tail.extend(
                        tail[tail.len() - keep_old.min(tail.len())..]
                            .iter()
                            .cloned(),
                    );
                    new_tail.extend(
                        outcome.columns[outcome.columns.len().saturating_sub(*depth)..]
                            .iter()
                            .cloned(),
                    );
                    tail = new_tail;
                    let end = endpoint_state(&outcome.columns, &endv);
                    on_window(w, outcome, &end);
                    endv = end;
                }
            }
            WindowKernel::Fractional { lu, rho } => {
                let SimModel::Fractional(fsys) = self.model.as_ref() else {
                    unreachable!("fractional window kernels are built on fractional models");
                };
                let sys = fsys.system();
                // Carried state: the Caputo/GL memory of every previous
                // window — the retained solved columns, truncatable by
                // the short-memory cap. With full history the restarted
                // convolution is column-for-column the unbroken one.
                let mut tail = HistoryTail::new(opts.history_cap());
                let mut endv = vec![0.0; n * k];
                let width = self.t_end / windows as f64;
                for w in 0..windows {
                    opts.check_cancelled()?;
                    let us: Vec<Vec<Vec<f64>>> = ws
                        .iter()
                        .map(|set| set.bpf_matrix_window(m, w as f64 * width, width))
                        .collect();
                    let refs: Vec<&[Vec<f64>]> = us.iter().map(Vec::as_slice).collect();
                    let lc = LaneCoeffs::interleave(&refs, p, m);
                    let outcome = sweep_fractional_block(sys, lu, rho, &lc, tail.columns());
                    tail.extend(outcome.columns.iter().cloned());
                    let end = endpoint_state(&outcome.columns, &endv);
                    on_window(w, outcome, &end);
                    endv = end;
                }
            }
            WindowKernel::MtConvolution { lu, series } => {
                let mt = self.mt_ref();
                // Second-order conversions are integer-order and always
                // take the Recurrence kernel, so every plan reaching
                // this arm consumes plain (undifferentiated) averages.
                debug_assert!(
                    !matches!(
                        self.kind,
                        PlanKind::OwnedMultiTerm {
                            differentiate: true,
                            ..
                        }
                    ),
                    "second-order plans window through the recurrence kernel"
                );
                let mut tail = HistoryTail::new(opts.history_cap());
                let mut endv = vec![0.0; n * k];
                let width = self.t_end / windows as f64;
                for w in 0..windows {
                    opts.check_cancelled()?;
                    let us: Vec<Vec<Vec<f64>>> = ws
                        .iter()
                        .map(|set| set.bpf_matrix_window(m, w as f64 * width, width))
                        .collect();
                    let refs: Vec<&[Vec<f64>]> = us.iter().map(Vec::as_slice).collect();
                    let lc = LaneCoeffs::interleave(&refs, p, m);
                    let outcome = sweep_mt_convolution_block(mt, lu, series, &lc, tail.columns());
                    tail.extend(outcome.columns.iter().cloned());
                    let end = endpoint_state(&outcome.columns, &endv);
                    on_window(w, outcome, &end);
                    endv = end;
                }
            }
        }
        Ok(())
    }

    /// Validates every scenario's channel count against the model.
    fn check_channels(&self, inputs: &[InputSet]) -> Result<(), OpmError> {
        let p = self.model.num_inputs();
        for ws in inputs {
            if ws.len() != p {
                return Err(OpmError::BadArguments(format!(
                    "{} input channels for {} B columns",
                    ws.len(),
                    p
                )));
            }
        }
        Ok(())
    }

    // -- internals ----------------------------------------------------------

    /// Projects waveforms onto the plan's uniform grid (derivative
    /// averages for second-order plans).
    fn project(&self, ws: &InputSet) -> Result<Vec<Vec<f64>>, OpmError> {
        if matches!(
            self.kind,
            PlanKind::OwnedMultiTerm {
                differentiate: true,
                ..
            }
        ) {
            let bounds: Vec<f64> = (0..=self.m)
                .map(|k| k as f64 * self.t_end / self.m as f64)
                .collect();
            Ok(ws.derivative_averages_on_grid(&bounds))
        } else {
            Ok(ws.bpf_matrix(self.m, self.t_end))
        }
    }

    /// Runs the interleaved block sweep for the uniform plan kinds,
    /// splitting the scenario lanes across up to `threads` workers.
    ///
    /// Each worker sweeps a contiguous chunk of lanes through its own
    /// [`BlockColumnSweep`]; lanes never mix arithmetically (every
    /// kernel is elementwise across the lane dimension), so the chunked
    /// parallel run is bit-identical to the one-big-sweep serial run.
    fn run_block(&self, us: &[&[Vec<f64>]], threads: usize) -> Result<Vec<OpmResult>, OpmError> {
        // The dense oracle consumes the raw coefficient matrices; only
        // the sweeping kinds need the lane interleave.
        if let PlanKind::Kron { factors, mt } = &self.kind {
            let mt = match (mt, self.model.as_ref()) {
                (Some(owned), _) => owned,
                (None, SimModel::MultiTerm(m)) => m,
                _ => unreachable!("kron plans carry or reference a multi-term form"),
            };
            return opm_par::par_map(threads, us, |u| {
                kron_solve_prepared(mt, factors, u, self.t_end)
            })
            .into_iter()
            .collect();
        }
        let lanes_per_worker = worker_lane_chunk(us.len(), threads);
        if lanes_per_worker < us.len() {
            let chunks: Vec<&[&[Vec<f64>]]> = us.chunks(lanes_per_worker).collect();
            let per_chunk = opm_par::par_map(threads, &chunks, |chunk| self.run_chunk(chunk));
            let mut out = Vec::with_capacity(us.len());
            for res in per_chunk {
                out.extend(res?);
            }
            return Ok(out);
        }
        self.run_chunk(us)
    }

    /// One worker's share of [`SimPlan::run_block`]: interleaves its
    /// lanes and sweeps them through the cached factorization.
    fn run_chunk(&self, us: &[&[Vec<f64>]]) -> Result<Vec<OpmResult>, OpmError> {
        let lc = LaneCoeffs::interleave(us, self.model.num_inputs(), self.m);
        let outcome = match &self.kind {
            PlanKind::Linear {
                sigma,
                lu,
                accumulator,
                ..
            } => {
                let SimModel::Linear(sys) = self.model.as_ref() else {
                    unreachable!("linear plan on a linear model");
                };
                // Whole-horizon solves are the one-window special case:
                // the constant forcing block is the plan's own x0
                // replicated across the lanes (all zero for zero ICs).
                let (n, k) = (sys.order(), lc.lanes);
                let mut c_force = vec![0.0; n * k];
                if self.x0.iter().any(|&v| v != 0.0) {
                    let mut x0b = vec![0.0; n * k];
                    for (i, &v) in self.x0.iter().enumerate() {
                        x0b[i * k..(i + 1) * k].iter_mut().for_each(|x| *x = v);
                    }
                    sys.a().mul_block_into(&x0b, &mut c_force, k);
                }
                sweep_linear_block(sys, lu, *sigma, &c_force, *accumulator, &lc)
            }
            PlanKind::Fractional { rho, lu, .. } => {
                let SimModel::Fractional(fsys) = self.model.as_ref() else {
                    unreachable!("fractional plan on a fractional model");
                };
                sweep_fractional_block(fsys.system(), lu, rho, &lc, &[])
            }
            PlanKind::MultiTerm(plan) => {
                let SimModel::MultiTerm(mt) = self.model.as_ref() else {
                    unreachable!("multi-term plan on a multi-term model");
                };
                sweep_multiterm_block(mt, plan, &lc)
            }
            PlanKind::OwnedMultiTerm { mt, plan, .. } => sweep_multiterm_block(mt, plan, &lc),
            PlanKind::Kron { .. } | PlanKind::AdaptiveLinear { .. } | PlanKind::StepGrid(_) => {
                unreachable!("kron and grid-like kinds are dispatched before the interleave")
            }
        };
        Ok(self.finish_block(outcome))
    }

    fn output_map(&self) -> OutRef<'_> {
        match (&self.kind, self.model.as_ref()) {
            (PlanKind::OwnedMultiTerm { mt, .. }, _) => OutRef::Mt(mt),
            (PlanKind::Kron { mt: Some(mt), .. }, _) => OutRef::Mt(mt),
            (_, SimModel::Linear(sys)) => OutRef::Sys(sys),
            (_, SimModel::Fractional(f)) => OutRef::Sys(f.system()),
            (_, SimModel::MultiTerm(mt)) => OutRef::Mt(mt),
            (_, SimModel::SecondOrder(_)) => {
                unreachable!("second-order plans own their multi-term conversion")
            }
        }
    }

    fn finish_block(&self, outcome: BlockOutcome) -> Vec<OpmResult> {
        let out = self.output_map();
        let shift = matches!(self.kind, PlanKind::Linear { .. }) // z = x − x₀ sweeps only
            && self.x0.iter().any(|&v| v != 0.0);
        outcome
            .into_lane_outcomes()
            .into_iter()
            .map(|o| {
                let o = if shift { o.shifted_by(&self.x0) } else { o };
                o.uniform_result(&out, self.t_end)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Lane interleaving
// ---------------------------------------------------------------------------

/// `K` coefficient matrices interleaved for the block sweep:
/// `cols[j][ch*lanes + l]` is channel `ch`, column `j` of lane `l`.
struct LaneCoeffs {
    lanes: usize,
    m: usize,
    cols: Vec<Vec<f64>>,
}

impl LaneCoeffs {
    fn interleave(us: &[&[Vec<f64>]], p: usize, m: usize) -> Self {
        let lanes = us.len();
        let mut cols = vec![vec![0.0; p * lanes]; m];
        for (l, u) in us.iter().enumerate() {
            for (ch, row) in u.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    cols[j][ch * lanes + l] = v;
                }
            }
        }
        LaneCoeffs { lanes, m, cols }
    }
}

fn axpy(y: &mut [f64], x: &[f64], a: f64) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

// ---------------------------------------------------------------------------
// Per-kind block sweeps (the strategies, K lanes wide)
// ---------------------------------------------------------------------------

/// Linear two-term recurrence or the paper's literal alternating
/// accumulator, K lanes wide (paper §III; see [`crate::linear`] for the
/// derivation), against a **per-lane** constant forcing block
/// `c_force = A·x₀` (all zeros for zero initial conditions). Serves
/// both whole-horizon solves (x₀ replicated across the lanes) and
/// windowed solves (each lane restarts from its own carried
/// end-of-window state) — one body, so the two paths cannot diverge.
fn sweep_linear_block(
    sys: &DescriptorSystem,
    lu: &SparseLu,
    sigma: f64,
    c_force: &[f64],
    accumulator: bool,
    lc: &LaneCoeffs,
) -> BlockOutcome {
    let n = sys.order();
    let k = lc.lanes;
    if accumulator {
        let mut g = vec![0.0; n * k];
        return BlockColumnSweep::new(n, lc.m, k).run(lu, |j, history, rhs, work| {
            // g_j = −(g_{j−1} + z_{j−1}), folded in lazily.
            if j > 0 {
                for (gi, zi) in g.iter_mut().zip(&history[j - 1]) {
                    *gi = -(*gi + zi);
                }
            }
            apply_b_block(sys.b(), &lc.cols[j], k, 1.0, rhs);
            axpy(rhs, c_force, 1.0);
            if j > 0 {
                sys.e().mul_block_into(&g, work, k);
                axpy(rhs, work, -2.0 * sigma);
            }
        });
    }
    BlockColumnSweep::new(n, lc.m, k).run(lu, |j, history, rhs, work| {
        if j == 0 {
            // Column 0: (σE − A)·z₀ = B·u₀ + c.
            apply_b_block(sys.b(), &lc.cols[0], k, 1.0, rhs);
            axpy(rhs, c_force, 1.0);
        } else {
            // (σE − A)·z_j = (σE + A)·z_{j−1} + B(u_j + u_{j−1}) + 2c.
            let z_prev = &history[j - 1];
            sys.e().mul_block_into(z_prev, work, k);
            axpy(rhs, work, sigma);
            sys.a().mul_block_into(z_prev, work, k);
            axpy(rhs, work, 1.0);
            apply_b_block(sys.b(), &lc.cols[j], k, 1.0, rhs);
            apply_b_block(sys.b(), &lc.cols[j - 1], k, 1.0, rhs);
            axpy(rhs, c_force, 2.0);
        }
    })
}

/// Fractional nilpotent-series convolution, K lanes wide (paper §IV),
/// with an optional carried history tail: the memory term of column `j`
/// splits into the window-local part `Σ_{t=1}^{j} ρ_t·x_{j−t}` plus the
/// carried part `Σ_{d} ρ_{j+d}·tail[end−d]` over previous windows'
/// retained columns (empty `tail` ⇒ the whole-horizon solve, so the two
/// paths share one body and cannot diverge).
fn sweep_fractional_block(
    sys: &DescriptorSystem,
    lu: &SparseLu,
    rho: &[f64],
    lc: &LaneCoeffs,
    tail: &[Vec<f64>],
) -> BlockOutcome {
    let n = sys.order();
    let k = lc.lanes;
    let mut conv = vec![0.0; n * k];
    BlockColumnSweep::new(n, lc.m, k).run(lu, |j, history, rhs, work| {
        // conv = Σ_{t=1}^{j} ρ_t·x_{j−t} + carried history
        conv.iter_mut().for_each(|v| *v = 0.0);
        for t in 1..=j {
            let r = rho[t];
            if r != 0.0 {
                axpy(&mut conv, &history[j - t], r);
            }
        }
        history_convolution_into(rho, j, tail, &mut conv);
        sys.e().mul_block_into(&conv, work, k);
        apply_b_block(sys.b(), &lc.cols[j], k, 1.0, rhs);
        axpy(rhs, work, -1.0);
    })
}

/// One window of a windowed second-order solve, K lanes wide: the
/// integer multi-term recurrence seeded with the trailing `seed`
/// columns of the previous window (`lc` holds the matching stimulus
/// columns first), so the restart is column-for-column the unbroken
/// sweep.
fn sweep_mt_recurrence_window(
    mt: &MultiTermSystem,
    lu: &SparseLu,
    polys: &[Vec<f64>],
    bw: &[f64],
    lc: &LaneCoeffs,
    seed: Vec<Vec<f64>>,
) -> BlockOutcome {
    let n = mt.order();
    let k = lc.lanes;
    let m_solve = lc.m - seed.len();
    let mut acc = vec![0.0; n * k];
    let mut sweep = BlockColumnSweep::new(n, m_solve, k);
    sweep.seed_history(seed);
    sweep.run(lu, |j, history, rhs, work| {
        for (i, &w) in bw.iter().enumerate() {
            if i <= j {
                apply_b_block(mt.b(), &lc.cols[j - i], k, w, rhs);
            }
        }
        for (term, p) in mt.terms().iter().zip(polys) {
            acc.iter_mut().for_each(|v| *v = 0.0);
            let mut any = false;
            for (i, &pi) in p.iter().enumerate().skip(1) {
                if pi != 0.0 && i <= j {
                    any = true;
                    axpy(&mut acc, &history[j - i], pi);
                }
            }
            if any {
                term.matrix.mul_block_into(&acc, work, k);
                axpy(rhs, work, -1.0);
            }
        }
    })
}

/// Multi-term sweep (finite recurrence or per-term convolution), K lanes
/// wide.
fn sweep_multiterm_block(mt: &MultiTermSystem, plan: &MtPlan, lc: &LaneCoeffs) -> BlockOutcome {
    let n = mt.order();
    let k = lc.lanes;
    let mut acc = vec![0.0; n * k];
    match &plan.path {
        MtPath::Recurrence { polys, bw } => {
            BlockColumnSweep::new(n, lc.m, k).run(&plan.lu, |j, history, rhs, work| {
                for (i, &w) in bw.iter().enumerate() {
                    if i <= j {
                        apply_b_block(mt.b(), &lc.cols[j - i], k, w, rhs);
                    }
                }
                for (term, p) in mt.terms().iter().zip(polys) {
                    acc.iter_mut().for_each(|v| *v = 0.0);
                    let mut any = false;
                    for (i, &pi) in p.iter().enumerate().skip(1) {
                        if pi != 0.0 && i <= j {
                            any = true;
                            axpy(&mut acc, &history[j - i], pi);
                        }
                    }
                    if any {
                        term.matrix.mul_block_into(&acc, work, k);
                        axpy(rhs, work, -1.0);
                    }
                }
            })
        }
        MtPath::Convolution { series } => sweep_mt_convolution_block(mt, &plan.lu, series, lc, &[]),
    }
}

/// Multi-term nilpotent-series convolution, K lanes wide, with an
/// optional carried history tail per term (the windowed restart; empty
/// `tail` ⇒ the whole-horizon solve).
fn sweep_mt_convolution_block(
    mt: &MultiTermSystem,
    lu: &SparseLu,
    series: &[Vec<f64>],
    lc: &LaneCoeffs,
    tail: &[Vec<f64>],
) -> BlockOutcome {
    let n = mt.order();
    let k = lc.lanes;
    let mut acc = vec![0.0; n * k];
    BlockColumnSweep::new(n, lc.m, k).run(lu, |j, history, rhs, work| {
        apply_b_block(mt.b(), &lc.cols[j], k, 1.0, rhs);
        for (term, rho) in mt.terms().iter().zip(series) {
            if term.alpha == 0.0 {
                continue; // ρ = e₀: no history contribution
            }
            acc.iter_mut().for_each(|v| *v = 0.0);
            for t in 1..=j {
                let r = rho[t];
                if r != 0.0 {
                    axpy(&mut acc, &history[j - t], r);
                }
            }
            history_convolution_into(rho, j, tail, &mut acc);
            term.matrix.mul_block_into(&acc, work, k);
            axpy(rhs, work, -1.0);
        }
    })
}

// ---------------------------------------------------------------------------
// Multi-term plan-time precomputation
// ---------------------------------------------------------------------------

fn mt_all_integer(mt: &MultiTermSystem) -> bool {
    mt.terms()
        .iter()
        .all(|t| t.alpha.fract() == 0.0 && t.alpha <= 16.0)
}

/// The fractional plan kind: pencil family + factored `ρ₀·E − A` + the
/// nilpotent-series weights at the plan's own resolution.
fn fractional_plan_kind(
    fsys: &FractionalSystem,
    m: usize,
    t_end: f64,
) -> Result<PlanKind, OpmError> {
    let sys = fsys.system();
    let basis = BpfBasis::new(m, t_end);
    let rho = basis.frac_diff_coeffs(fsys.alpha());
    let mut family = PencilFamily::new(sys.e(), sys.a());
    let lu = family.factor(rho[0])?;
    Ok(PlanKind::Fractional {
        rho,
        lu,
        family: Mutex::new(family),
    })
}

/// The linear plan kind: pencil family + factored `σ·E − A`.
fn linear_plan_kind(
    sys: &DescriptorSystem,
    m: usize,
    t_end: f64,
    accumulator: bool,
) -> Result<PlanKind, OpmError> {
    let sigma = 2.0 * m as f64 / t_end;
    let mut family = PencilFamily::new(sys.e(), sys.a());
    let lu = family.factor(sigma)?;
    Ok(PlanKind::Linear {
        sigma,
        lu,
        accumulator,
        family: Mutex::new(family),
    })
}

/// Factors a window's re-weighted multi-term pencil: same union
/// pattern, new values — a numeric-only refactorization against the
/// plan's recorded analysis, with a fresh pivoted fallback on pattern
/// mismatch or pivot degradation. Books the cost into the window state.
fn refactor_window_pencil(
    symbolic: &SymbolicLu,
    pencil: &opm_sparse::CsrMatrix,
    st: &mut WindowState,
) -> Result<SparseLu, OpmError> {
    let csc = pencil.to_csc();
    let (lu, fresh) = if csc.values().len() == symbolic.pattern_nnz() {
        match SparseLu::refactor(symbolic, csc.values()) {
            Ok(lu) => (lu, false),
            Err(SparseError::PivotDegraded(_)) => (crate::engine::factor_pencil(pencil)?, true),
            Err(e) => return Err(OpmError::SingularPencil(format!("{e}"))),
        }
    } else {
        (crate::engine::factor_pencil(pencil)?, true)
    };
    if fresh {
        st.num_symbolic += 1;
    } else {
        st.num_numeric += 1;
    }
    Ok(lu)
}

/// Per-term finite recurrence polynomials `p^{(k)}` of degree `K` and
/// the RHS binomial weights `(1+q)^K` for step width `h` — the symbol
/// data of the integer-order recurrence path, which depends on the grid
/// only through `h` (so windowed solving re-derives it per window
/// width).
fn mt_recurrence_data(mt: &MultiTermSystem, h: f64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let kmax = mt.max_order() as usize;
    let mut polys: Vec<Vec<f64>> = Vec::with_capacity(mt.terms().len());
    for term in mt.terms() {
        let ak = term.alpha as usize;
        let scale = (2.0 / h).powi(ak as i32);
        // (1−q)^{ak}: alternating binomials; (1+q)^{K−ak}: binomials.
        let minus: Vec<f64> = binomial_series(ak as f64, ak + 1)
            .into_iter()
            .enumerate()
            .map(|(i, c)| if i % 2 == 0 { c } else { -c })
            .collect();
        let plus = binomial_series((kmax - ak) as f64, kmax - ak + 1);
        let mut p = vec![0.0; kmax + 1];
        for (i, &a) in minus.iter().enumerate() {
            for (j2, &b) in plus.iter().enumerate() {
                p[i + j2] += scale * a * b;
            }
        }
        polys.push(p);
    }
    let bw = binomial_series(kmax as f64, kmax + 1);
    (polys, bw)
}

/// Precomputes the multi-term pencil + per-term symbol data and factors
/// once (recording the symbolic analysis for window refactorization).
fn mt_plan(
    mt: &MultiTermSystem,
    m: usize,
    t_end: f64,
    select: &MtSelect,
) -> Result<MtPlan, OpmError> {
    let h = t_end / m as f64;
    let recurrence = match select {
        MtSelect::Auto => mt_all_integer(mt),
        MtSelect::Recurrence => {
            for t in mt.terms() {
                if t.alpha.fract() != 0.0 {
                    return Err(OpmError::BadArguments(format!(
                        "non-integer order {} in recurrence path",
                        t.alpha
                    )));
                }
            }
            true
        }
        MtSelect::Convolution => false,
    };
    if recurrence {
        let (polys, bw) = mt_recurrence_data(mt, h);
        let pencil = crate::engine::weighted_pencil(mt.terms(), |k| polys[k][0])?;
        let (symbolic, lu) = factor_pencil_symbolic(&pencil)?;
        Ok(MtPlan {
            lu,
            symbolic,
            path: MtPath::Recurrence { polys, bw },
        })
    } else {
        // ρ^{(k)} series for every term (α = 0 ⇒ [1, 0, 0, …]).
        let series: Vec<Vec<f64>> = mt
            .terms()
            .iter()
            .map(|term| {
                let scale = (2.0 / h).powf(term.alpha);
                tustin_frac_coeffs(term.alpha, m)
                    .into_iter()
                    .map(|c| scale * c)
                    .collect()
            })
            .collect();
        let pencil = crate::engine::weighted_pencil(mt.terms(), |k| series[k][0])?;
        let (symbolic, lu) = factor_pencil_symbolic(&pencil)?;
        Ok(MtPlan {
            lu,
            symbolic,
            path: MtPath::Convolution { series },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Problem, SolveOptions};
    use opm_sparse::{CooMatrix, CsrMatrix};
    use opm_waveform::Waveform;

    fn scalar(a: f64) -> DescriptorSystem {
        let mut am = CooMatrix::new(1, 1);
        am.push(0, 0, a);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        DescriptorSystem::new(CsrMatrix::identity(1), am.to_csr(), b.to_csr(), None).unwrap()
    }

    #[test]
    fn plan_solve_matches_problem_solve() {
        let sys = scalar(-1.0);
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let opts = SolveOptions::new().resolution(64);
        let via_problem = Problem::linear(&sys)
            .waveforms(&inputs)
            .horizon(2.0)
            .solve(&opts)
            .unwrap();
        let sim = Simulation::from_system(sys).horizon(2.0);
        let plan = sim.plan(&opts).unwrap();
        let via_plan = plan.solve(&inputs).unwrap();
        for j in 0..64 {
            assert_eq!(
                via_problem.state_coeff(0, j),
                via_plan.state_coeff(0, j),
                "column {j}"
            );
        }
        assert_eq!(plan.num_factorizations(), 1);
    }

    #[test]
    fn batch_equals_loop_bitwise() {
        let sys = scalar(-2.0);
        let sim = Simulation::from_system(sys).horizon(1.5);
        let plan = sim.plan(&SolveOptions::new().resolution(48)).unwrap();
        let sets: Vec<InputSet> = (0..7)
            .map(|i| {
                InputSet::new(vec![Waveform::sine(
                    0.1 * i as f64,
                    1.0,
                    1.0 + i as f64,
                    0.0,
                    0.2,
                )])
            })
            .collect();
        let batch = plan.solve_batch(&sets).unwrap();
        for (s, b) in sets.iter().zip(&batch) {
            let single = plan.solve(s).unwrap();
            for j in 0..48 {
                assert_eq!(single.state_coeff(0, j), b.state_coeff(0, j));
            }
        }
        assert_eq!(plan.num_factorizations(), 1);
    }

    #[test]
    fn windowed_solve_honors_cancel_token() {
        let sys = scalar(-1.0);
        let sim = Simulation::from_system(sys).horizon(1.0);
        let plan = sim.plan(&SolveOptions::new().resolution(16)).unwrap();
        let u = InputSet::new(vec![Waveform::Dc(1.0)]);

        // A pre-cancelled token stops the loop at the first boundary.
        let token = CancelToken::new();
        token.cancel();
        let opts = WindowedOptions::new(8).cancel_token(token);
        let err = plan.solve_windowed_opts(&u, &opts).unwrap_err();
        assert!(matches!(err, OpmError::Cancelled(_)), "{err}");
        let mut blocks = 0;
        let err = plan
            .solve_streaming_opts(&u, &opts, |_| blocks += 1)
            .unwrap_err();
        assert!(matches!(err, OpmError::Cancelled(_)), "{err}");
        assert_eq!(blocks, 0, "no window may be emitted after cancellation");

        // The plan (and its cached window kernel) survives: the same
        // solve without a token completes and matches an untouched run.
        let ok = plan.solve_windowed(&u, 8).unwrap();
        let fresh = sim
            .plan(&SolveOptions::new().resolution(16))
            .unwrap()
            .solve_windowed(&u, 8)
            .unwrap();
        for j in 0..ok.num_intervals() {
            assert_eq!(
                ok.state_coeff(0, j).to_bits(),
                fresh.state_coeff(0, j).to_bits()
            );
        }
    }

    #[test]
    fn sweep_orders_results_by_parameter() {
        let sys = scalar(-1.0);
        let sim = Simulation::from_system(sys).horizon(1.0);
        let plan = sim.plan(&SolveOptions::new().resolution(32)).unwrap();
        let amplitudes = [1.0, 2.0, 3.0];
        let runs = plan
            .sweep(&amplitudes, |&a| InputSet::new(vec![Waveform::Dc(a)]))
            .unwrap();
        // Linearity: doubling the drive doubles the response.
        for j in 0..32 {
            assert!((runs[1].state_coeff(0, j) - 2.0 * runs[0].state_coeff(0, j)).abs() < 1e-12);
            assert!((runs[2].state_coeff(0, j) - 3.0 * runs[0].state_coeff(0, j)).abs() < 1e-12);
        }
    }

    #[test]
    fn netlist_entry_assembles_and_solves() {
        let sim = Simulation::from_netlist(
            "* RC low-pass\nV1 in 0 DC 5\nR1 in out 1k\nC1 out 0 1u\n.end",
            &["out"],
        )
        .unwrap()
        .horizon(5e-3);
        assert!(sim.inputs().is_some());
        let plan = sim.plan(&SolveOptions::new().resolution(200)).unwrap();
        let r = plan.solve(sim.inputs().unwrap()).unwrap();
        // Charged to ~5 V after 5 time constants.
        assert!((r.output_row(0)[199] - 5.0).abs() < 0.1);
    }

    #[test]
    fn netlist_entry_detects_cpe_and_goes_fractional() {
        let sim = Simulation::from_netlist(
            "V1 in 0 DC 1\nR1 in top 100\nP1 top 0 CPE 1u 0.5\n.end",
            &["top"],
        )
        .unwrap()
        .horizon(1e-6);
        assert!(matches!(sim.model(), SimModel::Fractional(_)));
        let plan = sim.plan(&SolveOptions::new().resolution(64)).unwrap();
        let r = plan.solve(sim.inputs().unwrap()).unwrap();
        assert!(r.output_row(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn netlist_entry_rejects_unknown_probe() {
        let err =
            Simulation::from_netlist("V1 in 0 DC 1\nR1 in 0 1k\n.end", &["nope"]).unwrap_err();
        assert!(matches!(err, OpmError::BadArguments(_)));
    }

    #[test]
    fn rejections_name_option_and_strategy() {
        let sys = scalar(-1.0);
        let sim = Simulation::from_system(sys).horizon(1.0);
        let err = sim
            .plan(&SolveOptions::new().step_grid(vec![0.6, 0.4]))
            .unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("step_grid") && msg.contains("linear"),
            "diagnostic must name option and strategy: {msg}"
        );
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let simf = Simulation::from_fractional(fsys).horizon(1.0);
        let err = simf
            .plan(&SolveOptions::new().adaptive(AdaptiveOpmOptions::default()))
            .unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("adaptive") && msg.contains("fractional"),
            "diagnostic must name option and strategy: {msg}"
        );
        let err = simf
            .plan(
                &SolveOptions::new()
                    .resolution(8)
                    .method(Method::Accumulator),
            )
            .unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("Accumulator") && msg.contains("fractional"),
            "diagnostic must name method and strategy: {msg}"
        );
    }

    #[test]
    fn circuit_errors_compose_with_question_mark() {
        fn pipeline() -> Result<OpmResult, OpmError> {
            let parsed = parse_netlist("V1 in 0 DC 1\nR1 in out 1k\nC1 out 0 1n\n.end")?;
            let model = assemble_mna(&parsed.circuit, &[])?;
            let sim = Simulation::from_system(model.system).horizon(1e-5);
            let plan = sim.plan(&SolveOptions::new().resolution(16))?;
            plan.solve(&model.inputs)
        }
        assert!(pipeline().is_ok());
        // And a failing parse surfaces as OpmError::Circuit.
        fn broken() -> Result<(), OpmError> {
            parse_netlist("Q1 what even is this")?;
            Ok(())
        }
        assert!(matches!(broken(), Err(OpmError::Circuit(_))));
    }

    #[test]
    fn second_order_plan_differentiates_waveforms() {
        use opm_circuits::grid::PowerGridSpec;
        use opm_circuits::na::assemble_na;
        let spec = PowerGridSpec {
            layers: 2,
            rows: 3,
            cols: 3,
            num_loads: 2,
            ..Default::default()
        };
        let na = assemble_na(&spec.build(), &[]).unwrap();
        let (m, t_end) = (32, 5e-9);
        // Pins the deprecated wrapper's delegation onto this very plan.
        #[allow(deprecated)]
        let direct =
            crate::second_order::solve_second_order(&na.system, &na.inputs, t_end, m).unwrap();
        let sim = Simulation::from_second_order(na.system).horizon(t_end);
        let plan = sim.plan(&SolveOptions::new().resolution(m)).unwrap();
        let via_plan = plan.solve(&na.inputs).unwrap();
        for j in 0..m {
            for i in 0..via_plan.order() {
                assert_eq!(direct.state_coeff(i, j), via_plan.state_coeff(i, j));
            }
        }
        // Coefficients are rejected: the plan must differentiate.
        assert!(plan.solve_coeffs(&vec![vec![0.0; m]; 2]).is_err());
    }

    #[test]
    fn adaptive_plan_shares_the_step_lattice_cache() {
        let sys = scalar(-5.0);
        let sim = Simulation::from_system(sys).horizon(2.0);
        let plan = sim
            .plan(&SolveOptions::new().adaptive(AdaptiveOpmOptions {
                tol: 1e-6,
                h0: 1.0 / 64.0,
                ..Default::default()
            }))
            .unwrap();
        let a = plan.solve(&InputSet::new(vec![Waveform::Dc(1.0)])).unwrap();
        let first = plan.num_factorizations();
        assert!(first >= 1);
        let b = plan.solve(&InputSet::new(vec![Waveform::Dc(2.0)])).unwrap();
        // Same step lattice ⇒ the second scenario reuses every factor.
        assert_eq!(plan.num_factorizations(), first);
        assert!(a.num_solves > 0 && b.num_solves > 0);
    }

    #[test]
    fn batch_is_invariant_under_thread_count() {
        let sys = scalar(-1.5);
        let sim = Simulation::from_system(sys).horizon(2.0);
        let plan = sim.plan(&SolveOptions::new().resolution(64)).unwrap();
        let sets: Vec<InputSet> = (0..11)
            .map(|i| {
                // Lane 4 all-zero: exercises the zero-skip path, whose
                // grouping differs between chunkings.
                if i == 4 {
                    InputSet::new(vec![Waveform::Dc(0.0)])
                } else {
                    InputSet::new(vec![Waveform::sine(0.2, 1.0 + i as f64, 2.0, 0.0, 0.1)])
                }
            })
            .collect();
        let serial = plan.solve_batch_with_threads(&sets, 1).unwrap();
        for threads in [2, 3, 4, 16] {
            let par = plan.solve_batch_with_threads(&sets, threads).unwrap();
            for (s, p) in serial.iter().zip(&par) {
                for j in 0..64 {
                    assert_eq!(
                        s.state_coeff(0, j),
                        p.state_coeff(0, j),
                        "threads={threads}, column {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn symbolic_numeric_split_is_observable() {
        // Uniform plan: one symbolic analysis, nothing numeric.
        let sim = Simulation::from_system(scalar(-1.0)).horizon(1.0);
        let plan = sim.plan(&SolveOptions::new().resolution(16)).unwrap();
        assert_eq!((plan.num_symbolic(), plan.num_numeric()), (1, 0));
        assert_eq!(plan.num_factorizations(), 1);

        // Step grid: 12 pencils = 1 analysis + 11 refactorizations.
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let steps = crate::adaptive::geometric_grid(1.0, 12, 1.2);
        let simf = Simulation::from_fractional(fsys).horizon(1.0);
        let planf = simf.plan(&SolveOptions::new().step_grid(steps)).unwrap();
        assert_eq!((planf.num_symbolic(), planf.num_numeric()), (1, 11));
        assert_eq!(planf.num_factorizations(), 12);

        // Adaptive lattice: the cache readout counts hits across
        // scenarios, and only the first miss is symbolic.
        let sima = Simulation::from_system(scalar(-4.0)).horizon(2.0);
        let plana = sima
            .plan(&SolveOptions::new().adaptive(AdaptiveOpmOptions {
                tol: 1e-6,
                h0: 1.0 / 64.0,
                ..Default::default()
            }))
            .unwrap();
        plana
            .solve(&InputSet::new(vec![Waveform::Dc(1.0)]))
            .unwrap();
        let p1 = plana.factor_profile();
        assert_eq!(p1.num_symbolic, 1, "first lattice exponent analyzes");
        assert_eq!(p1.num_numeric, p1.cache_misses - 1, "the rest refactor");
        plana
            .solve(&InputSet::new(vec![Waveform::Dc(2.0)]))
            .unwrap();
        let p2 = plana.factor_profile();
        assert_eq!(
            p2.num_factorizations(),
            p1.num_factorizations(),
            "second scenario re-factors nothing"
        );
        assert!(p2.cache_hits > p1.cache_hits);
    }

    #[test]
    fn step_grid_plan_factors_once_per_column_total() {
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let steps = crate::adaptive::geometric_grid(1.0, 12, 1.2);
        let sim = Simulation::from_fractional(fsys).horizon(1.0);
        let plan = sim.plan(&SolveOptions::new().step_grid(steps)).unwrap();
        assert_eq!(plan.num_factorizations(), 12);
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let r1 = plan.solve(&inputs).unwrap();
        let r2 = plan
            .solve(&InputSet::new(vec![Waveform::step(0.1, 2.0)]))
            .unwrap();
        // Solving more scenarios does not factor again.
        assert_eq!(plan.num_factorizations(), 12);
        assert_eq!(r1.num_intervals(), 12);
        assert_eq!(r2.num_intervals(), 12);
    }

    #[test]
    fn windowed_carries_nonzero_initial_state() {
        // ẋ = −x, x(0) = 3: pure decay, windowed restart must carry x0.
        let sys = scalar(-1.0);
        let sim = Simulation::from_system(sys)
            .horizon(2.0)
            .initial_state(vec![3.0]);
        let inputs = InputSet::new(vec![Waveform::Dc(0.0)]);
        let plan = sim.plan(&SolveOptions::new().resolution(16)).unwrap();
        let windowed = plan.solve_windowed(&inputs, 8).unwrap();
        let whole = sim
            .plan(&SolveOptions::new().resolution(128))
            .unwrap()
            .solve(&inputs)
            .unwrap();
        for j in 0..128 {
            assert!((windowed.state_coeff(0, j) - whole.state_coeff(0, j)).abs() <= 1e-9);
        }
        let t = windowed.midpoints()[127];
        assert!((windowed.state_coeff(0, 127) - 3.0 * (-t).exp()).abs() < 1e-3);
    }

    #[test]
    fn windowed_accumulator_matches_recurrence() {
        let sys = scalar(-2.0);
        let sim = Simulation::from_system(sys).horizon(1.5);
        let inputs = InputSet::new(vec![Waveform::step(0.4, 1.0)]);
        let rec = sim
            .plan(&SolveOptions::new().resolution(24))
            .unwrap()
            .solve_windowed(&inputs, 6)
            .unwrap();
        let acc = sim
            .plan(
                &SolveOptions::new()
                    .resolution(24)
                    .method(Method::Accumulator),
            )
            .unwrap()
            .solve_windowed(&inputs, 6)
            .unwrap();
        for j in 0..rec.num_intervals() {
            assert!((rec.state_coeff(0, j) - acc.state_coeff(0, j)).abs() < 1e-10);
        }
    }

    #[test]
    fn windowed_rejections_name_strategy_and_reason() {
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        // Adaptive plans pace themselves.
        let sima = Simulation::from_system(scalar(-1.0)).horizon(1.0);
        let plana = sima
            .plan(&SolveOptions::new().adaptive(AdaptiveOpmOptions::default()))
            .unwrap();
        let msg = format!("{}", plana.solve_windowed(&inputs, 2).unwrap_err());
        assert!(msg.contains("adaptive"), "{msg}");
        // The dense Kronecker oracle is whole-horizon by construction.
        let simk = Simulation::from_system(scalar(-1.0)).horizon(1.0);
        let plank = simk
            .plan(&SolveOptions::new().resolution(8).method(Method::Kronecker))
            .unwrap();
        let msg = format!("{}", plank.solve_windowed(&inputs, 2).unwrap_err());
        assert!(msg.contains("Kronecker"), "{msg}");
        // Step-grid plans resolve the horizon on their explicit grid.
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let simg = Simulation::from_fractional(fsys).horizon(1.0);
        let plang = simg
            .plan(&SolveOptions::new().step_grid(crate::adaptive::geometric_grid(1.0, 8, 1.2)))
            .unwrap();
        let msg = format!("{}", plang.solve_windowed(&inputs, 2).unwrap_err());
        assert!(msg.contains("step-grid"), "{msg}");
        // Zero windows is a plain argument error.
        let plan = sima.plan(&SolveOptions::new().resolution(8)).unwrap();
        assert!(plan.solve_windowed(&inputs, 0).is_err());
    }

    #[test]
    fn fractional_windowed_matches_whole_horizon() {
        // d^½x = −x + u over 8 windows × 16 columns vs one 128-column
        // whole-horizon plan: with full history the restarted
        // convolution is the unbroken one, column for column.
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let sim = Simulation::from_fractional(fsys).horizon(2.0);
        let inputs = InputSet::new(vec![Waveform::step(0.3, 1.0)]);
        let (m, windows) = (16, 8);
        let plan = sim.plan(&SolveOptions::new().resolution(m)).unwrap();
        let windowed = plan.solve_windowed(&inputs, windows).unwrap();
        let whole = sim
            .plan(&SolveOptions::new().resolution(m * windows))
            .unwrap()
            .solve(&inputs)
            .unwrap();
        for j in 0..m * windows {
            assert!(
                (windowed.state_coeff(0, j) - whole.state_coeff(0, j)).abs() <= 1e-12,
                "column {j}"
            );
        }
        // 1 symbolic (the plan's own pencil) + 1 numeric (the window
        // pencil, refactored through the plan's pencil family).
        let p = plan.factor_profile();
        assert_eq!((p.num_symbolic, p.num_numeric), (1, 1));
        assert_eq!(p.num_windows, windows);
    }

    #[test]
    fn fractional_short_memory_truncation_is_ordered() {
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let sim = Simulation::from_fractional(fsys).horizon(4.0);
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let (m, windows) = (16, 8);
        let plan = sim.plan(&SolveOptions::new().resolution(m)).unwrap();
        let full = plan.solve_windowed(&inputs, windows).unwrap();
        let err_at = |cap: usize| {
            let opts = WindowedOptions::new(windows).history_len(cap);
            let r = plan.solve_windowed_opts(&inputs, &opts).unwrap();
            (0..m * windows)
                .map(|j| (r.state_coeff(0, j) - full.state_coeff(0, j)).abs())
                .fold(0.0f64, f64::max)
        };
        let coarse = err_at(m);
        let fine = err_at(4 * m);
        assert!(coarse > 0.0, "truncation must actually bite");
        assert!(
            fine < coarse,
            "longer memory must be more accurate: {fine:.3e} !< {coarse:.3e}"
        );
        // A tail covering the horizon IS the full solve, bit for bit.
        let opts = WindowedOptions::new(windows).history_len(m * windows);
        let covered = plan.solve_windowed_opts(&inputs, &opts).unwrap();
        assert_eq!(covered.columns, full.columns);
    }

    #[test]
    fn multiterm_windowed_matches_whole_horizon() {
        // A fractional mixture: A₀x + A_½ d^½x + A₁ dx = Bu takes the
        // convolution path; the windowed restart must reproduce it.
        use opm_system::Term;
        let mk = |v: f64| {
            let mut c = CooMatrix::new(1, 1);
            c.push(0, 0, v);
            c.to_csr()
        };
        let terms = vec![
            Term {
                alpha: 0.0,
                matrix: mk(1.0),
            },
            Term {
                alpha: 0.5,
                matrix: mk(0.5),
            },
            Term {
                alpha: 1.0,
                matrix: mk(1.0),
            },
        ];
        let mt = MultiTermSystem::new(terms, mk(1.0), None).unwrap();
        let sim = Simulation::from_multiterm(mt).horizon(1.5);
        let inputs = InputSet::new(vec![Waveform::sine(0.2, 1.0, 2.0, 0.0, 0.1)]);
        let (m, windows) = (16, 4);
        let plan = sim.plan(&SolveOptions::new().resolution(m)).unwrap();
        let windowed = plan.solve_windowed(&inputs, windows).unwrap();
        let whole = sim
            .plan(&SolveOptions::new().resolution(m * windows))
            .unwrap()
            .solve(&inputs)
            .unwrap();
        for j in 0..m * windows {
            assert!(
                (windowed.state_coeff(0, j) - whole.state_coeff(0, j)).abs() <= 1e-10,
                "column {j}: {} vs {}",
                windowed.state_coeff(0, j),
                whole.state_coeff(0, j)
            );
        }
        let p = plan.factor_profile();
        assert_eq!((p.num_symbolic, p.num_numeric), (1, 1));
    }

    #[test]
    fn integer_multiterm_windowed_takes_the_recurrence_path() {
        // x + 2ẋ = u as a plain multi-term model: integer orders run the
        // seeded finite recurrence across windows.
        let mt = MultiTermSystem::from_descriptor(&scalar(-0.5));
        let sim = Simulation::from_multiterm(mt).horizon(2.0);
        let inputs = InputSet::new(vec![Waveform::step(0.5, 1.0)]);
        let (m, windows) = (16, 4);
        let plan = sim.plan(&SolveOptions::new().resolution(m)).unwrap();
        let windowed = plan.solve_windowed(&inputs, windows).unwrap();
        let whole = sim
            .plan(&SolveOptions::new().resolution(m * windows))
            .unwrap()
            .solve(&inputs)
            .unwrap();
        for j in 0..m * windows {
            assert!(
                (windowed.state_coeff(0, j) - whole.state_coeff(0, j)).abs() <= 1e-10,
                "column {j}"
            );
        }
    }

    #[test]
    fn streaming_keeps_only_one_window_resident() {
        let sys = scalar(-1.0);
        let sim = Simulation::from_system(sys).horizon(16.0);
        let plan = sim.plan(&SolveOptions::new().resolution(8)).unwrap();
        let inputs = InputSet::new(vec![Waveform::Dc(2.0)]);
        let mut seen = 0usize;
        let end = plan
            .solve_streaming(&inputs, 32, |block| {
                assert_eq!(block.result.num_intervals(), 8);
                assert_eq!(block.end_state.len(), 1);
                seen += 1;
            })
            .unwrap();
        assert_eq!(seen, 32);
        // 16 time constants out, the state sits at the DC gain.
        assert!((end[0] - 2.0).abs() < 1e-2);
        assert_eq!(plan.factor_profile().num_windows, 32);
    }

    #[test]
    fn kron_plan_caches_the_dense_factorization() {
        let sys = scalar(-1.3);
        let sim = Simulation::from_system(sys).horizon(1.0);
        let plan = sim
            .plan(&SolveOptions::new().resolution(16).method(Method::Kronecker))
            .unwrap();
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let oracle = plan.solve(&inputs).unwrap();
        let fast = sim
            .plan(&SolveOptions::new().resolution(16))
            .unwrap()
            .solve(&inputs)
            .unwrap();
        for j in 0..16 {
            assert!((oracle.state_coeff(0, j) - fast.state_coeff(0, j)).abs() < 1e-10);
        }
        assert_eq!(plan.num_factorizations(), 1);
    }
}
