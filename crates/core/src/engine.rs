//! The shared OPM solver engine.
//!
//! Every OPM variant in this crate solves the same matrix equation
//! `Σ_k A_k X Sym_k = B U` column by column: build a pencil from the
//! leading symbol coefficients, factor it **once** (or once per distinct
//! step on adaptive grids), then sweep columns left to right, each
//! column's right-hand side mixing the inputs with a history term over
//! already-solved columns. The five public solvers — linear, fractional,
//! multi-term, adaptive, general-basis — plus the Kronecker oracle are
//! thin *strategies* over the primitives in this module:
//!
//! - [`validate_coeff_inputs`] / [`validate_horizon`] — argument checks;
//! - [`factor_pencil`] — RCM-ordered sparse LU with error mapping;
//! - [`PencilFamily`] — the many-pencil hot path: one union pattern, one
//!   RCM ordering and one symbolic analysis shared by every shift
//!   `σ·E − A`, with numeric-only refactorization per shift
//!   ([`PencilFamily::factor`]) and a parallel batch form
//!   ([`PencilFamily::factor_all`]);
//! - [`FactorCache`] — memoized factorizations for step-lattice sweeps,
//!   backed by a [`PencilFamily`];
//! - [`apply_b`] / [`apply_b_block`] — accumulate `scale·B·u_j` into a
//!   right-hand side (single scenario or an interleaved lane block);
//! - [`BlockColumnSweep`] — the cached-factorization column solve loop,
//!   `lanes` scenarios wide, with read access to all previously solved
//!   columns (the history term); [`ColumnSweep`] is its single-scenario
//!   view;
//! - [`reconstruct_outputs`] / [`SweepOutcome::uniform_result`] —
//!   output projection through `C` and [`OpmResult`] assembly.
//!
//! On top of the primitives sits the plan layer
//! ([`crate::session`]): [`crate::Simulation`] → [`crate::SimPlan`]
//! factors once and solves many scenarios. The declarative front door
//! kept here — describe the task with a [`Problem`], pick
//! resolution/method with [`SolveOptions`], call [`Problem::solve`] —
//! is a thin one-shot wrapper over that layer:
//!
//! ```
//! use opm_core::engine::{Problem, SolveOptions};
//! use opm_sparse::{CooMatrix, CsrMatrix};
//! use opm_system::DescriptorSystem;
//! use opm_waveform::{InputSet, Waveform};
//!
//! // ẋ = −x + u, step input, zero IC.
//! let mut a = CooMatrix::new(1, 1);
//! a.push(0, 0, -1.0);
//! let mut b = CooMatrix::new(1, 1);
//! b.push(0, 0, 1.0);
//! let sys = DescriptorSystem::new(CsrMatrix::identity(1), a.to_csr(), b.to_csr(), None).unwrap();
//! let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
//! let r = Problem::linear(&sys)
//!     .waveforms(&inputs)
//!     .horizon(1.0)
//!     .solve(&SolveOptions::new().resolution(256))
//!     .unwrap();
//! let t = r.midpoints()[255];
//! assert!((r.state_coeff(0, 255) - (1.0 - (-t).exp())).abs() < 1e-4);
//! ```

use crate::adaptive::AdaptiveOpmOptions;
use crate::metrics::FactorProfile;
use crate::result::OpmResult;
use crate::OpmError;
use opm_sparse::lu::LuOptions;
use opm_sparse::ordering::rcm;
use opm_sparse::pencil::ShiftedPencil;
use opm_sparse::{CsrMatrix, Permutation, SparseError, SparseLu, SymbolicLu};
use opm_system::{DescriptorSystem, FractionalSystem, MultiTermSystem, SecondOrderSystem};
use opm_waveform::InputSet;
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// Validates a BPF coefficient matrix (`u_coeffs[ch][j]`) against the
/// expected channel count; returns the interval count `m`.
///
/// # Errors
/// [`OpmError::BadArguments`] on channel mismatch, zero intervals, or
/// ragged rows.
pub fn validate_coeff_inputs(num_inputs: usize, u_coeffs: &[Vec<f64>]) -> Result<usize, OpmError> {
    if u_coeffs.len() != num_inputs {
        return Err(OpmError::BadArguments(format!(
            "{} input rows for {} B columns",
            u_coeffs.len(),
            num_inputs
        )));
    }
    let m = u_coeffs.first().map_or(0, Vec::len);
    if m == 0 {
        return Err(OpmError::BadArguments("zero intervals".into()));
    }
    if u_coeffs.iter().any(|r| r.len() != m) {
        return Err(OpmError::BadArguments("ragged input rows".into()));
    }
    Ok(m)
}

/// Validates the simulation horizon.
///
/// # Errors
/// [`OpmError::BadArguments`] unless `t_end > 0` (NaN rejected too).
pub fn validate_horizon(t_end: f64) -> Result<(), OpmError> {
    if t_end > 0.0 {
        Ok(())
    } else {
        Err(OpmError::BadArguments(format!("t_end = {t_end}")))
    }
}

/// Validates an initial-condition vector against the system order.
///
/// # Errors
/// [`OpmError::BadArguments`] on length mismatch.
pub fn validate_x0(n: usize, x0: &[f64]) -> Result<(), OpmError> {
    if x0.len() != n {
        return Err(OpmError::BadArguments(format!(
            "x0 length {} for order {n}",
            x0.len()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Pencil factorization
// ---------------------------------------------------------------------------

/// Factors an OPM pencil with the RCM fill-reducing ordering, mapping
/// failures onto [`OpmError::SingularPencil`].
///
/// # Errors
/// [`OpmError::SingularPencil`] when the pencil is numerically singular.
pub fn factor_pencil(pencil: &CsrMatrix) -> Result<SparseLu, OpmError> {
    let order = rcm(pencil);
    SparseLu::factor(&pencil.to_csc(), Some(&order))
        .map_err(|e| OpmError::SingularPencil(format!("{e}")))
}

/// Builds and factors the two-matrix pencil `σ·E − A`.
///
/// This is the **one-shot** form, deliberately kept free of any
/// symbolic-reuse machinery: a single factorization cannot amortize an
/// analysis, so it pays exactly one pattern union and one pivoted
/// factor. Call sites that factor *many* shifts of one `(E, A)` pair —
/// step grids, the adaptive lattice — go through [`PencilFamily`],
/// which shares the CSC pattern, RCM ordering and symbolic analysis
/// across all of them.
///
/// # Errors
/// As [`factor_pencil`].
pub fn factor_shifted_pencil(
    e: &CsrMatrix,
    a: &CsrMatrix,
    sigma: f64,
) -> Result<SparseLu, OpmError> {
    factor_pencil(&e.lin_comb(sigma, -1.0, a))
}

// ---------------------------------------------------------------------------
// Pencil families: one symbolic analysis across many shifts
// ---------------------------------------------------------------------------

/// The shifted-pencil family `σ·E − A` over all shifts, with everything
/// shift-independent paid **once**: the union CSC pattern
/// ([`ShiftedPencil`]), the RCM fill-reducing ordering, and — after the
/// first factorization — the symbolic analysis ([`SymbolicLu`]: fill
/// pattern, pivot order, elimination reach). Every further shift is a
/// numeric-only [`SparseLu::refactor`], with an automatic fall back to a
/// fresh pivoted factorization when a fixed pivot degrades past
/// [`LuOptions::refactor_threshold`].
///
/// The symbolic analysis recorded by the *first* factorization is kept
/// for the family's whole lifetime (fallbacks do not replace it), so the
/// factors produced for a given shift are independent of the order — or
/// the thread — in which shifts are requested.
pub struct PencilFamily {
    pencil: ShiftedPencil,
    order: Permutation,
    symbolic: Option<SymbolicLu>,
    /// Scratch value buffer for the serial [`PencilFamily::factor`] path.
    scratch: Vec<f64>,
    profile: FactorProfile,
}

impl PencilFamily {
    /// Assembles the union pattern of `E` and `A` and computes the RCM
    /// ordering — all shift-independent, done once per family.
    pub fn new(e: &CsrMatrix, a: &CsrMatrix) -> Self {
        let pencil = ShiftedPencil::new(e, a);
        let order = rcm(&pencil.pattern().to_csr());
        PencilFamily {
            pencil,
            order,
            symbolic: None,
            scratch: Vec::new(),
            profile: FactorProfile::default(),
        }
    }

    /// Factors `σ·E − A`: a numeric-only refactorization when the
    /// family already holds a symbolic analysis (falling back to a fresh
    /// pivoted factorization on pivot degradation), a full analysis —
    /// recorded for every later shift — otherwise.
    ///
    /// # Errors
    /// [`OpmError::SingularPencil`] when the pencil is singular.
    pub fn factor(&mut self, sigma: f64) -> Result<SparseLu, OpmError> {
        if let Some(sym) = &self.symbolic {
            self.pencil.shift_values(sigma, &mut self.scratch);
            match SparseLu::refactor(sym, &self.scratch) {
                Ok(lu) => {
                    self.profile.num_numeric += 1;
                    return Ok(lu);
                }
                Err(SparseError::PivotDegraded(_)) => { /* fresh factor below */ }
                Err(e) => return Err(OpmError::SingularPencil(format!("{e}"))),
            }
        }
        let record = self.symbolic.is_none();
        let csc = self.pencil.shifted(sigma);
        if record {
            let (sym, lu) = SymbolicLu::factor_with(csc, Some(&self.order), LuOptions::default())
                .map_err(|e| OpmError::SingularPencil(format!("{e}")))?;
            self.symbolic = Some(sym);
            self.profile.num_symbolic += 1;
            // Supernode observability comes from the family's reference
            // factorization — every refactorization shares its pattern,
            // so the statistics hold for the whole family.
            let stats = lu.supernode_stats();
            self.profile.num_supernodes = stats.num_supernodes;
            self.profile.supernode_cols = stats.supernode_cols;
            self.profile.dense_tail_cols = stats.dense_tail_cols;
            self.profile.factor_cols = stats.num_cols;
            Ok(lu)
        } else {
            // Pivot-degradation fallback: fresh pivots for this shift
            // only; the family's shared analysis stays as recorded.
            let lu = SparseLu::factor(csc, Some(&self.order))
                .map_err(|e| OpmError::SingularPencil(format!("{e}")))?;
            self.profile.num_symbolic += 1;
            Ok(lu)
        }
    }

    /// Factors every shift in `sigmas`, numerically refactoring the
    /// independent pencils **in parallel** on up to `threads` workers
    /// (see [`opm_par::par_map`]): the first shift establishes the
    /// shared symbolic analysis (unless one exists), the rest are
    /// scatter–solve value passes against it, each worker carrying only
    /// a private value buffer. Per-shift pivot degradation falls back to
    /// a fresh pivoted factorization of that shift alone, so the result
    /// for each shift — and the whole output — is identical for every
    /// `threads` value.
    ///
    /// # Errors
    /// The index of the offending shift plus
    /// [`OpmError::SingularPencil`] when some pencil is singular.
    pub fn factor_all(
        &mut self,
        sigmas: &[f64],
        threads: usize,
    ) -> Result<Vec<SparseLu>, (usize, OpmError)> {
        let Some((&first, rest)) = sigmas.split_first() else {
            return Ok(Vec::new());
        };
        let head = self.factor(first).map_err(|e| (0, e))?;
        let sym = self
            .symbolic
            .as_ref()
            .expect("first factorization records the analysis");
        let pencil = &self.pencil;
        let order = &self.order;
        // Contiguous chunks, one per worker task, so every task carries a
        // single reused value buffer instead of allocating per shift.
        // (lu, fell_back) per shift; degraded pivots re-factor locally
        // without touching the shared analysis.
        let chunk_len = rest.len().div_ceil(threads.max(1)).max(1);
        let chunks: Vec<&[f64]> = rest.chunks(chunk_len).collect();
        let tail = opm_par::par_map(threads, &chunks, |chunk| {
            let mut vals = Vec::new();
            chunk
                .iter()
                .map(|&sigma| {
                    pencil.shift_values(sigma, &mut vals);
                    match SparseLu::refactor(sym, &vals) {
                        Ok(lu) => Ok((lu, false)),
                        Err(SparseError::PivotDegraded(_)) => {
                            SparseLu::factor(&pencil.shifted_csc(sigma), Some(order))
                                .map(|lu| (lu, true))
                                .map_err(|e| OpmError::SingularPencil(format!("{e}")))
                        }
                        Err(e) => Err(OpmError::SingularPencil(format!("{e}"))),
                    }
                })
                .collect::<Vec<_>>()
        });
        let mut out = Vec::with_capacity(sigmas.len());
        out.push(head);
        for (i, res) in tail.into_iter().flatten().enumerate() {
            match res {
                Ok((lu, fell_back)) => {
                    if fell_back {
                        self.profile.num_symbolic += 1;
                    } else {
                        self.profile.num_numeric += 1;
                    }
                    out.push(lu);
                }
                Err(e) => return Err((i + 1, e)),
            }
        }
        Ok(out)
    }

    /// Factorization-cost profile of this family so far.
    pub fn profile(&self) -> FactorProfile {
        self.profile
    }

    /// Books `n` Newton iterations into the profile (the session layer
    /// calls this once per solve; on the linear delegation path it books
    /// one iteration per column, matching what a Newton loop would have
    /// measured).
    pub fn note_newton_iters(&mut self, n: usize) {
        self.profile.newton_iters += n;
    }

    /// Resolves matrix coordinates into value indices of the family's
    /// union CSC pattern — the positions [`ShiftedPencil::shift_values`]
    /// writes and [`PencilFamily::factor_stamped`]'s stamp closure
    /// mutates. Computed once per plan so the per-iteration Newton
    /// stamping is pure index arithmetic.
    ///
    /// # Errors
    /// [`OpmError::BadArguments`] when a coordinate lies outside the
    /// union pattern (a device touching a position neither `E` nor `A`
    /// stores — GMIN planting at assembly is what rules this out).
    pub fn value_indices(&self, coords: &[(usize, usize)]) -> Result<Vec<usize>, OpmError> {
        let pat = self.pencil.pattern();
        let mut bases = Vec::with_capacity(pat.ncols() + 1);
        let mut base = 0usize;
        for j in 0..pat.ncols() {
            bases.push(base);
            base += pat.col_pattern(j).len();
        }
        bases.push(base);
        coords
            .iter()
            .map(|&(i, j)| {
                if j >= pat.ncols() {
                    return Err(OpmError::BadArguments(format!(
                        "stamp column {j} outside {}-column pencil",
                        pat.ncols()
                    )));
                }
                pat.col_pattern(j)
                    .binary_search(&i)
                    .map(|pos| bases[j] + pos)
                    .map_err(|_| {
                        OpmError::BadArguments(format!(
                            "stamp position ({i}, {j}) outside the pencil pattern"
                        ))
                    })
            })
            .collect()
    }

    /// Factors `σ·E − A − J` where `J` is applied by `stamp` directly on
    /// the shifted value buffer (indices from
    /// [`PencilFamily::value_indices`]) — the Newton iteration matrix.
    /// Numeric-only refactorization against the family's recorded
    /// analysis (the pattern is iteration-invariant because GMIN keeps
    /// every device position stored), with the same pivot-degradation
    /// fallback as [`PencilFamily::factor`]. Books Newton-specific
    /// counters so plans can assert "one symbolic analysis, the rest
    /// numeric" end-to-end.
    ///
    /// # Errors
    /// [`OpmError::SingularPencil`] when the stamped pencil is singular.
    pub fn factor_stamped(
        &mut self,
        sigma: f64,
        stamp: impl FnOnce(&mut [f64]),
    ) -> Result<SparseLu, OpmError> {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.pencil.shift_values(sigma, &mut scratch);
        stamp(&mut scratch);
        let out = self.factor_values(&scratch);
        self.scratch = scratch;
        out
    }

    /// Factors the union pattern with an explicit value buffer (the
    /// numeric half of [`PencilFamily::factor_stamped`]).
    fn factor_values(&mut self, values: &[f64]) -> Result<SparseLu, OpmError> {
        if let Some(sym) = &self.symbolic {
            match SparseLu::refactor(sym, values) {
                Ok(lu) => {
                    self.profile.num_numeric += 1;
                    self.profile.newton_refactors += 1;
                    return Ok(lu);
                }
                Err(SparseError::PivotDegraded(_)) => { /* fresh factor below */ }
                Err(e) => return Err(OpmError::SingularPencil(format!("{e}"))),
            }
        }
        let mut csc = self.pencil.pattern().clone();
        csc.values_mut().copy_from_slice(values);
        if self.symbolic.is_none() {
            let (sym, lu) = SymbolicLu::factor_with(&csc, Some(&self.order), LuOptions::default())
                .map_err(|e| OpmError::SingularPencil(format!("{e}")))?;
            self.symbolic = Some(sym);
            self.profile.num_symbolic += 1;
            let stats = lu.supernode_stats();
            self.profile.num_supernodes = stats.num_supernodes;
            self.profile.supernode_cols = stats.supernode_cols;
            self.profile.dense_tail_cols = stats.dense_tail_cols;
            self.profile.factor_cols = stats.num_cols;
            Ok(lu)
        } else {
            let lu = SparseLu::factor(&csc, Some(&self.order))
                .map_err(|e| OpmError::SingularPencil(format!("{e}")))?;
            self.profile.num_symbolic += 1;
            self.profile.newton_fresh_fallbacks += 1;
            Ok(lu)
        }
    }
}

/// [`factor_pencil`] with the symbolic analysis recorded: the analysis
/// can later be replayed against any pencil sharing the same pattern via
/// [`SparseLu::refactor`] — how windowed multi-term solving re-weights
/// one union pattern per window width at numeric-only cost.
///
/// # Errors
/// As [`factor_pencil`].
pub fn factor_pencil_symbolic(pencil: &CsrMatrix) -> Result<(SymbolicLu, SparseLu), OpmError> {
    let order = rcm(pencil);
    SymbolicLu::factor_with(&pencil.to_csc(), Some(&order), LuOptions::default())
        .map_err(|e| OpmError::SingularPencil(format!("{e}")))
}

/// Builds the multi-term pencil `Σ_k w_k·A_k` from per-term leading
/// weights.
///
/// # Errors
/// [`OpmError::BadArguments`] when `terms` is empty.
pub fn weighted_pencil(
    terms: &[opm_system::Term],
    weights: impl Fn(usize) -> f64,
) -> Result<CsrMatrix, OpmError> {
    let mut pencil: Option<CsrMatrix> = None;
    for (k, term) in terms.iter().enumerate() {
        let w = weights(k);
        pencil = Some(match pencil {
            None => term.matrix.scale(w),
            Some(acc) => acc.lin_comb(1.0, w, &term.matrix),
        });
    }
    pencil.ok_or(OpmError::BadArguments("no terms".into()))
}

/// Memoized pencil factorizations keyed by the power-of-two step
/// exponent — the adaptive linear sweep's factorization cache.
///
/// Backed by a [`PencilFamily`]: the union pattern, RCM ordering and
/// symbolic analysis are shared across the whole step lattice, so every
/// cache *miss* after the first is a numeric-only refactorization.
pub struct FactorCache {
    family: PencilFamily,
    factors: HashMap<i32, SparseLu>,
    hits: usize,
    misses: usize,
}

impl FactorCache {
    /// A cache for pencils `(2/h)·E − A` over the step lattice `h = 2^k`.
    pub fn new(e: &CsrMatrix, a: &CsrMatrix) -> Self {
        FactorCache {
            family: PencilFamily::new(e, a),
            factors: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The factorization for lattice exponent `exp` (step `h = 2^exp`),
    /// computing it at most once.
    ///
    /// # Errors
    /// As [`factor_pencil`].
    pub fn get(&mut self, exp: i32) -> Result<&SparseLu, OpmError> {
        if !self.factors.contains_key(&exp) {
            let h = 2.0f64.powi(exp);
            let lu = self.family.factor(2.0 / h)?;
            self.factors.insert(exp, lu);
            self.misses += 1;
        } else {
            self.hits += 1;
        }
        Ok(&self.factors[&exp])
    }

    /// Number of distinct factorizations performed so far.
    pub fn num_factorizations(&self) -> usize {
        self.family.profile().num_factorizations()
    }

    /// Factorization profile: symbolic/numeric split plus the hit/miss
    /// readout of this cache.
    pub fn profile(&self) -> FactorProfile {
        FactorProfile {
            cache_hits: self.hits,
            cache_misses: self.misses,
            ..self.family.profile()
        }
    }
}

// ---------------------------------------------------------------------------
// Right-hand-side assembly
// ---------------------------------------------------------------------------

/// Accumulates `scale·B·u_j` into `out`, reading input column `j` from a
/// BPF coefficient matrix.
pub fn apply_b(b: &CsrMatrix, u_coeffs: &[Vec<f64>], j: usize, scale: f64, out: &mut [f64]) {
    for i in 0..b.nrows() {
        let mut s = 0.0;
        for (ch, v) in b.row(i) {
            s += v * u_coeffs[ch][j];
        }
        out[i] += scale * s;
    }
}

/// Accumulates `scale·B·u` for an explicit per-channel column `u`.
pub fn apply_b_column(b: &CsrMatrix, u: &[f64], scale: f64, out: &mut [f64]) {
    for i in 0..b.nrows() {
        let mut s = 0.0;
        for (ch, v) in b.row(i) {
            s += v * u[ch];
        }
        out[i] += scale * s;
    }
}

/// Block form of [`apply_b`]: accumulates `scale·B·u` for `lanes`
/// scenarios at once. `u_block[ch*lanes + l]` is channel `ch` of lane
/// `l`; `out` is a row-major `n × lanes` block. One pass over `B`'s
/// sparse structure serves every lane.
///
/// Lanes are processed in fixed-width register panels
/// ([`opm_linalg::panel::LANE_PANEL_WIDTH`]); per lane the accumulation
/// order matches [`apply_b_block_scalar`] exactly, so results are
/// bit-identical. `OPM_NO_PANEL=1` routes to the scalar reference.
pub fn apply_b_block(b: &CsrMatrix, u_block: &[f64], lanes: usize, scale: f64, out: &mut [f64]) {
    if !opm_linalg::panel::lane_panels_enabled() {
        return apply_b_block_scalar(b, u_block, lanes, scale, out);
    }
    #[cfg(target_arch = "x86_64")]
    if opm_linalg::panel::avx_available() {
        // SAFETY: the `avx` target feature was detected on this CPU.
        unsafe { apply_b_panels_avx(b, u_block, lanes, scale, out) };
        return;
    }
    apply_b_panels_body(b, u_block, lanes, scale, out);
}

/// The AVX codegen copy of the panel driver (`avx` only — no `fma`, so
/// the per-lane arithmetic stays bit-identical to the portable copy and
/// the scalar reference).
///
/// # Safety
/// The caller must have verified that the running CPU supports the
/// `avx` target feature (this crate gates every call behind
/// [`opm_linalg::panel::avx_available`]). The body is ordinary safe
/// Rust — the only obligation is the feature check.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn apply_b_panels_avx(
    b: &CsrMatrix,
    u_block: &[f64],
    lanes: usize,
    scale: f64,
    out: &mut [f64],
) {
    apply_b_panels_body(b, u_block, lanes, scale, out);
}

/// The panel sweep (main width plus `4 → 2 → 1` remainder);
/// `#[inline(always)]` so each dispatch copy compiles it with its own
/// target features.
#[inline(always)]
fn apply_b_panels_body(b: &CsrMatrix, u_block: &[f64], lanes: usize, scale: f64, out: &mut [f64]) {
    const W: usize = opm_linalg::panel::LANE_PANEL_WIDTH;
    let mut p0 = 0;
    while p0 + W <= lanes {
        apply_b_panel::<W>(b, u_block, lanes, scale, out, p0);
        p0 += W;
    }
    if p0 + 4 <= lanes {
        apply_b_panel::<4>(b, u_block, lanes, scale, out, p0);
        p0 += 4;
    }
    if p0 + 2 <= lanes {
        apply_b_panel::<2>(b, u_block, lanes, scale, out, p0);
        p0 += 2;
    }
    if p0 < lanes {
        apply_b_panel::<1>(b, u_block, lanes, scale, out, p0);
    }
}

/// The scalar reference implementation of [`apply_b_block`]: one
/// structure pass with a full-width lane loop per entry. The panel path
/// is validated against this bit-for-bit by the `kernel/*` bench records
/// and proptests.
pub fn apply_b_block_scalar(
    b: &CsrMatrix,
    u_block: &[f64],
    lanes: usize,
    scale: f64,
    out: &mut [f64],
) {
    for i in 0..b.nrows() {
        let row = &mut out[i * lanes..(i + 1) * lanes];
        for (ch, v) in b.row(i) {
            let sv = scale * v;
            for (o, u) in row.iter_mut().zip(&u_block[ch * lanes..(ch + 1) * lanes]) {
                *o += sv * u;
            }
        }
    }
}

/// Lanes `p0 .. p0 + W` of the stimulus application, accumulated in a
/// `[f64; W]` register panel per output row.
#[inline(always)]
fn apply_b_panel<const W: usize>(
    b: &CsrMatrix,
    u_block: &[f64],
    lanes: usize,
    scale: f64,
    out: &mut [f64],
    p0: usize,
) {
    for i in 0..b.nrows() {
        let dst = i * lanes + p0;
        let mut acc = [0.0; W];
        acc.copy_from_slice(&out[dst..dst + W]);
        for (ch, v) in b.row(i) {
            let sv = scale * v;
            let src = ch * lanes + p0;
            let us: &[f64; W] = u_block[src..src + W].try_into().unwrap();
            for w in 0..W {
                acc[w] += sv * us[w];
            }
        }
        out[dst..dst + W].copy_from_slice(&acc);
    }
}

// ---------------------------------------------------------------------------
// The column sweep
// ---------------------------------------------------------------------------

/// The multi-RHS generalization of the column sweep: `lanes` scenarios
/// are swept through **one** factorization in a single pass over the
/// columns.
///
/// Storage is lane-interleaved: every column (and the RHS/work scratch)
/// is a row-major `n × lanes` block with the lane values of state `i` at
/// `i*lanes..(i+1)*lanes`. RHS builders assemble all lanes of a column
/// at once, so sparse matrix–vector products ([`CsrMatrix::mul_block_into`]),
/// stimulus application ([`apply_b_block`]) and the triangular solves
/// ([`SparseLu::solve_block_into`]) each traverse their structure once
/// per column instead of once per scenario.
///
/// [`ColumnSweep`] is the `lanes == 1` special case.
pub struct BlockColumnSweep {
    n: usize,
    m: usize,
    lanes: usize,
    columns: Vec<Vec<f64>>,
    /// Leading columns of `columns` that were seeded, not solved
    /// ([`BlockColumnSweep::seed_history`]) — visible to RHS builders,
    /// excluded from the outcome.
    seeded: usize,
    rhs: Vec<f64>,
    /// Scratch block sized `n·lanes`, for matrix–block products inside
    /// RHS builders (avoids per-column allocation in every strategy).
    pub work: Vec<f64>,
    num_solves: usize,
}

impl BlockColumnSweep {
    /// A sweep over `m` columns of an order-`n` system, `lanes`
    /// scenarios wide.
    ///
    /// # Panics
    /// Panics when `lanes == 0`.
    pub fn new(n: usize, m: usize, lanes: usize) -> Self {
        assert!(lanes > 0, "block sweep needs at least one lane");
        BlockColumnSweep {
            n,
            m,
            lanes,
            columns: Vec::with_capacity(m),
            seeded: 0,
            rhs: vec![0.0; n * lanes],
            work: vec![0.0; n * lanes],
            num_solves: 0,
        }
    }

    /// Seeds the sweep with already-solved history columns — the state
    /// carry of a windowed solve: the RHS builders read them at indices
    /// `0..cols.len()` exactly as if this sweep had solved them, but
    /// they are excluded from the outcome and from `num_solves`. The
    /// builder's column index `j` keeps counting from the seed
    /// (`history.len()` at each step), so a time-invariant recurrence
    /// continued across a window boundary is column-for-column identical
    /// to the unbroken sweep.
    ///
    /// # Panics
    /// Panics when called after stepping, or twice, or with a column of
    /// the wrong block size.
    pub fn seed_history(&mut self, cols: Vec<Vec<f64>>) {
        assert!(
            self.columns.is_empty() && self.seeded == 0,
            "seed_history must precede the first step"
        );
        assert!(
            cols.iter().all(|c| c.len() == self.n * self.lanes),
            "seed columns must be n × lanes blocks"
        );
        self.seeded = cols.len();
        self.columns = cols;
        self.columns.reserve(self.m);
    }

    /// Scenario width of the sweep.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Columns solved so far (interleaved blocks — the history the RHS
    /// builder may read).
    pub fn history(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// Runs one column: zeroes the RHS block, lets `build` fill it
    /// (reading the history), block-solves against `lu`, appends and
    /// returns the new interleaved column.
    pub fn step(
        &mut self,
        lu: &SparseLu,
        build: impl FnOnce(&[Vec<f64>], &mut [f64], &mut [f64]),
    ) -> &[f64] {
        self.rhs.iter_mut().for_each(|v| *v = 0.0);
        build(&self.columns, &mut self.rhs, &mut self.work);
        let mut x = vec![0.0; self.n * self.lanes];
        lu.solve_block_into(&self.rhs, &mut x, self.lanes);
        self.num_solves += self.lanes;
        self.columns.push(x);
        self.columns.last().unwrap()
    }

    /// Runs the full sweep: the `m` columns fixed at construction
    /// against one factorization, the per-column RHS block built by
    /// `build(j, history, rhs, work)`. `j` is the index into the
    /// history — it starts past any seeded columns, so seeded and
    /// unseeded sweeps present the same coordinates to the builder.
    pub fn run(
        mut self,
        lu: &SparseLu,
        mut build: impl FnMut(usize, &[Vec<f64>], &mut [f64], &mut [f64]),
    ) -> BlockOutcome {
        for _ in 0..self.m {
            self.step(lu, |history, rhs, work| {
                build(history.len(), history, rhs, work);
            });
        }
        self.into_outcome(1)
    }

    /// Finishes a manually-stepped sweep. Seeded history columns are
    /// dropped: the outcome holds only the columns this sweep solved.
    pub fn into_outcome(mut self, num_factorizations: usize) -> BlockOutcome {
        if self.seeded > 0 {
            self.columns.drain(..self.seeded);
        }
        BlockOutcome {
            columns: self.columns,
            lanes: self.lanes,
            num_solves: self.num_solves,
            num_factorizations,
        }
    }
}

/// Raw multi-lane sweep output: interleaved columns plus counters.
pub struct BlockOutcome {
    /// Solved columns, one interleaved `n × lanes` block per interval.
    pub columns: Vec<Vec<f64>>,
    /// Scenario width.
    pub lanes: usize,
    /// Sparse solves performed (one per lane per column).
    pub num_solves: usize,
    /// Sparse factorizations performed.
    pub num_factorizations: usize,
}

impl BlockOutcome {
    /// De-interleaves into one [`SweepOutcome`] per lane.
    pub fn into_lane_outcomes(self) -> Vec<SweepOutcome> {
        let lanes = self.lanes;
        if lanes == 1 {
            // The interleaved layout degenerates to plain columns: move
            // them instead of element-copying (the one-shot solve path).
            return vec![SweepOutcome {
                columns: self.columns,
                num_solves: self.num_solves,
                num_factorizations: self.num_factorizations,
            }];
        }
        let n = self.columns.first().map_or(0, |c| c.len() / lanes);
        (0..lanes)
            .map(|l| SweepOutcome {
                columns: self
                    .columns
                    .iter()
                    .map(|blk| (0..n).map(|i| blk[i * lanes + l]).collect())
                    .collect(),
                num_solves: self.num_solves / lanes,
                num_factorizations: self.num_factorizations,
            })
            .collect()
    }
}

/// The cached-factorization column sweep at the heart of every OPM
/// solver: for `j = 0..m`, assemble a right-hand side (with read access
/// to every previously solved column — the history/convolution term) and
/// solve it against one shared factorization.
///
/// This is the single-scenario view of [`BlockColumnSweep`]; the engine
/// itself always runs the block form.
pub struct ColumnSweep {
    inner: BlockColumnSweep,
}

impl ColumnSweep {
    /// A sweep over `m` columns of an order-`n` system.
    pub fn new(n: usize, m: usize) -> Self {
        ColumnSweep {
            inner: BlockColumnSweep::new(n, m, 1),
        }
    }

    /// Columns solved so far (the history the RHS builder may read).
    pub fn history(&self) -> &[Vec<f64>] {
        self.inner.history()
    }

    /// Runs one column: zeroes the RHS, lets `build` fill it (reading
    /// the history), solves against `lu`, appends and returns the new
    /// column.
    pub fn step(
        &mut self,
        lu: &SparseLu,
        build: impl FnOnce(&[Vec<f64>], &mut [f64], &mut [f64]),
    ) -> &[f64] {
        self.inner.step(lu, build)
    }

    /// Runs the full sweep: the `m` columns fixed at construction
    /// against one factorization, the per-column RHS built by
    /// `build(j, history, rhs, work)`.
    pub fn run(
        self,
        lu: &SparseLu,
        build: impl FnMut(usize, &[Vec<f64>], &mut [f64], &mut [f64]),
    ) -> SweepOutcome {
        let mut outcomes = self.inner.run(lu, build).into_lane_outcomes();
        outcomes.pop().expect("one lane by construction")
    }

    /// Finishes a manually-stepped sweep.
    pub fn into_outcome(self, num_factorizations: usize) -> SweepOutcome {
        let mut outcomes = self
            .inner
            .into_outcome(num_factorizations)
            .into_lane_outcomes();
        outcomes.pop().expect("one lane by construction")
    }
}

/// Raw sweep output: solved columns plus complexity counters.
pub struct SweepOutcome {
    /// Solved coefficient columns, one per interval.
    pub columns: Vec<Vec<f64>>,
    /// Sparse solves performed.
    pub num_solves: usize,
    /// Sparse factorizations performed.
    pub num_factorizations: usize,
}

impl SweepOutcome {
    /// Adds `x0` to every column (undoes the `z = x − x₀` state shift).
    #[must_use]
    pub fn shifted_by(mut self, x0: &[f64]) -> Self {
        for col in &mut self.columns {
            for (c, v) in col.iter_mut().zip(x0) {
                *c += v;
            }
        }
        self
    }

    /// Assembles an [`OpmResult`] on the uniform grid `m × h`.
    pub fn uniform_result(self, out: &impl OutputMap, t_end: f64) -> OpmResult {
        let m = self.columns.len();
        let h = if m == 0 { 0.0 } else { t_end / m as f64 };
        let outputs = reconstruct_outputs(out, &self.columns);
        OpmResult {
            bounds: (0..=m).map(|k| k as f64 * h).collect(),
            columns: self.columns,
            outputs,
            num_solves: self.num_solves,
            num_factorizations: self.num_factorizations,
        }
    }

    /// Assembles an [`OpmResult`] on an explicit boundary grid.
    pub fn grid_result(self, out: &impl OutputMap, bounds: Vec<f64>) -> OpmResult {
        let outputs = reconstruct_outputs(out, &self.columns);
        OpmResult {
            bounds,
            columns: self.columns,
            outputs,
            num_solves: self.num_solves,
            num_factorizations: self.num_factorizations,
        }
    }
}

// ---------------------------------------------------------------------------
// Output reconstruction
// ---------------------------------------------------------------------------

/// A system that can project a state column onto output channels —
/// implemented by every model type the engine solves.
pub trait OutputMap {
    /// Number of output channels.
    fn num_outputs(&self) -> usize;
    /// Projects one state column through the output selector `C` (or the
    /// identity when the model has none).
    fn output(&self, x: &[f64]) -> Vec<f64>;
}

impl OutputMap for DescriptorSystem {
    fn num_outputs(&self) -> usize {
        DescriptorSystem::num_outputs(self)
    }
    fn output(&self, x: &[f64]) -> Vec<f64> {
        DescriptorSystem::output(self, x)
    }
}

impl OutputMap for MultiTermSystem {
    fn num_outputs(&self) -> usize {
        MultiTermSystem::num_outputs(self)
    }
    fn output(&self, x: &[f64]) -> Vec<f64> {
        MultiTermSystem::output(self, x)
    }
}

/// Projects every solved column onto the output channels:
/// `outputs[o][j]`.
pub fn reconstruct_outputs(out: &impl OutputMap, columns: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let q = out.num_outputs();
    let mut outputs = vec![Vec::with_capacity(columns.len()); q];
    for col in columns {
        for (o, val) in out.output(col).into_iter().enumerate() {
            outputs[o].push(val);
        }
    }
    outputs
}

// ---------------------------------------------------------------------------
// Problem / SolveOptions: the declarative front door
// ---------------------------------------------------------------------------

/// The model being simulated (borrowed, cheap to construct).
#[derive(Clone, Copy)]
enum Model<'a> {
    Linear(&'a DescriptorSystem),
    Fractional(&'a FractionalSystem),
    MultiTerm(&'a MultiTermSystem),
    SecondOrder(&'a SecondOrderSystem),
}

/// How the stimulus is supplied.
#[derive(Clone, Copy)]
enum Inputs<'a> {
    /// Nothing supplied yet (an error at solve time).
    Missing,
    /// Precomputed BPF coefficient matrix `u[ch][j]`.
    Coeffs(&'a [Vec<f64>]),
    /// Waveforms, projected by the engine at the chosen resolution.
    Waveforms(&'a InputSet),
}

/// A complete OPM problem description: model + stimulus + horizon + ICs.
///
/// Build one with [`Problem::linear`] / [`Problem::fractional`] /
/// [`Problem::multiterm`] / [`Problem::second_order`], chain the
/// setters, then call [`Problem::solve`].
#[derive(Clone, Copy)]
pub struct Problem<'a> {
    model: Model<'a>,
    inputs: Inputs<'a>,
    t_end: f64,
    x0: Option<&'a [f64]>,
}

impl<'a> Problem<'a> {
    fn new(model: Model<'a>) -> Self {
        Problem {
            model,
            inputs: Inputs::Missing,
            t_end: 0.0,
            x0: None,
        }
    }

    /// A linear descriptor problem `E ẋ = A x + B u`.
    pub fn linear(sys: &'a DescriptorSystem) -> Self {
        Problem::new(Model::Linear(sys))
    }

    /// A fractional problem `E d^α x = A x + B u`.
    pub fn fractional(fsys: &'a FractionalSystem) -> Self {
        Problem::new(Model::Fractional(fsys))
    }

    /// A multi-term problem `Σ_k A_k d^{α_k} x = B u`.
    pub fn multiterm(mt: &'a MultiTermSystem) -> Self {
        Problem::new(Model::MultiTerm(mt))
    }

    /// A second-order nodal problem `M₂ ẍ + M₁ ẋ + M₀ x = B u̇` (the
    /// engine differentiates the supplied waveforms exactly).
    pub fn second_order(so: &'a SecondOrderSystem) -> Self {
        Problem::new(Model::SecondOrder(so))
    }

    /// Supplies the stimulus as a precomputed BPF coefficient matrix
    /// (`u[ch][j]`, one row per input channel).
    #[must_use]
    pub fn coeffs(mut self, u: &'a [Vec<f64>]) -> Self {
        self.inputs = Inputs::Coeffs(u);
        self
    }

    /// Supplies the stimulus as waveforms; the engine projects them at
    /// the resolution chosen in [`SolveOptions`].
    #[must_use]
    pub fn waveforms(mut self, u: &'a InputSet) -> Self {
        self.inputs = Inputs::Waveforms(u);
        self
    }

    /// Sets the simulation horizon `[0, t_end)`.
    #[must_use]
    pub fn horizon(mut self, t_end: f64) -> Self {
        self.t_end = t_end;
        self
    }

    /// Sets a nonzero initial state (linear problems only; fractional
    /// and multi-term OPM assume zero Caputo initial conditions).
    #[must_use]
    pub fn initial_state(mut self, x0: &'a [f64]) -> Self {
        self.x0 = Some(x0);
        self
    }

    /// Solves the problem with the given options: builds a one-shot
    /// [`crate::SimPlan`] (validate, order, factor) and runs the single
    /// scenario through it. For many scenarios against one system, build
    /// the plan yourself via [`crate::Simulation`] and amortize the
    /// factorization.
    ///
    /// # Errors
    /// [`OpmError::BadArguments`] for inconsistent descriptions (missing
    /// inputs, nonzero ICs on fractional problems, waveform-only
    /// strategies fed coefficients, options that do not apply to the
    /// model, …) and any strategy error.
    pub fn solve(&self, opts: &SolveOptions) -> Result<OpmResult, OpmError> {
        let model = self.to_sim_model();
        if matches!(self.inputs, Inputs::Missing) {
            return Err(OpmError::BadArguments(
                "no stimulus: call .coeffs(..) or .waveforms(..)".into(),
            ));
        }
        // Coefficients carry their own column count; a contradicting
        // `resolution` is a description error, not something to ignore.
        if let (Some(r), Inputs::Coeffs(u)) = (opts.resolution, self.inputs) {
            let mu = u.first().map_or(0, Vec::len);
            if mu != r {
                return Err(OpmError::BadArguments(format!(
                    "option `resolution` ({r}) conflicts with the {mu}-column coefficient \
                     stimulus on the `{}` strategy",
                    model.strategy_name()
                )));
            }
        }
        let m = match crate::session::plan_resolution(&model, opts) {
            Ok(m) => m,
            // No explicit resolution: a coefficient stimulus carries its
            // own column count; waveforms cannot.
            Err(needs_resolution) => match self.inputs {
                Inputs::Coeffs(u) => u.first().map_or(0, Vec::len),
                _ => return Err(needs_resolution),
            },
        };
        let plan = crate::session::SimPlan::prepare(
            std::sync::Arc::new(model),
            opts,
            m,
            self.t_end,
            self.x0,
            Vec::new(),
        )?;
        match self.inputs {
            Inputs::Coeffs(u) => plan.solve_coeffs(u),
            Inputs::Waveforms(ws) => plan.solve(ws),
            Inputs::Missing => unreachable!("rejected above"),
        }
    }

    /// The owned model the one-shot plan is built on (the clone is
    /// O(nnz), dwarfed by the factorization `solve` performs).
    fn to_sim_model(self) -> crate::session::SimModel {
        match self.model {
            Model::Linear(sys) => crate::session::SimModel::Linear(sys.clone()),
            Model::Fractional(fsys) => crate::session::SimModel::Fractional(fsys.clone()),
            Model::MultiTerm(mt) => crate::session::SimModel::MultiTerm(mt.clone()),
            Model::SecondOrder(so) => crate::session::SimModel::SecondOrder(so.clone()),
        }
    }
}

/// Strategy selector for [`SolveOptions::method`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Method {
    /// Pick the fastest correct path (integer orders → finite
    /// recurrence, fractional → convolution).
    #[default]
    Auto,
    /// The finite-history recurrence fast path.
    Recurrence,
    /// The paper's literal alternating-accumulator algorithm (linear
    /// only; kept for cross-validation).
    Accumulator,
    /// The full nilpotent-series convolution path.
    Convolution,
    /// The dense `(Dᵀ⊗E − I⊗A)·vec X` oracle (small problems only).
    Kronecker,
}

/// Solver configuration: resolution, strategy, adaptivity.
#[derive(Clone, Debug, Default)]
pub struct SolveOptions {
    pub(crate) resolution: Option<usize>,
    pub(crate) method: Method,
    pub(crate) adaptive: Option<AdaptiveOpmOptions>,
    pub(crate) step_grid: Option<Vec<f64>>,
}

impl SolveOptions {
    /// Default options: uniform grid, automatic strategy.
    pub fn new() -> Self {
        SolveOptions::default()
    }

    /// Number of uniform intervals `m` (required when the stimulus is
    /// supplied as waveforms).
    #[must_use]
    pub fn resolution(mut self, m: usize) -> Self {
        self.resolution = Some(m);
        self
    }

    /// Forces a particular strategy.
    #[must_use]
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Enables on-the-fly adaptive stepping (linear problems).
    #[must_use]
    pub fn adaptive(mut self, opts: AdaptiveOpmOptions) -> Self {
        self.adaptive = Some(opts);
        self
    }

    /// Solves on an explicit non-uniform step grid (fractional
    /// problems; steps must be pairwise distinct).
    #[must_use]
    pub fn step_grid(mut self, steps: Vec<f64>) -> Self {
        self.step_grid = Some(steps);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_sparse::CooMatrix;
    use opm_waveform::Waveform;

    fn scalar(a: f64) -> DescriptorSystem {
        let mut am = CooMatrix::new(1, 1);
        am.push(0, 0, a);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        DescriptorSystem::new(CsrMatrix::identity(1), am.to_csr(), b.to_csr(), None).unwrap()
    }

    #[test]
    fn problem_linear_equals_direct_call() {
        let sys = scalar(-1.0);
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let m = 64;
        let u = inputs.bpf_matrix(m, 2.0);
        let direct = crate::Simulation::from_system(sys.clone())
            .horizon(2.0)
            .plan(&SolveOptions::new().resolution(m))
            .unwrap()
            .solve_coeffs(&u)
            .unwrap();
        let via_problem = Problem::linear(&sys)
            .waveforms(&inputs)
            .horizon(2.0)
            .solve(&SolveOptions::new().resolution(m))
            .unwrap();
        for j in 0..m {
            assert_eq!(direct.state_coeff(0, j), via_problem.state_coeff(0, j));
        }
    }

    #[test]
    fn all_linear_methods_agree() {
        let sys = scalar(-2.0);
        let inputs = InputSet::new(vec![Waveform::sine(0.0, 1.0, 1.0, 0.0, 0.0)]);
        let m = 16;
        let p = Problem::linear(&sys).waveforms(&inputs).horizon(1.0);
        let base = p.solve(&SolveOptions::new().resolution(m)).unwrap();
        for method in [Method::Accumulator, Method::Convolution, Method::Kronecker] {
            let r = p
                .solve(&SolveOptions::new().resolution(m).method(method))
                .unwrap();
            for j in 0..m {
                assert!(
                    (r.state_coeff(0, j) - base.state_coeff(0, j)).abs() < 1e-9,
                    "{method:?}, column {j}"
                );
            }
        }
    }

    #[test]
    fn fractional_dispatch_and_grid() {
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let p = Problem::fractional(&fsys).waveforms(&inputs).horizon(1.0);
        let uniform = p.solve(&SolveOptions::new().resolution(32)).unwrap();
        assert_eq!(uniform.num_intervals(), 32);
        let steps = crate::adaptive::geometric_grid(1.0, 16, 1.2);
        let graded = p.solve(&SolveOptions::new().step_grid(steps)).unwrap();
        assert_eq!(graded.num_intervals(), 16);
    }

    #[test]
    fn descriptive_errors() {
        let sys = scalar(-1.0);
        // Missing stimulus.
        assert!(Problem::linear(&sys)
            .horizon(1.0)
            .solve(&SolveOptions::new().resolution(8))
            .is_err());
        // Waveforms without resolution.
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        assert!(Problem::linear(&sys)
            .waveforms(&inputs)
            .horizon(1.0)
            .solve(&SolveOptions::new())
            .is_err());
        // Nonzero ICs on a fractional problem.
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        assert!(Problem::fractional(&fsys)
            .waveforms(&inputs)
            .horizon(1.0)
            .initial_state(&[1.0])
            .solve(&SolveOptions::new().resolution(8))
            .is_err());
    }

    #[test]
    fn inapplicable_options_are_rejected_not_ignored() {
        let sys = scalar(-1.0);
        let inputs = InputSet::new(vec![Waveform::Dc(1.0)]);
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        // Nonzero ICs cannot ride the zero-IC strategies.
        for method in [Method::Convolution, Method::Kronecker] {
            assert!(
                Problem::linear(&sys)
                    .waveforms(&inputs)
                    .horizon(1.0)
                    .initial_state(&[2.0])
                    .solve(&SolveOptions::new().resolution(8).method(method))
                    .is_err(),
                "{method:?} must reject nonzero x0"
            );
        }
        // Adaptive stepping is linear-only; step grids are fractional-only.
        assert!(Problem::fractional(&fsys)
            .waveforms(&inputs)
            .horizon(1.0)
            .solve(
                &SolveOptions::new()
                    .resolution(8)
                    .adaptive(AdaptiveOpmOptions::default())
            )
            .is_err());
        assert!(Problem::linear(&sys)
            .waveforms(&inputs)
            .horizon(1.0)
            .solve(&SolveOptions::new().step_grid(vec![0.5, 0.3, 0.2]))
            .is_err());
        // Method overrides cannot combine with adaptive solving.
        assert!(Problem::linear(&sys)
            .waveforms(&inputs)
            .horizon(1.0)
            .solve(
                &SolveOptions::new()
                    .adaptive(AdaptiveOpmOptions::default())
                    .method(Method::Kronecker)
            )
            .is_err());
        // A resolution that contradicts the supplied coefficient matrix.
        let u = vec![vec![1.0; 8]];
        assert!(Problem::linear(&sys)
            .coeffs(&u)
            .horizon(1.0)
            .solve(&SolveOptions::new().resolution(16))
            .is_err());
        // …but a matching or omitted resolution is fine.
        assert!(Problem::linear(&sys)
            .coeffs(&u)
            .horizon(1.0)
            .solve(&SolveOptions::new().resolution(8))
            .is_ok());
    }

    #[test]
    fn factor_cache_memoizes() {
        let sys = scalar(-1.0);
        let mut cache = FactorCache::new(sys.e(), sys.a());
        cache.get(-3).unwrap();
        cache.get(-3).unwrap();
        cache.get(-4).unwrap();
        assert_eq!(cache.num_factorizations(), 2);
        let p = cache.profile();
        assert_eq!((p.cache_hits, p.cache_misses), (1, 2));
        // The second miss reuses the first miss's symbolic analysis.
        assert_eq!((p.num_symbolic, p.num_numeric), (1, 1));
    }

    #[test]
    fn pencil_family_shares_one_symbolic_analysis() {
        use opm_sparse::CooMatrix;
        // A 2-D-grid-shaped pencil large enough for real fill.
        let g = 12;
        let n = g * g;
        let mut e = CooMatrix::new(n, n);
        let mut a = CooMatrix::new(n, n);
        let idx = |r: usize, s: usize| r * g + s;
        for r in 0..g {
            for s in 0..g {
                e.push(idx(r, s), idx(r, s), 1.0);
                a.push(idx(r, s), idx(r, s), -4.0);
                if r + 1 < g {
                    a.push(idx(r, s), idx(r + 1, s), 1.0);
                    a.push(idx(r + 1, s), idx(r, s), 1.0);
                }
                if s + 1 < g {
                    a.push(idx(r, s), idx(r, s + 1), 1.0);
                    a.push(idx(r, s + 1), idx(r, s), 1.0);
                }
            }
        }
        let (e, a) = (e.to_csr(), a.to_csr());
        let mut family = PencilFamily::new(&e, &a);
        let sigmas = [2.0, 5.0, 17.0, 130.0];
        for &s in &sigmas {
            family.factor(s).unwrap();
        }
        let p = family.profile();
        assert_eq!((p.num_symbolic, p.num_numeric), (1, 3));

        // Each factorization must agree with the one-shot path.
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        for &s in &sigmas {
            let via_family = family.factor(s).unwrap().solve(&b);
            let one_shot = factor_shifted_pencil(&e, &a, s).unwrap().solve(&b);
            for i in 0..n {
                assert!(
                    (via_family[i] - one_shot[i]).abs() < 1e-12,
                    "σ={s}, row {i}"
                );
            }
        }
    }

    #[test]
    fn pencil_family_factor_all_is_thread_invariant() {
        let sys = scalar(-3.0);
        let sigmas: Vec<f64> = (1..20).map(|k| 1.5 * k as f64).collect();
        let lus_1 = PencilFamily::new(sys.e(), sys.a())
            .factor_all(&sigmas, 1)
            .unwrap();
        let lus_4 = PencilFamily::new(sys.e(), sys.a())
            .factor_all(&sigmas, 4)
            .unwrap();
        for (l1, l4) in lus_1.iter().zip(&lus_4) {
            assert_eq!(l1.solve(&[1.0]), l4.solve(&[1.0]));
        }
    }

    #[test]
    fn sweep_counts_and_history() {
        let sys = scalar(-1.0);
        let lu = factor_shifted_pencil(sys.e(), sys.a(), 2.0).unwrap();
        let outcome = ColumnSweep::new(1, 4).run(&lu, |j, history, rhs, _| {
            assert_eq!(history.len(), j);
            rhs[0] = 1.0;
        });
        assert_eq!(outcome.columns.len(), 4);
        assert_eq!(outcome.num_solves, 4);
    }
}
