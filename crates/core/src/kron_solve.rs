//! The explicit Kronecker (vec) formulation — paper Eqs. (15), (18), (27).
//!
//! `(Σ_k (D^{α_k})ᵀ ⊗ A_k)·vec(X) = (I_m ⊗ B)·vec(U)` assembled densely
//! and solved with dense LU. Exponential in neither n nor m but `O((nm)³)`
//! — strictly an *oracle*: every fast path in this crate is tested for
//! exact (roundoff-level) agreement against it on small systems.

use crate::engine::{reconstruct_outputs, OutputMap};
use crate::result::OpmResult;
use crate::OpmError;
use opm_basis::bpf::BpfBasis;
use opm_linalg::kron::{kron, unvec, vec_of};
use opm_linalg::{DMatrix, DVector};
use opm_system::{DescriptorSystem, FractionalSystem, MultiTermSystem};

const MAX_DENSE: usize = 4096;

fn u_matrix(u_coeffs: &[Vec<f64>], m: usize) -> DMatrix {
    DMatrix::from_fn(u_coeffs.len(), m, |i, j| u_coeffs[i][j])
}

fn finish(columns_mat: DMatrix, out: &impl OutputMap, t_end: f64) -> OpmResult {
    let m = columns_mat.ncols();
    let n = columns_mat.nrows();
    let h = t_end / m as f64;
    let columns: Vec<Vec<f64>> = (0..m)
        .map(|j| (0..n).map(|i| columns_mat.get(i, j)).collect())
        .collect();
    let outputs = reconstruct_outputs(out, &columns);
    OpmResult {
        bounds: (0..=m).map(|k| k as f64 * h).collect(),
        columns,
        outputs,
        num_solves: 1,
        num_factorizations: 1,
    }
}

/// The dense oracle's stimulus-independent half: the factored Kronecker
/// matrix `Σ_k (D^{α_k})ᵀ ⊗ A_k`, cached by the plan layer so a whole
/// scenario batch pays the `O((nm)³)` factorization once.
pub(crate) struct KronFactors {
    lu: opm_linalg::LuFactors,
    m: usize,
}

/// Assembles and factors the dense vec-form matrix.
///
/// # Errors
/// [`OpmError::BadArguments`] when `n·m` exceeds the dense guard (4096);
/// [`OpmError::SingularPencil`] when the big matrix is singular.
pub(crate) fn kron_prepare(
    mt: &MultiTermSystem,
    m: usize,
    t_end: f64,
) -> Result<KronFactors, OpmError> {
    let n = mt.order();
    if m == 0 {
        return Err(OpmError::BadArguments("input shape mismatch".into()));
    }
    if n * m > MAX_DENSE {
        return Err(OpmError::BadArguments(format!(
            "n·m = {} exceeds the dense oracle guard",
            n * m
        )));
    }
    let basis = BpfBasis::new(m, t_end);
    // Big matrix: Σ_k (D^{α_k})ᵀ ⊗ A_k.
    let mut big = DMatrix::zeros(n * m, n * m);
    for term in mt.terms() {
        let d_alpha = basis.frac_diff_matrix(term.alpha);
        big = big.add(&kron(&d_alpha.transpose(), &term.matrix.to_dense()));
    }
    let lu = big
        .factor_lu()
        .ok_or_else(|| OpmError::SingularPencil("vec-form matrix singular".into()))?;
    Ok(KronFactors { lu, m })
}

/// Applies a prefactored oracle to one stimulus.
///
/// # Errors
/// [`OpmError::BadArguments`] on shape mismatches.
pub(crate) fn kron_solve_prepared(
    mt: &MultiTermSystem,
    factors: &KronFactors,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let m = u_coeffs.first().map_or(0, Vec::len);
    let n = mt.order();
    if m != factors.m || u_coeffs.len() != mt.num_inputs() {
        return Err(OpmError::BadArguments("input shape mismatch".into()));
    }
    // RHS: vec(B·U).
    let bu = mt.b().to_dense().mul_mat(&u_matrix(u_coeffs, m));
    let rhs = vec_of(&bu);
    let x = factors.lu.solve(&DVector::from(rhs.as_slice().to_vec()));
    let xm = unvec(&x, n, m);
    Ok(finish(xm, mt, t_end))
}

/// The fractional equation as a two-term system (shared by the oracle
/// entry point and the plan layer).
pub(crate) fn fractional_as_multiterm(fsys: &FractionalSystem) -> MultiTermSystem {
    use opm_system::Term;
    let sys = fsys.system();
    MultiTermSystem::new(
        vec![
            Term {
                alpha: fsys.alpha(),
                matrix: sys.e().clone(),
            },
            Term {
                alpha: 0.0,
                matrix: sys.a().scale(-1.0),
            },
        ],
        sys.b().clone(),
        sys.c().cloned(),
    )
    .expect("valid by construction")
}

/// Oracle solve of a multi-term system via the dense vec formulation.
///
/// # Errors
/// [`OpmError::BadArguments`] when `n·m` exceeds the dense guard
/// (4096) or shapes mismatch; [`OpmError::SingularPencil`] when the big
/// matrix is singular.
pub fn kron_solve_multiterm(
    mt: &MultiTermSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let m = u_coeffs.first().map_or(0, Vec::len);
    if m == 0 || u_coeffs.len() != mt.num_inputs() {
        return Err(OpmError::BadArguments("input shape mismatch".into()));
    }
    let factors = kron_prepare(mt, m, t_end)?;
    kron_solve_prepared(mt, &factors, u_coeffs, t_end)
}

/// Oracle solve of `E X D = A X + B U` (paper Eq. 15).
///
/// # Errors
/// As [`kron_solve_multiterm`].
pub fn kron_solve_linear(
    sys: &DescriptorSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    kron_solve_multiterm(&MultiTermSystem::from_descriptor(sys), u_coeffs, t_end)
}

/// Oracle solve of the fractional equation (paper Eq. 27).
///
/// # Errors
/// As [`kron_solve_multiterm`].
pub fn kron_solve_fractional(
    fsys: &FractionalSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    kron_solve_multiterm(&fractional_as_multiterm(fsys), u_coeffs, t_end)
}

#[cfg(test)]
mod tests {
    // The strategy's own unit tests exercise the deprecated one-shot
    // wrappers on purpose: they pin the wrapper-to-plan delegation.
    #![allow(deprecated)]
    use super::*;
    use opm_sparse::{CooMatrix, CsrMatrix};
    use opm_waveform::{InputSet, Waveform};

    fn scalar(a: f64) -> DescriptorSystem {
        let mut am = CooMatrix::new(1, 1);
        am.push(0, 0, a);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        DescriptorSystem::new(CsrMatrix::identity(1), am.to_csr(), b.to_csr(), None).unwrap()
    }

    #[test]
    fn linear_fast_path_matches_oracle_exactly() {
        let sys = scalar(-1.3);
        let m = 24;
        let u = InputSet::new(vec![Waveform::pulse(0.0, 1.0, 0.1, 0.05, 0.3, 0.05, 0.0)])
            .bpf_matrix(m, 1.0);
        let oracle = kron_solve_linear(&sys, &u, 1.0).unwrap();
        let fast = crate::linear::solve_linear(&sys, &u, 1.0, &[0.0]).unwrap();
        for j in 0..m {
            assert!(
                (oracle.state_coeff(0, j) - fast.state_coeff(0, j)).abs() < 1e-10,
                "column {j}: {} vs {}",
                oracle.state_coeff(0, j),
                fast.state_coeff(0, j)
            );
        }
    }

    #[test]
    fn fractional_fast_path_matches_oracle_exactly() {
        use opm_system::FractionalSystem;
        let fsys = FractionalSystem::new(0.5, scalar(-1.0)).unwrap();
        let m = 16;
        let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, 1.0);
        let oracle = kron_solve_fractional(&fsys, &u, 1.0).unwrap();
        let fast = crate::fractional::solve_fractional(&fsys, &u, 1.0).unwrap();
        for j in 0..m {
            assert!(
                (oracle.state_coeff(0, j) - fast.state_coeff(0, j)).abs() < 1e-9,
                "column {j}"
            );
        }
    }

    #[test]
    fn multiterm_fast_path_matches_oracle_exactly() {
        use opm_system::{MultiTermSystem, Term};
        let mt = MultiTermSystem::new(
            vec![
                Term {
                    alpha: 2.0,
                    matrix: CsrMatrix::identity(1),
                },
                Term {
                    alpha: 1.0,
                    matrix: CsrMatrix::identity(1).scale(0.3),
                },
                Term {
                    alpha: 0.0,
                    matrix: CsrMatrix::identity(1).scale(2.0),
                },
            ],
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let m = 20;
        let u = InputSet::new(vec![Waveform::step(0.0, 1.0)]).bpf_matrix(m, 4.0);
        let oracle = kron_solve_multiterm(&mt, &u, 4.0).unwrap();
        let fast = crate::multiterm::solve_multiterm(&mt, &u, 4.0).unwrap();
        for j in 0..m {
            assert!(
                (oracle.state_coeff(0, j) - fast.state_coeff(0, j)).abs() < 1e-8,
                "column {j}: {} vs {}",
                oracle.state_coeff(0, j),
                fast.state_coeff(0, j)
            );
        }
    }

    #[test]
    fn tline_oracle_vs_fast_path() {
        // The Table I system at reduced m: n·m = 7·8 = 56 is oracle-sized.
        let model = opm_circuits::tline::FractionalLineSpec::default().assemble();
        let t_end = 2.7e-9;
        let m = 8;
        let u = model.inputs.bpf_matrix(m, t_end);
        let oracle = kron_solve_fractional(&model.system, &u, t_end).unwrap();
        let fast = crate::fractional::solve_fractional(&model.system, &u, t_end).unwrap();
        for j in 0..m {
            for i in 0..7 {
                let a = oracle.state_coeff(i, j);
                let b = fast.state_coeff(i, j);
                assert!(
                    (a - b).abs() < 1e-9 * a.abs().max(1.0),
                    "state {i}, column {j}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn guard_rejects_large_problems() {
        let sys = scalar(-1.0);
        let u = vec![vec![0.0; 5000]];
        assert!(matches!(
            kron_solve_linear(&sys, &u, 1.0),
            Err(OpmError::BadArguments(_))
        ));
    }
}
