//! Error metrics used by the experiment harness, plus the factorization
//! cost profile the session layer reports.

/// Factorization-cost observability for a plan, cache or pencil family:
/// how much symbolic (full pivoted analysis) versus numeric-only
/// (refactorization against a shared [`opm_sparse::SymbolicLu`]) work
/// was performed, and how the adaptive step-lattice cache behaved.
///
/// `num_symbolic + num_numeric` is the total number of factorizations —
/// the quantity the paper's `O(n^β)` term counts; the split shows how
/// much of it the symbolic/numeric reuse converted into the cheaper
/// numeric-only form.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FactorProfile {
    /// Full symbolic analyses (pattern DFS + pivot search + numeric).
    pub num_symbolic: usize,
    /// Numeric-only refactorizations (fixed pivots and fill, no DFS).
    pub num_numeric: usize,
    /// Step-lattice cache lookups served from memory (adaptive plans).
    pub cache_hits: usize,
    /// Step-lattice cache lookups that had to factor (adaptive plans).
    pub cache_misses: usize,
    /// Windows swept by the session layer's windowed/streaming solves
    /// (0 for whole-horizon plans). Each window reuses the same window
    /// pencil factorization, so this counter growing while
    /// `num_symbolic + num_numeric` stays flat *is* the long-horizon
    /// reuse invariant.
    pub num_windows: usize,
    /// Supernodes (runs of ≥ 2 consecutive columns with identical
    /// elimination reach) in the plan's reference factorization — the
    /// structure the supernodal dense tail exploits. Reported by
    /// pencil-family-backed plans (linear/fractional/adaptive); 0 where
    /// no sparse factor statistics were captured.
    pub num_supernodes: usize,
    /// Columns covered by those supernodes.
    pub supernode_cols: usize,
    /// Width of the supernodal dense tail the block solves use (0: none
    /// qualified under [`opm_sparse::lu::LuOptions::supernode_threshold`]).
    pub dense_tail_cols: usize,
    /// Total pivotal columns of the reference factorization (the
    /// denominator for the coverage ratios; 0 when not captured).
    pub factor_cols: usize,
    /// Newton iterations performed by `solve_newton` /
    /// `solve_newton_windowed` (one per column on linear netlists —
    /// those converge in a single iteration by construction).
    pub newton_iters: usize,
    /// Numeric-only refactorizations performed *inside* Newton
    /// iterations (each also counts in [`FactorProfile::num_numeric`]).
    /// Per-iteration cost staying numeric-refactor-only means
    /// `num_symbolic` stays at 1 while this grows.
    pub newton_refactors: usize,
    /// Newton refactorizations that degraded past the pivot threshold
    /// and fell back to a fresh pivoted factorization (each also counts
    /// in [`FactorProfile::num_symbolic`]). 0 on well-scaled circuits.
    pub newton_fresh_fallbacks: usize,
}

impl FactorProfile {
    /// Total factorizations performed (symbolic + numeric).
    pub fn num_factorizations(&self) -> usize {
        self.num_symbolic + self.num_numeric
    }

    /// Fraction of factor columns covered by supernodes (0.0 when no
    /// factor statistics were captured).
    pub fn supernode_coverage(&self) -> f64 {
        if self.factor_cols == 0 {
            0.0
        } else {
            self.supernode_cols as f64 / self.factor_cols as f64
        }
    }

    /// Fraction of factor columns solved through the supernodal dense
    /// tail (0.0 when no factor statistics were captured).
    pub fn dense_tail_coverage(&self) -> f64 {
        if self.factor_cols == 0 {
            0.0
        } else {
            self.dense_tail_cols as f64 / self.factor_cols as f64
        }
    }

    /// The JSON shape shared by `opm-serve`'s `/metrics` endpoint and
    /// the bench bins' `BENCH_*.json` artifacts.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let int = |v: usize| Json::Int(v as i64);
        Json::Obj(vec![
            ("num_symbolic".into(), int(self.num_symbolic)),
            ("num_numeric".into(), int(self.num_numeric)),
            ("cache_hits".into(), int(self.cache_hits)),
            ("cache_misses".into(), int(self.cache_misses)),
            ("num_windows".into(), int(self.num_windows)),
            ("num_supernodes".into(), int(self.num_supernodes)),
            ("supernode_cols".into(), int(self.supernode_cols)),
            ("dense_tail_cols".into(), int(self.dense_tail_cols)),
            ("factor_cols".into(), int(self.factor_cols)),
            ("newton_iters".into(), int(self.newton_iters)),
            ("newton_refactors".into(), int(self.newton_refactors)),
            (
                "newton_fresh_fallbacks".into(),
                int(self.newton_fresh_fallbacks),
            ),
        ])
    }
}

/// The paper's Eq. (30) relative error in dB:
/// `err = 20·log₁₀(‖y_test − y_ref‖₂ / ‖y_ref‖₂)`.
///
/// Note the paper normalizes by the *OPM* waveform and measures the FFT
/// baselines against it; pass OPM as `reference` to reproduce Table I.
///
/// # Panics
/// Panics on length mismatch or an all-zero reference.
pub fn relative_error_db(test: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(test.len(), reference.len(), "series length mismatch");
    let diff: f64 = test
        .iter()
        .zip(reference)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let norm: f64 = reference.iter().map(|b| b * b).sum();
    assert!(norm > 0.0, "reference norm is zero");
    20.0 * (diff.sqrt() / norm.sqrt()).log10()
}

/// Stacked multi-channel version of [`relative_error_db`] (concatenates
/// all channels into one vector, as the paper's `‖y‖₂` over `y ∈ R²`).
pub fn relative_error_db_multi(test: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert_eq!(test.len(), reference.len(), "channel count mismatch");
    let mut diff = 0.0;
    let mut norm = 0.0;
    for (t, r) in test.iter().zip(reference) {
        assert_eq!(t.len(), r.len(), "series length mismatch");
        for (a, b) in t.iter().zip(r) {
            diff += (a - b) * (a - b);
            norm += b * b;
        }
    }
    assert!(norm > 0.0, "reference norm is zero");
    20.0 * (diff.sqrt() / norm.sqrt()).log10()
}

/// Maximum absolute deviation.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square deviation.
pub fn rms_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series length mismatch");
    let s: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (s / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_scale_sanity() {
        let reference = vec![1.0, 0.0, 0.0];
        // 10% error ⇒ −20 dB.
        let test = vec![1.1, 0.0, 0.0];
        assert!((relative_error_db(&test, &reference) + 20.0).abs() < 1e-12);
        // 1% ⇒ −40 dB.
        let test = vec![1.01, 0.0, 0.0];
        assert!((relative_error_db(&test, &reference) + 40.0).abs() < 1e-10);
    }

    #[test]
    fn multi_channel_stacks() {
        let r = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let t = vec![vec![1.0, 0.1], vec![0.0, 1.0]];
        // ‖diff‖ = 0.1, ‖ref‖ = √2 ⇒ 20·log10(0.1/√2).
        let want = 20.0 * (0.1f64 / 2.0f64.sqrt()).log10();
        assert!((relative_error_db_multi(&t, &r) - want).abs() < 1e-12);
    }

    #[test]
    fn simple_diffs() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[0.5, 2.5]), 0.5);
        assert!((rms_diff(&[1.0, 1.0], &[0.0, 0.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        relative_error_db(&[1.0], &[1.0, 2.0]);
    }
}
