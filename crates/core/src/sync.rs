//! Sync-primitive abstraction for the load-bearing concurrency
//! protocols, so `opm-verify` can model-check the *same* code paths the
//! production build runs.
//!
//! The engine's concurrency guarantees — N racing requests factor
//! exactly once, a panicked build wakes every waiter, cancellation is
//! visible across clones — live in three small protocols: the
//! [`crate::gate::GateCache`] single-flight build coordinator, its
//! [`crate::latch::Latch`] rendezvous, and
//! [`crate::cancel::CancelToken`]. Each is written against the traits
//! in this module rather than against `std::sync` directly:
//!
//! - [`Monitor`] — a mutex + condvar pair operated through closures
//!   (lock-run-unlock, wait-until-predicate, mutate-and-notify). The
//!   closure shape keeps lock/unlock pairing and the wait-loop
//!   discipline (predicate re-checked under the lock after every wake,
//!   so spurious wakeups are harmless by construction) in ONE place per
//!   implementation instead of at every call site.
//! - [`MonitorFamily`] — the type-level factory that picks a monitor
//!   implementation, so a protocol generic over `F: MonitorFamily`
//!   runs identically on [`StdSync`] in production and on
//!   `opm_verify::sync::ShimSync` under the deterministic-schedule
//!   model checker.
//! - [`CancelFlag`] — the shared boolean a [`crate::cancel::CancelToken`]
//!   raises; [`DeadlineSource`] — its (wall-clock in production,
//!   virtual under the checker) deadline.
//!
//! The std implementations here are the production defaults and keep
//! PR 8's poison discipline: every `Mutex::lock` recovers from
//! poisoning via [`PoisonError::into_inner`], because each guarded
//! state in this workspace is structurally valid at every await-free
//! step — a panicking holder cannot leave it half-updated in a way a
//! later reader would misread. (The in-tree lint `opm-verify -- lint`
//! bans bare `lock().unwrap()` workspace-wide for the same reason.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// A mutex + condvar pair driven through closures.
///
/// All three methods run their closure with the lock held. Implementors
/// must guarantee:
///
/// - [`Monitor::with`] — plain lock-run-unlock mutual exclusion.
/// - [`Monitor::wait_until`] — the predicate is evaluated under the
///   lock; when it returns `None` the monitor atomically releases the
///   lock and sleeps until a notification, then re-evaluates. Callers
///   therefore never observe a lost wakeup *if* every state change that
///   could flip the predicate happens inside [`Monitor::notify_with`].
/// - [`Monitor::notify_with`] — runs the mutation under the lock, then
///   wakes every current [`Monitor::wait_until`] sleeper before
///   returning.
pub trait Monitor<T>: Send + Sync {
    /// Runs `f` with exclusive access to the guarded state.
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R;

    /// Blocks until `pred` returns `Some`, re-evaluating under the lock
    /// after every notification (and after any spurious wakeup).
    fn wait_until<R>(&self, pred: impl FnMut(&mut T) -> Option<R>) -> R;

    /// Runs `f` under the lock, then wakes every sleeping
    /// [`Monitor::wait_until`] caller.
    fn notify_with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R;
}

/// Type-level choice of [`Monitor`] implementation.
///
/// Protocol code takes `F: MonitorFamily` and allocates its monitors
/// through [`MonitorFamily::monitor`]; the production instantiation is
/// [`StdSync`], the model-checked one is `opm_verify`'s shim family.
pub trait MonitorFamily: 'static {
    /// The monitor type this family produces for state `T`.
    type Monitor<T: Send + 'static>: Monitor<T>;

    /// A fresh monitor guarding `init`.
    fn monitor<T: Send + 'static>(init: T) -> Self::Monitor<T>;
}

/// The production family: [`StdMonitor`] over `std::sync`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdSync;

impl MonitorFamily for StdSync {
    type Monitor<T: Send + 'static> = StdMonitor<T>;

    fn monitor<T: Send + 'static>(init: T) -> StdMonitor<T> {
        StdMonitor {
            state: Mutex::new(init),
            cv: Condvar::new(),
        }
    }
}

/// `std::sync::{Mutex, Condvar}` monitor with poison recovery (see the
/// module docs for why recovery is sound for every state guarded here).
#[derive(Debug, Default)]
pub struct StdMonitor<T> {
    state: Mutex<T>,
    cv: Condvar,
}

impl<T: Send> Monitor<T> for StdMonitor<T> {
    fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut g)
    }

    fn wait_until<R>(&self, mut pred: impl FnMut(&mut T) -> Option<R>) -> R {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = pred(&mut g) {
                return r;
            }
            g = self.cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn notify_with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let r = f(&mut g);
        self.cv.notify_all();
        r
    }
}

/// The shared cancelled/not-cancelled bit behind
/// [`crate::cancel::CancelToken`]: set-once, monotone (once raised it
/// stays raised), visible to every holder.
pub trait CancelFlag: Send + Sync + 'static {
    /// Raises the flag (idempotent).
    fn set(&self);

    /// Whether the flag has been raised.
    fn get(&self) -> bool;
}

/// Production [`CancelFlag`]: a `SeqCst` [`AtomicBool`].
#[derive(Debug, Default)]
pub struct AtomicCancelFlag(AtomicBool);

impl CancelFlag for AtomicCancelFlag {
    fn set(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    fn get(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A deadline a [`crate::cancel::CancelCore`] polls. Implementations
/// must be monotone: once [`DeadlineSource::expired`] returns `true` it
/// returns `true` forever (wall clocks and the checker's virtual clock
/// both only move forward).
pub trait DeadlineSource: Send + Sync + 'static {
    /// Whether the deadline has passed.
    fn expired(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn monitor_with_and_notify() {
        let m = StdSync::monitor(0u32);
        assert_eq!(m.with(|v| *v), 0);
        m.notify_with(|v| *v = 7);
        assert_eq!(m.with(|v| *v), 7);
    }

    #[test]
    fn wait_until_sees_notify_from_another_thread() {
        let m = Arc::new(StdSync::monitor(false));
        let waiter = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || m.wait_until(|v| if *v { Some(42) } else { None }))
        };
        // Even if the notify lands before the waiter sleeps, wait_until's
        // under-the-lock predicate check must not lose it.
        m.notify_with(|v| *v = true);
        assert_eq!(waiter.join().unwrap(), 42);
    }

    #[test]
    fn cancel_flag_is_monotone() {
        let f = AtomicCancelFlag::default();
        assert!(!f.get());
        f.set();
        f.set();
        assert!(f.get());
    }
}
