//! A one-shot resolve/wait rendezvous, generic over sync primitives.
//!
//! This is the latch [`crate::gate::GateCache`] parks same-key racers
//! on while one of them builds: the builder calls [`Latch::resolve`]
//! exactly once, every waiter blocks in [`Latch::wait`] until then and
//! receives a clone of the outcome. Because it is generic over
//! [`MonitorFamily`], the *same* implementation runs on
//! [`crate::sync::StdSync`] in production and under `opm-verify`'s
//! deterministic scheduler, where the model checker proves the
//! protocol-level properties the plan cache depends on:
//!
//! - **No lost wakeup** — a resolve that lands before a waiter sleeps
//!   is still observed, because the outcome check and the sleep are
//!   atomic under the monitor lock ([`Monitor::wait_until`]).
//! - **Every waiter wakes** — resolve notifies all sleepers, and any
//!   waiter arriving later returns immediately from the stored outcome.

use crate::sync::{Monitor, MonitorFamily};

/// A one-shot rendezvous: resolved exactly once, waited on by any
/// number of threads, each receiving a clone of the outcome.
pub struct Latch<T, F>
where
    T: Clone + Send + 'static,
    F: MonitorFamily,
{
    done: F::Monitor<Option<T>>,
}

impl<T, F> Default for Latch<T, F>
where
    T: Clone + Send + 'static,
    F: MonitorFamily,
{
    fn default() -> Self {
        Latch::new()
    }
}

impl<T, F> Latch<T, F>
where
    T: Clone + Send + 'static,
    F: MonitorFamily,
{
    /// An unresolved latch.
    pub fn new() -> Self {
        Latch {
            done: F::monitor(None),
        }
    }

    /// Publishes the outcome and wakes every waiter. Calling this more
    /// than once keeps the *first* outcome (waiters may already have
    /// observed it; changing it would hand different callers different
    /// results).
    pub fn resolve(&self, outcome: T) {
        self.done.notify_with(|slot| {
            if slot.is_none() {
                *slot = Some(outcome);
            }
        });
    }

    /// Blocks until [`Latch::resolve`], returning a clone of the
    /// outcome (immediately, if already resolved).
    pub fn wait(&self) -> T {
        self.done.wait_until(|slot| slot.clone())
    }

    /// The outcome if already resolved, without blocking.
    pub fn try_get(&self) -> Option<T> {
        self.done.with(|slot| slot.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::StdSync;
    use std::sync::Arc;

    #[test]
    fn wait_after_resolve_returns_immediately() {
        let latch: Latch<u32, StdSync> = Latch::new();
        assert_eq!(latch.try_get(), None);
        latch.resolve(9);
        assert_eq!(latch.wait(), 9);
        assert_eq!(latch.try_get(), Some(9));
    }

    #[test]
    fn first_resolve_wins() {
        let latch: Latch<u32, StdSync> = Latch::new();
        latch.resolve(1);
        latch.resolve(2);
        assert_eq!(latch.wait(), 1);
    }

    #[test]
    fn all_waiters_receive_the_outcome() {
        let latch: Arc<Latch<String, StdSync>> = Arc::new(Latch::new());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let latch = Arc::clone(&latch);
                std::thread::spawn(move || latch.wait())
            })
            .collect();
        latch.resolve("done".to_string());
        for w in waiters {
            assert_eq!(w.join().unwrap(), "done");
        }
    }
}
