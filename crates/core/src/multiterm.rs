//! OPM for multi-term systems `Σ_k A_k·d^{α_k} x = B·u`.
//!
//! Covers the paper's "high-order differential systems" (§IV) — including
//! damped ones like the Table II second-order power-grid model
//! `C ẍ + G ẋ + Γ x = B u̇` — and incommensurate fractional mixtures.
//!
//! Two execution paths:
//!
//! - **Integer orders** (`α_k ∈ N`, fast path): right-multiplying the
//!   column equation by `(1 + Q)^K` (K = max order) turns every term's
//!   symbol into the *finite* polynomial
//!   `(2/h)^{α_k}·(1−q)^{α_k}·(1+q)^{K−α_k}` of degree `K`, so each
//!   column needs only the last `K` columns: `O(n^β m)` overall — the
//!   same cost class as the linear solver (for K = 1 it *is* the linear
//!   solver's trapezoidal recurrence).
//! - **Fractional orders** (general path): per-term series convolution,
//!   `O(n^β m + n m²)`, the paper's fractional complexity.

use crate::engine::{
    apply_b, factor_pencil, validate_coeff_inputs, validate_horizon, weighted_pencil, ColumnSweep,
};
use crate::result::OpmResult;
use crate::OpmError;
use opm_basis::series::tustin_frac_coeffs;
use opm_fracnum::binomial::binomial_series;
use opm_system::{DescriptorSystem, MultiTermSystem};

/// Solves the multi-term system over `[0, t_end)` (zero initial
/// conditions), dispatching to the integer fast path when possible.
///
/// # Errors
/// [`OpmError::SingularPencil`] / [`OpmError::BadArguments`].
pub fn solve_multiterm(
    mt: &MultiTermSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let all_integer = mt
        .terms()
        .iter()
        .all(|t| t.alpha.fract() == 0.0 && t.alpha <= 16.0);
    if all_integer {
        solve_multiterm_recurrence(mt, u_coeffs, t_end)
    } else {
        solve_multiterm_convolution(mt, u_coeffs, t_end)
    }
}

/// Integer-order fast path (documented above). Exposed for ablation
/// benches; [`solve_multiterm`] selects it automatically.
///
/// # Errors
/// As [`solve_multiterm`]; additionally rejects non-integer orders.
pub fn solve_multiterm_recurrence(
    mt: &MultiTermSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let m = validate_coeff_inputs(mt.num_inputs(), u_coeffs)?;
    validate_horizon(t_end)?;
    for t in mt.terms() {
        if t.alpha.fract() != 0.0 {
            return Err(OpmError::BadArguments(format!(
                "non-integer order {} in recurrence path",
                t.alpha
            )));
        }
    }
    let n = mt.order();
    let h = t_end / m as f64;
    let kmax = mt.max_order() as usize;

    // Per-term finite polynomials p^{(k)} of degree K.
    let mut polys: Vec<Vec<f64>> = Vec::with_capacity(mt.terms().len());
    for term in mt.terms() {
        let ak = term.alpha as usize;
        let scale = (2.0 / h).powi(ak as i32);
        // (1−q)^{ak}: alternating binomials; (1+q)^{K−ak}: binomials.
        let minus: Vec<f64> = binomial_series(ak as f64, ak + 1)
            .into_iter()
            .enumerate()
            .map(|(i, c)| if i % 2 == 0 { c } else { -c })
            .collect();
        let plus = binomial_series((kmax - ak) as f64, kmax - ak + 1);
        let mut p = vec![0.0; kmax + 1];
        for (i, &a) in minus.iter().enumerate() {
            for (j2, &b) in plus.iter().enumerate() {
                p[i + j2] += scale * a * b;
            }
        }
        polys.push(p);
    }
    // RHS binomial weights (1+q)^K.
    let bw = binomial_series(kmax as f64, kmax + 1);

    // Pencil: Σ_k p^{(k)}₀·A_k.
    let pencil = weighted_pencil(mt.terms(), |k| polys[k][0])?;
    let lu = factor_pencil(&pencil)?;

    let mut acc = vec![0.0; n];
    let outcome = ColumnSweep::new(n, m).run(&lu, |j, history, rhs, work| {
        for (i, &w) in bw.iter().enumerate() {
            if i <= j {
                apply_b(mt.b(), u_coeffs, j - i, w, rhs);
            }
        }
        for (term, p) in mt.terms().iter().zip(&polys) {
            acc.iter_mut().for_each(|v| *v = 0.0);
            let mut any = false;
            for (i, &pi) in p.iter().enumerate().skip(1) {
                if pi != 0.0 && i <= j {
                    any = true;
                    for (a, x) in acc.iter_mut().zip(&history[j - i]) {
                        *a += pi * x;
                    }
                }
            }
            if any {
                term.matrix.mul_vec_into(&acc, work);
                for (r, w) in rhs.iter_mut().zip(work.iter()) {
                    *r -= w;
                }
            }
        }
    });
    Ok(outcome.uniform_result(mt, t_end))
}

/// General path: per-term nilpotent-series convolution. Works for any
/// non-negative orders; `O(n^β m + #terms·n·m²)`.
///
/// # Errors
/// As [`solve_multiterm`].
pub fn solve_multiterm_convolution(
    mt: &MultiTermSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let m = validate_coeff_inputs(mt.num_inputs(), u_coeffs)?;
    validate_horizon(t_end)?;
    let n = mt.order();
    let h = t_end / m as f64;

    // ρ^{(k)} series for every term (α = 0 ⇒ [1, 0, 0, …]).
    let series: Vec<Vec<f64>> = mt
        .terms()
        .iter()
        .map(|term| {
            let scale = (2.0 / h).powf(term.alpha);
            tustin_frac_coeffs(term.alpha, m)
                .into_iter()
                .map(|c| scale * c)
                .collect()
        })
        .collect();

    let pencil = weighted_pencil(mt.terms(), |k| series[k][0])?;
    let lu = factor_pencil(&pencil)?;

    let mut conv = vec![0.0; n];
    let outcome = ColumnSweep::new(n, m).run(&lu, |j, history, rhs, work| {
        apply_b(mt.b(), u_coeffs, j, 1.0, rhs);
        for (term, rho) in mt.terms().iter().zip(&series) {
            if term.alpha == 0.0 {
                continue; // ρ = e₀: no history contribution
            }
            conv.iter_mut().for_each(|v| *v = 0.0);
            for k in 1..=j {
                let r = rho[k];
                if r == 0.0 {
                    continue;
                }
                for (c, x) in conv.iter_mut().zip(&history[j - k]) {
                    *c += r * x;
                }
            }
            term.matrix.mul_vec_into(&conv, work);
            for (r, w) in rhs.iter_mut().zip(work.iter()) {
                *r -= w;
            }
        }
    });
    Ok(outcome.uniform_result(mt, t_end))
}

/// Convenience: runs a plain descriptor system through the multi-term
/// machinery (used by tests to show the K = 1 fast path *is* the linear
/// solver).
pub fn solve_descriptor_as_multiterm(
    sys: &DescriptorSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    validate_coeff_inputs(sys.num_inputs(), u_coeffs)?;
    solve_multiterm(&MultiTermSystem::from_descriptor(sys), u_coeffs, t_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opm_sparse::{CooMatrix, CsrMatrix};
    use opm_system::{SecondOrderSystem, Term};
    use opm_waveform::{InputSet, Waveform};

    fn eye_term(alpha: f64) -> Term {
        Term {
            alpha,
            matrix: CsrMatrix::identity(1),
        }
    }

    fn scaled_term(alpha: f64, k: f64) -> Term {
        Term {
            alpha,
            matrix: CsrMatrix::identity(1).scale(k),
        }
    }

    #[test]
    fn k1_fast_path_equals_linear_solver() {
        let mut a = CooMatrix::new(1, 1);
        a.push(0, 0, -1.7);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        let sys =
            DescriptorSystem::new(CsrMatrix::identity(1), a.to_csr(), b.to_csr(), None).unwrap();
        let m = 64;
        let u = InputSet::new(vec![Waveform::sine(0.2, 1.0, 1.0, 0.0, 0.0)]).bpf_matrix(m, 2.0);
        let via_mt = solve_descriptor_as_multiterm(&sys, &u, 2.0).unwrap();
        let via_lin = crate::linear::solve_linear(&sys, &u, 2.0, &[0.0]).unwrap();
        for j in 0..m {
            assert!(
                (via_mt.state_coeff(0, j) - via_lin.state_coeff(0, j)).abs() < 1e-10,
                "column {j}"
            );
        }
    }

    #[test]
    fn recurrence_and_convolution_paths_agree() {
        // Damped oscillator: ẍ + 0.4ẋ + 4x = u.
        let mt = MultiTermSystem::new(
            vec![eye_term(2.0), scaled_term(1.0, 0.4), scaled_term(0.0, 4.0)],
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let m = 96;
        let u = InputSet::new(vec![Waveform::step(0.0, 1.0)]).bpf_matrix(m, 6.0);
        let fast = solve_multiterm_recurrence(&mt, &u, 6.0).unwrap();
        let slow = solve_multiterm_convolution(&mt, &u, 6.0).unwrap();
        for j in 0..m {
            assert!(
                (fast.state_coeff(0, j) - slow.state_coeff(0, j)).abs() < 1e-8,
                "column {j}: {} vs {}",
                fast.state_coeff(0, j),
                slow.state_coeff(0, j)
            );
        }
    }

    #[test]
    fn damped_oscillator_matches_companion_reference() {
        let omega2 = 4.0;
        let zeta_term = 0.4;
        let s = SecondOrderSystem::new(
            CsrMatrix::identity(1),
            CsrMatrix::identity(1).scale(zeta_term),
            CsrMatrix::identity(1).scale(omega2),
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let m = 1024;
        let t_end = 8.0;
        let u_set = InputSet::new(vec![Waveform::step(0.0, 1.0)]);
        let u = u_set.bpf_matrix(m, t_end);
        let opm = solve_multiterm(&s.to_multiterm(), &u, t_end).unwrap();
        let reference =
            opm_transient::expm_reference(&s.to_companion(), &u_set, t_end, m, &[0.0, 0.0])
                .unwrap();
        // Compare OPM midpoint coefficients against reference endpoint
        // averages (both second-order accurate representations).
        let mut worst = 0.0f64;
        for j in 1..m {
            let ref_mid = 0.5 * (reference.outputs[0][j - 1] + reference.outputs[0][j]);
            worst = worst.max((opm.state_coeff(0, j) - ref_mid).abs());
        }
        assert!(worst < 5e-4, "worst deviation {worst}");
    }

    #[test]
    fn single_fractional_term_matches_fractional_solver() {
        use opm_system::FractionalSystem;
        let lambda = -1.0;
        let mt = MultiTermSystem::new(
            vec![eye_term(0.5), scaled_term(0.0, -lambda)],
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let mut a = CooMatrix::new(1, 1);
        a.push(0, 0, lambda);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        let fsys = FractionalSystem::new(
            0.5,
            DescriptorSystem::new(CsrMatrix::identity(1), a.to_csr(), b.to_csr(), None).unwrap(),
        )
        .unwrap();
        let m = 128;
        let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, 2.0);
        let via_mt = solve_multiterm(&mt, &u, 2.0).unwrap();
        let via_frac = crate::fractional::solve_fractional(&fsys, &u, 2.0).unwrap();
        for j in 0..m {
            assert!(
                (via_mt.state_coeff(0, j) - via_frac.state_coeff(0, j)).abs() < 1e-10,
                "column {j}"
            );
        }
    }

    #[test]
    fn incommensurate_orders_run_and_stay_bounded() {
        // d^{1.5}x + d^{0.5}x + x = u — a genuine multi-term FDE.
        let mt = MultiTermSystem::new(
            vec![eye_term(1.5), eye_term(0.5), eye_term(0.0)],
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let m = 128;
        let u = InputSet::new(vec![Waveform::step(0.0, 1.0)]).bpf_matrix(m, 10.0);
        let r = solve_multiterm(&mt, &u, 10.0).unwrap();
        for j in 0..m {
            let v = r.state_coeff(0, j);
            assert!(v.is_finite() && v.abs() < 3.0, "column {j}: {v}");
        }
        // Must settle toward the static gain 1.
        assert!((r.state_coeff(0, m - 1) - 1.0).abs() < 0.2);
    }

    #[test]
    fn recurrence_path_rejects_fractional() {
        let mt = MultiTermSystem::new(
            vec![eye_term(0.5), eye_term(0.0)],
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let u = vec![vec![1.0; 8]];
        assert!(solve_multiterm_recurrence(&mt, &u, 1.0).is_err());
    }
}
