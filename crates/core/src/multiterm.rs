//! OPM for multi-term systems `Σ_k A_k·d^{α_k} x = B·u`.
//!
//! Covers the paper's "high-order differential systems" (§IV) — including
//! damped ones like the Table II second-order power-grid model
//! `C ẍ + G ẋ + Γ x = B u̇` — and incommensurate fractional mixtures.
//!
//! Two execution paths:
//!
//! - **Integer orders** (`α_k ∈ N`, fast path): right-multiplying the
//!   column equation by `(1 + Q)^K` (K = max order) turns every term's
//!   symbol into the *finite* polynomial
//!   `(2/h)^{α_k}·(1−q)^{α_k}·(1+q)^{K−α_k}` of degree `K`, so each
//!   column needs only the last `K` columns: `O(n^β m)` overall — the
//!   same cost class as the linear solver (for K = 1 it *is* the linear
//!   solver's trapezoidal recurrence).
//! - **Fractional orders** (general path): per-term series convolution,
//!   `O(n^β m + n m²)`, the paper's fractional complexity.

use crate::engine::validate_coeff_inputs;
use crate::result::OpmResult;
use crate::session::{MtSelect, SimPlan};
use crate::OpmError;
use opm_system::{DescriptorSystem, MultiTermSystem};

/// Solves the multi-term system over `[0, t_end)` (zero initial
/// conditions), dispatching to the integer fast path when possible. A
/// thin one-shot wrapper over the plan layer ([`crate::session`]); for
/// repeated solves, build a [`crate::Simulation`] plan and reuse its
/// factorization.
///
/// # Errors
/// [`OpmError::SingularPencil`] / [`OpmError::BadArguments`].
#[deprecated(note = "use Simulation::plan")]
pub fn solve_multiterm(
    mt: &MultiTermSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let m = validate_coeff_inputs(mt.num_inputs(), u_coeffs)?;
    SimPlan::for_multiterm(mt, m, t_end, &MtSelect::Auto)?.solve_coeffs(u_coeffs)
}

/// Integer-order fast path (documented above). Exposed for ablation
/// benches; [`solve_multiterm`] selects it automatically.
///
/// # Errors
/// As [`solve_multiterm`]; additionally rejects non-integer orders.
#[deprecated(note = "use Simulation::plan")]
pub fn solve_multiterm_recurrence(
    mt: &MultiTermSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let m = validate_coeff_inputs(mt.num_inputs(), u_coeffs)?;
    SimPlan::for_multiterm(mt, m, t_end, &MtSelect::Recurrence)?.solve_coeffs(u_coeffs)
}

/// General path: per-term nilpotent-series convolution. Works for any
/// non-negative orders; `O(n^β m + #terms·n·m²)`.
///
/// # Errors
/// As [`solve_multiterm`].
#[deprecated(note = "use Simulation::plan")]
pub fn solve_multiterm_convolution(
    mt: &MultiTermSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let m = validate_coeff_inputs(mt.num_inputs(), u_coeffs)?;
    SimPlan::for_multiterm(mt, m, t_end, &MtSelect::Convolution)?.solve_coeffs(u_coeffs)
}

/// Convenience: runs a plain descriptor system through the multi-term
/// machinery (used by tests to show the K = 1 fast path *is* the linear
/// solver).
#[deprecated(note = "use Simulation::plan")]
pub fn solve_descriptor_as_multiterm(
    sys: &DescriptorSystem,
    u_coeffs: &[Vec<f64>],
    t_end: f64,
) -> Result<OpmResult, OpmError> {
    let m = validate_coeff_inputs(sys.num_inputs(), u_coeffs)?;
    SimPlan::for_multiterm(
        &MultiTermSystem::from_descriptor(sys),
        m,
        t_end,
        &MtSelect::Auto,
    )?
    .solve_coeffs(u_coeffs)
}

#[cfg(test)]
mod tests {
    // The strategy's own unit tests exercise the deprecated one-shot
    // wrappers on purpose: they pin the wrapper-to-plan delegation.
    #![allow(deprecated)]
    use super::*;
    use opm_sparse::{CooMatrix, CsrMatrix};
    use opm_system::{SecondOrderSystem, Term};
    use opm_waveform::{InputSet, Waveform};

    fn eye_term(alpha: f64) -> Term {
        Term {
            alpha,
            matrix: CsrMatrix::identity(1),
        }
    }

    fn scaled_term(alpha: f64, k: f64) -> Term {
        Term {
            alpha,
            matrix: CsrMatrix::identity(1).scale(k),
        }
    }

    #[test]
    fn k1_fast_path_equals_linear_solver() {
        let mut a = CooMatrix::new(1, 1);
        a.push(0, 0, -1.7);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        let sys =
            DescriptorSystem::new(CsrMatrix::identity(1), a.to_csr(), b.to_csr(), None).unwrap();
        let m = 64;
        let u = InputSet::new(vec![Waveform::sine(0.2, 1.0, 1.0, 0.0, 0.0)]).bpf_matrix(m, 2.0);
        let via_mt = solve_descriptor_as_multiterm(&sys, &u, 2.0).unwrap();
        let via_lin = crate::linear::solve_linear(&sys, &u, 2.0, &[0.0]).unwrap();
        for j in 0..m {
            assert!(
                (via_mt.state_coeff(0, j) - via_lin.state_coeff(0, j)).abs() < 1e-10,
                "column {j}"
            );
        }
    }

    #[test]
    fn recurrence_and_convolution_paths_agree() {
        // Damped oscillator: ẍ + 0.4ẋ + 4x = u.
        let mt = MultiTermSystem::new(
            vec![eye_term(2.0), scaled_term(1.0, 0.4), scaled_term(0.0, 4.0)],
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let m = 96;
        let u = InputSet::new(vec![Waveform::step(0.0, 1.0)]).bpf_matrix(m, 6.0);
        let fast = solve_multiterm_recurrence(&mt, &u, 6.0).unwrap();
        let slow = solve_multiterm_convolution(&mt, &u, 6.0).unwrap();
        for j in 0..m {
            assert!(
                (fast.state_coeff(0, j) - slow.state_coeff(0, j)).abs() < 1e-8,
                "column {j}: {} vs {}",
                fast.state_coeff(0, j),
                slow.state_coeff(0, j)
            );
        }
    }

    #[test]
    fn damped_oscillator_matches_companion_reference() {
        let omega2 = 4.0;
        let zeta_term = 0.4;
        let s = SecondOrderSystem::new(
            CsrMatrix::identity(1),
            CsrMatrix::identity(1).scale(zeta_term),
            CsrMatrix::identity(1).scale(omega2),
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let m = 1024;
        let t_end = 8.0;
        let u_set = InputSet::new(vec![Waveform::step(0.0, 1.0)]);
        let u = u_set.bpf_matrix(m, t_end);
        let opm = solve_multiterm(&s.to_multiterm(), &u, t_end).unwrap();
        let reference =
            opm_transient::expm_reference(&s.to_companion(), &u_set, t_end, m, &[0.0, 0.0])
                .unwrap();
        // Compare OPM midpoint coefficients against reference endpoint
        // averages (both second-order accurate representations).
        let mut worst = 0.0f64;
        for j in 1..m {
            let ref_mid = 0.5 * (reference.outputs[0][j - 1] + reference.outputs[0][j]);
            worst = worst.max((opm.state_coeff(0, j) - ref_mid).abs());
        }
        assert!(worst < 5e-4, "worst deviation {worst}");
    }

    #[test]
    fn single_fractional_term_matches_fractional_solver() {
        use opm_system::FractionalSystem;
        let lambda = -1.0;
        let mt = MultiTermSystem::new(
            vec![eye_term(0.5), scaled_term(0.0, -lambda)],
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let mut a = CooMatrix::new(1, 1);
        a.push(0, 0, lambda);
        let mut b = CooMatrix::new(1, 1);
        b.push(0, 0, 1.0);
        let fsys = FractionalSystem::new(
            0.5,
            DescriptorSystem::new(CsrMatrix::identity(1), a.to_csr(), b.to_csr(), None).unwrap(),
        )
        .unwrap();
        let m = 128;
        let u = InputSet::new(vec![Waveform::Dc(1.0)]).bpf_matrix(m, 2.0);
        let via_mt = solve_multiterm(&mt, &u, 2.0).unwrap();
        let via_frac = crate::fractional::solve_fractional(&fsys, &u, 2.0).unwrap();
        for j in 0..m {
            assert!(
                (via_mt.state_coeff(0, j) - via_frac.state_coeff(0, j)).abs() < 1e-10,
                "column {j}"
            );
        }
    }

    #[test]
    fn incommensurate_orders_run_and_stay_bounded() {
        // d^{1.5}x + d^{0.5}x + x = u — a genuine multi-term FDE.
        let mt = MultiTermSystem::new(
            vec![eye_term(1.5), eye_term(0.5), eye_term(0.0)],
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let m = 128;
        let u = InputSet::new(vec![Waveform::step(0.0, 1.0)]).bpf_matrix(m, 10.0);
        let r = solve_multiterm(&mt, &u, 10.0).unwrap();
        for j in 0..m {
            let v = r.state_coeff(0, j);
            assert!(v.is_finite() && v.abs() < 3.0, "column {j}: {v}");
        }
        // Must settle toward the static gain 1.
        assert!((r.state_coeff(0, m - 1) - 1.0).abs() < 0.2);
    }

    #[test]
    fn recurrence_path_rejects_fractional() {
        let mt = MultiTermSystem::new(
            vec![eye_term(0.5), eye_term(0.0)],
            CsrMatrix::identity(1),
            None,
        )
        .unwrap();
        let u = vec![vec![1.0; 8]];
        assert!(solve_multiterm_recurrence(&mt, &u, 1.0).is_err());
    }
}
