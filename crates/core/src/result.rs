//! OPM solution containers: coefficient matrices with reconstruction.

/// An OPM solution `x(t) ≈ X·φ(t)` on a (possibly non-uniform) grid.
///
/// `columns[j]` is the coefficient vector `x_j ∈ Rⁿ` of interval `j` —
/// the interval *average* of the state (paper Eq. 2), which is also a
/// second-order-accurate midpoint sample.
#[derive(Clone, Debug)]
pub struct OpmResult {
    /// Interval boundaries, length `m + 1` (`bounds[0] = 0`).
    pub bounds: Vec<f64>,
    /// Coefficient columns, `columns[j].len() == n`.
    pub columns: Vec<Vec<f64>>,
    /// Output coefficients: `outputs[o][j]` (computed through `C` when the
    /// system has one, otherwise equal to the state rows).
    pub outputs: Vec<Vec<f64>>,
    /// Sparse solves performed (complexity accounting).
    pub num_solves: usize,
    /// Sparse LU factorizations *backing* this result. Results produced
    /// by one reusable plan share the plan's factorizations, so summing
    /// this field across a batch over-counts — use
    /// `SimPlan::num_factorizations()` for the true total. (Adaptive
    /// solves through a shared step-lattice cache instead report only
    /// the factorizations newly performed for this result.)
    pub num_factorizations: usize,
}

impl OpmResult {
    /// Number of intervals `m`.
    pub fn num_intervals(&self) -> usize {
        self.columns.len()
    }

    /// State dimension `n`.
    pub fn order(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Interval midpoints — the natural abscissae of the coefficients.
    pub fn midpoints(&self) -> Vec<f64> {
        self.bounds
            .windows(2)
            .map(|ab| 0.5 * (ab[0] + ab[1]))
            .collect()
    }

    /// Coefficient of state `i` on interval `j`.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn state_coeff(&self, i: usize, j: usize) -> f64 {
        self.columns[j][i]
    }

    /// Row `i` of the coefficient matrix (state `i` across time).
    pub fn state_row(&self, i: usize) -> Vec<f64> {
        self.columns.iter().map(|c| c[i]).collect()
    }

    /// Output channel `o` across time.
    ///
    /// # Panics
    /// Panics when out of range.
    pub fn output_row(&self, o: usize) -> &[f64] {
        &self.outputs[o]
    }

    /// Piecewise-constant reconstruction of state `i` at time `t`
    /// (0 outside `[0, T)`).
    pub fn reconstruct_state(&self, i: usize, t: f64) -> f64 {
        match self.interval_of(t) {
            Some(j) => self.columns[j][i],
            None => 0.0,
        }
    }

    /// Index of the interval containing `t`.
    pub fn interval_of(&self, t: f64) -> Option<usize> {
        if t < self.bounds[0] || t >= *self.bounds.last().unwrap() {
            return None;
        }
        // Binary search over boundaries.
        let idx = self.bounds.partition_point(|&b| b <= t);
        Some(idx - 1)
    }

    /// Endpoint-value series for state `i`: recovers `x(t_k)` from the
    /// interval averages via `v_{k+1} = 2·c_k − v_k` (exact under the
    /// trapezoidal-polyline interpretation of BPF-OPM). Returns values at
    /// `bounds[1..]`.
    pub fn endpoint_series(&self, i: usize, x0_i: f64) -> Vec<f64> {
        let mut v = x0_i;
        self.columns
            .iter()
            .map(|c| {
                v = 2.0 * c[i] - v;
                v
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpmResult {
        OpmResult {
            bounds: vec![0.0, 0.5, 1.0, 2.0],
            columns: vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]],
            outputs: vec![vec![1.0, 2.0, 3.0]],
            num_solves: 3,
            num_factorizations: 1,
        }
    }

    #[test]
    fn geometry() {
        let r = sample();
        assert_eq!(r.num_intervals(), 3);
        assert_eq!(r.order(), 2);
        assert_eq!(r.midpoints(), vec![0.25, 0.75, 1.5]);
        assert_eq!(r.interval_of(0.6), Some(1));
        assert_eq!(r.interval_of(1.99), Some(2));
        assert_eq!(r.interval_of(2.0), None);
        assert_eq!(r.interval_of(-0.1), None);
    }

    #[test]
    fn reconstruction_and_rows() {
        let r = sample();
        assert_eq!(r.reconstruct_state(1, 0.6), 20.0);
        assert_eq!(r.reconstruct_state(0, 5.0), 0.0);
        assert_eq!(r.state_row(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(r.output_row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn endpoint_recurrence() {
        // Averages of the polyline 0→2→2→4 are 1, 2, 3.
        let r = sample();
        assert_eq!(r.endpoint_series(0, 0.0), vec![2.0, 2.0, 4.0]);
    }
}
